//! A forward abstract-interpretation baseline, standing in for Prob (Mardziel et al.).
//!
//! Prob computes posteriors by running a probabilistic abstract interpreter over the query each
//! time a posterior is needed. The qualitative properties the paper compares against are: (i) the
//! analysis runs *per query execution* (no one-time synthesis to amortize), and (ii) the result
//! is generally less precise than ANOSY's one-shot synthesized domains because precision is lost
//! at every evaluation step. This baseline reproduces both properties with a deterministic
//! (non-probabilistic) abstract interpreter: the prior box is *conditioned* on the query (and on
//! its negation) by a single interval-narrowing pass — no splitting, no optimization — which is
//! exactly the "refine the domain as the query is evaluated with small step semantics" behaviour
//! the paper contrasts itself against (§5.4 Discussion, §6.1).

use anosy_domains::{AbstractDomain, IntervalDomain};
use anosy_logic::{simplify_pred, IntBox, SecretLayout};
use anosy_solver::narrow_box;
use anosy_synth::QueryDef;

/// The per-answer posteriors `(true, false)` computed by forward abstract interpretation of the
/// query over the prior box.
///
/// Both results are **over-approximations** of the respective exact posteriors (narrowing never
/// drops a consistent secret), which matches the flavour of knowledge Prob tracks.
pub fn ai_posterior(query: &QueryDef, prior: &IntervalDomain) -> (IntervalDomain, IntervalDomain) {
    let arity = query.layout().arity();
    let Some(prior_box) = prior.to_box() else {
        return (IntervalDomain::empty(arity), IntervalDomain::empty(arity));
    };
    let condition = |pred| -> IntervalDomain {
        match narrow_box(&simplify_pred(&pred), &prior_box, 1) {
            Some(narrowed) => IntervalDomain::from_box(&narrowed),
            None => IntervalDomain::empty(arity),
        }
    };
    (condition(query.pred().clone()), condition(query.pred().clone().negate()))
}

/// Precision comparison between the baseline and ANOSY's synthesized approximations for one
/// query, starting from the full secret space as prior.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineComparison {
    /// Name of the query.
    pub query: String,
    /// Exact size of the True ind. set.
    pub exact_true: u128,
    /// Size of the baseline's True posterior (an over-approximation).
    pub baseline_true: u128,
    /// Size of ANOSY's synthesized over-approximate True ind. set.
    pub anosy_over_true: u128,
    /// Size of ANOSY's synthesized under-approximate True ind. set.
    pub anosy_under_true: u128,
}

impl BaselineComparison {
    /// Relative over-approximation error of the baseline (0 = exact).
    pub fn baseline_error(&self) -> f64 {
        relative_error(self.baseline_true, self.exact_true)
    }

    /// Relative over-approximation error of ANOSY's over-approximation (0 = exact).
    pub fn anosy_error(&self) -> f64 {
        relative_error(self.anosy_over_true, self.exact_true)
    }
}

fn relative_error(approx: u128, exact: u128) -> f64 {
    if exact == 0 {
        approx as f64
    } else {
        (approx as f64 - exact as f64).abs() / exact as f64
    }
}

/// Convenience used by tests and the report binary: the full-space prior of a query.
pub fn top_prior(layout: &SecretLayout) -> IntervalDomain {
    IntervalDomain::top(layout)
}

/// Convenience: the full-space box of a query (for counting).
pub fn space_of(query: &QueryDef) -> IntBox {
    query.layout().space()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::{all_benchmarks, birthday};
    use anosy_domains::AInt;
    use anosy_logic::IntExpr;
    use anosy_solver::{Solver, SolverConfig};
    use anosy_synth::{ApproxKind, SynthConfig, Synthesizer};

    fn nearby_query() -> QueryDef {
        let layout = SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build();
        let pred = ((IntExpr::var(0) - 200).abs() + (IntExpr::var(1) - 200).abs()).le(100);
        QueryDef::new("nearby", layout, pred).unwrap()
    }

    #[test]
    fn baseline_posteriors_over_approximate_the_exact_ones() {
        let mut solver = Solver::with_config(SolverConfig::for_tests());
        for query in [nearby_query(), birthday().query] {
            let prior = top_prior(query.layout());
            let (post_t, post_f) = ai_posterior(&query, &prior);
            let space = space_of(&query);
            let exact_t = solver.count_models(query.pred(), &space).unwrap();
            let exact_f = space.count() - exact_t;
            assert!(post_t.size() >= exact_t, "{}: baseline True too small", query.name());
            assert!(post_f.size() >= exact_f, "{}: baseline False too small", query.name());
            // And every exact model is inside the baseline posterior (soundness, spot-checked by
            // the solver).
            let holds =
                solver.is_valid(&query.pred().clone().implies(post_t.to_pred()), &space).unwrap();
            assert!(holds, "{}: baseline True posterior misses models", query.name());
        }
    }

    #[test]
    fn baseline_respects_the_prior() {
        let query = nearby_query();
        let prior = IntervalDomain::from_intervals(vec![AInt::new(0, 150), AInt::new(0, 400)]);
        let (post_t, post_f) = ai_posterior(&query, &prior);
        assert!(post_t.is_subset_of(&prior));
        assert!(post_f.is_subset_of(&prior));
        // Empty prior gives empty posteriors.
        let empty = IntervalDomain::empty(2);
        let (et, ef) = ai_posterior(&query, &empty);
        assert!(et.is_empty() && ef.is_empty());
    }

    #[test]
    fn anosy_over_approximation_is_at_least_as_precise_as_the_baseline() {
        // The §6.1 claim, restated without probabilities: the one-shot synthesized
        // over-approximation is never larger than the single-pass abstract-interpretation result.
        let mut synth =
            Synthesizer::with_config(SynthConfig::new().with_solver(SolverConfig::for_tests()));
        for b in [birthday(), crate::benchmarks::photo()] {
            let prior = top_prior(b.query.layout());
            let (baseline_t, _) = ai_posterior(&b.query, &prior);
            let over = synth.synth_interval(&b.query, ApproxKind::Over).unwrap();
            assert!(
                over.truthy().size() <= baseline_t.size(),
                "{}: ANOSY over {} > baseline {}",
                b.id,
                over.truthy().size(),
                baseline_t.size()
            );
        }
    }

    #[test]
    fn comparison_errors_are_computed_relative_to_the_exact_size() {
        let c = BaselineComparison {
            query: "demo".into(),
            exact_true: 100,
            baseline_true: 150,
            anosy_over_true: 110,
            anosy_under_true: 90,
        };
        assert!((c.baseline_error() - 0.5).abs() < 1e-12);
        assert!((c.anosy_error() - 0.1).abs() < 1e-12);
        let degenerate = BaselineComparison { exact_true: 0, ..c };
        assert_eq!(degenerate.baseline_error(), 150.0);
    }

    #[test]
    fn all_benchmarks_run_through_the_baseline() {
        for b in all_benchmarks() {
            let prior = top_prior(b.query.layout());
            let (t, f) = ai_posterior(&b.query, &prior);
            assert!(t.size() + f.size() >= prior.size(), "{} baseline lost points", b.id);
        }
    }
}
