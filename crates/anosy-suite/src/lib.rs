//! Evaluation workloads of the ANOSY paper (§6).
//!
//! Two case studies drive the paper's evaluation, and this crate packages both so the benchmark
//! harness (and the examples) can regenerate every table and figure:
//!
//! * [`benchmarks`] — the five query-synthesis benchmarks inherited from Mardziel et al.
//!   (Birthday, Ship, Photo, Pizza, Travel), each with its secret layout, query, the paper's
//!   published ground-truth ind. set sizes and helpers to compute ours (Table 1, Fig. 5a/5b);
//! * [`advertising`] — the secure-advertising case study: sequences of random `nearby` queries
//!   against a 400×400 secret location under the `size > 100` policy, measuring how many queries
//!   each powerset size authorizes (Fig. 6);
//! * [`baseline`] — a forward abstract-interpretation baseline standing in for Prob (Mardziel et
//!   al.'s probabilistic abstract interpreter), used for the §6.1 precision/runtime discussion;
//! * [`population`] — the multi-tenant population simulator: a seeded generator of macro-scale
//!   heterogeneous serving workloads (Zipf-skewed query popularity, per-tenant policy mixes,
//!   session churn, adversarial probe-until-refused clients) that `anosy-serve` compiles into
//!   deterministic `SimNet` runs and the bench harness turns into macro-benchmark rows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advertising;
pub mod baseline;
pub mod benchmarks;
pub mod population;

pub use advertising::{run_advertising, AdvertisingConfig, AdvertisingOutcome};
pub use baseline::{ai_posterior, BaselineComparison};
pub use benchmarks::{all_benchmarks, Benchmark, BenchmarkId};
pub use population::{
    PolicyMix, Population, PopulationConfig, PopulationLayout, QueryPopularity, Skew, Tenant,
    TenantAction,
};
