//! The secure-advertising case study (§6.2, Fig. 6).
//!
//! A restaurant chain asks a sequence of `nearby` queries (one per branch) about a user's secret
//! location. The AnosyT session tracks the attacker's knowledge with under-approximated
//! powersets and refuses the first query whose posterior could shrink the knowledge to at most
//! 100 locations. The experiment measures, for each powerset size `k`, how many queries each
//! randomized execution still gets authorized — the curves of Fig. 6.

use anosy_core::{AnosyError, AnosySession, MinSizePolicy};
use anosy_domains::PowersetDomain;
use anosy_ifc::Protected;
use anosy_logic::{IntExpr, Point, SecretLayout};
use anosy_synth::{ApproxKind, QueryDef, SynthConfig, Synthesizer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the advertising experiment.
#[derive(Debug, Clone)]
pub struct AdvertisingConfig {
    /// The secret location ranges over `[0, space_side] × [0, space_side]`.
    pub space_side: i64,
    /// Manhattan radius of each `nearby` query.
    pub radius: i64,
    /// Number of restaurant branches, i.e. of sequential queries per execution.
    pub num_queries: usize,
    /// Number of randomized executions (each with a fresh secret location).
    pub runs: usize,
    /// The policy threshold: knowledge must keep strictly more than this many locations.
    pub policy_min_size: u128,
    /// The powerset sizes `k` to compare.
    pub powerset_sizes: Vec<usize>,
    /// RNG seed, so runs are reproducible.
    pub seed: u64,
    /// Synthesis configuration.
    pub synth: SynthConfig,
}

impl AdvertisingConfig {
    /// The configuration used in the paper: 400×400 space, radius 100, 50 queries, 20 runs,
    /// policy `size > 100`, k ∈ {1, 3, 5, 7, 10}.
    pub fn paper() -> Self {
        AdvertisingConfig {
            space_side: 400,
            radius: 100,
            num_queries: 50,
            runs: 20,
            policy_min_size: 100,
            powerset_sizes: vec![1, 3, 5, 7, 10],
            seed: 0x0a05_417e,
            synth: SynthConfig::default(),
        }
    }

    /// A scaled-down configuration for unit tests and smoke runs.
    pub fn quick() -> Self {
        AdvertisingConfig {
            space_side: 120,
            radius: 40,
            num_queries: 8,
            runs: 4,
            policy_min_size: 60,
            powerset_sizes: vec![1, 3],
            seed: 7,
            synth: SynthConfig::default(),
        }
    }

    /// The secret layout of the experiment.
    pub fn layout(&self) -> SecretLayout {
        SecretLayout::builder()
            .field("x", 0, self.space_side)
            .field("y", 0, self.space_side)
            .build()
    }
}

impl Default for AdvertisingConfig {
    fn default() -> Self {
        AdvertisingConfig::paper()
    }
}

/// The outcome of the experiment for one powerset size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdvertisingOutcome {
    /// The powerset size `k` this outcome corresponds to.
    pub k: usize,
    /// For each run, how many queries were authorized before the first policy violation (or the
    /// total number of queries if none was refused).
    pub authorized_per_run: Vec<usize>,
}

impl AdvertisingOutcome {
    /// Number of runs still authorized at the `i`-th query (1-based), i.e. the Y value plotted at
    /// X = `i` in Fig. 6.
    pub fn survivors_at(&self, i: usize) -> usize {
        self.authorized_per_run.iter().filter(|&&n| n >= i).count()
    }

    /// The full survivor curve for X = 1 ..= `num_queries`.
    pub fn survivor_curve(&self, num_queries: usize) -> Vec<usize> {
        (1..=num_queries).map(|i| self.survivors_at(i)).collect()
    }

    /// The largest number of queries any run got authorized (the "maximum of N queries" numbers
    /// quoted in §6.2).
    pub fn max_authorized(&self) -> usize {
        self.authorized_per_run.iter().copied().max().unwrap_or(0)
    }

    /// Mean number of authorized queries across runs.
    pub fn mean_authorized(&self) -> f64 {
        if self.authorized_per_run.is_empty() {
            0.0
        } else {
            self.authorized_per_run.iter().sum::<usize>() as f64
                / self.authorized_per_run.len() as f64
        }
    }
}

/// Runs the full experiment: synthesizes the query approximations once per powerset size, then
/// replays the query sequence for every randomized secret location.
///
/// # Errors
///
/// Propagates synthesis, verification and solver failures. Policy violations are *not* errors —
/// they are the measured quantity.
pub fn run_advertising(config: &AdvertisingConfig) -> Result<Vec<AdvertisingOutcome>, AnosyError> {
    let layout = config.layout();
    let mut rng = StdRng::seed_from_u64(config.seed);

    // One restaurant location per query, shared by every run and every k (as in the paper, the
    // query sequence is the restaurant chain's branches).
    let restaurants: Vec<(i64, i64)> = (0..config.num_queries)
        .map(|_| (rng.gen_range(0..=config.space_side), rng.gen_range(0..=config.space_side)))
        .collect();
    let user_locations: Vec<Point> = (0..config.runs)
        .map(|_| {
            Point::new(vec![
                rng.gen_range(0..=config.space_side),
                rng.gen_range(0..=config.space_side),
            ])
        })
        .collect();

    let queries: Vec<QueryDef> = restaurants
        .iter()
        .enumerate()
        .map(|(i, (x, y))| {
            let pred =
                ((IntExpr::var(0) - *x).abs() + (IntExpr::var(1) - *y).abs()).le(config.radius);
            QueryDef::new(format!("nearby_{i}_{x}_{y}"), layout.clone(), pred)
                .expect("generated query is well-formed")
        })
        .collect();

    let mut outcomes = Vec::with_capacity(config.powerset_sizes.len());
    for &k in &config.powerset_sizes {
        let mut synth = Synthesizer::with_config(config.synth.clone());
        let mut session: AnosySession<PowersetDomain> =
            AnosySession::new(layout.clone(), MinSizePolicy::new(config.policy_min_size));
        for query in &queries {
            session.register_synthesized(&mut synth, query, ApproxKind::Under, Some(k))?;
        }
        let mut authorized_per_run = Vec::with_capacity(config.runs);
        for user in &user_locations {
            session.reset_knowledge();
            let secret = Protected::new(user.clone());
            let mut authorized = 0;
            for query in &queries {
                match session.downgrade(&secret, query.name()) {
                    Ok(_) => authorized += 1,
                    Err(AnosyError::PolicyViolation { .. }) => break,
                    Err(other) => return Err(other),
                }
            }
            authorized_per_run.push(authorized);
        }
        outcomes.push(AdvertisingOutcome { k, authorized_per_run });
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anosy_solver::SolverConfig;

    fn quick_config() -> AdvertisingConfig {
        let mut c = AdvertisingConfig::quick();
        c.synth = SynthConfig::new().with_solver(SolverConfig::for_tests()).with_seeds(1);
        c
    }

    #[test]
    fn paper_configuration_matches_section_6_2() {
        let c = AdvertisingConfig::paper();
        assert_eq!(c.space_side, 400);
        assert_eq!(c.num_queries, 50);
        assert_eq!(c.runs, 20);
        assert_eq!(c.policy_min_size, 100);
        assert_eq!(c.powerset_sizes, vec![1, 3, 5, 7, 10]);
        assert_eq!(c.layout().space_size(), 401 * 401);
        assert_eq!(AdvertisingConfig::default().num_queries, 50);
    }

    #[test]
    fn quick_experiment_runs_and_larger_powersets_authorize_at_least_as_many_queries() {
        let config = quick_config();
        let outcomes = run_advertising(&config).unwrap();
        assert_eq!(outcomes.len(), 2);
        for o in &outcomes {
            assert_eq!(o.authorized_per_run.len(), config.runs);
            // Survivor curves are non-increasing in the query index.
            let curve = o.survivor_curve(config.num_queries);
            assert_eq!(curve[0], o.survivors_at(1));
            assert!(curve.windows(2).all(|w| w[0] >= w[1]));
            assert!(o.max_authorized() <= config.num_queries);
        }
        // Precision is monotone in k on average (the Fig. 6 trend).
        let k1 = &outcomes[0];
        let k3 = &outcomes[1];
        assert!(k3.mean_authorized() >= k1.mean_authorized());
        // Every run authorizes at least one query: the first posterior keeps far more than the
        // policy threshold of locations.
        assert!(k1.authorized_per_run.iter().all(|&n| n >= 1));
    }

    #[test]
    fn runs_are_reproducible_for_a_fixed_seed() {
        let config = quick_config();
        let a = run_advertising(&config).unwrap();
        let b = run_advertising(&config).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn survivor_accounting() {
        let o = AdvertisingOutcome { k: 3, authorized_per_run: vec![0, 2, 5, 5] };
        assert_eq!(o.survivors_at(1), 3);
        assert_eq!(o.survivors_at(3), 2);
        assert_eq!(o.survivors_at(6), 0);
        assert_eq!(o.max_authorized(), 5);
        assert!((o.mean_authorized() - 3.0).abs() < 1e-12);
        assert_eq!(o.survivor_curve(5), vec![3, 3, 2, 2, 2]);
        let empty = AdvertisingOutcome { k: 1, authorized_per_run: vec![] };
        assert_eq!(empty.mean_authorized(), 0.0);
        assert_eq!(empty.max_authorized(), 0);
    }
}
