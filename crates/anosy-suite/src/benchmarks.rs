//! The Mardziel et al. benchmark suite as used by the paper (Table 1, Fig. 5).
//!
//! The paper reuses the secret-space bounds of Mardziel et al. \[25\] but does not restate them.
//! Where the published Table 1 sizes pin the bounds down (B1 Birthday, B3 Photo) we use exactly
//! those; for the remaining benchmarks we choose bounds of the same order of magnitude and record
//! the deviation in EXPERIMENTS.md. Every benchmark is a boolean query over a product of bounded
//! integer fields, which is all the synthesis pipeline needs.

use anosy_logic::{IntExpr, Pred, SecretLayout};
use anosy_solver::{Solver, SolverError};
use anosy_synth::QueryDef;
use std::fmt;

/// Identifier of a benchmark, matching the paper's numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BenchmarkId {
    /// B1: is the user's birthday within the next 7 days of a fixed day?
    Birthday,
    /// B2: can a ship aid an island, given its position and onboard capacity?
    Ship,
    /// B3: is the user a candidate for a wedding-photography ad?
    Photo,
    /// B4: is the user a candidate for a local pizza-parlor ad?
    Pizza,
    /// B5: is the user interested in travel offers?
    Travel,
}

impl BenchmarkId {
    /// All benchmarks in the paper's order.
    pub const ALL: [BenchmarkId; 5] = [
        BenchmarkId::Birthday,
        BenchmarkId::Ship,
        BenchmarkId::Photo,
        BenchmarkId::Pizza,
        BenchmarkId::Travel,
    ];

    /// The paper's short identifier (`B1` ... `B5`).
    pub fn short(&self) -> &'static str {
        match self {
            BenchmarkId::Birthday => "B1",
            BenchmarkId::Ship => "B2",
            BenchmarkId::Photo => "B3",
            BenchmarkId::Pizza => "B4",
            BenchmarkId::Travel => "B5",
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {:?}", self.short(), self)
    }
}

/// A benchmark: its query plus the ind. set sizes published in Table 1 of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct Benchmark {
    /// Which benchmark this is.
    pub id: BenchmarkId,
    /// One-line description (the paper's §6.1 prose).
    pub description: &'static str,
    /// The query.
    pub query: QueryDef,
    /// Size of the exact True ind. set as published in Table 1.
    pub paper_true_size: u128,
    /// Size of the exact False ind. set as published in Table 1.
    pub paper_false_size: u128,
    /// `true` when our secret-space bounds reproduce Table 1 exactly (B1, B3); `false` when they
    /// only match the order of magnitude (B2, B4, B5 — see DESIGN.md §4).
    pub exact_bounds: bool,
}

impl Benchmark {
    /// Number of secret fields (the *No. of fields* column of Table 1).
    pub fn field_count(&self) -> usize {
        self.query.layout().arity()
    }

    /// Computes this repository's exact ind. set sizes `(true, false)` by model counting.
    ///
    /// # Errors
    ///
    /// Propagates solver budget errors.
    pub fn ground_truth(&self, solver: &mut Solver) -> Result<(u128, u128), SolverError> {
        let space = self.query.layout().space();
        let t = solver.count_models(self.query.pred(), &space)?;
        Ok((t, space.count() - t))
    }
}

/// B1 — Birthday: `today <= bday < today + 7` with `today = 260`, over bday ∈ [0, 364] and
/// byear ∈ [1956, 1992]. These bounds reproduce Table 1 exactly (259 / 13246).
pub fn birthday() -> Benchmark {
    let layout = SecretLayout::builder().field("bday", 0, 364).field("byear", 1956, 1992).build();
    let today = 260;
    let bday = IntExpr::var(0);
    let pred = Pred::and(vec![bday.clone().ge(today), bday.lt(today + 7)]);
    Benchmark {
        id: BenchmarkId::Birthday,
        description:
            "checks if a user's birthday, the secret, is within the next 7 days of a fixed day",
        query: QueryDef::new("birthday", layout, pred).expect("benchmark query is well-formed"),
        paper_true_size: 259,
        paper_false_size: 13_246,
        exact_bounds: true,
    }
}

/// B2 — Ship: a relational query coupling the ship's position and capacity: the ship can aid the
/// island if it is within Manhattan distance 300 of the island **and** its capacity covers the
/// distance to travel (`capacity * 40 >= distance`). Secrets: x, y ∈ [0, 999], capacity ∈ [0, 24].
pub fn ship() -> Benchmark {
    let layout = SecretLayout::builder()
        .field("x", 0, 999)
        .field("y", 0, 999)
        .field("capacity", 0, 24)
        .build();
    let distance = (IntExpr::var(0) - 500).abs() + (IntExpr::var(1) - 500).abs();
    let pred = Pred::and(vec![distance.clone().le(300), (IntExpr::var(2) * 40).ge(distance)]);
    Benchmark {
        id: BenchmarkId::Ship,
        description: "calculates if a ship can aid an island based on the island's location and the ship's onboard capacity",
        query: QueryDef::new("ship", layout, pred).expect("benchmark query is well-formed"),
        paper_true_size: 1_010_000,      // 1.01e+06 in Table 1
        paper_false_size: 24_300_000,    // 2.43e+07 in Table 1
        exact_bounds: false,
    }
}

/// B3 — Photo: female (gender = 1), engaged (status = 2) and born in [1983, 1986], over
/// gender ∈ [0, 1], status ∈ [0, 3], byear ∈ [1900, 2010]. Reproduces Table 1 exactly (4 / 884).
pub fn photo() -> Benchmark {
    let layout = SecretLayout::builder()
        .bool_field("gender")
        .enum_field("status", 4)
        .field("byear", 1900, 2010)
        .build();
    let pred = Pred::and(vec![
        IntExpr::var(0).eq(1),
        IntExpr::var(1).eq(2),
        IntExpr::var(2).between(1983, 1986),
    ]);
    Benchmark {
        id: BenchmarkId::Photo,
        description: "checks if a user would be interested in a wedding photography service (female, engaged, in an age range)",
        query: QueryDef::new("photo", layout, pred).expect("benchmark query is well-formed"),
        paper_true_size: 4,
        paper_false_size: 884,
        exact_bounds: true,
    }
}

/// B4 — Pizza: born in the 1980s, at least college-educated, and whose address (scaled by 10⁶)
/// falls in the pizza parlor's delivery rectangle. Secrets: byear ∈ [1900, 2010],
/// school ∈ [0, 5], lat and lon ∈ [0, 205000] (the scaled offsets used by Mardziel et al. are of
/// this order; only the order of magnitude of Table 1 is reproduced).
pub fn pizza() -> Benchmark {
    let layout = SecretLayout::builder()
        .field("byear", 1900, 2010)
        .enum_field("school", 6)
        .field("lat", 0, 205_000)
        .field("lon", 0, 205_000)
        .build();
    let pred = Pred::and(vec![
        IntExpr::var(0).between(1980, 1989),
        IntExpr::var(1).ge(4),
        IntExpr::var(2).between(50_000, 76_000),
        IntExpr::var(3).between(100_000, 126_000),
    ]);
    Benchmark {
        id: BenchmarkId::Pizza,
        description: "checks if a user might be interested in ads of a local pizza parlor (birth year, education, address rectangle)",
        query: QueryDef::new("pizza", layout, pred).expect("benchmark query is well-formed"),
        paper_true_size: 13_700_000_000,        // 1.37e+10 in Table 1
        paper_false_size: 28_100_000_000_000,   // 2.81e+13 in Table 1
        exact_bounds: false,
    }
}

/// B5 — Travel: speaks English (language = 1), completed a high education level, lives in one of
/// several countries (point-wise membership) and is older than 21. Secrets: language ∈ [0, 9],
/// education ∈ [0, 15], country ∈ [0, 199], age ∈ [0, 209].
pub fn travel() -> Benchmark {
    let layout = SecretLayout::builder()
        .field("language", 0, 9)
        .field("education", 0, 15)
        .field("country", 0, 199)
        .field("age", 0, 209)
        .build();
    let pred = Pred::and(vec![
        IntExpr::var(0).eq(1),
        IntExpr::var(1).ge(12),
        IntExpr::var(2).one_of([4, 28, 76, 103, 154]),
        IntExpr::var(3).gt(21),
    ]);
    Benchmark {
        id: BenchmarkId::Travel,
        description: "tests for interest in travel (speaks English, high education, lives in one of several countries, older than 21)",
        query: QueryDef::new("travel", layout, pred).expect("benchmark query is well-formed"),
        paper_true_size: 2_160,
        paper_false_size: 6_720_000, // 6.72e+06 in Table 1
        exact_bounds: false,
    }
}

/// Every benchmark, in the paper's order B1..B5.
pub fn all_benchmarks() -> Vec<Benchmark> {
    vec![birthday(), ship(), photo(), pizza(), travel()]
}

/// Looks a benchmark up by id.
pub fn benchmark(id: BenchmarkId) -> Benchmark {
    match id {
        BenchmarkId::Birthday => birthday(),
        BenchmarkId::Ship => ship(),
        BenchmarkId::Photo => photo(),
        BenchmarkId::Pizza => pizza(),
        BenchmarkId::Travel => travel(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anosy_solver::SolverConfig;

    #[test]
    fn ids_and_field_counts_match_table_1() {
        let expected_fields = [2usize, 3, 3, 4, 4];
        for (b, fields) in all_benchmarks().iter().zip(expected_fields) {
            assert_eq!(b.field_count(), fields, "{}", b.id);
        }
        assert_eq!(BenchmarkId::ALL.len(), 5);
        assert_eq!(BenchmarkId::Pizza.short(), "B4");
        assert!(BenchmarkId::Travel.to_string().contains("B5"));
    }

    #[test]
    fn exact_benchmarks_reproduce_table_1_ground_truth() {
        let mut solver = Solver::with_config(SolverConfig::for_tests());
        for b in all_benchmarks().into_iter().filter(|b| b.exact_bounds) {
            let (t, f) = b.ground_truth(&mut solver).unwrap();
            assert_eq!(t, b.paper_true_size, "{} true size", b.id);
            assert_eq!(f, b.paper_false_size, "{} false size", b.id);
        }
    }

    #[test]
    fn approximate_benchmarks_match_the_published_order_of_magnitude() {
        let mut solver = Solver::new();
        for b in all_benchmarks().into_iter().filter(|b| !b.exact_bounds) {
            let (t, f) = b.ground_truth(&mut solver).unwrap();
            for (ours, paper, which) in
                [(t, b.paper_true_size, "true"), (f, b.paper_false_size, "false")]
            {
                let ratio = ours as f64 / paper as f64;
                assert!(
                    (0.1..=10.0).contains(&ratio),
                    "{} {which} ind. set size {ours} is not within 10x of the paper's {paper}",
                    b.id
                );
            }
        }
    }

    #[test]
    fn benchmark_lookup_round_trips() {
        for id in BenchmarkId::ALL {
            assert_eq!(benchmark(id).id, id);
        }
    }

    #[test]
    fn queries_answer_plausible_points() {
        use anosy_logic::Point;
        assert!(birthday().query.ask(&Point::new(vec![263, 1980])));
        assert!(!birthday().query.ask(&Point::new(vec![100, 1980])));
        assert!(photo().query.ask(&Point::new(vec![1, 2, 1984])));
        assert!(!photo().query.ask(&Point::new(vec![0, 2, 1984])));
        assert!(travel().query.ask(&Point::new(vec![1, 14, 76, 30])));
        assert!(!travel().query.ask(&Point::new(vec![1, 14, 77, 30])));
        assert!(ship().query.ask(&Point::new(vec![500, 600, 10])));
        assert!(!ship().query.ask(&Point::new(vec![0, 0, 24])));
        assert!(pizza().query.ask(&Point::new(vec![1985, 5, 60_000, 110_000])));
        assert!(!pizza().query.ask(&Point::new(vec![1970, 5, 60_000, 110_000])));
    }
}
