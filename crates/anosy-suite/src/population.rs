//! The multi-tenant population simulator (the macro-workload generator).
//!
//! Every benchmark before this module drove the deployment with the Mardziel et al. B1–B5
//! suite at uniform scale — microbenchmarks. The ROADMAP's north star is *heavy traffic from
//! millions of heterogeneous users*, and this module generates that shape: N simulated
//! tenants, each with a secret, a [`PolicySpec`] drawn from a weighted mix, a session
//! lifecycle (connect → downgrade bursts → clean close, abandon, or linger), and a query
//! stream drawn from a shared palette under configurable popularity skew
//! ([`Skew::Zipf`]/[`Skew::Sharp`] make the head of the palette hot, which is what gives the
//! deployment's single-flight synthesis cache a realistic workout). A configurable fraction
//! of tenants are *adversarial*: they climb a geometric ladder of threshold probes against
//! their own secret until the policy refuses.
//!
//! Everything is a pure function of [`PopulationConfig`] — same config (same seed) ⇒
//! byte-identical population, property-tested in `tests/proptest_population.rs`. The
//! `anosy-serve` crate compiles a population into a `SimNet` script (`anosy_serve::popsim`),
//! replays it through the event-loop server, and checks every response against the
//! sequential-session oracle.

use anosy_core::PolicySpec;
use anosy_logic::{IntExpr, Point, SecretLayout};
use anosy_synth::QueryDef;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Which secret space the population's tenants live in.
///
/// Heterogeneous layouts are one of the population's scenario axes: the same protocol and
/// generator drive both the paper's 2-D location grid and a 1-D strip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopulationLayout {
    /// The paper's 2-D location grid: `x, y ∈ 0..=side`.
    Grid {
        /// Upper bound of both coordinates (the paper's evaluation uses 400).
        side: i64,
    },
    /// A 1-D strip `x ∈ 0..=len`.
    Strip {
        /// Upper bound of the single coordinate.
        len: i64,
    },
}

impl PopulationLayout {
    /// The concrete secret layout.
    pub fn layout(&self) -> SecretLayout {
        match self {
            PopulationLayout::Grid { side } => {
                SecretLayout::builder().field("x", 0, *side).field("y", 0, *side).build()
            }
            PopulationLayout::Strip { len } => SecretLayout::builder().field("x", 0, *len).build(),
        }
    }

    /// Upper bound of the first (probed) coordinate.
    pub fn extent(&self) -> i64 {
        match self {
            PopulationLayout::Grid { side } => *side,
            PopulationLayout::Strip { len } => *len,
        }
    }
}

/// Query-popularity skew across the ranked palette.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Skew {
    /// Every palette query equally likely.
    Uniform,
    /// Zipf with exponent 1: rank `i` drawn with weight `∝ 1/(i+1)`.
    Zipf,
    /// Zipf with exponent 2 (a much hotter head): weight `∝ 1/(i+1)²`.
    Sharp,
}

/// Integer fixed-point popularity weights over query ranks, and a cumulative-weight sampler.
///
/// Weights are computed in integer arithmetic only (no `powf`), so the distribution — and
/// therefore every generated population — is bit-stable across platforms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPopularity {
    weights: Vec<u64>,
    cumulative: Vec<u64>,
}

impl QueryPopularity {
    /// Fixed-point scale of the rank-0 weight.
    const SCALE: u64 = 1 << 24;

    /// Popularity over `ranks` queries under `skew`.
    ///
    /// # Panics
    ///
    /// Panics when `ranks` is zero.
    pub fn new(skew: Skew, ranks: usize) -> QueryPopularity {
        assert!(ranks > 0, "a popularity distribution needs at least one rank");
        let weights: Vec<u64> = (0..ranks as u64)
            .map(|i| match skew {
                Skew::Uniform => Self::SCALE,
                Skew::Zipf => Self::SCALE / (i + 1),
                Skew::Sharp => Self::SCALE / ((i + 1) * (i + 1)),
            })
            .collect();
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0u64;
        for w in &weights {
            total += w;
            cumulative.push(total);
        }
        QueryPopularity { weights, cumulative }
    }

    /// The per-rank weights (monotone non-increasing in rank — property-tested).
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    /// Draws a rank with probability proportional to its weight.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty by construction");
        let roll = rng.gen_range(0..total);
        self.cumulative.partition_point(|&c| c <= roll)
    }
}

/// A weighted mix of per-tenant policies: the four shapes [`PolicySpec`] supports, with the
/// threshold palettes each shape draws from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyMix {
    /// Weight of [`PolicySpec::AllowAll`].
    pub allow_all: u32,
    /// Weight of a single [`PolicySpec::MinSize`] atom.
    pub min_size: u32,
    /// Weight of a single [`PolicySpec::MinEntropyMillibits`] atom.
    pub min_entropy: u32,
    /// Weight of a size ∧ entropy conjunction ([`PolicySpec::All`]).
    pub conjunction: u32,
    /// Candidate min-size thresholds.
    pub sizes: Vec<u128>,
    /// Candidate min-entropy thresholds, in millibits.
    pub entropy_millibits: Vec<u64>,
}

impl PolicyMix {
    /// A mix scaled to the 400 × 400 grid (space ≈ 2¹⁷·³).
    pub fn grid_default() -> PolicyMix {
        PolicyMix {
            allow_all: 2,
            min_size: 4,
            min_entropy: 2,
            conjunction: 2,
            sizes: vec![200, 1_000, 5_000],
            entropy_millibits: vec![4_000, 7_000],
        }
    }

    /// A mix scaled to a ~1000-wide strip (space ≈ 2¹⁰).
    pub fn strip_default() -> PolicyMix {
        PolicyMix {
            allow_all: 2,
            min_size: 4,
            min_entropy: 2,
            conjunction: 2,
            sizes: vec![10, 40],
            entropy_millibits: vec![2_000, 4_000],
        }
    }

    fn sample<R: Rng>(&self, rng: &mut R) -> PolicySpec {
        let total = self.allow_all + self.min_size + self.min_entropy + self.conjunction;
        assert!(total > 0, "policy mix needs at least one positive weight");
        let pick_size = |rng: &mut R| self.sizes[rng.gen_range(0..self.sizes.len())];
        let roll = rng.gen_range(0..total);
        if roll < self.allow_all {
            PolicySpec::AllowAll
        } else if roll < self.allow_all + self.min_size {
            PolicySpec::MinSize(pick_size(rng))
        } else if roll < self.allow_all + self.min_size + self.min_entropy {
            PolicySpec::MinEntropyMillibits(
                self.entropy_millibits[rng.gen_range(0..self.entropy_millibits.len())],
            )
        } else {
            PolicySpec::All(vec![
                PolicySpec::MinSize(pick_size(rng)),
                PolicySpec::MinEntropyMillibits(
                    self.entropy_millibits[rng.gen_range(0..self.entropy_millibits.len())],
                ),
            ])
        }
    }
}

/// How a tenant's connection ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exit {
    /// Explicit `close session=…` then a clean half-close.
    Clean,
    /// Abortive reset (the server must tear the session down — the leak-check path).
    Abandon,
    /// Never disconnects: the connection is still open when the run drains (the
    /// `open_sessions` ledger must account for it).
    Linger,
}

/// One protocol action inside a tenant's burst. Query indices point into
/// [`Population::queries`].
#[derive(Debug, Clone, PartialEq)]
pub enum TenantAction {
    /// Register the palette query (tenants register each query they use before first use).
    Register {
        /// Palette index.
        query: usize,
    },
    /// Downgrade the tenant's secret against the palette query.
    Downgrade {
        /// Palette index.
        query: usize,
        /// The tenant's secret.
        secret: Point,
    },
    /// Knowledge checkpoint: how much has this session's adversary model learned?
    Knowledge {
        /// The tenant's secret.
        secret: Point,
    },
}

/// One simulated tenant: a policy, a secret, a lifecycle, and a scripted request stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Tenant {
    /// Position in [`Population::tenants`] (also the tenant's connection slot).
    pub index: usize,
    /// The session policy this tenant opens with.
    pub policy: PolicySpec,
    /// The tenant's secret point (always inside the layout).
    pub secret: Point,
    /// Whether this tenant runs the probe-until-refused ladder instead of an honest stream.
    pub adversarial: bool,
    /// How the connection ends.
    pub exit: Exit,
    /// Which churn cohort the tenant connects in (bursts ride successive rounds).
    pub wave: usize,
    /// The request stream, one inner vector per burst round.
    pub bursts: Vec<Vec<TenantAction>>,
}

/// Full configuration of a generated population. Two configs compare equal iff they generate
/// byte-identical populations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PopulationConfig {
    /// Master seed — the only source of randomness.
    pub seed: u64,
    /// Number of simulated tenants.
    pub tenants: usize,
    /// Secret space.
    pub layout: PopulationLayout,
    /// Number of ranked (popularity-weighted) palette queries.
    pub palette: usize,
    /// Popularity skew over the ranked palette.
    pub skew: Skew,
    /// Per-tenant policy mix.
    pub policy_mix: PolicyMix,
    /// Length of the adversarial probe ladder (geometric thresholds; may be truncated on
    /// small layouts).
    pub probe_steps: usize,
    /// Adversarial tenants, in permille.
    pub adversary_permille: u32,
    /// The min-size policy adversarial tenants open with (chosen so the ladder's late rungs
    /// are refused).
    pub adversary_min_size: u128,
    /// Tenants that abort their connection instead of closing, in permille.
    pub abandon_permille: u32,
    /// Tenants that never disconnect, in permille.
    pub linger_permille: u32,
    /// Honest tenants that end with a knowledge checkpoint, in permille.
    pub knowledge_permille: u32,
    /// Minimum bursts per honest tenant (≥ 1).
    pub min_bursts: usize,
    /// Maximum bursts per honest tenant.
    pub max_bursts: usize,
    /// Minimum downgrades per burst (≥ 1).
    pub min_burst_len: usize,
    /// Maximum downgrades per burst.
    pub max_burst_len: usize,
    /// Number of churn cohorts: wave `w` connects in round `w`, so at any instant only a few
    /// waves' tenants are live.
    pub waves: usize,
}

impl PopulationConfig {
    /// A small tier-1-test-sized population on the paper's grid.
    pub fn small(seed: u64) -> PopulationConfig {
        PopulationConfig {
            seed,
            tenants: 18,
            layout: PopulationLayout::Grid { side: 400 },
            palette: 5,
            skew: Skew::Uniform,
            policy_mix: PolicyMix::grid_default(),
            probe_steps: 7,
            adversary_permille: 0,
            adversary_min_size: 2_000,
            abandon_permille: 250,
            linger_permille: 150,
            knowledge_permille: 300,
            min_bursts: 1,
            max_bursts: 3,
            min_burst_len: 1,
            max_burst_len: 4,
            waves: 4,
        }
    }

    /// The paper-scale sweep configuration (the `expensive-tests` tier): ≥ 100k tenants.
    pub fn paper(seed: u64) -> PopulationConfig {
        PopulationConfig {
            seed,
            tenants: 100_000,
            layout: PopulationLayout::Grid { side: 400 },
            palette: 12,
            skew: Skew::Zipf,
            policy_mix: PolicyMix::grid_default(),
            probe_steps: 6,
            adversary_permille: 15,
            adversary_min_size: 2_000,
            abandon_permille: 250,
            linger_permille: 30,
            knowledge_permille: 100,
            min_bursts: 1,
            max_bursts: 2,
            min_burst_len: 2,
            max_burst_len: 4,
            waves: 40,
        }
    }

    /// Overrides the tenant count.
    pub fn with_tenants(mut self, tenants: usize) -> PopulationConfig {
        self.tenants = tenants;
        self
    }

    /// Overrides the popularity skew.
    pub fn with_skew(mut self, skew: Skew) -> PopulationConfig {
        self.skew = skew;
        self
    }

    /// Overrides the secret layout (pair with a matching [`PolicyMix`]).
    pub fn with_layout(mut self, layout: PopulationLayout) -> PopulationConfig {
        self.layout = layout;
        self
    }

    /// Overrides the policy mix.
    pub fn with_policy_mix(mut self, mix: PolicyMix) -> PopulationConfig {
        self.policy_mix = mix;
        self
    }

    /// Overrides the adversarial fraction and the policy adversaries open with.
    pub fn with_adversaries(mut self, permille: u32, min_size: u128) -> PopulationConfig {
        self.adversary_permille = permille;
        self.adversary_min_size = min_size;
        self
    }

    /// Overrides the churn profile (abandon/linger permille).
    pub fn with_churn(mut self, abandon_permille: u32, linger_permille: u32) -> PopulationConfig {
        self.abandon_permille = abandon_permille;
        self.linger_permille = linger_permille;
        self
    }

    /// Overrides the number of churn cohorts.
    pub fn with_waves(mut self, waves: usize) -> PopulationConfig {
        self.waves = waves;
        self
    }

    /// Overrides the ranked-palette size.
    pub fn with_palette(mut self, palette: usize) -> PopulationConfig {
        self.palette = palette;
        self
    }
}

/// The geometric probe-threshold ladder over `0..=extent`: starts at `extent / 2` and halves
/// the remaining headroom each rung, so successive committed posteriors shrink until a
/// min-size policy must refuse — the probe-until-refused shape.
pub fn probe_thresholds(extent: i64, steps: usize) -> Vec<i64> {
    let mut thresholds = Vec::new();
    let mut c = extent / 2;
    while thresholds.len() < steps && extent - c >= 2 {
        thresholds.push(c);
        c += (extent - c) / 2;
    }
    thresholds
}

/// A fully generated population: the shared query palette plus every tenant's script.
#[derive(Debug, Clone, PartialEq)]
pub struct Population {
    /// The configuration this population was generated from.
    pub config: PopulationConfig,
    /// The query palette: `palette` ranked queries first, then the probe ladder.
    pub queries: Vec<QueryDef>,
    /// Index of the first probe-ladder query inside [`Population::queries`].
    pub probe_base: usize,
    /// The tenants, in connection order.
    pub tenants: Vec<Tenant>,
}

impl Population {
    /// Generates the population — a pure function of `config`.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configs (no tenants, empty palette, zero-length bursts, an extent
    /// too small to carry the query palette).
    pub fn generate(config: &PopulationConfig) -> Population {
        assert!(config.tenants > 0, "population needs at least one tenant");
        assert!(config.palette > 0, "population needs a non-empty ranked palette");
        assert!(config.min_bursts >= 1 && config.min_bursts <= config.max_bursts);
        assert!(config.min_burst_len >= 1 && config.min_burst_len <= config.max_burst_len);
        assert!(config.waves >= 1, "population needs at least one wave");
        let extent = config.layout.extent();
        assert!(extent >= 64, "population layouts need extent >= 64");

        let layout = config.layout.layout();
        let mut queries = ranked_queries(config, &layout);
        let probe_base = queries.len();
        let ladder = probe_thresholds(extent, config.probe_steps);
        for &c in &ladder {
            let pred = IntExpr::var(0).le(c);
            queries.push(
                QueryDef::new(format!("pop_probe_{c}"), layout.clone(), pred)
                    .expect("probe predicate fits the layout"),
            );
        }

        let popularity = QueryPopularity::new(config.skew, config.palette);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let adversary_lo = ladder.last().map(|c| c + 1).unwrap_or(extent);
        let tenants = (0..config.tenants)
            .map(|index| {
                generate_tenant(
                    index,
                    config,
                    &popularity,
                    probe_base,
                    ladder.len(),
                    adversary_lo,
                    &mut rng,
                )
            })
            .collect();
        Population { config: config.clone(), queries, probe_base, tenants }
    }

    /// The concrete secret layout.
    pub fn layout(&self) -> SecretLayout {
        self.config.layout.layout()
    }

    /// A deterministic full rendering of the population — two populations are byte-identical
    /// iff their fingerprints are equal (the property the proptest suite checks).
    pub fn fingerprint(&self) -> String {
        format!("{:?}", self)
    }

    /// Total protocol requests the population will issue (opens + actions + clean closes).
    pub fn total_requests(&self) -> usize {
        self.tenants
            .iter()
            .map(|t| {
                let actions: usize = t.bursts.iter().map(Vec::len).sum();
                1 + actions + usize::from(t.exit == Exit::Clean)
            })
            .sum()
    }

    /// How many distinct palette queries some tenant actually uses.
    pub fn distinct_queries_used(&self) -> usize {
        let mut used = vec![false; self.queries.len()];
        for tenant in &self.tenants {
            for burst in &tenant.bursts {
                for action in burst {
                    if let TenantAction::Register { query }
                    | TenantAction::Downgrade { query, .. } = action
                    {
                        used[*query] = true;
                    }
                }
            }
        }
        used.into_iter().filter(|&u| u).count()
    }

    /// Number of tenants per [`Exit`] shape `(clean, abandon, linger)`.
    pub fn exit_profile(&self) -> (usize, usize, usize) {
        let mut profile = (0, 0, 0);
        for tenant in &self.tenants {
            match tenant.exit {
                Exit::Clean => profile.0 += 1,
                Exit::Abandon => profile.1 += 1,
                Exit::Linger => profile.2 += 1,
            }
        }
        profile
    }

    /// Number of adversarial tenants.
    pub fn adversaries(&self) -> usize {
        self.tenants.iter().filter(|t| t.adversarial).count()
    }
}

/// The ranked (popularity-weighted) palette queries for `config`'s layout.
fn ranked_queries(config: &PopulationConfig, layout: &SecretLayout) -> Vec<QueryDef> {
    let extent = config.layout.extent();
    (0..config.palette)
        .map(|rank| {
            let r = rank as i64;
            match config.layout {
                PopulationLayout::Grid { .. } => {
                    // Manhattan balls enumerated in mixed radix over (x origin, y origin,
                    // radius), so every rank below `span² × radii` is a *distinct predicate* —
                    // the synthesis cache keys on the canonical predicate, and a palette with
                    // colliding ranks would silently collapse the cold-cache miss count the
                    // macro-benchmark measures.
                    let margin = extent / 8;
                    let span = (extent - 2 * margin).max(1);
                    let radii = (extent / 8).max(1);
                    let ox = margin + r % span;
                    let oy = margin + (r / span) % span;
                    let radius = extent / 8 + (r / (span * span)) % radii;
                    let pred =
                        ((IntExpr::var(0) - ox).abs() + (IntExpr::var(1) - oy).abs()).le(radius);
                    QueryDef::new(format!("pop_near_{rank}"), layout.clone(), pred)
                        .expect("grid palette predicate fits the layout")
                }
                PopulationLayout::Strip { .. } => {
                    // Bands |x - c| <= w, mixed radix over (center, width): distinct
                    // predicates for every rank below `span × widths`.
                    let margin = extent / 8;
                    let span = (extent - 2 * margin).max(1);
                    let widths = (extent / 16).max(1);
                    let c = margin + r % span;
                    let w = extent / 16 + (r / span) % widths;
                    let pred = (IntExpr::var(0) - c).abs().le(w);
                    QueryDef::new(format!("pop_band_{rank}"), layout.clone(), pred)
                        .expect("strip palette predicate fits the layout")
                }
            }
        })
        .collect()
}

#[allow(clippy::too_many_arguments)] // internal helper: one call site, all state threaded
fn generate_tenant(
    index: usize,
    config: &PopulationConfig,
    popularity: &QueryPopularity,
    probe_base: usize,
    ladder_len: usize,
    adversary_lo: i64,
    rng: &mut StdRng,
) -> Tenant {
    let extent = config.layout.extent();
    let adversarial = rng.gen_range(0u32..1000) < config.adversary_permille && ladder_len > 0;

    let secret = if adversarial {
        // Above every ladder threshold, so the walk answers `false` all the way up and the
        // committed posterior narrows geometrically until the policy refuses.
        let x = rng.gen_range(adversary_lo..=extent);
        match config.layout {
            PopulationLayout::Grid { .. } => Point::new(vec![x, rng.gen_range(0..=extent)]),
            PopulationLayout::Strip { .. } => Point::new(vec![x]),
        }
    } else {
        match config.layout {
            PopulationLayout::Grid { .. } => {
                Point::new(vec![rng.gen_range(0..=extent), rng.gen_range(0..=extent)])
            }
            PopulationLayout::Strip { .. } => Point::new(vec![rng.gen_range(0..=extent)]),
        }
    };

    let policy = if adversarial {
        PolicySpec::MinSize(config.adversary_min_size)
    } else {
        config.policy_mix.sample(rng)
    };

    let exit_roll = rng.gen_range(0u32..1000);
    let exit = if exit_roll < config.linger_permille {
        Exit::Linger
    } else if exit_roll < config.linger_permille + config.abandon_permille {
        Exit::Abandon
    } else {
        Exit::Clean
    };

    let wave = rng.gen_range(0..config.waves);

    let bursts = if adversarial {
        adversarial_bursts(probe_base, ladder_len, &secret)
    } else {
        honest_bursts(config, popularity, &secret, rng)
    };

    Tenant { index, policy, secret, adversarial, exit, wave, bursts }
}

/// The probe-until-refused script: register-then-probe each ladder rung in ascending order,
/// hammer the final rung twice more (the denial must be stable), then checkpoint knowledge.
fn adversarial_bursts(
    probe_base: usize,
    ladder_len: usize,
    secret: &Point,
) -> Vec<Vec<TenantAction>> {
    let mut flat = Vec::with_capacity(2 * ladder_len + 3);
    for rung in 0..ladder_len {
        let query = probe_base + rung;
        flat.push(TenantAction::Register { query });
        flat.push(TenantAction::Downgrade { query, secret: secret.clone() });
    }
    let last = probe_base + ladder_len - 1;
    flat.push(TenantAction::Downgrade { query: last, secret: secret.clone() });
    flat.push(TenantAction::Downgrade { query: last, secret: secret.clone() });
    flat.push(TenantAction::Knowledge { secret: secret.clone() });
    flat.chunks(5).map(<[TenantAction]>::to_vec).collect()
}

fn honest_bursts(
    config: &PopulationConfig,
    popularity: &QueryPopularity,
    secret: &Point,
    rng: &mut StdRng,
) -> Vec<Vec<TenantAction>> {
    let n_bursts = rng.gen_range(config.min_bursts..=config.max_bursts);
    let mut seen = vec![false; config.palette];
    let mut bursts: Vec<Vec<TenantAction>> = (0..n_bursts)
        .map(|_| {
            let len = rng.gen_range(config.min_burst_len..=config.max_burst_len);
            let mut actions = Vec::with_capacity(2 * len);
            for _ in 0..len {
                let query = popularity.sample(rng);
                if !seen[query] {
                    seen[query] = true;
                    actions.push(TenantAction::Register { query });
                }
                actions.push(TenantAction::Downgrade { query, secret: secret.clone() });
            }
            actions
        })
        .collect();
    if rng.gen_range(0u32..1000) < config.knowledge_permille {
        bursts
            .last_mut()
            .expect("min_bursts >= 1")
            .push(TenantAction::Knowledge { secret: secret.clone() });
    }
    bursts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_generates_identical_populations() {
        let config = PopulationConfig::small(7);
        let a = Population::generate(&config);
        let b = Population::generate(&config);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn different_seeds_generate_different_populations() {
        let a = Population::generate(&PopulationConfig::small(1));
        let b = Population::generate(&PopulationConfig::small(2));
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn zipf_weights_are_monotone_and_uniform_is_flat() {
        let zipf = QueryPopularity::new(Skew::Zipf, 16);
        assert!(zipf.weights().windows(2).all(|w| w[0] >= w[1]));
        let uniform = QueryPopularity::new(Skew::Uniform, 16);
        assert!(uniform.weights().iter().all(|&w| w == uniform.weights()[0]));
    }

    #[test]
    fn probe_ladder_is_strictly_increasing_and_bounded() {
        let ladder = probe_thresholds(400, 7);
        assert_eq!(ladder, vec![200, 300, 350, 375, 387, 393, 396]);
        assert!(ladder.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn registers_precede_first_use_per_tenant() {
        let config = PopulationConfig::small(11).with_adversaries(300, 2_000);
        let population = Population::generate(&config);
        for tenant in &population.tenants {
            let mut registered = vec![false; population.queries.len()];
            for action in tenant.bursts.iter().flatten() {
                match action {
                    TenantAction::Register { query } => registered[*query] = true,
                    TenantAction::Downgrade { query, .. } => {
                        assert!(registered[*query], "downgrade before register");
                    }
                    TenantAction::Knowledge { .. } => {}
                }
            }
        }
    }

    #[test]
    fn palette_predicates_are_pairwise_distinct() {
        // The macro-benchmark's cold-cache miss count is per distinct *predicate*: colliding
        // ranks would silently collapse it, so large palettes must stay injective.
        for layout in [PopulationLayout::Grid { side: 400 }, PopulationLayout::Strip { len: 1_000 }]
        {
            let config = PopulationConfig::small(1).with_layout(layout).with_palette(1_024);
            let population = Population::generate(&config);
            let distinct: std::collections::BTreeSet<String> =
                population.queries.iter().map(|q| format!("{:?}", q.pred())).collect();
            assert_eq!(distinct.len(), population.queries.len(), "{layout:?}");
        }
    }

    #[test]
    fn every_secret_is_inside_the_layout() {
        for seed in 0..4 {
            let config = PopulationConfig::small(seed)
                .with_layout(PopulationLayout::Strip { len: 1_000 })
                .with_policy_mix(PolicyMix::strip_default())
                .with_adversaries(200, 20);
            let population = Population::generate(&config);
            let layout = population.layout();
            for tenant in &population.tenants {
                assert!(layout.admits(&tenant.secret));
            }
        }
    }
}
