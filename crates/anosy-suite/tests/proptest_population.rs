//! Properties of the population generator: the contracts every consumer (the tier-1
//! simulation tests, the paper-scale sweep, the macro-benchmark) leans on.
//!
//! * **Determinism** — the same [`PopulationConfig`] generates a byte-identical population;
//!   replay and the BENCH rows are meaningless without it.
//! * **Skew shape** — popularity weights are monotone non-increasing in rank, for every skew,
//!   so "rank 0 is the hot query" holds by construction and the synth-cache hit-rate signal
//!   measures what it claims to.
//! * **Policy wire-safety** — every generated tenant policy survives the wire:
//!   `PolicySpec::parse` inverts `Display`, so the compiled `open` lines mean what the
//!   generator drew.

use anosy_core::PolicySpec;
use anosy_suite::population::{Population, PopulationConfig, PopulationLayout, Skew};
use proptest::prelude::*;

fn arb_skew() -> impl Strategy<Value = Skew> {
    prop_oneof![Just(Skew::Uniform), Just(Skew::Zipf), Just(Skew::Sharp)]
}

fn arb_layout() -> impl Strategy<Value = PopulationLayout> {
    prop_oneof![
        (64i64..=512).prop_map(|side| PopulationLayout::Grid { side }),
        (64i64..=4096).prop_map(|len| PopulationLayout::Strip { len }),
    ]
}

fn arb_config() -> impl Strategy<Value = PopulationConfig> {
    (0u64..1 << 48, 1usize..40, 1usize..12, arb_skew(), arb_layout(), 0u32..400).prop_map(
        |(seed, tenants, palette, skew, layout, adversary_permille)| {
            PopulationConfig::small(seed)
                .with_tenants(tenants)
                .with_palette(palette)
                .with_skew(skew)
                .with_layout(layout)
                .with_adversaries(adversary_permille, 2_000)
        },
    )
}

proptest! {
    /// Same config ⇒ byte-identical population, independently of when or where it is built.
    #[test]
    fn the_same_seed_generates_a_byte_identical_population(config in arb_config()) {
        let first = Population::generate(&config);
        let second = Population::generate(&config);
        prop_assert_eq!(first.fingerprint(), second.fingerprint());
    }

    /// Popularity never increases with rank, whatever the skew — the head stays the head.
    #[test]
    fn popularity_weights_are_monotone_non_increasing(
        skew in arb_skew(),
        ranks in 1usize..64,
    ) {
        let popularity = anosy_suite::population::QueryPopularity::new(skew, ranks);
        let weights = popularity.weights();
        prop_assert_eq!(weights.len(), ranks);
        for pair in weights.windows(2) {
            prop_assert!(pair[0] >= pair[1], "rank weights must not increase: {:?}", weights);
        }
        prop_assert!(*weights.last().unwrap() > 0, "every rank keeps positive mass");
    }

    /// Every policy the generator hands a tenant survives the wire round-trip.
    #[test]
    fn generated_policies_round_trip_through_their_text_form(config in arb_config()) {
        let population = Population::generate(&config);
        for tenant in &population.tenants {
            let text = tenant.policy.to_string();
            let reparsed = PolicySpec::parse(&text);
            prop_assert_eq!(
                reparsed.as_ref(),
                Some(&tenant.policy),
                "policy `{}` did not round-trip",
                text
            );
        }
    }

    /// Secrets stay inside the layout and adversarial secrets sit above the whole probe
    /// ladder — the precondition for the deny-at-the-floor guarantee the chaos tests assert.
    #[test]
    fn adversarial_secrets_clear_every_probe_threshold(config in arb_config()) {
        let population = Population::generate(&config);
        let extent = config.layout.extent();
        let ladder = anosy_suite::population::probe_thresholds(
            config.layout.extent(),
            config.probe_steps,
        );
        for tenant in population.tenants.iter().filter(|t| t.adversarial) {
            let x = tenant.secret.get(0).expect("population secrets have an x field");
            prop_assert!((0..=extent).contains(&x));
            for &threshold in &ladder {
                prop_assert!(x > threshold, "adversary at x={x} below rung {threshold}");
            }
        }
    }
}
