//! Property: the serving frontend is indistinguishable from a sequential interpreter.
//!
//! Arbitrary request scripts — any interleaving of `OpenSession` / `RegisterQuery` /
//! `Downgrade` / `DowngradeBatch` / `Knowledge` / `CloseSession` across several logical
//! connections, chopped into arbitrary ticks, with duplicate secrets inside one tick — must
//! yield responses element-wise identical to replaying the same requests one at a time against
//! plain owned [`AnosySession`]s. This is the protocol-level determinism guarantee on top of
//! `proptest_batch.rs`'s driver-level one: per-tick batching and per-session regrouping never
//! change what any connection observes.

use anosy_core::{AnosySession, PolicySpec, QInfo, SharedCacheEntry};
use anosy_domains::IntervalDomain;
use anosy_ifc::Protected;
use anosy_logic::{IntExpr, Point, SecretLayout};
use anosy_serve::{
    ConnId, Denial, DenialCode, Deployment, Frontend, ServeConfig, ServeRequest, ServeResponse,
    SessionId,
};
use anosy_synth::{ApproxKind, DomainCodec, IndSets, QueryDef};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::OnceLock;

fn layout() -> SecretLayout {
    SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build()
}

const ORIGINS: [(i64, i64); 3] = [(200, 200), (300, 200), (150, 260)];

fn query(index: usize) -> QueryDef {
    let (xo, yo) = ORIGINS[index];
    let pred = ((IntExpr::var(0) - xo).abs() + (IntExpr::var(1) - yo).abs()).le(100);
    QueryDef::new(format!("nearby_{xo}_{yo}"), layout(), pred).unwrap()
}

/// The query palette, synthesized once per process and shared as warm-start entries: every
/// proptest case warms its deployment from these, so case count does not multiply solver work
/// (and frontend and oracle provably run on identical approximations).
fn entries() -> &'static Vec<SharedCacheEntry<IntervalDomain>> {
    static ENTRIES: OnceLock<Vec<SharedCacheEntry<IntervalDomain>>> = OnceLock::new();
    ENTRIES.get_or_init(|| {
        let deployment: Deployment<IntervalDomain> =
            Deployment::new(layout(), ServeConfig::for_tests());
        for index in 0..ORIGINS.len() {
            deployment.register_query(&query(index), ApproxKind::Under, None).unwrap();
        }
        deployment.shared().export_entries()
    })
}

fn indsets_of(q: &QueryDef) -> IndSets<IntervalDomain> {
    entries().iter().find(|e| &e.pred == q.pred()).expect("palette entry exists").indsets.clone()
}

fn policy(index: usize) -> PolicySpec {
    [PolicySpec::MinSize(100), PolicySpec::MinSize(30_000), PolicySpec::AllowAll][index % 3].clone()
}

/// One scripted request, with its logical connection and tick boundary marker.
#[derive(Debug, Clone)]
enum Op {
    Open { conn: u64, policy: usize },
    Register { conn: u64, query: usize },
    Downgrade { conn: u64, session: u64, secret: Point, query: usize },
    Batch { conn: u64, session: u64, secrets: Vec<Point>, query: usize },
    Knowledge { conn: u64, session: u64, secret: Point },
    Close { conn: u64, session: u64 },
    Tick,
}

/// Secrets from a small palette (duplicates likely) that straddles the layout boundary.
fn arb_secret() -> impl Strategy<Value = Point> {
    (0i64..=10, 0i64..=10).prop_map(|(a, b)| Point::new(vec![a * 45 - 20, b * 44]))
}

fn arb_op() -> impl Strategy<Value = Op> {
    let conn = 0u64..3;
    // Session references run slightly past the number of opens a script can reach, so unknown
    // and closed sessions occur.
    let session = 1u64..6;
    prop_oneof![
        1 => (conn.clone(), 0usize..3).prop_map(|(conn, policy)| Op::Open { conn, policy }),
        1 => (conn.clone(), 0usize..3).prop_map(|(conn, query)| Op::Register { conn, query }),
        5 => (conn.clone(), session.clone(), arb_secret(), 0usize..3)
            .prop_map(|(conn, session, secret, query)| Op::Downgrade {
                conn,
                session,
                secret,
                query
            }),
        1 => (conn.clone(), session.clone(), proptest::collection::vec(arb_secret(), 0..6), 0usize..3)
            .prop_map(|(conn, session, secrets, query)| Op::Batch {
                conn,
                session,
                secrets,
                query
            }),
        1 => (conn.clone(), session.clone(), arb_secret())
            .prop_map(|(conn, session, secret)| Op::Knowledge { conn, session, secret }),
        1 => (conn.clone(), session).prop_map(|(conn, session)| Op::Close { conn, session }),
        2 => Just(Op::Tick),
    ]
}

fn to_request(op: &Op) -> Option<(ConnId, ServeRequest)> {
    Some(match op {
        Op::Open { conn, policy: p } => {
            (ConnId(*conn), ServeRequest::OpenSession { policy: policy(*p) })
        }
        Op::Register { conn, query: q } => (
            ConnId(*conn),
            ServeRequest::RegisterQuery {
                query: query(*q),
                kind: ApproxKind::Under,
                members: None,
            },
        ),
        Op::Downgrade { conn, session, secret, query: q } => (
            ConnId(*conn),
            ServeRequest::Downgrade {
                session: SessionId(*session),
                secret: secret.clone(),
                query: query(*q).name().to_string(),
            },
        ),
        Op::Batch { conn, session, secrets, query: q } => (
            ConnId(*conn),
            ServeRequest::DowngradeBatch {
                session: SessionId(*session),
                secrets: secrets.clone(),
                query: query(*q).name().to_string(),
            },
        ),
        Op::Knowledge { conn, session, secret } => (
            ConnId(*conn),
            ServeRequest::Knowledge { session: SessionId(*session), secret: secret.clone() },
        ),
        Op::Close { conn, session } => {
            (ConnId(*conn), ServeRequest::CloseSession { session: SessionId(*session) })
        }
        Op::Tick => return None,
    })
}

/// The specification: one request at a time against plain owned sessions — `downgrade` per
/// downgrade request, a sequential loop per batch request.
struct Oracle {
    sessions: BTreeMap<u64, AnosySession<IntervalDomain>>,
    registry: Vec<(QueryDef, IndSets<IntervalDomain>)>,
    next_session: u64,
}

impl Oracle {
    fn new() -> Oracle {
        Oracle { sessions: BTreeMap::new(), registry: Vec::new(), next_session: 0 }
    }

    fn apply(&mut self, request: &ServeRequest) -> ServeResponse {
        match request {
            ServeRequest::OpenSession { policy } => {
                self.next_session += 1;
                let mut session = AnosySession::new(layout(), policy.clone());
                for (query, indsets) in &self.registry {
                    session.register(QInfo::new(query.clone(), indsets.clone()));
                }
                self.sessions.insert(self.next_session, session);
                ServeResponse::SessionOpened { session: SessionId(self.next_session) }
            }
            ServeRequest::RegisterQuery { query, .. } => {
                let indsets = indsets_of(query);
                for session in self.sessions.values_mut() {
                    session.register(QInfo::new(query.clone(), indsets.clone()));
                }
                self.registry.push((query.clone(), indsets));
                ServeResponse::QueryRegistered { name: query.name().to_string() }
            }
            ServeRequest::Downgrade { session, secret, query } => {
                let Some(open) = self.sessions.get_mut(&session.0) else {
                    return ServeResponse::Answer(Err(Denial::unknown_session(*session)));
                };
                ServeResponse::Answer(
                    open.downgrade(&Protected::new(secret.clone()), query).map_err(Denial::from),
                )
            }
            ServeRequest::DowngradeBatch { session, secrets, query } => {
                let Some(open) = self.sessions.get_mut(&session.0) else {
                    return ServeResponse::Rejected(Denial::unknown_session(*session));
                };
                ServeResponse::Answers(
                    secrets
                        .iter()
                        .map(|s| {
                            open.downgrade(&Protected::new(s.clone()), query)
                                .map_err(|e| DenialCode::of(&e))
                        })
                        .collect(),
                )
            }
            ServeRequest::Knowledge { session, secret } => {
                let Some(open) = self.sessions.get(&session.0) else {
                    return ServeResponse::Rejected(Denial::unknown_session(*session));
                };
                let knowledge = open.knowledge_of(secret);
                ServeResponse::Knowledge {
                    size: knowledge.size(),
                    encoded: knowledge.domain().encode(),
                }
            }
            ServeRequest::CloseSession { session } => match self.sessions.remove(&session.0) {
                Some(_) => ServeResponse::SessionClosed { session: *session },
                None => ServeResponse::Rejected(Denial::unknown_session(*session)),
            },
            other => panic!("oracle does not model {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn any_interleaving_matches_the_sequential_replay(
        script in proptest::collection::vec(arb_op(), 0..40),
    ) {
        // Frontend under test: warm deployment, requests submitted across connections,
        // tick boundaries wherever the script put them.
        let deployment: Deployment<IntervalDomain> =
            Deployment::new(layout(), ServeConfig::for_tests());
        for entry in entries() {
            deployment.shared().insert_ready(entry.clone());
        }
        let mut frontend = Frontend::new(deployment);
        let mut frontend_responses: Vec<ServeResponse> = Vec::new();

        // Oracle: the same requests, one at a time, in the same submission order.
        let mut oracle = Oracle::new();
        let mut oracle_responses: Vec<ServeResponse> = Vec::new();

        for op in &script {
            match to_request(op) {
                Some((conn, request)) => {
                    oracle_responses.push(oracle.apply(&request));
                    frontend.submit(conn, request);
                }
                None => {
                    frontend_responses.extend(frontend.tick().into_iter().map(|t| t.response));
                }
            }
        }
        frontend_responses.extend(frontend.tick().into_iter().map(|t| t.response));

        prop_assert_eq!(frontend_responses.len(), oracle_responses.len());
        for (index, (got, want)) in
            frontend_responses.iter().zip(&oracle_responses).enumerate()
        {
            prop_assert_eq!(got, want, "response {} diverges for {:?}", index, script.get(index));
        }
    }
}
