//! Property: the serving frontend is indistinguishable from a sequential interpreter.
//!
//! Arbitrary request scripts — any interleaving of `OpenSession` / `RegisterQuery` /
//! `Downgrade` / `DowngradeBatch` / `Knowledge` / `CloseSession` across several logical
//! connections, chopped into arbitrary ticks, with duplicate secrets inside one tick, plus
//! transport-level disconnects tearing sessions down mid-script — must yield responses
//! element-wise identical to replaying the same requests one at a time against plain owned
//! [`anosy_core::AnosySession`]s (the shared oracle in `tests/support/oracle.rs`). This is the
//! protocol-level determinism guarantee on top of `proptest_batch.rs`'s driver-level one:
//! per-tick batching, per-session regrouping and queued teardown never change what any
//! connection observes.

#[path = "support/oracle.rs"]
mod support;

use anosy_domains::IntervalDomain;
use anosy_logic::Point;
use anosy_serve::{ConnId, Deployment, Frontend, ServeRequest, SessionId};
use anosy_synth::ApproxKind;
use proptest::prelude::*;
use support::Oracle;

/// One scripted request, with its logical connection and tick boundary marker.
#[derive(Debug, Clone)]
enum Op {
    Open { conn: u64, policy: usize },
    Register { conn: u64, query: usize },
    Downgrade { conn: u64, session: u64, secret: Point, query: usize },
    Batch { conn: u64, session: u64, secrets: Vec<Point>, query: usize },
    Knowledge { conn: u64, session: u64, secret: Point },
    Close { conn: u64, session: u64 },
    Disconnect { conn: u64 },
    Tick,
}

fn arb_secret() -> impl Strategy<Value = Point> {
    (0i64..=10, 0i64..=10).prop_map(|(a, b)| support::secret_grid(a, b))
}

fn arb_op() -> impl Strategy<Value = Op> {
    let conn = 0u64..3;
    // Session references run slightly past the number of opens a script can reach, so unknown
    // and closed sessions occur.
    let session = 1u64..6;
    prop_oneof![
        1 => (conn.clone(), 0usize..3).prop_map(|(conn, policy)| Op::Open { conn, policy }),
        1 => (conn.clone(), 0usize..3).prop_map(|(conn, query)| Op::Register { conn, query }),
        5 => (conn.clone(), session.clone(), arb_secret(), 0usize..3)
            .prop_map(|(conn, session, secret, query)| Op::Downgrade {
                conn,
                session,
                secret,
                query
            }),
        1 => (conn.clone(), session.clone(), proptest::collection::vec(arb_secret(), 0..6), 0usize..3)
            .prop_map(|(conn, session, secrets, query)| Op::Batch {
                conn,
                session,
                secrets,
                query
            }),
        1 => (conn.clone(), session.clone(), arb_secret())
            .prop_map(|(conn, session, secret)| Op::Knowledge { conn, session, secret }),
        1 => (conn.clone(), session.clone()).prop_map(|(conn, session)| Op::Close { conn, session }),
        1 => conn.prop_map(|conn| Op::Disconnect { conn }),
        2 => Just(Op::Tick),
    ]
}

fn to_request(op: &Op) -> Option<(ConnId, ServeRequest)> {
    Some(match op {
        Op::Open { conn, policy: p } => {
            (ConnId(*conn), ServeRequest::OpenSession { policy: support::policy(*p) })
        }
        Op::Register { conn, query: q } => (
            ConnId(*conn),
            ServeRequest::RegisterQuery {
                query: support::query(*q),
                kind: ApproxKind::Under,
                members: None,
            },
        ),
        Op::Downgrade { conn, session, secret, query: q } => (
            ConnId(*conn),
            ServeRequest::Downgrade {
                session: SessionId(*session),
                secret: secret.clone(),
                query: support::query(*q).name().into(),
            },
        ),
        Op::Batch { conn, session, secrets, query: q } => (
            ConnId(*conn),
            ServeRequest::DowngradeBatch {
                session: SessionId(*session),
                secrets: secrets.clone(),
                query: support::query(*q).name().into(),
            },
        ),
        Op::Knowledge { conn, session, secret } => (
            ConnId(*conn),
            ServeRequest::Knowledge { session: SessionId(*session), secret: secret.clone() },
        ),
        Op::Close { conn, session } => {
            (ConnId(*conn), ServeRequest::CloseSession { session: SessionId(*session) })
        }
        Op::Disconnect { .. } | Op::Tick => return None,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn any_interleaving_matches_the_sequential_replay(
        script in proptest::collection::vec(arb_op(), 0..40),
    ) {
        // Frontend under test: warm deployment, requests submitted across connections,
        // tick boundaries and disconnects wherever the script put them.
        let deployment: Deployment<IntervalDomain> = support::warm_deployment();
        let mut frontend = Frontend::new(deployment);
        let mut frontend_responses = Vec::new();

        // Oracle: the same requests, one at a time, in the same submission order.
        let mut oracle = Oracle::new();
        let mut oracle_responses = Vec::new();

        for op in &script {
            match (op, to_request(op)) {
                (_, Some((conn, request))) => {
                    oracle_responses.push(oracle.apply(conn, &request));
                    frontend.submit(conn, request);
                }
                (Op::Disconnect { conn }, None) => {
                    oracle.disconnect(ConnId(*conn));
                    frontend.disconnect(ConnId(*conn));
                }
                (Op::Tick, None) => {
                    frontend_responses.extend(frontend.tick().into_iter().map(|t| t.response));
                }
                (other, None) => unreachable!("{other:?} must map to a request"),
            }
        }
        frontend_responses.extend(frontend.tick().into_iter().map(|t| t.response));

        prop_assert_eq!(frontend_responses.len(), oracle_responses.len());
        for (index, (got, want)) in
            frontend_responses.iter().zip(&oracle_responses).enumerate()
        {
            prop_assert_eq!(got, want, "response {} diverges for {:?}", index, script.get(index));
        }
        // Disconnect teardown leaks nothing: frontend and oracle agree on what is still open,
        // and the deployment's opened/closed ledger balances against it.
        prop_assert_eq!(frontend.open_sessions(), oracle.open_sessions());
        let cache = frontend.deployment().stats().cache;
        prop_assert_eq!(cache.sessions_opened - cache.sessions_closed,
            frontend.open_sessions() as u64);
    }
}
