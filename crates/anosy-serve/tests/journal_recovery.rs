//! Crash/warm-restart chaos: a journaled deployment is killed mid-storm (dropped without any
//! `SaveCache`), warm-restarted from snapshot + journal, and must then serve the *full* storm
//! element-wise identically to the uninterrupted sequential oracle — with **zero re-synthesis**
//! for every query journaled before the kill.
//!
//! Three lives per scenario:
//!
//! 1. **First life**: a cold deployment with `--journal` semantics
//!    ([`Deployment::open_journal`]) serves the storm's opening phase over a seeded [`SimNet`];
//!    every synthesis commit is appended as it lands. The process then "crashes" — everything
//!    is dropped, nothing is saved.
//! 2. **Second life**: a fresh deployment recovers from the same journal config (snapshot load
//!    plus journal replay, truncating a torn tail when one was cut in) and serves the full
//!    storm from the start. Responses must match the oracle, and the deployment's
//!    `synth_misses` must stay at zero for pre-kill queries.
//! 3. **Replay**: the second life re-runs byte-identically from the same seed — recovery does
//!    not perturb determinism.
//!
//! The base seed is `ANOSY_SIM_SEED` (default 0); the CI `sim-stress` lane re-runs this suite
//! under several fixed seeds. The SIGKILL variant against the real `anosy-served` binary lives
//! in the CI workflow itself.

#[path = "support/oracle.rs"]
mod support;

use anosy_domains::IntervalDomain;
use anosy_serve::{
    Deployment, FlushPolicy, Frontend, JournalConfig, ServeConfig, Server, ServerConfig, SimNet,
    Token, TranscriptEvent,
};
use rand::Rng;
use std::path::PathBuf;

type SimServer = Server<IntervalDomain, SimNet>;

fn base_seed() -> u64 {
    std::env::var("ANOSY_SIM_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0)
}

fn register_line(index: usize) -> String {
    let q = support::query(index);
    format!("register name={} kind=under members=- pred={}\n", q.name(), q.pred())
}

fn downgrade_line(session: u64, query: usize, x: i64, y: i64) -> String {
    format!("downgrade session={session} query={} secret={x},{y}\n", support::query(query).name())
}

/// A scratch journal path unique to this test binary, test and seed (the CI seed matrix runs
/// the same tests against the same temp dir).
fn journal_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("anosy-serve-journal-recovery");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{name}-{}.journal", base_seed()));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(JournalConfig::new(&path).snapshot_path());
    path
}

/// The storm: two connections register the palette's first two queries (real synthesis — this
/// deployment is cold), open sessions and burst seeded downgrades. `phase2` extends the same
/// script past the kill point with more traffic over the *same* queries plus a knowledge
/// checkpoint; the restarted life serves the whole thing.
fn storm(sim: &mut SimNet, phase2: bool) -> Vec<Token> {
    let c0 = sim.connect(0);
    sim.send(c0, 0, format!("{}{}", register_line(0), register_line(1)));
    sim.send(c0, 1000, "open min-size:100\n"); // session 1
    let c1 = sim.connect(2000);
    sim.send(c1, 2000, "open allow-all\n"); // session 2
    for (client, session) in [(c0, 1u64), (c1, 2u64)] {
        let burst = sim.rng().gen_range(6usize..12);
        for j in 0..burst {
            let (a, b) = (sim.rng().gen_range(0i64..=10), sim.rng().gen_range(0i64..=10));
            let p = support::secret_grid(a, b);
            let line = downgrade_line(session, j % 2, p.as_slice()[0], p.as_slice()[1]);
            sim.send(client, 3000 + (j as u64) * 17, line);
        }
    }
    if phase2 {
        // Past the kill point: only pre-kill queries, so a lossless recovery synthesizes
        // nothing at all.
        sim.send(c0, 10_000, downgrade_line(1, 0, 300, 200));
        sim.send(c1, 10_500, downgrade_line(2, 1, 155, 132));
        sim.send(c1, 11_000, "knowledge session=2 secret=155,132\n");
    }
    sim.half_close(c1, 20_000);
    sim.half_close(c0, 21_000);
    vec![c0, c1]
}

/// Runs `build` over a seeded [`SimNet`] against `deployment`, to completion.
fn run_on(
    deployment: Deployment<IntervalDomain>,
    seed: u64,
    build: impl Fn(&mut SimNet) -> Vec<Token>,
) -> (SimServer, Vec<Token>) {
    let mut sim = SimNet::new(seed);
    let clients = build(&mut sim);
    let config = ServerConfig::new().recording();
    let mut server = Server::new(Frontend::new(deployment), sim, config);
    server.run();
    (server, clients)
}

/// Element-wise oracle equality plus the no-leak ledger checks, exactly as in `sim_chaos.rs` —
/// the uninterrupted sequential oracle runs on the process-wide palette, synthesized
/// independently of either life of the system under test.
fn assert_matches_oracle(server: &SimServer) {
    let mut oracle = support::Oracle::new();
    let mut expected = Vec::new();
    for event in server.transcript() {
        match event {
            TranscriptEvent::Request { id, request, .. } => {
                let want = (!matches!(request, anosy_serve::ServeRequest::Stats))
                    .then(|| oracle.apply(id.conn, request));
                expected.push((*id, want));
            }
            TranscriptEvent::Disconnect { conn, .. } => oracle.disconnect(*conn),
        }
    }
    assert_eq!(server.responses().len(), expected.len(), "one response per request");
    for (index, (got, (id, want))) in server.responses().iter().zip(&expected).enumerate() {
        assert_eq!(&got.request, id, "response {index} answers the wrong request");
        if let Some(want) = want {
            assert_eq!(&got.response, want, "response {index} diverges from the sequential oracle");
        }
    }
    assert_eq!(server.frontend().open_sessions(), oracle.open_sessions(), "session leak");
}

/// A cold deployment with the journal opened (the `--journal` start-up path).
fn journaled_deployment(config: &ServeConfig) -> Deployment<IntervalDomain> {
    let deployment: Deployment<IntervalDomain> = Deployment::new(support::layout(), config.clone());
    deployment.open_journal(false).unwrap().expect("config carries a journal");
    deployment
}

#[test]
fn killed_mid_storm_warm_restarts_without_resynthesis() {
    let seed = base_seed();
    let config = ServeConfig::for_tests()
        .with_journal(JournalConfig::new(journal_path("kill")).with_flush(FlushPolicy::EveryEntry));

    // First life: serve the opening phase cold, journaling both syntheses — then crash.
    let first = journaled_deployment(&config);
    let (server, _) = run_on(first.share(), seed, |sim| storm(sim, false));
    assert_matches_oracle(&server);
    assert_eq!(first.stats().cache.synth_misses, 2, "the first life synthesized the storm");
    assert_eq!(first.journal_stats().appended, 2, "both commits were journaled as they landed");
    drop(server);
    drop(first); // the kill: no SaveCache, no save-on-exit

    // Second life: snapshotless recovery — the journal alone restores the cache.
    let second = journaled_deployment(&config);
    assert_eq!(second.journal_stats().replayed, 2);
    assert_eq!(second.journal_stats().torn, 0);
    let (server, _) = run_on(second.share(), seed, |sim| storm(sim, true));
    assert_matches_oracle(&server);
    assert_eq!(
        second.stats().cache.synth_misses,
        0,
        "every pre-kill query must be served from the recovered cache"
    );
    assert!(second.stats().cache.synth_hits >= 2, "the full storm re-registers both queries");

    // Third check: recovery does not perturb determinism — the restarted life replays
    // byte-identically from the same seed.
    let again = journaled_deployment(&config);
    let (replay, clients) = run_on(again.share(), seed, |sim| storm(sim, true));
    for client in clients {
        assert_eq!(
            server.transport().received(client),
            replay.transport().received(client),
            "recovered serving diverged across replays of seed {seed}"
        );
    }
    assert_eq!(server.responses(), replay.responses());
}

#[test]
fn a_torn_tail_loses_exactly_the_cut_record() {
    let seed = base_seed().wrapping_add(1);
    let path = journal_path("torn");
    let config = ServeConfig::for_tests()
        .with_journal(JournalConfig::new(&path).with_flush(FlushPolicy::EveryEntry));

    let first = journaled_deployment(&config);
    let (server, _) = run_on(first.share(), seed, |sim| storm(sim, false));
    assert_matches_oracle(&server);
    assert_eq!(first.journal_stats().appended, 2);
    drop(server);
    drop(first);

    // The kill landed mid-append: cut the file inside the final record.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 9]).unwrap();

    // Recovery truncates to the last good record and counts the tear; serving still matches
    // the oracle, and exactly the cut query re-synthesizes.
    let second = journaled_deployment(&config);
    assert_eq!(second.journal_stats().replayed, 1, "the torn final record is dropped");
    assert_eq!(second.journal_stats().torn, 1);
    let (server, _) = run_on(second.share(), seed, |sim| storm(sim, true));
    assert_matches_oracle(&server);
    assert_eq!(second.stats().cache.synth_misses, 1, "only the torn-away query re-synthesizes");
}

#[test]
fn live_compaction_mid_storm_keeps_recovery_lossless() {
    let seed = base_seed().wrapping_add(2);
    let config = ServeConfig::for_tests().with_journal(
        JournalConfig::new(journal_path("compact"))
            .with_flush(FlushPolicy::OnTick)
            .with_compact_every(4),
    );

    // First life: the on-tick flush and the 4-tick compaction cadence both ride the reactor's
    // tick path, so snapshots are cut *while the storm is in flight*.
    let first = journaled_deployment(&config);
    let (server, _) = run_on(first.share(), seed, |sim| storm(sim, false));
    assert_matches_oracle(&server);
    let stats = first.journal_stats();
    assert_eq!(stats.appended, 2);
    assert!(stats.compacted > 0, "the storm outlives at least one compaction: {stats:?}");
    assert!(
        config.journal.as_ref().unwrap().snapshot_path().exists(),
        "compaction produced a live snapshot"
    );
    drop(server);
    drop(first);

    // Second life: recovery is snapshot + journal — however the compaction cadence split the
    // two, together they restore everything.
    let second = journaled_deployment(&config);
    assert_eq!(second.stats().entries, 2, "snapshot + replay restore the full cache");
    let (server, _) = run_on(second.share(), seed, |sim| storm(sim, true));
    assert_matches_oracle(&server);
    assert_eq!(second.stats().cache.synth_misses, 0);
}
