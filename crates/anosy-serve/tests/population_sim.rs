//! Tier-1 population-simulator suite: small seeded multi-tenant populations, compiled onto
//! `SimNet` and driven through the full event-loop server, one scenario per workload axis
//! (popularity skew, heterogeeous layouts, policy mixes, adversaries, churn).
//!
//! Every scenario asserts the macro-run discipline:
//!
//! 1. **Byte-identical replay** from the `(population seed, net seed)` pair;
//! 2. **Oracle equality**: responses element-wise equal to the sequential-session oracle
//!    replaying the recorded transcript on the *same* synthesized approximations;
//! 3. **No leaks at drain**: `open_sessions` equals the population's lingering tenants and
//!    the deployment ledger balances (`opened - closed == open_sessions`);
//! 4. **Predicted session ids**: the compiler's globally ordered open slots mean tenant `i`
//!    is assigned exactly the session id predicted at compile time.
//!
//! An auditing connection issues a trailing `stats` request per run, round-tripping the
//! `tenants=`/`denied=` wire counters. The base seed honors `ANOSY_SIM_SEED` (the CI
//! `population-smoke` lane re-runs the suite under several fixed seeds).

#[path = "support/oracle.rs"]
mod support;

use anosy_domains::IntervalDomain;
use anosy_serve::popsim::{self, CompileOptions};
use anosy_serve::{
    wire, Frontend, ServeConfig, ServeResponse, Server, ServerConfig, SessionId, SimNet, Token,
};
use anosy_suite::population::{PolicyMix, Population, PopulationConfig, PopulationLayout, Skew};

type SimServer = Server<IntervalDomain, SimNet>;

fn base_seed() -> u64 {
    std::env::var("ANOSY_SIM_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0)
}

/// One full run: compile the population, append the auditing `stats` connection, replay
/// through the reactor on a palette-warmed deployment.
fn run_population(
    population: &Population,
    net_seed: u64,
    ticked: bool,
) -> (SimServer, Vec<Token>, Vec<SessionId>, Token) {
    let compiled = popsim::compile(population, &CompileOptions::new(net_seed));
    let popsim::CompiledPopulation { mut net, tokens, sessions, end_time, .. } = compiled;
    let auditor = net.connect(end_time + 2_000);
    net.send(auditor, end_time + 2_000, "stats\n");
    net.half_close(auditor, end_time + 4_000);
    let deployment = popsim::warm_deployment(population, &ServeConfig::for_tests());
    let mut server =
        Server::new(Frontend::new(deployment), net, ServerConfig::new().ticked(ticked).recording());
    server.run();
    (server, tokens, sessions, auditor)
}

/// Element-wise oracle equality over the recorded transcript, on the deployment's own
/// exported entries — the oracle provably replays the same approximations.
fn assert_matches_oracle(server: &SimServer, population: &Population) {
    let palette = server.frontend().deployment().shared().export_entries();
    let mut oracle = support::Oracle::with_palette(population.layout(), palette);
    let mut expected = Vec::new();
    for event in server.transcript() {
        match event {
            anosy_serve::TranscriptEvent::Request { id, request, .. } => {
                let want = (!matches!(request, anosy_serve::ServeRequest::Stats))
                    .then(|| oracle.apply(id.conn, request));
                expected.push((*id, want));
            }
            anosy_serve::TranscriptEvent::Disconnect { conn, .. } => oracle.disconnect(*conn),
        }
    }
    assert_eq!(server.responses().len(), expected.len(), "one response per request");
    for (index, (got, (id, want))) in server.responses().iter().zip(&expected).enumerate() {
        assert_eq!(&got.request, id, "response {index} answers the wrong request");
        if let Some(want) = want {
            assert_eq!(&got.response, want, "response {index} diverges from the oracle");
        }
    }
    assert_eq!(server.frontend().open_sessions(), oracle.open_sessions(), "session leak");
}

/// The drain-time audit: leak checks, the deployment ledger, predicted session ids, and the
/// auditing connection's `tenants=`/`denied=` stats line.
fn assert_population_invariants(
    server: &SimServer,
    population: &Population,
    tokens: &[Token],
    sessions: &[SessionId],
    auditor: Token,
) {
    assert_matches_oracle(server, population);

    // The compiler's session-id prediction: tenant i's open is answered with sessions[i].
    for (index, token) in tokens.iter().enumerate() {
        let text = server.transport().received_text(*token);
        let first = text.lines().next().expect("every open is answered");
        let want = format!("ok session {}", sessions[index].0);
        assert!(first.ends_with(&want), "tenant {index}: got {first:?}, want …{want:?}");
    }

    // Churn accounting: lingering tenants (and only they) hold sessions at drain; abandoned
    // tenants' sessions were torn down by the reactor; clean closers closed explicitly.
    let (_, abandoned, lingering) = population.exit_profile();
    assert_eq!(server.frontend().open_sessions(), lingering, "exactly the lingerers stay open");
    assert_eq!(server.frontend().stats().sessions_torn_down, abandoned as u64);
    let cache = server.frontend().deployment().stats().cache;
    assert_eq!(cache.sessions_opened, population.tenants.len() as u64);
    assert_eq!(
        cache.sessions_opened - cache.sessions_closed,
        server.frontend().open_sessions() as u64,
        "the deployment ledger does not balance"
    );

    // The auditing stats line round-trips the new counters: every tenant connection plus the
    // auditor itself, and the denial count as of the auditor's tick.
    let text = server.transport().received_text(auditor);
    let line = text.lines().last().expect("the stats request is answered");
    let payload = line.split_once(' ').expect("id-prefixed response").1;
    let response = wire::parse_response(payload).expect("stats line parses");
    let ServeResponse::Stats(snapshot) = response else {
        panic!("auditor got a non-stats response: {payload}");
    };
    assert_eq!(snapshot.tenants, population.tenants.len() as u64 + 1, "tenants= counter");
    assert_eq!(snapshot.denials, server.frontend().stats().denials, "denied= counter");
    assert_eq!(snapshot.open_sessions, lingering, "open= counter");
}

/// Two full runs from the same seeds must be indistinguishable.
fn assert_replays_byte_identically(population: &Population, net_seed: u64, ticked: bool) {
    let (first, tokens, _, first_auditor) = run_population(population, net_seed, ticked);
    let (second, tokens_again, _, second_auditor) = run_population(population, net_seed, ticked);
    assert_eq!(tokens, tokens_again, "token allocation diverged");
    for &token in tokens.iter().chain([&first_auditor]) {
        assert_eq!(
            first.transport().received(token),
            second.transport().received(token),
            "delivered bytes diverged across replays for {token:?}"
        );
    }
    assert_eq!(first_auditor, second_auditor);
    assert_eq!(first.responses(), second.responses(), "responses diverged");
    assert_eq!(first.transcript(), second.transcript(), "transcript diverged");
    assert_eq!(first.stats(), second.stats(), "server counters diverged");
    assert_eq!(first.frontend().stats(), second.frontend().stats());
}

// ---------------------------------------------------------------------------
// Scenario axes.
// ---------------------------------------------------------------------------

#[test]
fn uniform_grid_population_replays_and_matches_the_oracle() {
    let population = Population::generate(&PopulationConfig::small(base_seed().wrapping_add(100)));
    let net_seed = base_seed().wrapping_add(200);
    assert_replays_byte_identically(&population, net_seed, true);
    let (server, tokens, sessions, auditor) = run_population(&population, net_seed, true);
    assert_population_invariants(&server, &population, &tokens, &sessions, auditor);
    // Warm palette: the run itself never synthesizes.
    assert_eq!(server.frontend().deployment().stats().cache.synth_misses, 0);
}

#[test]
fn zipf_skew_with_adversaries_matches_the_oracle_and_hits_the_policy_floor() {
    let config = PopulationConfig::small(base_seed().wrapping_add(300))
        .with_tenants(30)
        .with_skew(Skew::Zipf)
        .with_adversaries(500, 2_000);
    let population = Population::generate(&config);
    assert!(population.adversaries() >= 1, "the adversarial axis is exercised");
    let net_seed = base_seed().wrapping_add(400);
    assert_replays_byte_identically(&population, net_seed, true);
    let (server, tokens, sessions, auditor) = run_population(&population, net_seed, true);
    assert_population_invariants(&server, &population, &tokens, &sessions, auditor);

    // Each adversary's geometric walk is refused at the last rung and on both repeats, and
    // its committed knowledge never crosses the policy floor: the final posterior is
    // 393 < x <= 400 with y free — 7 × 401 = 2807 > 2000. Asserted on the server-side
    // recorded responses (an abandoning adversary's last bytes never reach its dead socket);
    // `assert_population_invariants` already proved transcript/response alignment.
    let adversaries = population.adversaries() as u64;
    assert!(server.frontend().stats().denials >= 3 * adversaries, "3 refusals per adversary");
    let adversary_sessions: std::collections::BTreeSet<u64> =
        population.tenants.iter().filter(|t| t.adversarial).map(|t| sessions[t.index].0).collect();
    let requests = server.transcript().iter().filter_map(|e| match e {
        anosy_serve::TranscriptEvent::Request { request, .. } => Some(request),
        anosy_serve::TranscriptEvent::Disconnect { .. } => None,
    });
    let mut checkpoints = 0u64;
    for (request, tagged) in requests.zip(server.responses()) {
        match request {
            anosy_serve::ServeRequest::Knowledge { session, .. }
                if adversary_sessions.contains(&session.0) =>
            {
                let ServeResponse::Knowledge { size, .. } = &tagged.response else {
                    panic!("knowledge checkpoint got {:?}", tagged.response);
                };
                assert_eq!(*size, 2807, "an adversary's knowledge crossed the policy floor");
                checkpoints += 1;
            }
            anosy_serve::ServeRequest::Downgrade { session, .. }
                if adversary_sessions.contains(&session.0) =>
            {
                assert_ne!(
                    tagged.response,
                    ServeResponse::Answer(Ok(true)),
                    "the ladder never brackets the secret"
                );
            }
            _ => {}
        }
    }
    assert_eq!(checkpoints, adversaries, "every adversary's checkpoint was recorded");
}

#[test]
fn strip_layout_population_matches_the_oracle() {
    let config = PopulationConfig::small(base_seed().wrapping_add(500))
        .with_tenants(24)
        .with_layout(PopulationLayout::Strip { len: 1_000 })
        .with_policy_mix(PolicyMix::strip_default())
        .with_skew(Skew::Sharp)
        .with_adversaries(300, 20);
    let population = Population::generate(&config);
    let net_seed = base_seed().wrapping_add(600);
    assert_replays_byte_identically(&population, net_seed, false);
    let (server, tokens, sessions, auditor) = run_population(&population, net_seed, false);
    assert_population_invariants(&server, &population, &tokens, &sessions, auditor);
    if population.adversaries() > 0 {
        assert!(server.frontend().stats().denials >= population.adversaries() as u64);
    }
}

#[test]
fn heavy_churn_balances_the_ledger_with_lingering_sessions() {
    let config = PopulationConfig::small(base_seed().wrapping_add(700))
        .with_tenants(40)
        .with_churn(400, 250);
    let population = Population::generate(&config);
    let (_, abandoned, lingering) = population.exit_profile();
    assert!(abandoned > 0 && lingering > 0, "the churn axis is exercised: {abandoned}/{lingering}");
    let net_seed = base_seed().wrapping_add(800);
    assert_replays_byte_identically(&population, net_seed, false);
    let (server, tokens, sessions, auditor) = run_population(&population, net_seed, false);
    // `assert_population_invariants` holds `opened - closed == open_sessions` against a
    // *nonzero* lingering population here — the stats audit gap this suite closes.
    assert_population_invariants(&server, &population, &tokens, &sessions, auditor);
    assert!(server.frontend().open_sessions() > 0);
}

/// Oracle equality across a spread of derived seed pairs — the population seed and the
/// network seed vary independently.
#[test]
fn populations_match_the_oracle_across_a_seed_spread() {
    for offset in [0u64, 1, 2] {
        let config = PopulationConfig::small(base_seed().wrapping_add(900 + offset))
            .with_adversaries(300, 2_000);
        let population = Population::generate(&config);
        for net_offset in [0u64, 7] {
            let net_seed = base_seed().wrapping_add(1_000 + net_offset);
            let ticked = net_offset == 0;
            let (server, tokens, sessions, auditor) = run_population(&population, net_seed, ticked);
            assert_population_invariants(&server, &population, &tokens, &sessions, auditor);
        }
    }
}
