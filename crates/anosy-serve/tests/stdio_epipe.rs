//! Regression: a vanished stdout reader must not panic the stdio reactor.
//!
//! Before the fix, `StdioTransport::send` routed every response write through
//! `expect("stdout is writable")` — the first `EPIPE` after the read end of the pipe died
//! panicked the reactor thread and killed the whole process with exit code 101, taking every
//! session down with it. The transport contract says delivery failures surface as a later
//! [`anosy_serve::Event::Failed`] for the connection, which the reactor answers by tearing the
//! connection down and exiting its loop cleanly.
//!
//! This test reproduces the scenario end to end against the real binary: complete one
//! request/response round-trip, close the read end of the server's stdout mid-stream, keep
//! writing requests so the server keeps attempting response writes, and assert the process
//! exits successfully (no panic) instead of dying with 101.

use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};

#[test]
fn a_dead_stdout_reader_fails_the_connection_not_the_process() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_anosy-served"))
        .args(["--layout", "x:0:400 y:0:400", "--workers", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("anosy-served spawns");

    let mut stdin = child.stdin.take().expect("stdin is piped");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout is piped"));

    // One full round-trip proves the pipe worked before we kill the read end.
    stdin.write_all(b"open min-size:100\n").expect("request is written");
    stdin.flush().expect("request is flushed");
    let mut line = String::new();
    stdout.read_line(&mut line).expect("response is readable");
    assert_eq!(line.trim_end(), "0.1 ok session 1");

    // Kill the read end of the server's stdout: its next response write gets EPIPE.
    drop(stdout);

    // Keep requests coming so the server actually attempts more response writes. Our own
    // writes may start failing once the server tears the connection down and exits — that's
    // the expected shutdown order, not a test failure.
    for _ in 0..50 {
        if stdin.write_all(b"knowledge session=1 secret=1,2\n").is_err() {
            break;
        }
        if stdin.flush().is_err() {
            break;
        }
    }
    drop(stdin);

    let output = child.wait_with_output().expect("anosy-served exits");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "an EPIPE on stdout must fail the connection, not the process (status {:?}):\n{stderr}",
        output.status.code(),
    );
    assert!(!stderr.contains("panicked"), "the reactor must not panic on EPIPE:\n{stderr}");
}
