//! End-to-end smoke test of the `anosy-served` binary: pipes the canned request script through
//! the real process (stdin/stdout, `--ticked` batching) and diffs the full response transcript
//! against the checked-in expectation. The CI smoke lane runs the same pipe from the shell; this
//! test keeps it under plain `cargo test` too.
//!
//! The transcript is deterministic end to end: synthesis is deterministic, tick batching is
//! response-equivalent to the sequential replay (proptested in `proptest_frontend.rs`), and
//! sharded counting reports counterexamples in deterministic chunk order. A diff here means the
//! *wire format or protocol semantics changed* — update `smoke.expected` only for deliberate
//! protocol changes.

use std::io::Write;
use std::process::{Command, Stdio};

const SCRIPT: &str = include_str!("data/smoke.script");
const EXPECTED: &str = include_str!("data/smoke.expected");

#[test]
fn canned_script_round_trips_through_the_binary() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_anosy-served"))
        .args(["--layout", "x:0:400 y:0:400", "--workers", "2", "--ticked"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("anosy-served spawns");
    child
        .stdin
        .take()
        .expect("stdin is piped")
        .write_all(SCRIPT.as_bytes())
        .expect("script is written");
    let output = child.wait_with_output().expect("anosy-served exits");

    assert!(
        output.status.success(),
        "anosy-served failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let transcript = String::from_utf8(output.stdout).expect("transcript is UTF-8");
    assert_eq!(
        transcript, EXPECTED,
        "the anosy-served transcript diverged from tests/data/smoke.expected"
    );
}

#[test]
fn bad_arguments_fail_with_usage() {
    let output = Command::new(env!("CARGO_BIN_EXE_anosy-served"))
        .args(["--layout", "not a layout"])
        .output()
        .expect("anosy-served runs");
    assert_eq!(output.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&output.stderr).contains("usage:"));

    let output =
        Command::new(env!("CARGO_BIN_EXE_anosy-served")).output().expect("anosy-served runs");
    assert_eq!(output.status.code(), Some(2), "a missing --layout is refused");
}
