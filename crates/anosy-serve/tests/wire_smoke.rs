//! End-to-end smoke test of the `anosy-served` binary: pipes the canned request script through
//! the real process twice — once over stdin/stdout (`--ticked` batching) and once over a real
//! loopback TCP socket (`--listen`) — and diffs both full response transcripts against the one
//! checked-in expectation. The CI smoke lane runs the same pipe from the shell; this test keeps
//! it under plain `cargo test` too.
//!
//! The transcript is deterministic end to end: synthesis is deterministic, tick batching is
//! response-equivalent to the sequential replay (proptested in `proptest_frontend.rs`), and
//! sharded counting reports counterexamples in deterministic chunk order. Both transports run
//! the same reactor, so their outputs must be **byte-identical** — a diff here means the *wire
//! format or protocol semantics changed*; update `smoke.expected` only for deliberate protocol
//! changes.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};

const SCRIPT: &str = include_str!("data/smoke.script");
const EXPECTED: &str = include_str!("data/smoke.expected");

#[test]
fn canned_script_round_trips_through_the_binary() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_anosy-served"))
        .args(["--layout", "x:0:400 y:0:400", "--workers", "2", "--ticked"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("anosy-served spawns");
    child
        .stdin
        .take()
        .expect("stdin is piped")
        .write_all(SCRIPT.as_bytes())
        .expect("script is written");
    let output = child.wait_with_output().expect("anosy-served exits");

    assert!(
        output.status.success(),
        "anosy-served failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let transcript = String::from_utf8(output.stdout).expect("transcript is UTF-8");
    assert_eq!(
        transcript, EXPECTED,
        "the anosy-served transcript diverged from tests/data/smoke.expected"
    );
}

#[test]
fn the_same_transcript_rides_a_loopback_socket() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_anosy-served"))
        .args([
            "--layout",
            "x:0:400 y:0:400",
            "--workers",
            "2",
            "--ticked",
            "--listen",
            "127.0.0.1:0",
            "--accept",
            "1",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("anosy-served spawns");

    // The binary announces the actual port (we bound port 0) as its first stdout line.
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout is piped"));
    let mut banner = String::new();
    stdout.read_line(&mut banner).expect("banner line is readable");
    let addr = banner
        .trim()
        .strip_prefix("# listening on ")
        .unwrap_or_else(|| panic!("unexpected banner `{banner}`"))
        .to_string();

    // One client connection: write the whole script (the kernel chunks it however it likes),
    // half-close, and read responses until the server closes. The trailing unterminated line
    // of the script doubles as the mid-line half-close case.
    let mut stream = TcpStream::connect(&addr).expect("loopback connect");
    stream.write_all(SCRIPT.as_bytes()).expect("script is written");
    stream.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut transcript = String::new();
    stream.read_to_string(&mut transcript).expect("transcript is readable");

    let status = child.wait().expect("anosy-served exits");
    assert!(status.success(), "anosy-served failed in --listen mode");
    assert_eq!(
        transcript, EXPECTED,
        "the socket transcript diverged from the stdin/stdout transcript"
    );
}

#[test]
fn bad_arguments_fail_with_usage() {
    let output = Command::new(env!("CARGO_BIN_EXE_anosy-served"))
        .args(["--layout", "not a layout"])
        .output()
        .expect("anosy-served runs");
    assert_eq!(output.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&output.stderr).contains("usage:"));

    let output =
        Command::new(env!("CARGO_BIN_EXE_anosy-served")).output().expect("anosy-served runs");
    assert_eq!(output.status.code(), Some(2), "a missing --layout is refused");

    let output = Command::new(env!("CARGO_BIN_EXE_anosy-served"))
        .args(["--layout", "x:0:400", "--accept", "1"])
        .output()
        .expect("anosy-served runs");
    assert_eq!(output.status.code(), Some(2), "--accept without --listen is refused");
}
