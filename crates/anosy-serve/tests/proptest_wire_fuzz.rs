//! Byte-soup fuzzing for the wire layer: arbitrary byte sequences — non-UTF-8, embedded NUL,
//! CRLF/LF mixes, never-terminated lines — must **error as data**: no panic anywhere, and the
//! incremental [`LineDecoder`]'s carry-over state must never desync (what it decodes is a pure
//! function of the concatenated bytes, independent of chunk boundaries, and after any garbage a
//! well-formed line still decodes).
//!
//! The binary frame codec gets the same treatment: [`FrameDecoder`] fed frame/garbage soup
//! must decode independently of chunk boundaries within a bounded buffer, resync at the next
//! frame boundary after a corrupt frame, and never panic — plus the protocol-level properties:
//! a server fed arbitrary first bytes negotiates *some* protocol without panicking while
//! well-formed neighbours answer normally, and one request script answers with **identical
//! protocol text** over the line codec and the frame codec.
//!
//! The CI `sim-stress` lane re-runs this file with `PROPTEST_CASES=256`.

#[path = "support/oracle.rs"]
mod support;

use anosy_logic::SecretLayout;
use anosy_serve::wire::{self, DecodedFrame, DecodedLine, FrameDecoder, LineDecoder};
use anosy_serve::{Frontend, Server, ServerConfig, SimNet};
use proptest::prelude::*;

fn layout() -> SecretLayout {
    SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build()
}

/// Bytes biased toward the wire format's structural characters, so the soup regularly forms
/// almost-lines instead of pure noise.
fn arb_byte() -> impl Strategy<Value = u8> {
    prop_oneof![
        6 => 0u8..=255,
        2 => Just(b'\n'),
        1 => Just(b'\r'),
        1 => Just(0u8),
        1 => Just(b'='),
        1 => Just(b' '),
        1 => Just(b'@'),
    ]
}

fn arb_bytes() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(arb_byte(), 0..300)
}

/// Frame soup: a concatenation of well-formed frames (arbitrary payloads, some exceeding small
/// decoder caps) and raw garbage runs, so the decoder sees valid frames, oversize frames,
/// garbage misread as headers and every transition between them.
fn arb_frame_soup() -> impl Strategy<Value = Vec<u8>> {
    let segment = prop_oneof![
        2 => arb_bytes(),
        3 => proptest::collection::vec(0u8..=255u8, 0..80).prop_map(|p| wire::encode_frame(&p)),
    ];
    proptest::collection::vec(segment, 0..6).prop_map(|segments| segments.concat())
}

/// Well-formed request/response lines the mutation fuzzer starts from.
const SEEDS: [&str; 10] = [
    "open min-size:100",
    "register name=q kind=under members=- pred=abs(x - 200) + abs(y - 200) <= 100",
    "downgrade session=1 query=q secret=300,200",
    "batch session=1 query=q secrets=300,200;10,10",
    "count pred=x <= 100",
    "knowledge session=1 secret=0,0",
    "ok stats open=1 ticks=2 requests=3 batched=4 largest=5 torn=0 workers=2 entries=1 \
     sessions=2 closed=0 synth_hits=1 synth_misses=1 warm=0 authorized=1 refused=0",
    "ok answers true false !policy",
    "deny policy refused",
    "ok knowledge size=6837 121..279,179..221",
];

proptest! {
    #[test]
    fn decoding_is_independent_of_chunk_boundaries(
        bytes in arb_bytes(),
        cuts in proptest::collection::vec(0usize..300, 0..6),
        cap in 4usize..64,
    ) {
        // Reference: the whole soup in one feed.
        let mut whole = LineDecoder::with_max_line(cap);
        let mut expected = whole.feed(&bytes);
        if let Some(last) = whole.finish() {
            expected.push(last);
        }

        // Same soup, arbitrary chunking.
        let mut cuts: Vec<usize> =
            cuts.into_iter().map(|c| c.min(bytes.len())).collect();
        cuts.sort_unstable();
        let mut chunked = LineDecoder::with_max_line(cap);
        let mut got = Vec::new();
        let mut start = 0;
        for cut in cuts.into_iter().chain([bytes.len()]) {
            got.extend(chunked.feed(&bytes[start..cut]));
            // The carry-over buffer is bounded by the cap at every step (+1 for the CRLF
            // grace byte) — a never-terminated line cannot grow memory.
            prop_assert!(chunked.buffered() <= cap + 1);
            start = cut;
        }
        if let Some(last) = chunked.finish() {
            got.push(last);
        }
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn the_decoder_resyncs_after_any_garbage(bytes in arb_bytes()) {
        let mut decoder = LineDecoder::with_max_line(64);
        decoder.feed(&bytes);
        // Whatever state the soup left behind, a terminator ends it and the next line decodes
        // cleanly — the carry-over can never desync.
        let mut tail = decoder.feed(b"\nstats\n");
        let last = tail.pop().expect("the final line decodes");
        prop_assert_eq!(last, DecodedLine::Line("stats".to_string()));
        prop_assert_eq!(decoder.buffered(), 0);
    }

    #[test]
    fn parsers_never_panic_on_decoded_soup(bytes in arb_bytes()) {
        // Run the soup through the decoder and both parsers — errors are fine, panics are not,
        // and every decoded Line is valid UTF-8 by construction.
        let mut decoder = LineDecoder::with_max_line(128);
        let mut lines = decoder.feed(&bytes);
        if let Some(last) = decoder.finish() {
            lines.push(last);
        }
        for item in lines {
            if let DecodedLine::Line(line) = item {
                let _ = wire::parse_request(&line, &layout());
                let _ = wire::parse_response(&line);
            }
        }
        // The raw soup, lossily decoded, must not panic the parsers either (a transport that
        // skips the decoder, like the old per-line stdin path).
        for line in String::from_utf8_lossy(&bytes).lines() {
            let _ = wire::parse_request(line, &layout());
            let _ = wire::parse_response(line);
        }
    }

    #[test]
    fn parsers_never_panic_on_mutated_valid_lines(
        seed in 0usize..SEEDS.len(),
        mutations in proptest::collection::vec((0usize..200, arb_byte()), 0..4),
    ) {
        // Near-misses of real lines probe every token path: flip a few bytes of a valid line
        // and parse. Any result is acceptable except a panic or a desync.
        let mut line = SEEDS[seed].as_bytes().to_vec();
        for (position, byte) in mutations {
            let index = position % line.len();
            line[index] = byte;
        }
        let mut decoder = LineDecoder::new();
        line.push(b'\n');
        for item in decoder.feed(&line) {
            if let DecodedLine::Line(text) = item {
                let _ = wire::parse_request(&text, &layout());
                let _ = wire::parse_response(&text);
            }
        }
        prop_assert_eq!(decoder.buffered(), 0);
    }

    #[test]
    fn never_terminated_lines_report_overlong_exactly_once(
        length in 1usize..600,
        cap in 4usize..64,
    ) {
        let mut decoder = LineDecoder::with_max_line(cap);
        let soup = vec![b'x'; length];
        let mut decoded = decoder.feed(&soup);
        if let Some(last) = decoder.finish() {
            decoded.push(last);
        }
        if length > cap {
            // One Overlong, the tail swallowed, nothing else.
            prop_assert_eq!(decoded, vec![DecodedLine::Overlong]);
        } else {
            prop_assert_eq!(decoded, vec![DecodedLine::Line("x".repeat(length))]);
        }
        // And the decoder is reusable afterwards.
        prop_assert_eq!(
            decoder.feed(b"ok\n"),
            vec![DecodedLine::Line("ok".to_string())]
        );
    }

    #[test]
    fn frame_decoding_is_independent_of_chunk_boundaries(
        bytes in arb_frame_soup(),
        cuts in proptest::collection::vec(0usize..600, 0..6),
        cap in 4usize..64,
    ) {
        // Reference: the whole soup in one feed.
        let mut whole = FrameDecoder::with_max_frame(cap);
        let mut expected = whole.feed(&bytes);
        if let Some(last) = whole.finish() {
            expected.push(last);
        }

        // Same soup, arbitrary chunking.
        let mut cuts: Vec<usize> = cuts.into_iter().map(|c| c.min(bytes.len())).collect();
        cuts.sort_unstable();
        let mut chunked = FrameDecoder::with_max_frame(cap);
        let mut got = Vec::new();
        let mut start = 0;
        for cut in cuts.into_iter().chain([bytes.len()]) {
            got.extend(chunked.feed(&bytes[start..cut]));
            // Bounded carry-over at every step: header + at most one capped payload. An
            // oversize frame's declared payload is counted down, never buffered.
            prop_assert!(chunked.buffered() <= 12 + cap);
            start = cut;
        }
        if let Some(last) = chunked.finish() {
            got.push(last);
        }
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn the_frame_decoder_resyncs_after_a_corrupt_frame(
        payload in proptest::collection::vec(0u8..=255, 1..80),
        flip in 1u8..=255,
        at in 0usize..10_000,
    ) {
        // Flip one payload byte under an intact header: FNV-1a steps are bijective in the
        // running state, so the checksum is guaranteed to miss. The frame boundary was still
        // declared exactly, so the decoder reports Corrupt and the pristine follower decodes.
        let mut bytes = wire::encode_frame(&payload);
        bytes[12 + at % payload.len()] ^= flip;
        wire::frame_into(&mut bytes, b"stats");
        let mut decoder = FrameDecoder::new();
        prop_assert_eq!(
            decoder.feed(&bytes),
            vec![DecodedFrame::Corrupt, DecodedFrame::Frame(b"stats".to_vec())]
        );
        prop_assert_eq!(decoder.finish(), None);
    }

    #[test]
    fn frame_soup_errors_as_data_and_payloads_never_panic_the_parsers(
        bytes in arb_frame_soup(),
    ) {
        let mut decoder = FrameDecoder::with_max_frame(128);
        let mut frames = decoder.feed(&bytes);
        if let Some(last) = decoder.finish() {
            frames.push(last);
        }
        for frame in frames {
            if let DecodedFrame::Frame(payload) = frame {
                // A frame payload is one protocol line: the parsers must take whatever the
                // soup delivered without panicking (errors are fine).
                if let Ok(text) = std::str::from_utf8(&payload) {
                    let _ = wire::parse_request(text, &layout());
                    let _ = wire::parse_response(text);
                }
            }
        }
        // Whatever state the soup left, a discard makes the decoder reusable.
        decoder.discard();
        prop_assert_eq!(
            decoder.feed(&wire::encode_frame(b"stats")),
            vec![DecodedFrame::Frame(b"stats".to_vec())]
        );
    }
}

/// One protocol line of the cross-codec scripts: palette registrations (warm-cache hits),
/// opens, downgrades/knowledge probes over guessed session ids (hits and unknown-session
/// denials alike answer identically on both codecs), closes, malformed refuse-line traffic,
/// and blank tick boundaries — optionally tagged onto a logical `@conn`, so one tick regroups
/// downgrade runs across several sessions.
fn arb_script_line() -> impl Strategy<Value = String> {
    let body = prop_oneof![
        2 => Just("open min-size:100".to_string()),
        1 => Just("open allow-all".to_string()),
        2 => Just(
            "register name=q kind=under members=- pred=abs(x - 200) + abs(y - 200) <= 100"
                .to_string()
        ),
        4 => (1u64..4, 0i64..=400, 0i64..=400).prop_map(|(s, x, y)| {
            format!("downgrade session={s} query=q secret={x},{y}")
        }),
        2 => (1u64..4, 0i64..=400, 0i64..=400).prop_map(|(s, x, y)| {
            format!("knowledge session={s} secret={x},{y}")
        }),
        1 => (1u64..4).prop_map(|s| format!("close session={s}")),
        1 => Just("this is not a request".to_string()),
    ];
    let prefix = prop_oneof![
        3 => Just(String::new()),
        1 => (2u64..4).prop_map(|c| format!("@{c} ")),
    ];
    prop_oneof![
        8 => (prefix, body).prop_map(|(prefix, body)| format!("{prefix}{body}")),
        1 => Just(String::new()), // blank: a tick boundary under --ticked, on both codecs
    ]
}

/// Drives `lines` through a real server over `SimNet` on one connection — as `\n`-terminated
/// lines, or as the preamble plus one frame per line — and returns the response transcript
/// with the codec decoded away.
fn run_script(lines: &[String], seed: u64, binary: bool) -> String {
    let mut sim = SimNet::new(seed);
    let token = sim.connect(0);
    let mut at = 10;
    if binary {
        sim.send(token, at, wire::BINARY_PREAMBLE);
    }
    for line in lines {
        let payload = if binary {
            wire::encode_frame(line.as_bytes())
        } else {
            let mut bytes = line.clone().into_bytes();
            bytes.push(b'\n');
            bytes
        };
        sim.send(token, at, payload);
        at += 100;
    }
    sim.half_close(token, at + 2_000);
    let config = ServerConfig::new().ticked(true);
    let mut server = Server::new(Frontend::new(support::warm_deployment()), sim, config);
    server.run();
    if binary {
        server.transport().received_frame_text(token)
    } else {
        server.transport().received_text(token)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn protocol_negotiation_never_panics_on_arbitrary_first_bytes(
        soup in arb_bytes(),
        seed in 0u64..1_000,
    ) {
        // Three connections race: pure soup (negotiates *something* — a soup prefix of the
        // preamble is the hard case), a well-formed line client and a well-formed binary
        // client. The soup must not panic the reactor or disturb its neighbours.
        let mut sim = SimNet::new(seed);
        let garbage = sim.connect(0);
        let line = sim.connect(0);
        let binary = sim.connect(0);
        sim.send(garbage, 10, &soup);
        sim.half_close(garbage, 5_000);
        sim.send(line, 10, "open min-size:100\n");
        sim.half_close(line, 5_000);
        let mut framed = wire::BINARY_PREAMBLE.to_vec();
        wire::frame_into(&mut framed, b"open min-size:100");
        sim.send(binary, 10, &framed);
        sim.half_close(binary, 5_000);

        let mut server =
            Server::new(Frontend::new(support::warm_deployment()), sim, ServerConfig::new());
        server.run();

        // Session numbers depend on cross-connection arrival order (and on whether the soup
        // accidentally formed requests), so assert the response shape, not the id.
        let line_text = server.transport().received_text(line);
        prop_assert!(
            line_text.starts_with("1.1 ok session ") && line_text.ends_with('\n'),
            "line connection answered `{}`", line_text
        );
        let binary_text = server.transport().received_frame_text(binary);
        prop_assert!(
            binary_text.starts_with("2.1 ok session ") && binary_text.ends_with('\n'),
            "binary connection answered `{}`", binary_text
        );
    }

    #[test]
    fn the_same_script_answers_identically_over_both_codecs(
        lines in proptest::collection::vec(arb_script_line(), 1..12),
        seed in 0u64..1_000,
    ) {
        // The tentpole's tax-free claim, as a property: one script, two codecs, identical
        // protocol text — across ticks that regroup downgrade runs over several `@conn`
        // sessions, unknown-session denials, refusals and blank-line tick boundaries.
        let line_run = run_script(&lines, seed, false);
        let binary_run = run_script(&lines, seed.wrapping_add(1), true);
        prop_assert_eq!(line_run, binary_run);
    }
}
