//! Byte-soup fuzzing for the wire layer: arbitrary byte sequences — non-UTF-8, embedded NUL,
//! CRLF/LF mixes, never-terminated lines — must **error as data**: no panic anywhere, and the
//! incremental [`LineDecoder`]'s carry-over state must never desync (what it decodes is a pure
//! function of the concatenated bytes, independent of chunk boundaries, and after any garbage a
//! well-formed line still decodes).
//!
//! The CI `sim-stress` lane re-runs this file with `PROPTEST_CASES=256`.

use anosy_logic::SecretLayout;
use anosy_serve::wire::{self, DecodedLine, LineDecoder};
use proptest::prelude::*;

fn layout() -> SecretLayout {
    SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build()
}

/// Bytes biased toward the wire format's structural characters, so the soup regularly forms
/// almost-lines instead of pure noise.
fn arb_byte() -> impl Strategy<Value = u8> {
    prop_oneof![
        6 => 0u8..=255,
        2 => Just(b'\n'),
        1 => Just(b'\r'),
        1 => Just(0u8),
        1 => Just(b'='),
        1 => Just(b' '),
        1 => Just(b'@'),
    ]
}

fn arb_bytes() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(arb_byte(), 0..300)
}

/// Well-formed request/response lines the mutation fuzzer starts from.
const SEEDS: [&str; 10] = [
    "open min-size:100",
    "register name=q kind=under members=- pred=abs(x - 200) + abs(y - 200) <= 100",
    "downgrade session=1 query=q secret=300,200",
    "batch session=1 query=q secrets=300,200;10,10",
    "count pred=x <= 100",
    "knowledge session=1 secret=0,0",
    "ok stats open=1 ticks=2 requests=3 batched=4 largest=5 torn=0 workers=2 entries=1 \
     sessions=2 closed=0 synth_hits=1 synth_misses=1 warm=0 authorized=1 refused=0",
    "ok answers true false !policy",
    "deny policy refused",
    "ok knowledge size=6837 121..279,179..221",
];

proptest! {
    #[test]
    fn decoding_is_independent_of_chunk_boundaries(
        bytes in arb_bytes(),
        cuts in proptest::collection::vec(0usize..300, 0..6),
        cap in 4usize..64,
    ) {
        // Reference: the whole soup in one feed.
        let mut whole = LineDecoder::with_max_line(cap);
        let mut expected = whole.feed(&bytes);
        if let Some(last) = whole.finish() {
            expected.push(last);
        }

        // Same soup, arbitrary chunking.
        let mut cuts: Vec<usize> =
            cuts.into_iter().map(|c| c.min(bytes.len())).collect();
        cuts.sort_unstable();
        let mut chunked = LineDecoder::with_max_line(cap);
        let mut got = Vec::new();
        let mut start = 0;
        for cut in cuts.into_iter().chain([bytes.len()]) {
            got.extend(chunked.feed(&bytes[start..cut]));
            // The carry-over buffer is bounded by the cap at every step (+1 for the CRLF
            // grace byte) — a never-terminated line cannot grow memory.
            prop_assert!(chunked.buffered() <= cap + 1);
            start = cut;
        }
        if let Some(last) = chunked.finish() {
            got.push(last);
        }
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn the_decoder_resyncs_after_any_garbage(bytes in arb_bytes()) {
        let mut decoder = LineDecoder::with_max_line(64);
        decoder.feed(&bytes);
        // Whatever state the soup left behind, a terminator ends it and the next line decodes
        // cleanly — the carry-over can never desync.
        let mut tail = decoder.feed(b"\nstats\n");
        let last = tail.pop().expect("the final line decodes");
        prop_assert_eq!(last, DecodedLine::Line("stats".to_string()));
        prop_assert_eq!(decoder.buffered(), 0);
    }

    #[test]
    fn parsers_never_panic_on_decoded_soup(bytes in arb_bytes()) {
        // Run the soup through the decoder and both parsers — errors are fine, panics are not,
        // and every decoded Line is valid UTF-8 by construction.
        let mut decoder = LineDecoder::with_max_line(128);
        let mut lines = decoder.feed(&bytes);
        if let Some(last) = decoder.finish() {
            lines.push(last);
        }
        for item in lines {
            if let DecodedLine::Line(line) = item {
                let _ = wire::parse_request(&line, &layout());
                let _ = wire::parse_response(&line);
            }
        }
        // The raw soup, lossily decoded, must not panic the parsers either (a transport that
        // skips the decoder, like the old per-line stdin path).
        for line in String::from_utf8_lossy(&bytes).lines() {
            let _ = wire::parse_request(line, &layout());
            let _ = wire::parse_response(line);
        }
    }

    #[test]
    fn parsers_never_panic_on_mutated_valid_lines(
        seed in 0usize..SEEDS.len(),
        mutations in proptest::collection::vec((0usize..200, arb_byte()), 0..4),
    ) {
        // Near-misses of real lines probe every token path: flip a few bytes of a valid line
        // and parse. Any result is acceptable except a panic or a desync.
        let mut line = SEEDS[seed].as_bytes().to_vec();
        for (position, byte) in mutations {
            let index = position % line.len();
            line[index] = byte;
        }
        let mut decoder = LineDecoder::new();
        line.push(b'\n');
        for item in decoder.feed(&line) {
            if let DecodedLine::Line(text) = item {
                let _ = wire::parse_request(&text, &layout());
                let _ = wire::parse_response(&text);
            }
        }
        prop_assert_eq!(decoder.buffered(), 0);
    }

    #[test]
    fn never_terminated_lines_report_overlong_exactly_once(
        length in 1usize..600,
        cap in 4usize..64,
    ) {
        let mut decoder = LineDecoder::with_max_line(cap);
        let soup = vec![b'x'; length];
        let mut decoded = decoder.feed(&soup);
        if let Some(last) = decoder.finish() {
            decoded.push(last);
        }
        if length > cap {
            // One Overlong, the tail swallowed, nothing else.
            prop_assert_eq!(decoded, vec![DecodedLine::Overlong]);
        } else {
            prop_assert_eq!(decoded, vec![DecodedLine::Line("x".repeat(length))]);
        }
        // And the decoder is reusable afterwards.
        prop_assert_eq!(
            decoder.feed(b"ok\n"),
            vec![DecodedLine::Line("ok".to_string())]
        );
    }
}
