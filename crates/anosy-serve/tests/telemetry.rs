//! Telemetry suite: determinism and merge-invariance of the observability layer (ISSUE 8).
//!
//! Two design claims are property-tested here, alongside an end-to-end check of the
//! `metrics`/`trace` wire requests:
//!
//! 1. **Merge invariance**: for metrics that count *protocol facts* (lines, requests,
//!    malformed lines, bytes in, request/response sizes), the deployment-wide merge of the
//!    per-shard registries is invariant under the reactor count — the same seeded population
//!    measured at `reactors = 1` and `reactors = N` produces identical merged counters and
//!    identical merged histograms. This is the metrics-level face of the reactor-count
//!    invariance property (`tests/multi_reactor.rs`): sharding may redistribute the facts,
//!    never create or destroy them. Scheduling-shaped metrics (tick counts, queue depths,
//!    latencies) are deliberately excluded — those *should* change with the shard layout.
//! 2. **Trace determinism**: under the virtual clock a [`SimNet`] exports, the chrome://tracing
//!    JSON of a single-reactor run is a **byte-identical** function of the seeds. (Multi-shard
//!    runs race real threads over the shared single-flight cache, so only their per-shard span
//!    *sets* are stable, not global interleavings — the determinism claim is per clock domain.)
//!
//! The base seed honors `ANOSY_SIM_SEED`, like the rest of the simulator suites.

#![cfg(feature = "telemetry")]

#[path = "support/oracle.rs"]
mod support;

use anosy_serve::loadgen::{self, LoadOptions};
use anosy_serve::{merge_metrics, trace_json, MetricsRegistry, ReactorPool, ServeResponse, SimNet};
use proptest::prelude::*;

fn base_seed() -> u64 {
    std::env::var("ANOSY_SIM_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0)
}

/// One recorded load run at the given reactor count.
fn run_at(seed: u64, net_seed: u64, tenants: usize, reactors: u64) -> loadgen::PoolRun {
    let population = loadgen::population(seed, tenants);
    loadgen::run(&population, &LoadOptions::new(net_seed, reactors))
}

/// The protocol-fact metrics whose deployment-wide merge must not depend on the shard layout.
const INVARIANT_COUNTERS: [&str; 4] =
    ["wire.bytes_in", "wire.lines", "wire.malformed", "wire.requests"];
const INVARIANT_HISTOGRAMS: [&str; 2] = ["request.bytes", "response.bytes"];

/// Asserts the invariant slice of two merged registries is equal (counters by value,
/// histograms bucket-for-bucket — count, sum, max and every quantile ride along).
fn assert_invariant_slice_eq(base: &MetricsRegistry, sharded: &MetricsRegistry, reactors: u64) {
    for name in INVARIANT_COUNTERS {
        assert_eq!(
            base.counter(name),
            sharded.counter(name),
            "counter {name} changed between reactors=1 and reactors={reactors}"
        );
    }
    for name in INVARIANT_HISTOGRAMS {
        assert_eq!(
            base.histogram(name),
            sharded.histogram(name),
            "histogram {name} changed between reactors=1 and reactors={reactors}"
        );
    }
}

#[test]
fn merged_metrics_are_invariant_under_the_reactor_count() {
    let seed = base_seed().wrapping_add(8_000);
    let net_seed = base_seed().wrapping_add(8_100);
    let base = run_at(seed, net_seed, 24, 1);
    assert_eq!(base.telemetry.len(), 1, "one report per reactor");
    let base_metrics = merge_metrics(&base.telemetry);
    // The run actually measured something — the invariance is not vacuous.
    assert!(base_metrics.counter("wire.requests") > 0);
    assert!(base_metrics.histogram("request.bytes").is_some());
    assert_eq!(
        base_metrics.counter("wire.requests"),
        base.report.stats.requests,
        "the telemetry counter and the frontend ledger agree"
    );
    assert!(base.report.latency.count > 0, "request latencies were measured");
    assert!(base.report.latency.p50 <= base.report.latency.p99);
    assert!(base.report.latency.p99 <= base.report.latency.max);

    for reactors in [2u64, 4] {
        let sharded = run_at(seed, net_seed, 24, reactors);
        assert_eq!(sharded.telemetry.len(), reactors as usize);
        // Shard reports arrive in shard order — the deterministic merge order.
        for (i, report) in sharded.telemetry.iter().enumerate() {
            assert_eq!(report.shard, i as u64);
        }
        assert_invariant_slice_eq(&base_metrics, &merge_metrics(&sharded.telemetry), reactors);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Merge invariance over independently drawn seeds and reactor counts — the same sweep
    /// shape as `multi_reactor.rs`'s response-stream property.
    #[test]
    fn merge_invariance_holds_across_seeds(
        seed_offset in 0u64..1_000,
        net_offset in 0u64..1_000,
        reactors in 2u64..=4,
    ) {
        let seed = base_seed().wrapping_add(30_000 + seed_offset);
        let net_seed = base_seed().wrapping_add(40_000 + net_offset);
        let base = run_at(seed, net_seed, 18, 1);
        let sharded = run_at(seed, net_seed, 18, reactors);
        assert_invariant_slice_eq(
            &merge_metrics(&base.telemetry),
            &merge_metrics(&sharded.telemetry),
            reactors,
        );
    }
}

#[test]
fn single_reactor_traces_replay_byte_identically() {
    let seed = base_seed().wrapping_add(8_200);
    let net_seed = base_seed().wrapping_add(8_300);
    let first = run_at(seed, net_seed, 16, 1);
    let second = run_at(seed, net_seed, 16, 1);
    let trace = trace_json(&first.telemetry);
    assert_eq!(trace, trace_json(&second.telemetry), "same seeds, same bytes");
    // The trace is non-trivial: it holds the serving stack's span names with virtual
    // timestamps, ready for chrome://tracing.
    assert!(trace.starts_with('[') && trace.ends_with(']'));
    for name in ["frontend.tick", "wire.decode"] {
        assert!(trace.contains(&format!("\"name\":\"{name}\"")), "missing {name} in {trace}");
    }
    // A different net seed really changes the trace (the determinism assert is not comparing
    // two empty strings' worth of recording).
    let other = run_at(seed, net_seed.wrapping_add(1), 16, 1);
    assert_ne!(trace, trace_json(&other.telemetry));
}

#[test]
fn telemetry_off_runs_record_nothing() {
    let seed = base_seed().wrapping_add(8_400);
    let population = loadgen::population(seed, 12);
    let run = loadgen::run(&population, &LoadOptions::new(seed, 2).telemetry(false));
    assert!(run.telemetry.is_empty(), "no collector, no reports");
    assert_eq!(run.report.latency, loadgen::LatencySummary::default());
    assert!(merge_metrics(&run.telemetry).is_empty());
    assert_eq!(trace_json(&run.telemetry), "[]");
}

#[test]
fn metrics_and_trace_requests_answer_over_the_wire() {
    let mut net = SimNet::new(base_seed().wrapping_add(8_500)).with_max_delay(0);
    let client = net.connect(0);
    net.send(client, 10, "open min-size:100\n");
    net.send(client, 20, "metrics\n");
    net.send(client, 30, "trace\n");
    net.half_close(client, 40);

    let deployment = support::warm_deployment();
    let servers = ReactorPool::new(1).run(&deployment, net.split(1));
    let text = servers[0].transport().received_text(client);
    let mut lines = text.lines().skip(1); // the open answer

    let metrics_line = lines.next().expect("metrics answered");
    let payload = metrics_line.split_once(' ').expect("id-prefixed response").1;
    let ServeResponse::Metrics { json } =
        anosy_serve::wire::parse_response(payload).expect("metrics parse")
    else {
        panic!("expected metrics, got {payload}");
    };
    // The snapshot was taken mid-run on the reactor thread: the wire counters already saw
    // the `open` and `metrics` lines.
    assert!(json.contains("\"wire.requests\":2"), "unexpected metrics json: {json}");
    assert!(json.contains("\"request.bytes\""), "histograms ride along: {json}");

    let trace_line = lines.next().expect("trace answered");
    let payload = trace_line.split_once(' ').expect("id-prefixed response").1;
    let ServeResponse::Trace { json } =
        anosy_serve::wire::parse_response(payload).expect("trace parse")
    else {
        panic!("expected trace, got {payload}");
    };
    assert!(json.contains("\"name\":\"frontend.tick\""), "unexpected trace json: {json}");

    // The full report the reactor harvested at drain supersedes the mid-run snapshots.
    let report = servers[0].telemetry_report().expect("telemetry was on");
    assert_eq!(report.shard, 0);
    assert_eq!(report.metrics.counter("wire.lines"), 3);
    assert!(!report.spans.is_empty());
}
