//! The sequential-replay oracle and shared query palette for the protocol-level determinism
//! tests (`proptest_frontend.rs`, `sim_chaos.rs`).
//!
//! The specification of the whole serving stack — frontend batching, the event-loop reactor,
//! every transport — is *one request at a time against plain owned
//! [`AnosySession`]s*: `downgrade` per downgrade request, a sequential loop per batch request,
//! sessions removed when their connection closes or disconnects. Whatever a test drives
//! (arbitrary tick splits, simulated network chaos), the observed responses must be
//! element-wise identical to this oracle's.
//!
//! The query palette is synthesized once per test process and shared as warm-start entries, so
//! case counts do not multiply solver work — and the system under test and the oracle provably
//! run on identical approximations.

#![allow(dead_code)] // each test binary uses the slice of this support module it needs

use anosy_core::{AnosySession, PolicySpec, QInfo, SharedCacheEntry};
use anosy_domains::IntervalDomain;
use anosy_ifc::Protected;
use anosy_logic::{IntExpr, Point, SecretLayout};
use anosy_serve::{
    ConnId, Denial, DenialCode, Deployment, ServeConfig, ServeRequest, ServeResponse, SessionId,
};
use anosy_synth::{ApproxKind, DomainCodec, IndSets, QueryDef};
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// The paper's 400 × 400 location grid.
pub fn layout() -> SecretLayout {
    SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build()
}

/// Origins of the palette's `nearby` queries.
pub const ORIGINS: [(i64, i64); 3] = [(200, 200), (300, 200), (150, 260)];

/// Thresholds of the probe ladder (`x <= c`): the ascending walk the adversarial
/// probe-until-refused scenario in `sim_chaos.rs` climbs until the policy denies. The steps
/// are geometric (each rung halves the remaining headroom), so for a secret above every
/// threshold each committed `false` posterior shrinks until a min-size policy must refuse.
pub const PROBE_THRESHOLDS: [i64; 7] = [200, 300, 350, 375, 387, 393, 396];

/// The `index`-th palette query.
pub fn query(index: usize) -> QueryDef {
    let (xo, yo) = ORIGINS[index];
    let pred = ((IntExpr::var(0) - xo).abs() + (IntExpr::var(1) - yo).abs()).le(100);
    QueryDef::new(format!("nearby_{xo}_{yo}"), layout(), pred).unwrap()
}

/// The `index`-th probe-ladder query: `x <= PROBE_THRESHOLDS[index]`.
pub fn probe_query(index: usize) -> QueryDef {
    let c = PROBE_THRESHOLDS[index];
    QueryDef::new(format!("probe_le_{c}"), layout(), IntExpr::var(0).le(c)).unwrap()
}

/// The palette (nearby queries plus the probe ladder), synthesized once per test process and
/// exported as warm-start entries.
pub fn entries() -> &'static Vec<SharedCacheEntry<IntervalDomain>> {
    static ENTRIES: OnceLock<Vec<SharedCacheEntry<IntervalDomain>>> = OnceLock::new();
    ENTRIES.get_or_init(|| {
        let deployment: Deployment<IntervalDomain> =
            Deployment::new(layout(), ServeConfig::for_tests());
        for index in 0..ORIGINS.len() {
            deployment.register_query(&query(index), ApproxKind::Under, None).unwrap();
        }
        for index in 0..PROBE_THRESHOLDS.len() {
            deployment.register_query(&probe_query(index), ApproxKind::Under, None).unwrap();
        }
        deployment.shared().export_entries()
    })
}

/// The palette's synthesized ind. sets for `q` (panics for non-palette queries).
pub fn indsets_of(q: &QueryDef) -> IndSets<IntervalDomain> {
    entries().iter().find(|e| &e.pred == q.pred()).expect("palette entry exists").indsets.clone()
}

/// A small policy palette (lax, strict, allow-all).
pub fn policy(index: usize) -> PolicySpec {
    [PolicySpec::MinSize(100), PolicySpec::MinSize(30_000), PolicySpec::AllowAll][index % 3].clone()
}

/// A test deployment pre-warmed with the palette, so no test case ever synthesizes.
pub fn warm_deployment() -> Deployment<IntervalDomain> {
    let deployment: Deployment<IntervalDomain> =
        Deployment::new(layout(), ServeConfig::for_tests());
    for entry in entries() {
        deployment.shared().insert_ready(entry.clone());
    }
    deployment
}

/// The specification: one request at a time against plain owned sessions — `downgrade` per
/// downgrade request, a sequential loop per batch request, and [`Oracle::disconnect`] removing
/// the sessions a connection opened, at the position the disconnect holds in the request
/// sequence.
pub struct Oracle {
    layout: SecretLayout,
    palette: Vec<SharedCacheEntry<IntervalDomain>>,
    /// Session id → (the connection that opened it, the session).
    sessions: BTreeMap<u64, (ConnId, AnosySession<IntervalDomain>)>,
    registry: Vec<(QueryDef, IndSets<IntervalDomain>)>,
    next_session: u64,
    /// Assign connection-scoped session ids (`((conn + 1) << 32) | k`), matching the frontends
    /// of a reactor pool instead of a standalone server.
    conn_scoped: bool,
    /// Opens seen per connection (conn-scoped mode only).
    conn_opens: BTreeMap<u64, u64>,
}

impl Default for Oracle {
    fn default() -> Self {
        Oracle::new()
    }
}

impl Oracle {
    /// An oracle with no sessions and no registered queries, over the shared test palette.
    pub fn new() -> Oracle {
        Oracle::with_palette(layout(), entries().clone())
    }

    /// An oracle over an arbitrary layout and approximation palette — the population simulator
    /// hands in the exact entries the system under test synthesized, so both replay on
    /// provably identical approximations.
    pub fn with_palette(
        layout: SecretLayout,
        palette: Vec<SharedCacheEntry<IntervalDomain>>,
    ) -> Oracle {
        Oracle {
            layout,
            palette,
            sessions: BTreeMap::new(),
            registry: Vec::new(),
            next_session: 0,
            conn_scoped: false,
            conn_opens: BTreeMap::new(),
        }
    }

    /// Switches to the connection-scoped session-id scheme every [`anosy_serve::ReactorPool`]
    /// frontend runs with ([`anosy_serve::Frontend::with_conn_scoped_sessions`]).
    pub fn conn_scoped(mut self) -> Oracle {
        self.conn_scoped = true;
        self
    }

    /// The palette's synthesized ind. sets for `q` (panics for non-palette queries).
    fn palette_indsets(&self, q: &QueryDef) -> IndSets<IntervalDomain> {
        self.palette
            .iter()
            .find(|e| &e.pred == q.pred())
            .expect("palette entry exists")
            .indsets
            .clone()
    }

    /// Sessions currently open — must equal the system under test's `open_sessions` after any
    /// replay (the no-leak check).
    pub fn open_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Removes every session `conn` opened (a transport disconnect).
    pub fn disconnect(&mut self, conn: ConnId) {
        self.sessions.retain(|_, (owner, _)| *owner != conn);
    }

    /// Replays one request arriving on `conn`, sequentially.
    pub fn apply(&mut self, conn: ConnId, request: &ServeRequest) -> ServeResponse {
        match request {
            ServeRequest::OpenSession { policy } => {
                let id = if self.conn_scoped {
                    let opens = self.conn_opens.entry(conn.0).or_insert(0);
                    *opens += 1;
                    ((conn.0 + 1) << 32) | *opens
                } else {
                    self.next_session += 1;
                    self.next_session
                };
                let mut session = AnosySession::new(self.layout.clone(), policy.clone());
                for (query, indsets) in &self.registry {
                    session.register(QInfo::new(query.clone(), indsets.clone()));
                }
                self.sessions.insert(id, (conn, session));
                ServeResponse::SessionOpened { session: SessionId(id) }
            }
            ServeRequest::RegisterQuery { query, .. } => {
                // Mirrors the frontend's identical-re-registration fast path: sessions
                // already hold the query (broadcast at first registration, registry replay
                // at open), so the broadcast is skipped.
                if self.registry.iter().any(|(q, _)| q == query) {
                    return ServeResponse::QueryRegistered { name: query.name().to_string() };
                }
                let indsets = self.palette_indsets(query);
                for (_, session) in self.sessions.values_mut() {
                    session.register(QInfo::new(query.clone(), indsets.clone()));
                }
                self.registry.push((query.clone(), indsets));
                ServeResponse::QueryRegistered { name: query.name().to_string() }
            }
            ServeRequest::Downgrade { session, secret, query } => {
                let Some((_, open)) = self.sessions.get_mut(&session.0) else {
                    return ServeResponse::Answer(Err(Denial::unknown_session(*session)));
                };
                ServeResponse::Answer(
                    open.downgrade(&Protected::new(secret.clone()), query).map_err(Denial::from),
                )
            }
            ServeRequest::DowngradeBatch { session, secrets, query } => {
                let Some((_, open)) = self.sessions.get_mut(&session.0) else {
                    return ServeResponse::Rejected(Denial::unknown_session(*session));
                };
                ServeResponse::Answers(
                    secrets
                        .iter()
                        .map(|s| {
                            open.downgrade(&Protected::new(s.clone()), query)
                                .map_err(|e| DenialCode::of(&e))
                        })
                        .collect(),
                )
            }
            ServeRequest::Knowledge { session, secret } => {
                let Some((_, open)) = self.sessions.get(&session.0) else {
                    return ServeResponse::Rejected(Denial::unknown_session(*session));
                };
                let knowledge = open.knowledge_of(secret);
                ServeResponse::Knowledge {
                    size: knowledge.size(),
                    encoded: knowledge.domain().encode(),
                }
            }
            ServeRequest::CloseSession { session } => match self.sessions.remove(&session.0) {
                Some(_) => ServeResponse::SessionClosed { session: *session },
                None => ServeResponse::Rejected(Denial::unknown_session(*session)),
            },
            other => panic!("oracle does not model {other:?}"),
        }
    }
}

/// A plain owned session with the palette registered — the point-wise sequential reference.
pub fn reference_session(policy: PolicySpec) -> AnosySession<IntervalDomain> {
    let mut session = AnosySession::new(layout(), policy);
    for index in 0..ORIGINS.len() {
        let q = query(index);
        let indsets = indsets_of(&q);
        session.register(QInfo::new(q, indsets));
    }
    session
}

/// Secrets from a small palette (duplicates likely) that straddles the layout boundary.
pub fn secret_grid(a: i64, b: i64) -> Point {
    Point::new(vec![a * 45 - 20, b * 44])
}
