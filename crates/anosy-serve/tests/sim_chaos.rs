//! Chaos simulation suite: the event-loop server under seeded network chaos, checked against
//! the sequential oracle.
//!
//! Each scenario scripts a [`SimNet`] — connects, byte-chunked writes, delayed deliveries,
//! mid-line disconnects, abortive resets, injected I/O errors — runs the full reactor
//! ([`Server`]) over it inside the test process, and asserts three things:
//!
//! 1. **Oracle equality**: every response the frontend produced is element-wise identical to
//!    replaying the recorded request sequence one at a time against plain owned sessions
//!    (`tests/support/oracle.rs`), with disconnect teardowns applied at their queue positions.
//! 2. **No session leak**: dropped connections release the sessions they opened — the frontend,
//!    the oracle and the deployment's opened/closed ledger all agree on what is still live.
//! 3. **Byte-identical replay**: re-running the scenario from the same seed reproduces the
//!    exact delivered bytes, responses, transcript and counters.
//!
//! The base seed is `ANOSY_SIM_SEED` (default 0); the CI `sim-stress` lane re-runs the suite
//! under several fixed seeds, which perturbs chunking, latency and cross-connection
//! interleaving while every assertion above must keep holding.

#[path = "support/oracle.rs"]
mod support;

use anosy_domains::IntervalDomain;
use anosy_serve::{Frontend, Server, ServerConfig, SimNet, Token, TranscriptEvent};
use rand::Rng;

type SimServer = Server<IntervalDomain, SimNet>;

fn base_seed() -> u64 {
    std::env::var("ANOSY_SIM_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0)
}

fn register_line(index: usize) -> String {
    let q = support::query(index);
    format!("register name={} kind=under members=- pred={}\n", q.name(), q.pred())
}

fn downgrade_line(session: u64, query: usize, x: i64, y: i64) -> String {
    format!("downgrade session={session} query={} secret={x},{y}\n", support::query(query).name())
}

/// Builds the scenario's network from a seed, runs the server to completion, returns both.
fn run_scenario(
    seed: u64,
    ticked: bool,
    build: impl Fn(&mut SimNet) -> Vec<Token>,
) -> (SimServer, Vec<Token>) {
    let mut sim = SimNet::new(seed);
    let clients = build(&mut sim);
    let frontend = Frontend::new(support::warm_deployment());
    let config = ServerConfig::new().ticked(ticked).recording();
    let mut server = Server::new(frontend, sim, config);
    server.run();
    (server, clients)
}

/// Replays the recorded transcript through the sequential oracle and asserts element-wise
/// response equality plus the no-leak invariants.
fn assert_matches_oracle(server: &SimServer) {
    let mut oracle = support::Oracle::new();
    let mut expected = Vec::new();
    for event in server.transcript() {
        match event {
            // `stats` answers with frontend/deployment counters the sequential oracle does not
            // model; its determinism is covered by the byte-identical replay check instead.
            TranscriptEvent::Request { id, request, .. } => {
                let want = (!matches!(request, anosy_serve::ServeRequest::Stats))
                    .then(|| oracle.apply(id.conn, request));
                expected.push((*id, want));
            }
            TranscriptEvent::Disconnect { conn, .. } => oracle.disconnect(*conn),
        }
    }
    assert_eq!(server.responses().len(), expected.len(), "one response per request");
    for (index, (got, (id, want))) in server.responses().iter().zip(&expected).enumerate() {
        assert_eq!(&got.request, id, "response {index} answers the wrong request");
        if let Some(want) = want {
            assert_eq!(&got.response, want, "response {index} diverges from the sequential oracle");
        }
    }
    // Dropped connections released their sessions: frontend, oracle and the deployment's
    // opened/closed ledger agree.
    assert_eq!(server.frontend().open_sessions(), oracle.open_sessions(), "session leak");
    let cache = server.frontend().deployment().stats().cache;
    assert_eq!(
        cache.sessions_opened - cache.sessions_closed,
        server.frontend().open_sessions() as u64,
        "the deployment ledger does not balance"
    );
}

/// Runs the scenario twice from the same seed and asserts the runs are indistinguishable.
fn assert_replays_byte_identically(
    seed: u64,
    ticked: bool,
    build: impl Fn(&mut SimNet) -> Vec<Token> + Copy,
) {
    let (first, clients) = run_scenario(seed, ticked, build);
    let (second, again) = run_scenario(seed, ticked, build);
    assert_eq!(clients, again);
    for &client in &clients {
        assert_eq!(
            first.transport().received(client),
            second.transport().received(client),
            "delivered bytes diverged across replays of seed {seed} for {client}"
        );
    }
    assert_eq!(first.responses(), second.responses(), "responses diverged, seed {seed}");
    assert_eq!(first.transcript(), second.transcript(), "transcript diverged, seed {seed}");
    assert_eq!(first.stats(), second.stats(), "server counters diverged, seed {seed}");
    assert_eq!(first.frontend().stats(), second.frontend().stats());
}

// ---------------------------------------------------------------------------
// Scenario 1: mid-line disconnects — abortive fragments are discarded, half-closed fragments
// are interpreted as final lines.
// ---------------------------------------------------------------------------

fn midline_disconnect(sim: &mut SimNet) -> Vec<Token> {
    // Virtual-time spacing of 1000 dominates any chunk latency the seed can draw, so the
    // cross-connection submission order (and thus session numbering) is script-controlled;
    // chunking and within-step interleaving still vary per seed.
    let c0 = sim.connect(0);
    sim.send(c0, 0, register_line(0));
    sim.send(c0, 1000, "open min-size:100\n"); // session 1
    let c1 = sim.connect(2000);
    sim.send(c1, 2000, "open min-size:100\n"); // session 2
    sim.send(c0, 3000, downgrade_line(1, 0, 300, 200));
    sim.send(c1, 3000, downgrade_line(2, 0, 300, 200));
    // c1 resets mid-line: the fragment must be discarded, never interpreted.
    sim.send(c1, 4000, "downgrade session=2 query=nearby_200_200 secr");
    sim.abort(c1, 5000);
    // c0 keeps being served after the abort.
    sim.send(c0, 6000, downgrade_line(1, 0, 10, 10));
    // c2 half-closes mid-line: its unterminated fragment IS a final line (FIN semantics).
    let c2 = sim.connect(7000);
    sim.send(c2, 7000, "open allow-all\n"); // session 3
    sim.send(c2, 8000, "downgrade session=3 query=nearby_200_200 secret=300,200");
    sim.half_close(c2, 9000);
    sim.send(c0, 10_000, "stats\n");
    sim.half_close(c0, 11_000);
    vec![c0, c1, c2]
}

#[test]
fn midline_disconnects_replay_and_match_the_oracle() {
    let seed = base_seed();
    assert_replays_byte_identically(seed, false, midline_disconnect);
    let (server, clients) = run_scenario(seed, false, midline_disconnect);
    assert_matches_oracle(&server);

    assert_eq!(server.stats().conn_failures, 1, "exactly the abortive reset failed");
    assert_eq!(server.stats().malformed, 0, "the aborted fragment was never interpreted");
    assert_eq!(server.frontend().open_sessions(), 0, "every connection's sessions released");
    assert_eq!(server.frontend().stats().sessions_torn_down, 3);

    // c1 got its pre-abort answers and nothing after the reset.
    let c1 = clients[1];
    assert_eq!(server.transport().received_text(c1), "1.1 ok session 2\n1.2 ok answer true\n");
    // c2's unterminated final line was interpreted and answered before its close.
    let c2 = clients[2];
    assert_eq!(server.transport().received_text(c2), "2.1 ok session 3\n2.2 ok answer true\n");
}

// ---------------------------------------------------------------------------
// Scenario 2: an interleaved multi-connection downgrade storm under timer ticks (RNG-driven
// burst sizes and secrets; per-connection FIFO, cross-connection reordering).
// ---------------------------------------------------------------------------

fn downgrade_storm(sim: &mut SimNet) -> Vec<Token> {
    let c0 = sim.connect(0);
    sim.send(c0, 0, format!("{}{}", register_line(0), register_line(1)));
    sim.send(c0, 1000, "open min-size:100\n"); // session 1
    let c1 = sim.connect(2000);
    sim.send(c1, 2000, "open min-size:100\n"); // session 2
    let c2 = sim.connect(3000);
    sim.send(c2, 3000, "open allow-all\n"); // session 3
    sim.tick(4000);

    // The storm: every client bursts downgrades into the same virtual-time window, so chunk
    // latencies interleave the three connections differently under every seed, while timer
    // ticks cut the queue into batches at seed-dependent points.
    let sessions = [(c0, 1u64), (c1, 2u64), (c2, 3u64)];
    for (client, session) in sessions {
        let burst = sim.rng().gen_range(8usize..16);
        for j in 0..burst {
            let (a, b) = (sim.rng().gen_range(0i64..=10), sim.rng().gen_range(0i64..=10));
            let p = support::secret_grid(a, b);
            let line = downgrade_line(session, j % 2, p.as_slice()[0], p.as_slice()[1]);
            sim.send(client, 5000 + (j as u64) * 11, line);
        }
    }
    for t in (5000..5300).step_by(25) {
        sim.tick(t);
    }

    // One peer drops abortively mid-storm wrap-up; the others close cleanly.
    sim.abort(c1, 6000);
    sim.half_close(c2, 7000);
    sim.half_close(c0, 8000);
    vec![c0, c1, c2]
}

#[test]
fn interleaved_downgrade_storms_match_the_oracle() {
    let seed = base_seed().wrapping_add(1);
    assert_replays_byte_identically(seed, true, downgrade_storm);
    let (server, _) = run_scenario(seed, true, downgrade_storm);
    assert_matches_oracle(&server);

    // Every downgrade rode the batched driver, and everything was torn down.
    let downgrades = server
        .transcript()
        .iter()
        .filter(|e| {
            matches!(e, TranscriptEvent::Request { request, .. }
                if matches!(request, anosy_serve::ServeRequest::Downgrade { .. }))
        })
        .count() as u64;
    assert!(downgrades >= 24, "three bursts of at least eight downgrades each");
    assert_eq!(server.frontend().stats().batched_downgrades, downgrades);
    assert_eq!(server.frontend().open_sessions(), 0);
    assert_eq!(server.frontend().stats().sessions_torn_down, 3);
}

// ---------------------------------------------------------------------------
// Scenario 3: reconnect after drop — the new connection starts from fresh (⊤) knowledge, and
// the dead connection's sessions are gone while a bystander's survive.
// ---------------------------------------------------------------------------

fn reconnect_after_drop(sim: &mut SimNet) -> Vec<Token> {
    let c0 = sim.connect(0);
    sim.send(c0, 0, register_line(0));
    sim.send(c0, 1000, "open min-size:100\n"); // session 1 — the surviving bystander
    let c1 = sim.connect(2000);
    sim.send(c1, 2000, "open min-size:100\n"); // session 2
    sim.send(c1, 3000, downgrade_line(2, 0, 300, 200));
    sim.send(c1, 4000, downgrade_line(2, 0, 300, 200));
    sim.abort(c1, 5000);
    // The same "user" reconnects: a fresh transport connection, a fresh session.
    let c2 = sim.connect(6000);
    sim.send(c2, 6000, "open min-size:100\n"); // session 3
    sim.send(c2, 7000, downgrade_line(3, 0, 300, 200));
    sim.half_close(c2, 8000);
    vec![c0, c1, c2]
}

#[test]
fn reconnecting_after_a_drop_starts_a_fresh_session() {
    let seed = base_seed().wrapping_add(2);
    assert_replays_byte_identically(seed, false, reconnect_after_drop);
    let (server, clients) = run_scenario(seed, false, reconnect_after_drop);
    assert_matches_oracle(&server);

    // The bystander's session survives; the dropped and reconnected clients' are released
    // when their connections end.
    assert_eq!(server.frontend().open_sessions(), 1, "only the bystander's session is left");
    assert_eq!(server.frontend().stats().sessions_torn_down, 2);

    // The reconnected session answered from fresh ⊤ knowledge — exactly like a brand-new
    // sequential session, with no carry-over from the dead one.
    let c2 = clients[2];
    let mut reference = support::reference_session(anosy_core::PolicySpec::MinSize(100));
    let answer = reference
        .downgrade(
            &anosy_ifc::Protected::new(anosy_logic::Point::new(vec![300, 200])),
            support::query(0).name(),
        )
        .unwrap();
    assert!(answer);
    assert_eq!(server.transport().received_text(c2), "2.1 ok session 3\n2.2 ok answer true\n");
}

// ---------------------------------------------------------------------------
// Scenario 4: a per-connection I/O error closes that connection only (the logged-denial
// regression test for the old fatal-read-error behavior).
// ---------------------------------------------------------------------------

fn one_bad_peer(sim: &mut SimNet) -> Vec<Token> {
    let c0 = sim.connect(0);
    sim.send(c0, 0, register_line(0));
    sim.send(c0, 1000, "open min-size:100\n"); // session 1
    let c1 = sim.connect(2000);
    sim.send(c1, 2000, "open min-size:100\n"); // session 2
    sim.io_error(c1, 3000, "simulated NIC failure");
    // The healthy peer is served straight through the other's failure.
    sim.send(c0, 4000, downgrade_line(1, 0, 300, 200));
    sim.send(c0, 5000, downgrade_line(1, 0, 10, 10));
    sim.half_close(c0, 6000);
    vec![c0, c1]
}

#[test]
fn a_bad_peers_io_error_closes_only_its_connection() {
    let seed = base_seed().wrapping_add(3);
    assert_replays_byte_identically(seed, false, one_bad_peer);
    let (server, clients) = run_scenario(seed, false, one_bad_peer);
    assert_matches_oracle(&server);

    assert_eq!(server.stats().conn_failures, 1);
    assert_eq!(server.io_log().len(), 1, "the denial was logged, not fatal");
    assert!(server.io_log()[0].reason.contains("simulated NIC failure"), "{:?}", server.io_log());
    assert_eq!(server.frontend().open_sessions(), 0);
    // The healthy connection observed uninterrupted service.
    let c0 = clients[0];
    assert_eq!(
        server.transport().received_text(c0),
        "0.1 ok registered nearby_200_200\n0.2 ok session 1\n0.3 ok answer true\n\
         0.4 ok answer false\n"
    );
    // And the failed session is accounted for in the deployment ledger.
    let cache = server.frontend().deployment().stats().cache;
    assert_eq!(cache.sessions_opened, 2);
    assert_eq!(cache.sessions_closed, 2);
}

// ---------------------------------------------------------------------------
// Scenario 5: an adversarial client probes its secret until refused — it climbs the geometric
// threshold ladder (`x <= c`), each committed `false` answer halving its own remaining
// uncertainty, until the min-size policy refuses; the refusal must be stable under repeats
// and the client's knowledge must stay above the policy threshold.
// ---------------------------------------------------------------------------

/// The adversary's secret: above every ladder threshold, so the walk answers `false` all the
/// way up and each commit shrinks the posterior.
const PROBE_SECRET: (i64, i64) = (399, 123);

fn probe_until_refused(sim: &mut SimNet) -> Vec<Token> {
    let c0 = sim.connect(0);
    let registers: String = (0..support::PROBE_THRESHOLDS.len())
        .map(|i| {
            let q = support::probe_query(i);
            format!("register name={} kind=under members=- pred={}\n", q.name(), q.pred())
        })
        .collect();
    sim.send(c0, 0, registers);
    sim.send(c0, 1000, "open min-size:2000\n"); // session 1
    let (x, y) = PROBE_SECRET;
    let mut at = 2000;
    for i in 0..support::PROBE_THRESHOLDS.len() {
        let q = support::probe_query(i);
        sim.send(c0, at, format!("downgrade session=1 query={} secret={x},{y}\n", q.name()));
        at += 1000;
    }
    // Hammer the refused rung twice more: a refusal must not change knowledge, so it must
    // keep refusing identically.
    let last = support::probe_query(support::PROBE_THRESHOLDS.len() - 1);
    for _ in 0..2 {
        sim.send(c0, at, format!("downgrade session=1 query={} secret={x},{y}\n", last.name()));
        at += 1000;
    }
    sim.send(c0, at, format!("knowledge session=1 secret={x},{y}\n"));
    sim.half_close(c0, at + 1000);
    vec![c0]
}

#[test]
fn an_adversary_probing_until_refused_is_stopped_at_the_policy_floor() {
    let seed = base_seed().wrapping_add(4);
    assert_replays_byte_identically(seed, false, probe_until_refused);
    let (server, clients) = run_scenario(seed, false, probe_until_refused);
    assert_matches_oracle(&server);

    let text = server.transport().received_text(clients[0]);
    let payloads: Vec<&str> =
        text.lines().map(|line| line.split_once(' ').expect("id-prefixed response").1).collect();
    let ladder = support::PROBE_THRESHOLDS.len();
    // Registers + open, then the walk: every rung below the secret answers `false` until the
    // committed posterior is one halving away from the policy floor — then the policy refuses.
    let answers = payloads.iter().filter(|p| **p == "ok answer false").count();
    let denials: Vec<&&str> = payloads.iter().filter(|p| p.starts_with("deny policy")).collect();
    assert_eq!(answers, ladder - 1, "all but the last rung are authorized");
    assert_eq!(denials.len(), 3, "the last rung and both repeats are refused");
    assert!(payloads.iter().all(|p| *p != "ok answer true"), "the walk never brackets the secret");
    // Refusals are stable: knowledge is unchanged on refusal, so the repeats deny identically.
    assert!(denials.iter().all(|d| **d == *denials[0]), "{denials:?}");
    // The knowledge checkpoint: the committed posterior (393 < x <= 400, y free) stays above
    // the min-size floor of 2000 — the ladder cannot push the adversary past the policy.
    let knowledge = payloads.iter().find(|p| p.starts_with("ok knowledge")).expect("checkpoint");
    assert!(knowledge.starts_with("ok knowledge size=2807 "), "{knowledge}");
}

// ---------------------------------------------------------------------------
// Scenario 6: the downgrade storm with mixed codecs — two connections negotiate the binary
// frame protocol, one stays on lines, all three burst into one reactor. Frames and lines
// interleave chunk by chunk; one framed peer aborts mid-frame. Oracle equality must hold
// exactly as for the all-line storm: the codec is an encoding, never a semantics change.
// ---------------------------------------------------------------------------

/// One protocol line as a binary frame (frames are terminator-free).
fn frame(line: &str) -> Vec<u8> {
    anosy_serve::wire::encode_frame(line.trim_end_matches('\n').as_bytes())
}

fn mixed_codec_storm(sim: &mut SimNet) -> Vec<Token> {
    let c0 = sim.connect(0);
    sim.send(c0, 0, anosy_serve::wire::BINARY_PREAMBLE);
    sim.send(c0, 0, frame(&register_line(0)));
    sim.send(c0, 0, frame(&register_line(1)));
    sim.send(c0, 1000, frame("open min-size:100")); // session 1
    let c1 = sim.connect(2000);
    sim.send(c1, 2000, anosy_serve::wire::BINARY_PREAMBLE);
    sim.send(c1, 2000, frame("open min-size:100")); // session 2
                                                    // The bystander speaks the line protocol on the same reactor.
    let c2 = sim.connect(3000);
    sim.send(c2, 3000, "open allow-all\n"); // session 3
    sim.tick(4000);

    let sessions = [(c0, 1u64, true), (c1, 2u64, true), (c2, 3u64, false)];
    for (client, session, binary) in sessions {
        let burst = sim.rng().gen_range(8usize..16);
        for j in 0..burst {
            let (a, b) = (sim.rng().gen_range(0i64..=10), sim.rng().gen_range(0i64..=10));
            let p = support::secret_grid(a, b);
            let line = downgrade_line(session, j % 2, p.as_slice()[0], p.as_slice()[1]);
            let at = 5000 + (j as u64) * 11;
            if binary {
                sim.send(client, at, frame(&line));
            } else {
                sim.send(client, at, line);
            }
        }
    }
    for t in (5000..5300).step_by(25) {
        sim.tick(t);
    }

    // c1 resets with a dangling partial frame on the wire: the fragment is discarded, never
    // interpreted and never reported as truncated (that's the half-close case).
    sim.send(c1, 5900, &frame("downgrade session=2 query=nearby_200_200 secret=1,1")[..7]);
    sim.abort(c1, 6000);
    sim.half_close(c2, 7000);
    sim.half_close(c0, 8000);
    vec![c0, c1, c2]
}

#[test]
fn a_mixed_codec_storm_matches_the_oracle() {
    let seed = base_seed().wrapping_add(5);
    assert_replays_byte_identically(seed, true, mixed_codec_storm);
    let (server, clients) = run_scenario(seed, true, mixed_codec_storm);
    assert_matches_oracle(&server);

    assert_eq!(server.stats().binary_conns, 2, "exactly the preambled connections negotiated");
    assert!(server.stats().frames >= 20, "both framed bursts were counted: {:?}", server.stats());
    assert_eq!(server.frontend().open_sessions(), 0);

    // The framed connections' responses decode to well-formed protocol lines — no corrupt,
    // oversize or truncated frames from a healthy server.
    for &client in &clients[..2] {
        let text = server.transport().received_frame_text(client);
        assert!(
            !text.contains("<corrupt") && !text.contains("<oversize") && !text.contains("<trunc"),
            "the server wrote a malformed frame to {client:?}: {text}"
        );
    }
    // The line-protocol bystander's stream is plain text, untouched by its neighbours' codec.
    assert!(server.transport().received_text(clients[2]).starts_with("2.1 ok session "));
}

/// The acceptance criterion's replay clause, across a spread of derived seeds in one go:
/// whatever the seed does to chunking and interleaving, every scenario stays oracle-equal.
#[test]
fn every_scenario_matches_the_oracle_across_a_seed_spread() {
    for offset in [10, 11, 12] {
        let seed = base_seed().wrapping_add(offset);
        let (server, _) = run_scenario(seed, false, midline_disconnect);
        assert_matches_oracle(&server);
        let (server, _) = run_scenario(seed, true, downgrade_storm);
        assert_matches_oracle(&server);
        let (server, _) = run_scenario(seed, false, reconnect_after_drop);
        assert_matches_oracle(&server);
        let (server, _) = run_scenario(seed, false, one_bad_peer);
        assert_matches_oracle(&server);
        let (server, _) = run_scenario(seed, true, probe_until_refused);
        assert_matches_oracle(&server);
        let (server, _) = run_scenario(seed, true, mixed_codec_storm);
        assert_matches_oracle(&server);
    }
}
