//! The paper-scale population sweep (the `expensive-tests` tier): ≥ 100k simulated tenants
//! compiled onto one `SimNet` schedule and replayed through the full reactor, element-wise
//! oracle-checked. The ROADMAP's "heavy traffic from heterogeneous users" north star, as a
//! test.
//!
//! Gated behind `--features expensive-tests` (the CI expensive lane); `cargo test` runs it as
//! `ignored` otherwise. Honors `ANOSY_SIM_SEED` like the rest of the simulation suites.

#[path = "support/oracle.rs"]
mod support;

use anosy_domains::IntervalDomain;
use anosy_serve::popsim::{self, CompileOptions};
use anosy_serve::{
    Frontend, ServeConfig, Server, ServerConfig, SessionId, SimNet, Token, TranscriptEvent,
};
use anosy_suite::population::{Population, PopulationConfig};

type SimServer = Server<IntervalDomain, SimNet>;

fn base_seed() -> u64 {
    std::env::var("ANOSY_SIM_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0)
}

/// Gentler chaos than the tier-1 runs: big chunks and short latencies keep the schedule (and
/// the run time) proportionate at six-figure tenant counts without changing any semantics.
fn scale_options(net_seed: u64) -> CompileOptions {
    CompileOptions::new(net_seed).with_max_chunk(64).with_max_delay(2).with_ticks_per_window(4)
}

fn run_population(
    population: &Population,
    options: &CompileOptions,
) -> (SimServer, Vec<Token>, Vec<SessionId>) {
    let popsim::CompiledPopulation { net, tokens, sessions, .. } =
        popsim::compile(population, options);
    let deployment = popsim::warm_deployment(population, &ServeConfig::for_tests());
    let mut server =
        Server::new(Frontend::new(deployment), net, ServerConfig::new().ticked(true).recording());
    server.run();
    (server, tokens, sessions)
}

fn assert_matches_oracle(server: &SimServer, population: &Population) {
    let palette = server.frontend().deployment().shared().export_entries();
    let mut oracle = support::Oracle::with_palette(population.layout(), palette);
    let mut expected = Vec::new();
    for event in server.transcript() {
        match event {
            TranscriptEvent::Request { id, request, .. } => {
                expected.push((*id, oracle.apply(id.conn, request)));
            }
            TranscriptEvent::Disconnect { conn, .. } => oracle.disconnect(*conn),
        }
    }
    assert_eq!(server.responses().len(), expected.len(), "one response per request");
    for (index, (got, (id, want))) in server.responses().iter().zip(&expected).enumerate() {
        assert_eq!(&got.request, id, "response {index} answers the wrong request");
        assert_eq!(&got.response, want, "response {index} diverges from the oracle");
    }
    assert_eq!(server.frontend().open_sessions(), oracle.open_sessions(), "session leak");
}

#[test]
#[cfg_attr(
    not(feature = "expensive-tests"),
    ignore = "paper-scale; enable with --features expensive-tests"
)]
fn a_hundred_thousand_tenants_match_the_sequential_oracle() {
    let population = Population::generate(&PopulationConfig::paper(base_seed()));
    assert!(population.tenants.len() >= 100_000, "the paper-scale floor");
    let (server, _, sessions) = run_population(&population, &scale_options(base_seed() ^ 0x5eed));

    assert_matches_oracle(&server, &population);

    // Ledger at drain: exactly the lingering tenants' sessions are live, abandoners were
    // torn down, and opened - closed balances.
    let (_, abandoned, lingering) = population.exit_profile();
    assert_eq!(server.frontend().open_sessions(), lingering);
    assert_eq!(server.frontend().stats().sessions_torn_down, abandoned as u64);
    let cache = server.frontend().deployment().stats().cache;
    assert_eq!(cache.sessions_opened, population.tenants.len() as u64);
    assert_eq!(cache.sessions_opened - cache.sessions_closed, lingering as u64);
    assert_eq!(cache.synth_misses, 0, "the warm palette absorbs every registration");

    // Session-id prediction held across all 100k opens: tenants open in their assigned
    // waves (not index order), so the compile-time ids are a permutation of 1..=N.
    let mut predicted: Vec<u64> = sessions.iter().map(|s| s.0).collect();
    predicted.sort_unstable();
    assert!(predicted.iter().copied().eq(1..=population.tenants.len() as u64));
    // Every tenant connection was counted.
    assert_eq!(server.frontend().stats().tenants, population.tenants.len() as u64);
    // The adversarial cohort was refused at its policy floor.
    assert!(server.frontend().stats().denials >= 3 * population.adversaries() as u64);
}

#[test]
#[cfg_attr(
    not(feature = "expensive-tests"),
    ignore = "paper-scale; enable with --features expensive-tests"
)]
fn ten_thousand_tenants_replay_byte_identically() {
    let config = PopulationConfig::paper(base_seed()).with_tenants(10_000).with_waves(12);
    let population = Population::generate(&config);
    let options = scale_options(base_seed() ^ 0x12ea17);
    let (first, tokens, _) = run_population(&population, &options);
    let (second, tokens_again, _) = run_population(&population, &options);
    assert_eq!(tokens, tokens_again);
    for &token in &tokens {
        assert_eq!(
            first.transport().received(token),
            second.transport().received(token),
            "delivered bytes diverged for {token:?}"
        );
    }
    assert_eq!(first.responses(), second.responses(), "responses diverged");
    assert_eq!(first.transcript(), second.transcript(), "transcript diverged");
    assert_eq!(first.stats(), second.stats(), "server counters diverged");
    assert_eq!(first.frontend().stats(), second.frontend().stats());
}
