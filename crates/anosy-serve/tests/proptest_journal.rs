//! Property: journal recovery is exactly-the-good-prefix, no matter where a crash (or bit rot)
//! cuts the file.
//!
//! * Truncating a journal at **any** byte offset recovers precisely the records whose bytes
//!   survived whole — never a panic, never a half-applied record, and the torn-tail counter
//!   fires exactly when trailing bytes were dropped.
//! * Corrupting any single byte of any record recovers exactly the records before the
//!   corrupted one (the framing checksum rejects the rest).
//! * Replaying a journal that was compacted mid-stream restores the same cache as replaying
//!   one that never compacted — compaction moves entries, it cannot lose or invent them.
//!
//! Entries are hand-built (no synthesis), so thousands of cases cost only file I/O.

use anosy_core::SharedCacheEntry;
use anosy_domains::{AInt, IntervalDomain};
use anosy_logic::{IntExpr, SecretLayout};
use anosy_serve::journal::replay;
use anosy_serve::{Deployment, FlushPolicy, Journal, JournalConfig, ServeConfig};
use anosy_synth::{ApproxKind, IndSets};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn layout() -> SecretLayout {
    SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build()
}

/// A persistable entry whose identity is `xo` (distinct `xo` → distinct cache key). The ind.
/// sets are arbitrary but well-formed — recovery replays entries, it does not verify them.
fn entry(xo: i64) -> SharedCacheEntry<IntervalDomain> {
    let pred = ((IntExpr::var(0) - xo).abs() + (IntExpr::var(1) - 200).abs()).le(100);
    SharedCacheEntry {
        pred,
        layout: layout(),
        kind: ApproxKind::Under,
        members: None,
        indsets: IndSets::new(
            ApproxKind::Under,
            IntervalDomain::from_intervals(vec![AInt::new(121, 279), AInt::new(179, 221)]),
            IntervalDomain::from_intervals(vec![AInt::new(0, 400), AInt::new(0, 99)]),
        ),
    }
}

/// A fresh scratch path per invocation (proptest cases run sequentially per test, but the
/// tests themselves run on parallel threads).
fn scratch(prefix: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join("anosy-serve-proptest-journal");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{prefix}-{}.journal", NEXT.fetch_add(1, Ordering::Relaxed)));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(JournalConfig::new(&path).snapshot_path());
    path
}

/// Writes `xos` as journal records and returns the record boundaries: `boundaries[0]` is the
/// byte length of the bare header, `boundaries[k]` the file length after `k` records — read
/// back from the filesystem after each flushed append, so the test derives them without
/// duplicating the framing arithmetic.
fn build_journal(path: &PathBuf, xos: &[i64]) -> Vec<u64> {
    let recovered = Journal::<IntervalDomain>::recover(
        JournalConfig::new(path).with_flush(FlushPolicy::EveryEntry),
    )
    .unwrap();
    let mut boundaries = vec![std::fs::metadata(path).unwrap().len()];
    for &xo in xos {
        recovered.journal.append(&entry(xo)).unwrap();
        boundaries.push(std::fs::metadata(path).unwrap().len());
    }
    boundaries
}

fn distinct_xos() -> impl Strategy<Value = Vec<i64>> {
    // Shuffled distinct offsets: record k is entry `xos[k]`, so prefix checks are by value.
    // The shim has no shuffle combinator, so decode one of the 5! = 120 permutations.
    (0usize..120).prop_map(|mut index| {
        let mut pool: Vec<i64> = (0..5).map(|k| k * 80).collect();
        let mut xos = Vec::with_capacity(pool.len());
        for factorial in [24, 6, 2, 1, 1] {
            xos.push(pool.remove(index / factorial));
            index %= factorial;
        }
        xos
    })
}

proptest! {
    /// Truncation at any byte offset: replay returns exactly the records that survived whole,
    /// flags a torn tail iff trailing bytes were dropped, and `recover` repairs the file so a
    /// second recovery is clean.
    #[test]
    fn truncation_recovers_exactly_the_good_prefix(
        xos in distinct_xos(),
        cut in 0u64..u64::MAX,
    ) {
        let path = scratch("truncate");
        let boundaries = build_journal(&path, &xos);
        let total = *boundaries.last().unwrap();
        let offset = cut % (total + 1); // any byte offset, including 0 and the full length

        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..offset as usize]).unwrap();

        // The good prefix: every record fully below the cut. A cut inside the header (or mid-
        // record) is a tear; a cut exactly on a boundary is indistinguishable from a clean stop.
        let survivors = boundaries.iter().skip(1).filter(|&&b| b <= offset).count();
        let torn_expected = u64::from(offset != 0 && !boundaries.contains(&offset));

        let (entries, torn) = replay::<IntervalDomain>(&path).unwrap();
        prop_assert_eq!(entries.len(), survivors);
        prop_assert_eq!(torn, torn_expected);
        for (k, got) in entries.iter().enumerate() {
            prop_assert_eq!(&got.pred, &entry(xos[k]).pred, "record {} must survive intact", k);
        }

        // Recovery truncates the tear away: the journal is clean (and appendable) afterwards.
        let recovered =
            Journal::<IntervalDomain>::recover(JournalConfig::new(&path)).unwrap();
        prop_assert_eq!(recovered.entries.len(), survivors);
        prop_assert_eq!(recovered.torn, torn_expected);
        recovered.journal.append(&entry(999)).unwrap();
        drop(recovered);
        let (entries, torn) = replay::<IntervalDomain>(&path).unwrap();
        prop_assert_eq!(entries.len(), survivors + 1);
        prop_assert_eq!(torn, 0);
    }

    /// Flipping any single byte at or past the first record: replay stops exactly before the
    /// record holding the flipped byte — never a panic, never a desynced or altered entry.
    #[test]
    fn single_byte_corruption_recovers_to_the_preceding_records(
        xos in distinct_xos(),
        at in 0u64..u64::MAX,
        flip in 1u8..=255,
    ) {
        let path = scratch("corrupt");
        let boundaries = build_journal(&path, &xos);
        let header = boundaries[0];
        let total = *boundaries.last().unwrap();
        let offset = header + at % (total - header); // any byte of any record, never the header

        let mut bytes = std::fs::read(&path).unwrap();
        bytes[offset as usize] ^= flip; // xor with a nonzero mask: guaranteed to change
        std::fs::write(&path, &bytes).unwrap();

        // The record containing the flipped byte (and everything after it) is rejected.
        let survivors = boundaries.iter().skip(1).filter(|&&b| b <= offset).count();
        let (entries, torn) = replay::<IntervalDomain>(&path).unwrap();
        prop_assert_eq!(entries.len(), survivors);
        prop_assert_eq!(torn, 1);
        for (k, got) in entries.iter().enumerate() {
            prop_assert_eq!(&got.pred, &entry(xos[k]).pred, "record {} must survive intact", k);
        }
    }

    /// Compaction mid-stream is invisible to recovery: a deployment recovered from
    /// snapshot + remainder-journal equals one recovered from the never-compacted journal.
    #[test]
    fn replay_after_compaction_equals_replay_without(
        xos in distinct_xos(),
        cut in 0usize..=5,
    ) {
        let cut = cut.min(xos.len());
        let plain_path = scratch("plain");
        let compacted_path = scratch("compacted");

        build_journal(&plain_path, &xos);

        let recovered = Journal::<IntervalDomain>::recover(
            JournalConfig::new(&compacted_path).with_flush(FlushPolicy::EveryEntry),
        )
        .unwrap();
        for &xo in &xos[..cut] {
            recovered.journal.append(&entry(xo)).unwrap();
        }
        let outcome = recovered
            .journal
            .compact_with(|| xos[..cut].iter().map(|&xo| entry(xo)).collect())
            .unwrap();
        prop_assert_eq!(outcome.truncated, cut as u64);
        for &xo in &xos[cut..] {
            recovered.journal.append(&entry(xo)).unwrap();
        }
        drop(recovered);

        let recover = |path: &PathBuf| {
            let config = ServeConfig::for_tests().with_journal(JournalConfig::new(path));
            let deployment: Deployment<IntervalDomain> = Deployment::new(layout(), config);
            deployment.open_journal(false).unwrap().unwrap();
            deployment.shared().export_entries()
        };
        let plain = recover(&plain_path);
        let compacted = recover(&compacted_path);
        prop_assert_eq!(plain.len(), xos.len());
        prop_assert_eq!(plain.len(), compacted.len());
        for (a, b) in plain.iter().zip(&compacted) {
            prop_assert_eq!(&a.pred, &b.pred);
            prop_assert_eq!(&a.indsets, &b.indsets);
        }
    }
}
