//! Multi-reactor serving suite: the reactor-count-invariance property and the sharding rules.
//!
//! The design claim (ISSUE 7): sharding connections across `N` reactor threads changes
//! wall-clock only, never bytes. The tests here pin that down from several sides:
//!
//! 1. **Reactor-count invariance** (plain + property test): the same seeded population run at
//!    `reactors = 1` and `reactors = N` yields element-wise identical per-connection response
//!    streams — connection tokens are minted in global arrival order, shard assignment is a
//!    pure hash of the token, and session ids are connection-scoped, so no shard can observe
//!    how many other shards exist.
//! 2. **Per-shard oracle equality**: each shard's recorded transcript replays against the
//!    sequential-session oracle (connection-scoped ids) on the same approximations.
//! 3. **Ledger balance across shards**: at drain, `sessions opened − closed` on the *shared*
//!    deployment equals the fold of every shard's `open_sessions` — no session is lost or
//!    double-counted by sharding.
//! 4. **Cross-shard claims are refused**: a `@conn` claim whose id hashes to another shard
//!    answers `! connection … belongs to another reactor shard` instead of binding.
//! 5. **Real sockets**: a [`ReactorPool::serve`] pool over a loopback listener (readiness-based
//!    [`anosy_serve::PollTransport`] shards fed by the acceptor thread) serves conn-scoped
//!    sessions and `reactors=`/`shard=`-stamped stats, end to end.
//!
//! The base seed honors `ANOSY_SIM_SEED` (the CI `sim-stress` lane re-runs this suite and the
//! load generator under several fixed seeds).

#[path = "support/oracle.rs"]
mod support;

use anosy_serve::loadgen::{self, LoadOptions};
use anosy_serve::reactor::shard_of;
use anosy_serve::{wire, ReactorPool, ServeResponse, ServerConfig, SimNet, TranscriptEvent};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};

fn base_seed() -> u64 {
    std::env::var("ANOSY_SIM_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0)
}

/// One recorded load run at the given reactor count.
fn run_at(seed: u64, net_seed: u64, tenants: usize, reactors: u64) -> loadgen::PoolRun {
    let population = loadgen::population(seed, tenants);
    loadgen::run(&population, &LoadOptions::new(net_seed, reactors).recording())
}

#[test]
fn responses_are_invariant_under_the_reactor_count() {
    let seed = base_seed().wrapping_add(7_000);
    let net_seed = base_seed().wrapping_add(7_100);
    let population = loadgen::population(seed, 24);
    let (_, _, lingering) = population.exit_profile();

    let base = loadgen::run(&population, &LoadOptions::new(net_seed, 1).recording());
    for reactors in [2u64, 4] {
        let sharded = loadgen::run(&population, &LoadOptions::new(net_seed, reactors).recording());
        // The headline property: element-wise identical per-connection response streams.
        loadgen::assert_equivalent(&base, &sharded);

        // The ledger balances across shards at drain: the shared deployment's open/close
        // counters account for every shard's surviving sessions, and exactly the lingering
        // tenants stay open however the connections were sharded.
        let stats = &sharded.report.stats;
        assert_eq!(stats.reactors, reactors);
        assert_eq!(stats.shard, reactors, "a fold marks itself shard == reactors");
        assert_eq!(stats.open_sessions, lingering, "exactly the lingerers stay open");
        let cache = stats.serve.cache;
        assert_eq!(cache.sessions_opened, population.tenants.len() as u64);
        assert_eq!(
            cache.sessions_opened - cache.sessions_closed,
            stats.open_sessions as u64,
            "the cross-shard session ledger does not balance at reactors={reactors}"
        );
        // Folded frontend counters match the single-reactor run (same requests, same denials —
        // only their distribution over shards differs).
        assert_eq!(stats.requests, base.report.stats.requests);
        assert_eq!(stats.denials, base.report.stats.denials);
        assert_eq!(stats.tenants, base.report.stats.tenants);
        assert_eq!(stats.sessions_torn_down, base.report.stats.sessions_torn_down);
    }
}

#[test]
fn binary_runs_are_reactor_invariant_and_decode_to_the_line_transcripts() {
    let seed = base_seed().wrapping_add(7_400);
    let net_seed = base_seed().wrapping_add(7_500);
    let population = loadgen::population(seed, 24);

    let line = loadgen::run(&population, &LoadOptions::new(net_seed, 1).recording());
    let binary = loadgen::run(&population, &LoadOptions::new(net_seed, 1).binary().recording());
    let sharded = loadgen::run(&population, &LoadOptions::new(net_seed, 2).binary().recording());

    // Reactor-count invariance holds for framed traffic byte-for-byte, like it does for lines.
    loadgen::assert_equivalent(&binary, &sharded);

    // And across codecs: every tenant's framed response stream decodes to exactly the protocol
    // text the line-protocol run answered — the binary codec changes the encoding, nothing else.
    assert!(binary.report.server.binary_conns >= population.tenants.len() as u64);
    assert!(line.report.server.binary_conns == 0, "the line run must not negotiate frames");
    for &token in &line.tokens {
        assert_eq!(
            line.received_decoded(token),
            binary.received_decoded(token),
            "connection {token:?} answered different protocol text across the codecs"
        );
    }
}

#[test]
fn every_shard_matches_the_sequential_oracle() {
    let seed = base_seed().wrapping_add(7_200);
    let net_seed = base_seed().wrapping_add(7_300);
    let run = run_at(seed, net_seed, 30, 3);
    let reactors = run.report.reactors;
    let mut replayed = 0usize;
    for (index, server) in run.servers.iter().enumerate() {
        // Every connection this shard saw actually hashes here — the acceptor-side routing
        // invariant, asserted on the reactor side.
        let palette = server.frontend().deployment().shared().export_entries();
        let population = loadgen::population(seed, 30);
        let mut oracle = support::Oracle::with_palette(population.layout(), palette).conn_scoped();
        let mut expected = Vec::new();
        for event in server.transcript() {
            match event {
                TranscriptEvent::Request { id, request, .. } => {
                    assert_eq!(
                        shard_of(id.conn.0, reactors),
                        index as u64,
                        "shard {index} processed a foreign connection"
                    );
                    expected.push((*id, oracle.apply(id.conn, request)));
                }
                TranscriptEvent::Disconnect { conn, .. } => oracle.disconnect(*conn),
            }
        }
        assert_eq!(server.responses().len(), expected.len(), "one response per request");
        for (got, (id, want)) in server.responses().iter().zip(&expected) {
            assert_eq!(&got.request, id, "shard {index}: response answers the wrong request");
            assert_eq!(&got.response, want, "shard {index} diverges from the oracle");
        }
        assert_eq!(server.frontend().open_sessions(), oracle.open_sessions(), "session leak");
        replayed += expected.len();
    }
    assert_eq!(replayed, run.report.requests, "every scheduled request was replayed");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The invariance property over independently drawn population seeds, network seeds and
    /// reactor counts (`PROPTEST_CASES` scales the sweep in CI).
    #[test]
    fn reactor_count_invariance_holds_across_seeds(
        seed_offset in 0u64..1_000,
        net_offset in 0u64..1_000,
        reactors in 2u64..=4,
    ) {
        let seed = base_seed().wrapping_add(10_000 + seed_offset);
        let net_seed = base_seed().wrapping_add(20_000 + net_offset);
        let base = run_at(seed, net_seed, 18, 1);
        let sharded = run_at(seed, net_seed, 18, reactors);
        loadgen::assert_equivalent(&base, &sharded);
    }
}

#[test]
fn cross_shard_claims_are_refused() {
    let shards = 2u64;
    let mut net = SimNet::new(base_seed().wrapping_add(7_400)).with_max_delay(0);
    // Mint a few arrival-order tokens; the hash spreads them, so both shards are populated.
    let tokens: Vec<_> = (0..4).map(|i| net.connect(1_000 * (i + 1))).collect();
    let local = *tokens.iter().find(|t| shard_of(t.0, shards) == 0).expect("a shard-0 token");
    let foreign_conn = (0..100u64).find(|c| shard_of(*c, shards) == 1).expect("a shard-1 id");

    // A bare open binds fine; the claim of a foreign logical id must be refused without
    // consuming a sequence number.
    net.send(local, 10_000, "open min-size:100\n");
    net.send(local, 11_000, format!("@{foreign_conn} open min-size:100\n"));
    net.send(local, 12_000, "stats\n");
    for token in &tokens {
        net.half_close(*token, 20_000);
    }

    let deployment = support::warm_deployment();
    let servers = ReactorPool::new(shards).run(&deployment, net.split(shards));
    let text = servers[0].transport().received_text(local);
    let expected_refusal = format!("! connection {foreign_conn} belongs to another reactor shard");
    assert!(
        text.lines().any(|line| line == expected_refusal),
        "missing cross-shard refusal in:\n{text}"
    );
    // The bare open rode the connection-scoped id scheme (base conn id = token) and later
    // lines kept their numbers.
    let open_line = text.lines().next().expect("the open is answered");
    assert_eq!(open_line, format!("{}.1 ok session {}", local.0, ((local.0 + 1) << 32) | 1));
    let stats_line = text.lines().last().expect("the stats request is answered");
    assert!(stats_line.starts_with(&format!("{}.2 ", local.0)), "refusals consume no seq");
    assert!(stats_line.contains("reactors=2 shard=0"), "stats carry the shard stamp");
}

#[test]
fn a_tcp_pool_serves_conn_scoped_sessions_over_real_sockets() {
    let deployment = support::warm_deployment();
    let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
    let addr = listener.local_addr().expect("bound address");
    let pool = ReactorPool::new(2).with_config(ServerConfig::new());

    let client = std::thread::spawn(move || {
        // Sequential connects: token 0 then token 1, deterministically.
        (0..2u64)
            .map(|_| {
                let mut stream = TcpStream::connect(addr).expect("loopback connect");
                stream.write_all(b"open min-size:100\nstats\n").expect("request lines are written");
                stream.shutdown(std::net::Shutdown::Write).expect("half-close");
                let mut transcript = String::new();
                stream.read_to_string(&mut transcript).expect("responses are readable");
                transcript
            })
            .collect::<Vec<_>>()
    });

    let servers = pool.serve(&deployment, listener, Some(2), None).expect("pool serves");
    let transcripts = client.join().expect("client thread");

    assert_eq!(servers.len(), 2);
    for (token, transcript) in transcripts.iter().enumerate() {
        let token = token as u64;
        let shard = shard_of(token, 2);
        let open = transcript.lines().next().expect("open answered");
        assert_eq!(
            open,
            &format!("{token}.1 ok session {}", ((token + 1) << 32) | 1),
            "conn-scoped session id over TCP"
        );
        let stats = transcript.lines().nth(1).expect("stats answered");
        let payload = stats.split_once(' ').expect("id-prefixed response").1;
        let ServeResponse::Stats(snapshot) = wire::parse_response(payload).expect("stats parse")
        else {
            panic!("expected stats, got {payload}");
        };
        assert_eq!(snapshot.reactors, 2);
        assert_eq!(snapshot.shard, shard, "the owning shard answered");
    }
    // Both shards drained; between them they served both connections.
    let served: u64 = servers.iter().map(|s| s.stats().conns_opened).sum();
    assert_eq!(served, 2);
}

#[test]
fn the_served_binary_runs_a_reactor_pool() {
    use std::process::{Command, Stdio};
    let mut child = Command::new(env!("CARGO_BIN_EXE_anosy-served"))
        .args([
            "--layout",
            "x:0:400 y:0:400",
            "--workers",
            "2",
            "--listen",
            "127.0.0.1:0",
            "--reactors",
            "2",
            "--accept",
            "2",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("anosy-served spawns");

    let mut stdout = BufReader::new(child.stdout.take().expect("stdout is piped"));
    let mut banner = String::new();
    stdout.read_line(&mut banner).expect("banner line is readable");
    let rest = banner
        .trim()
        .strip_prefix("# listening on ")
        .unwrap_or_else(|| panic!("unexpected banner `{banner}`"));
    let (addr, reactors) = rest.split_once(' ').expect("pool banner carries the reactor count");
    assert_eq!(reactors, "reactors=2");

    for token in 0..2u64 {
        let mut stream = TcpStream::connect(addr).expect("loopback connect");
        stream.write_all(b"open min-size:100\nstats\n").expect("request lines are written");
        stream.shutdown(std::net::Shutdown::Write).expect("half-close");
        let mut transcript = String::new();
        stream.read_to_string(&mut transcript).expect("responses are readable");
        assert!(
            transcript.contains(&format!("ok session {}", ((token + 1) << 32) | 1)),
            "conn-scoped session id through the binary; got:\n{transcript}"
        );
        assert!(transcript.contains("reactors=2"), "stats are shard-stamped:\n{transcript}");
    }

    let status = child.wait().expect("anosy-served exits");
    assert!(status.success(), "anosy-served failed in --reactors mode");
}

#[test]
fn pool_usage_errors_are_refused_by_the_binary() {
    use std::process::Command;
    let output = Command::new(env!("CARGO_BIN_EXE_anosy-served"))
        .args(["--layout", "x:0:400", "--reactors", "2"])
        .output()
        .expect("anosy-served runs");
    assert_eq!(output.status.code(), Some(2), "--reactors without --listen is refused");

    let output = Command::new(env!("CARGO_BIN_EXE_anosy-served"))
        .args(["--layout", "x:0:400", "--listen", "127.0.0.1:0", "--reactors", "0"])
        .output()
        .expect("anosy-served runs");
    assert_eq!(output.status.code(), Some(2), "zero reactors is refused");
}
