//! Property: batched downgrades agree element-wise with the sequential per-call loop — results,
//! session counters and tracked knowledge — for arbitrary batches (duplicates and out-of-layout
//! secrets included) and arbitrary policy thresholds.

use anosy_core::{AnosySession, MinSizePolicy, QInfo};
use anosy_domains::IntervalDomain;
use anosy_ifc::Protected;
use anosy_logic::{IntExpr, Point, SecretLayout};
use anosy_serve::{downgrade_batch, downgrade_many, ShardPool};
use anosy_solver::SolverConfig;
use anosy_synth::{ApproxKind, QueryDef, SynthConfig, Synthesizer};
use proptest::prelude::*;
use std::sync::OnceLock;

fn layout() -> SecretLayout {
    SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build()
}

fn queries() -> &'static Vec<QInfo<IntervalDomain>> {
    static QUERIES: OnceLock<Vec<QInfo<IntervalDomain>>> = OnceLock::new();
    QUERIES.get_or_init(|| {
        // Synthesized once per process; every proptest case registers clones, so case count
        // does not multiply solver work.
        let mut synth =
            Synthesizer::with_config(SynthConfig::new().with_solver(SolverConfig::for_tests()));
        [(200, 200), (300, 200), (150, 260)]
            .into_iter()
            .map(|(xo, yo)| {
                let pred = ((IntExpr::var(0) - xo).abs() + (IntExpr::var(1) - yo).abs()).le(100);
                let query = QueryDef::new(format!("nearby_{xo}_{yo}"), layout(), pred).unwrap();
                let ind = synth.synth_interval(&query, ApproxKind::Under).unwrap();
                QInfo::new(query, ind)
            })
            .collect()
    })
}

fn pool() -> &'static ShardPool {
    static POOL: OnceLock<ShardPool> = OnceLock::new();
    POOL.get_or_init(|| ShardPool::new(4))
}

fn session_with_queries(threshold: u128) -> AnosySession<IntervalDomain> {
    let mut session = AnosySession::new(layout(), MinSizePolicy::new(threshold));
    for q in queries() {
        session.register(q.clone());
    }
    session
}

/// Secrets drawn from a small palette (duplicates are likely) that straddles the layout
/// boundary (negative and > 400 coordinates occur).
fn arb_secret() -> impl Strategy<Value = Point> {
    (0i64..=10, 0i64..=10).prop_map(|(a, b)| Point::new(vec![a * 45 - 20, b * 44]))
}

fn arb_batch() -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec(arb_secret(), 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batch_agrees_elementwise_with_the_loop(
        secrets in arb_batch(),
        threshold in (0u64..=25_000).prop_map(u128::from),
        query_index in 0usize..3,
    ) {
        let name = queries()[query_index].query().name().to_string();
        let mut looped = session_with_queries(threshold);
        let loop_results: Vec<Result<bool, String>> = secrets
            .iter()
            .map(|p| looped.downgrade(&Protected::new(p.clone()), &name).map_err(|e| e.to_string()))
            .collect();

        let mut batched = session_with_queries(threshold);
        let batch_results: Vec<Result<bool, String>> =
            downgrade_batch(pool(), &mut batched, &secrets, &name)
                .into_iter()
                .map(|r| r.map_err(|e| e.to_string()))
                .collect();

        prop_assert_eq!(&batch_results, &loop_results);
        prop_assert_eq!(batched.stats(), looped.stats());
        prop_assert_eq!(batched.tracked_secrets(), looped.tracked_secrets());
        for p in &secrets {
            prop_assert_eq!(
                batched.knowledge_of(p).size(),
                looped.knowledge_of(p).size(),
                "knowledge diverges for {}", p
            );
        }
    }

    #[test]
    fn many_agrees_elementwise_with_the_loop(
        secret in arb_secret(),
        threshold in (0u64..=25_000).prop_map(u128::from),
        order in proptest::collection::vec(0usize..4, 0..8),
    ) {
        // Index 3 maps to an unregistered query name.
        let names: Vec<String> = order
            .iter()
            .map(|&i| match queries().get(i) {
                Some(q) => q.query().name().to_string(),
                None => "never_registered".to_string(),
            })
            .collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();

        let mut looped = session_with_queries(threshold);
        let loop_results: Vec<Result<bool, String>> = name_refs
            .iter()
            .map(|n| looped.downgrade(&Protected::new(secret.clone()), n).map_err(|e| e.to_string()))
            .collect();

        let mut many = session_with_queries(threshold);
        let many_results: Vec<Result<bool, String>> =
            downgrade_many(&mut many, &secret, &name_refs)
                .into_iter()
                .map(|r| r.map_err(|e| e.to_string()))
                .collect();

        prop_assert_eq!(&many_results, &loop_results);
        prop_assert_eq!(many.stats(), looped.stats());
        prop_assert_eq!(
            many.knowledge_of(&secret).size(),
            looped.knowledge_of(&secret).size()
        );
    }
}
