//! End-to-end smoke test of the **binary frame protocol** against the real `anosy-served`
//! binary: the canned smoke script rides the pipe twice — once as `\n`-terminated lines (the
//! line protocol, exactly as `tests/wire_smoke.rs` and the CI smoke lane drive it) and once as
//! a `anosy-bin v1\n` preamble followed by one checksummed frame per script line. The framed
//! responses are decoded back into lines and diffed against both the line-protocol transcript
//! and the checked-in expectation: the two protocols must carry **identical protocol text**,
//! or the binary codec is not the tax-free encoding it claims to be.
//!
//! Frame/line translation is mechanical: each script line (comments included) becomes one
//! frame payload, blank lines become empty frames (the tick boundary in `--ticked` mode), and
//! the script's deliberately unterminated final line becomes an ordinary complete frame —
//! frames are terminator-free, so "half-closed mid-line" has no binary analogue.

use anosy_serve::wire;
use std::io::Write;
use std::process::{Command, Stdio};

const SCRIPT: &str = include_str!("data/smoke.script");
const EXPECTED: &str = include_str!("data/smoke.expected");

const ARGS: [&str; 5] = ["--layout", "x:0:400 y:0:400", "--workers", "2", "--ticked"];

/// Pipes `input` through `anosy-served` and returns the raw stdout bytes.
fn pipe_through_served(input: &[u8]) -> Vec<u8> {
    let mut child = Command::new(env!("CARGO_BIN_EXE_anosy-served"))
        .args(ARGS)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("anosy-served spawns");
    child.stdin.take().expect("stdin is piped").write_all(input).expect("input is written");
    let output = child.wait_with_output().expect("anosy-served exits");
    assert!(
        output.status.success(),
        "anosy-served failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    output.stdout
}

/// The smoke script re-encoded for the binary protocol: preamble, then one frame per line.
fn framed_script() -> Vec<u8> {
    let mut bytes = wire::BINARY_PREAMBLE.to_vec();
    for line in SCRIPT.split('\n') {
        wire::frame_into(&mut bytes, line.as_bytes());
    }
    bytes
}

/// Decodes a framed response stream back into `\n`-terminated lines, panicking on anything a
/// healthy server never produces (corrupt/oversize frames, a mid-frame end of stream).
fn decode_transcript(bytes: &[u8]) -> String {
    let mut decoder = wire::FrameDecoder::new();
    let mut transcript = String::new();
    for frame in decoder.feed(bytes) {
        match frame {
            wire::DecodedFrame::Frame(payload) => {
                transcript.push_str(std::str::from_utf8(&payload).expect("frame payload is UTF-8"));
                transcript.push('\n');
            }
            other => panic!("the server produced a non-frame unit: {other:?}"),
        }
    }
    assert_eq!(decoder.finish(), None, "the server must end its stream on a frame boundary");
    transcript
}

#[test]
fn the_smoke_script_decodes_identically_over_both_protocols() {
    let line_transcript =
        String::from_utf8(pipe_through_served(SCRIPT.as_bytes())).expect("transcript is UTF-8");
    let binary_transcript = decode_transcript(&pipe_through_served(&framed_script()));

    assert_eq!(
        line_transcript, EXPECTED,
        "the line-protocol transcript diverged from tests/data/smoke.expected"
    );
    assert_eq!(
        binary_transcript, EXPECTED,
        "the decoded binary-protocol transcript diverged from the line protocol's"
    );
}
