//! Thread-stress tests for the shared deployment store.
//!
//! These run both in the default multi-threaded test harness and in the CI thread-stress lane
//! with `RUST_TEST_THREADS=1` (same code, different scheduler pressure). Every assertion is
//! about *determinism under concurrency*: exactly one synthesis per unique query no matter how
//! many sessions race, and downgrade answers identical to the single-threaded path.

use anosy_core::{AnosySession, MinSizePolicy};
use anosy_domains::{AbstractDomain, IntervalDomain, PowersetDomain};
use anosy_ifc::Protected;
use anosy_logic::{IntExpr, Point, SecretLayout};
use anosy_serve::{Deployment, ServeConfig};
use anosy_synth::{ApproxKind, QueryDef, Synthesizer};
use std::thread;

fn layout() -> SecretLayout {
    SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build()
}

fn nearby_query(xo: i64, yo: i64) -> QueryDef {
    let pred = ((IntExpr::var(0) - xo).abs() + (IntExpr::var(1) - yo).abs()).le(100);
    QueryDef::new(format!("nearby_{xo}_{yo}"), layout(), pred).unwrap()
}

const ORIGINS: [(i64, i64); 3] = [(200, 200), (300, 200), (150, 260)];

/// Several probe secrets spread over the space, including region boundaries.
fn probes() -> Vec<Point> {
    vec![
        Point::new(vec![300, 200]),
        Point::new(vec![0, 0]),
        Point::new(vec![200, 300]),
        Point::new(vec![100, 200]),
        Point::new(vec![250, 250]),
    ]
}

/// The single-threaded reference: a self-contained session over the same queries, driven
/// sequentially.
fn sequential_answers<D>() -> Vec<Vec<Result<bool, String>>>
where
    D: AbstractDomain + anosy_core::SynthesizeInto,
{
    let mut session: AnosySession<D> = AnosySession::new(layout(), MinSizePolicy::new(100));
    let mut synth = Synthesizer::with_config(ServeConfig::for_tests().synth.clone());
    for (xo, yo) in ORIGINS {
        session
            .register_synthesized(&mut synth, &nearby_query(xo, yo), ApproxKind::Under, None)
            .unwrap();
    }
    probes()
        .into_iter()
        .map(|p| {
            let secret = Protected::new(p);
            ORIGINS
                .iter()
                .map(|(xo, yo)| {
                    session
                        .downgrade(&secret, &format!("nearby_{xo}_{yo}"))
                        .map_err(|e| e.to_string())
                })
                .collect()
        })
        .collect()
}

#[test]
fn racing_identical_registrations_synthesize_once() {
    let deployment: Deployment<IntervalDomain> =
        Deployment::new(layout(), ServeConfig::for_tests());
    const THREADS: usize = 16;
    thread::scope(|scope| {
        for _ in 0..THREADS {
            let deployment = &deployment;
            scope.spawn(move || {
                let mut session = deployment.session(MinSizePolicy::new(100));
                let mut synth = Synthesizer::with_config(deployment.config().synth.clone());
                session
                    .register_synthesized(
                        &mut synth,
                        &nearby_query(200, 200),
                        ApproxKind::Under,
                        None,
                    )
                    .unwrap();
                let hits = session.stats().synth_cache_hits;
                let misses = session.stats().synth_cache_misses;
                assert_eq!(hits + misses, 1);
            });
        }
    });
    let stats = deployment.stats();
    assert_eq!(stats.cache.sessions_opened, THREADS as u64);
    assert_eq!(stats.cache.synth_misses, 1, "exactly one synthesis per unique query");
    assert_eq!(stats.cache.synth_hits, THREADS as u64 - 1);
    assert_eq!(stats.entries, 1);
}

#[test]
fn racing_distinct_registrations_synthesize_once_each() {
    let deployment: Deployment<IntervalDomain> =
        Deployment::new(layout(), ServeConfig::for_tests());
    // 12 threads, 3 distinct queries, each query registered by 4 threads — plus a second
    // registration per thread to exercise the pure-hit path.
    thread::scope(|scope| {
        for t in 0..12 {
            let deployment = &deployment;
            scope.spawn(move || {
                let (xo, yo) = ORIGINS[t % ORIGINS.len()];
                let mut session = deployment.session(MinSizePolicy::new(100));
                let mut synth = Synthesizer::with_config(deployment.config().synth.clone());
                for _ in 0..2 {
                    session
                        .register_synthesized(
                            &mut synth,
                            &nearby_query(xo, yo),
                            ApproxKind::Under,
                            None,
                        )
                        .unwrap();
                }
            });
        }
    });
    let stats = deployment.stats();
    assert_eq!(stats.cache.synth_misses, ORIGINS.len() as u64, "one synthesis per unique query");
    assert_eq!(stats.cache.synth_hits + stats.cache.synth_misses, 24);
    assert_eq!(stats.entries, ORIGINS.len());
}

#[test]
fn concurrent_sessions_answer_exactly_like_the_sequential_path() {
    let deployment: Deployment<IntervalDomain> =
        Deployment::new(layout(), ServeConfig::for_tests());
    let expected = sequential_answers::<IntervalDomain>();
    let probes = probes();
    thread::scope(|scope| {
        for (probe_index, point) in probes.iter().enumerate() {
            let deployment = &deployment;
            let expected = &expected;
            let point = point.clone();
            scope.spawn(move || {
                let mut session = deployment.session(MinSizePolicy::new(100));
                let mut synth = Synthesizer::with_config(deployment.config().synth.clone());
                for (xo, yo) in ORIGINS {
                    session
                        .register_synthesized(
                            &mut synth,
                            &nearby_query(xo, yo),
                            ApproxKind::Under,
                            None,
                        )
                        .unwrap();
                }
                let secret = Protected::new(point);
                for (query_index, (xo, yo)) in ORIGINS.iter().enumerate() {
                    let got = session
                        .downgrade(&secret, &format!("nearby_{xo}_{yo}"))
                        .map_err(|e| e.to_string());
                    assert_eq!(
                        got, expected[probe_index][query_index],
                        "probe {probe_index} query {query_index} diverged from sequential"
                    );
                }
            });
        }
    });
    // Whatever the interleaving, the aggregate counters balance.
    let stats = deployment.stats();
    assert_eq!(stats.cache.synth_misses, ORIGINS.len() as u64);
    let total_downgrades = stats.cache.downgrades_authorized + stats.cache.downgrades_refused;
    assert_eq!(total_downgrades, (probes.len() * ORIGINS.len()) as u64);
}

#[test]
fn powerset_deployments_share_synthesis_too() {
    let deployment: Deployment<PowersetDomain> =
        Deployment::new(layout(), ServeConfig::for_tests());
    thread::scope(|scope| {
        for _ in 0..6 {
            let deployment = &deployment;
            scope.spawn(move || {
                let mut session = deployment.session(MinSizePolicy::new(100));
                let mut synth = Synthesizer::with_config(deployment.config().synth.clone());
                session
                    .register_synthesized(
                        &mut synth,
                        &nearby_query(200, 200),
                        ApproxKind::Under,
                        Some(3),
                    )
                    .unwrap();
            });
        }
    });
    assert_eq!(deployment.stats().cache.synth_misses, 1);
}

#[test]
fn concurrent_batches_on_separate_sessions_match_the_loop() {
    let deployment: Deployment<IntervalDomain> =
        Deployment::new(layout(), ServeConfig::for_tests());
    deployment.register_query(&nearby_query(200, 200), ApproxKind::Under, None).unwrap();
    let users: Vec<Point> = (0..200).map(|i| Point::new(vec![(i * 13) % 401, 200])).collect();

    // Reference: the sequential loop on a fresh session.
    let mut reference = deployment.session(MinSizePolicy::new(100));
    let mut synth = Synthesizer::with_config(deployment.config().synth.clone());
    reference
        .register_synthesized(&mut synth, &nearby_query(200, 200), ApproxKind::Under, None)
        .unwrap();
    let expected: Vec<Option<bool>> = users
        .iter()
        .map(|p| reference.downgrade(&Protected::new(p.clone()), "nearby_200_200").ok())
        .collect();

    thread::scope(|scope| {
        for _ in 0..4 {
            let deployment = &deployment;
            let users = &users;
            let expected = &expected;
            scope.spawn(move || {
                let mut session = deployment.session(MinSizePolicy::new(100));
                let mut synth = Synthesizer::with_config(deployment.config().synth.clone());
                session
                    .register_synthesized(
                        &mut synth,
                        &nearby_query(200, 200),
                        ApproxKind::Under,
                        None,
                    )
                    .unwrap();
                let got: Vec<Option<bool>> = deployment
                    .downgrade_batch(&mut session, users, "nearby_200_200")
                    .into_iter()
                    .map(Result::ok)
                    .collect();
                assert_eq!(&got, expected);
            });
        }
    });
}
