//! `anosy-served` — the serving protocol over stdin/stdout.
//!
//! The thinnest possible transport around [`anosy_serve::Frontend`]: each input line is one
//! request in the [`anosy_serve::wire`] text form, each output line one tagged response
//! (`<conn>.<seq> <response>`). Examples, tests, CI smoke scripts and future network transports
//! all speak this one format.
//!
//! ```text
//! anosy-served --layout "x:0:400 y:0:400" [options] < requests > responses
//! ```
//!
//! Options:
//!
//! * `--layout "<name:lo:hi> ..."` — the secret space served (required);
//! * `--domain interval|powerset` — the knowledge domain (default `interval`);
//! * `--workers N` — shard-pool width (default: available parallelism);
//! * `--box-memo-min-depth N` — the shared store's `(id, box)` memo threshold;
//! * `--warm-start PATH` — load a synthesis cache before serving;
//! * `--verify-on-load` — re-verify every warm-start entry with the solver
//!   ([`anosy_serve::Deployment::warm_start_verified`]);
//! * `--save-on-exit PATH` — persist the synthesis cache after the last request;
//! * `--ticked` — accumulate requests and tick only on blank lines (and at EOF), so scripted
//!   transcripts control batching; the default ticks after every request line.
//!
//! Input lines starting with `#` are comments. A line may carry an explicit logical connection
//! as `@<conn> <request>`; bare lines ride connection 0. Malformed lines answer with an
//! unnumbered `! <reason>` line (they never reach the frontend, so they consume no sequence
//! number). Start-up actions (warm start, final save) report as `# ...` comment lines, keeping
//! transcripts diffable.

use anosy_core::SynthesizeInto;
use anosy_domains::{IntervalDomain, PowersetDomain};
use anosy_logic::SecretLayout;
use anosy_serve::{wire, ConnId, Deployment, Frontend, ServeConfig};
use anosy_synth::DomainCodec;
use std::io::{BufRead, Write};

struct Options {
    layout: SecretLayout,
    domain: String,
    config: ServeConfig,
    warm_start: Option<std::path::PathBuf>,
    verify_on_load: bool,
    save_on_exit: Option<std::path::PathBuf>,
    ticked: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: anosy-served --layout \"x:0:400 y:0:400\" [--domain interval|powerset] \
         [--workers N] [--box-memo-min-depth N] [--warm-start PATH [--verify-on-load]] \
         [--save-on-exit PATH] [--ticked]"
    );
    std::process::exit(2);
}

fn parse_options() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut layout = None;
    let mut domain = "interval".to_string();
    let mut config = ServeConfig::new();
    let mut warm_start = None;
    let mut verify_on_load = false;
    let mut save_on_exit = None;
    let mut ticked = false;
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--layout" => {
                layout = Some(wire::parse_layout(&value(&mut i)).unwrap_or_else(|| usage()));
            }
            "--domain" => {
                domain = value(&mut i);
                if domain != "interval" && domain != "powerset" {
                    usage();
                }
            }
            "--workers" => {
                let workers = value(&mut i).parse().unwrap_or_else(|_| usage());
                config = config.with_workers(workers);
            }
            "--box-memo-min-depth" => {
                let depth = value(&mut i).parse().unwrap_or_else(|_| usage());
                config = config.with_box_memo_min_depth(depth);
            }
            "--warm-start" => warm_start = Some(std::path::PathBuf::from(value(&mut i))),
            "--verify-on-load" => verify_on_load = true,
            "--save-on-exit" => save_on_exit = Some(std::path::PathBuf::from(value(&mut i))),
            "--ticked" => ticked = true,
            _ => usage(),
        }
        i += 1;
    }
    let Some(layout) = layout else { usage() };
    Options { layout, domain, config, warm_start, verify_on_load, save_on_exit, ticked }
}

fn main() {
    let options = parse_options();
    if options.domain == "powerset" {
        serve::<PowersetDomain>(options);
    } else {
        serve::<IntervalDomain>(options);
    }
}

fn serve<D>(options: Options)
where
    D: DomainCodec + SynthesizeInto + Send + Sync + 'static,
{
    let deployment: Deployment<D> = Deployment::new(options.layout.clone(), options.config.clone());
    let stdout = std::io::stdout();
    let mut out = stdout.lock();

    if let Some(path) = &options.warm_start {
        match deployment.warm_start_with(path, options.verify_on_load) {
            Ok(outcome) => writeln!(
                out,
                "# warm-start loaded={} skipped={}",
                outcome.installed, outcome.skipped
            ),
            Err(e) => writeln!(out, "# warm-start failed: {e}"),
        }
        .expect("stdout is writable");
    }

    let mut frontend = Frontend::new(deployment);
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            // A non-UTF-8 line is a malformed request, not a reason to kill every open
            // session: answer like any other unparseable line and keep serving.
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                writeln!(out, "! non-UTF-8 input line").expect("stdout is writable");
                continue;
            }
            // A real I/O error on stdin means the transport is gone; drain and exit cleanly.
            Err(_) => break,
        };
        let trimmed = line.trim();
        if trimmed.starts_with('#') {
            continue;
        }
        if trimmed.is_empty() {
            flush(&mut frontend, &mut out);
            continue;
        }
        let (conn, request_text) = match trimmed.strip_prefix('@') {
            Some(rest) => match rest.split_once(char::is_whitespace) {
                Some((id, rest)) => match id.parse() {
                    Ok(id) => (ConnId(id), rest),
                    Err(_) => {
                        writeln!(out, "! bad connection id `{id}`").expect("stdout is writable");
                        continue;
                    }
                },
                None => {
                    writeln!(out, "! request missing after `@{rest}`").expect("stdout is writable");
                    continue;
                }
            },
            None => (ConnId(0), trimmed),
        };
        match wire::parse_request(request_text, &options.layout) {
            Ok(request) => {
                frontend.submit(conn, request);
                if !options.ticked {
                    flush(&mut frontend, &mut out);
                }
            }
            Err(e) => writeln!(out, "! {e}").expect("stdout is writable"),
        }
    }
    flush(&mut frontend, &mut out);

    if let Some(path) = &options.save_on_exit {
        match frontend.deployment().save_cache(path) {
            Ok(entries) => writeln!(out, "# saved entries={entries}"),
            Err(e) => writeln!(out, "# save failed: {e}"),
        }
        .expect("stdout is writable");
    }
}

/// Runs one tick and writes every tagged response as `<conn>.<seq> <response>`.
fn serve_responses<D>(frontend: &mut Frontend<D>) -> Vec<String>
where
    D: DomainCodec + SynthesizeInto + Send + Sync + 'static,
{
    frontend
        .tick()
        .into_iter()
        .map(|tagged| format!("{} {}", tagged.request, wire::encode_response(&tagged.response)))
        .collect()
}

fn flush<D>(frontend: &mut Frontend<D>, out: &mut impl Write)
where
    D: DomainCodec + SynthesizeInto + Send + Sync + 'static,
{
    for line in serve_responses(frontend) {
        writeln!(out, "{line}").expect("stdout is writable");
    }
    out.flush().expect("stdout is flushable");
}
