//! `anosy-served` — the serving protocol over stdin/stdout or a TCP socket.
//!
//! Both transports run the same event-loop reactor ([`anosy_serve::Server`]) around the sans-IO
//! [`anosy_serve::Frontend`]: each input line is one request in the [`anosy_serve::wire`] text
//! form, each output line one tagged response (`<conn>.<seq> <response>`). Examples, tests, CI
//! smoke scripts and network clients all speak this one format — the canned smoke transcript
//! produces byte-identical output over a pipe and over a loopback socket.
//!
//! ```text
//! anosy-served --layout "x:0:400 y:0:400" [options] < requests > responses
//! anosy-served --layout "x:0:400 y:0:400" --listen 127.0.0.1:7070 [options]
//! ```
//!
//! Options:
//!
//! * `--layout "<name:lo:hi> ..."` — the secret space served (required);
//! * `--domain interval|powerset` — the knowledge domain (default `interval`);
//! * `--workers N` — shard-pool width (default: available parallelism);
//! * `--box-memo-min-depth N` — the shared store's `(id, box)` memo threshold;
//! * `--warm-start PATH` — load a synthesis cache before serving;
//! * `--verify-on-load` — re-verify every warm-start entry with the solver
//!   ([`anosy_serve::Deployment::warm_start_verified`]);
//! * `--save-on-exit PATH` — persist the synthesis cache after the last request;
//! * `--journal PATH` — durability between saves ([`anosy_serve::journal`]): warm-restart from
//!   `PATH.snapshot` + `PATH` (journal replay, torn-tail tolerant, composing with
//!   `--verify-on-load`), then append every newly synthesized entry to `PATH` as it commits.
//!   Recovery reports as a `# journal recovered replayed=N torn=N` line;
//! * `--journal-flush every-entry-fsync|every-entry|every-N|on-tick` — when journal appends
//!   reach the OS (default `every-entry`); `every-entry-fsync` additionally `fsync`s every
//!   append to the device, the strongest rung;
//! * `--compact-every N` — with `--journal`: every `N` server ticks, fold the journal into its
//!   snapshot while serving continues (no stop-the-world);
//! * `--ticked` — accumulate requests and tick only on blank lines, quiescence timers and
//!   connection teardown, so scripted transcripts control batching; the default ticks after
//!   every request line;
//! * `--listen ADDR` — serve TCP connections on `ADDR` instead of stdin/stdout (port 0 picks a
//!   free port; the bound address is announced as a `# listening on ...` line on stdout).
//!   Sockets are served readiness-based ([`anosy_serve::PollTransport`]: epoll where the
//!   platform has it, the portable sleep loop otherwise) — responses are byte-identical either
//!   way;
//! * `--accept N` — with `--listen`: exit after `N` connections have been served (tests);
//! * `--tick-ms MS` — with `--listen --ticked`: quiescence timer, ticking pending work after
//!   `MS` milliseconds of idleness;
//! * `--reactors N` — with `--listen`: shard connections across `N` reactor threads over the
//!   one shared deployment ([`anosy_serve::ReactorPool`]; arrival-order hash assignment,
//!   connection-scoped session ids, responses invariant under `N`). Default `1`: the
//!   standalone single-reactor server;
//! * `--io-log-cap N` — deployment-wide cap on retained connection-failure log entries
//!   (a reactor pool divides it among shards and re-applies it to the merged log);
//! * `--trace PATH` — after the run, write every reactor's recorded spans as a
//!   chrome://tracing JSON array (load it in `about:tracing` or Perfetto). Over stdin/stdout
//!   the trace clock is the reactor's poll counter, so a piped script traces byte-identically
//!   on every replay — the CI trace-smoke check;
//! * `--no-telemetry` — skip installing per-reactor telemetry collectors (the overhead
//!   baseline; `metrics`/`trace` requests then answer empty).
//!
//! A connection whose very first bytes are the magic preamble `anosy-bin v1\n` is served the
//! **binary frame protocol** instead: every subsequent request rides a
//! `[len u32 LE][fnv1a-64 u64 LE][payload]` frame whose payload is one protocol line, and every
//! response comes back framed the same way (see [`anosy_serve::wire`], "Binary frames").
//! Anything else falls back to the line protocol — old clients keep working unchanged.
//!
//! Input lines starting with `#` are comments. A line may carry an explicit logical connection
//! as `@<conn> <request>`; bare lines ride the transport connection's own id (stdin: 0, sockets:
//! accept order). Malformed lines answer with an unnumbered `! <reason>` line (they never reach
//! the frontend, so they consume no sequence number). Per-connection I/O errors close *that
//! connection* — its sessions are released and the denial is logged to stderr; the process keeps
//! serving. Start-up actions (warm start, final save) report as `# ...` comment lines, keeping
//! transcripts diffable.

use anosy_core::SynthesizeInto;
use anosy_domains::{IntervalDomain, PowersetDomain};
use anosy_logic::SecretLayout;
use anosy_serve::{
    reactor, wire, Deployment, FlushPolicy, Frontend, JournalConfig, PollTransport, ReactorPool,
    ServeConfig, Server, ServerConfig, StdioTransport, Transport,
};
use anosy_synth::DomainCodec;
use std::io::Write;
use std::time::Duration;

struct Options {
    layout: SecretLayout,
    domain: String,
    config: ServeConfig,
    warm_start: Option<std::path::PathBuf>,
    verify_on_load: bool,
    save_on_exit: Option<std::path::PathBuf>,
    ticked: bool,
    listen: Option<String>,
    accept: Option<usize>,
    tick_ms: Option<u64>,
    reactors: u64,
    trace: Option<std::path::PathBuf>,
    telemetry: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: anosy-served --layout \"x:0:400 y:0:400\" [--domain interval|powerset] \
         [--workers N] [--box-memo-min-depth N] [--warm-start PATH [--verify-on-load]] \
         [--save-on-exit PATH] [--journal PATH \
         [--journal-flush every-entry-fsync|every-entry|every-N|on-tick] \
         [--compact-every N]] [--ticked] [--io-log-cap N] [--trace PATH] [--no-telemetry] \
         [--listen ADDR [--accept N] [--tick-ms MS] [--reactors N]]"
    );
    std::process::exit(2);
}

fn parse_options() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut layout = None;
    let mut domain = "interval".to_string();
    let mut config = ServeConfig::new();
    let mut warm_start = None;
    let mut verify_on_load = false;
    let mut save_on_exit = None;
    let mut journal = None;
    let mut journal_flush = FlushPolicy::EveryEntry;
    let mut compact_every = None;
    let mut ticked = false;
    let mut listen = None;
    let mut accept = None;
    let mut tick_ms = None;
    let mut reactors = 1u64;
    let mut trace = None;
    let mut telemetry = true;
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--layout" => {
                layout = Some(wire::parse_layout(&value(&mut i)).unwrap_or_else(|| usage()));
            }
            "--domain" => {
                domain = value(&mut i);
                if domain != "interval" && domain != "powerset" {
                    usage();
                }
            }
            "--workers" => {
                let workers = value(&mut i).parse().unwrap_or_else(|_| usage());
                config = config.with_workers(workers);
            }
            "--box-memo-min-depth" => {
                let depth = value(&mut i).parse().unwrap_or_else(|_| usage());
                config = config.with_box_memo_min_depth(depth);
            }
            "--io-log-cap" => {
                let cap = value(&mut i).parse().unwrap_or_else(|_| usage());
                config = config.with_io_log_cap(cap);
            }
            "--trace" => trace = Some(std::path::PathBuf::from(value(&mut i))),
            "--no-telemetry" => telemetry = false,
            "--warm-start" => warm_start = Some(std::path::PathBuf::from(value(&mut i))),
            "--verify-on-load" => verify_on_load = true,
            "--save-on-exit" => save_on_exit = Some(std::path::PathBuf::from(value(&mut i))),
            "--journal" => journal = Some(std::path::PathBuf::from(value(&mut i))),
            "--journal-flush" => {
                journal_flush = FlushPolicy::parse(&value(&mut i)).unwrap_or_else(|| usage());
            }
            "--compact-every" => {
                compact_every = Some(value(&mut i).parse().unwrap_or_else(|_| usage()));
            }
            "--ticked" => ticked = true,
            "--listen" => listen = Some(value(&mut i)),
            "--accept" => accept = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--tick-ms" => tick_ms = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--reactors" => {
                reactors = value(&mut i).parse().unwrap_or_else(|_| usage());
                if reactors == 0 {
                    usage();
                }
            }
            _ => usage(),
        }
        i += 1;
    }
    let Some(layout) = layout else { usage() };
    if (accept.is_some() || tick_ms.is_some() || reactors > 1) && listen.is_none() {
        usage();
    }
    match journal {
        Some(path) => {
            let mut journal = JournalConfig::new(path).with_flush(journal_flush);
            if let Some(ticks) = compact_every {
                journal = journal.with_compact_every(ticks);
            }
            config = config.with_journal(journal);
        }
        None if compact_every.is_some() => usage(),
        None => {}
    }
    Options {
        layout,
        domain,
        config,
        warm_start,
        verify_on_load,
        save_on_exit,
        ticked,
        listen,
        accept,
        tick_ms,
        reactors,
        trace,
        telemetry,
    }
}

fn main() {
    let options = parse_options();
    if options.domain == "powerset" {
        serve::<PowersetDomain>(options);
    } else {
        serve::<IntervalDomain>(options);
    }
}

fn serve<D>(options: Options)
where
    D: DomainCodec + SynthesizeInto + Send + Sync + 'static,
{
    let deployment: Deployment<D> = Deployment::new(options.layout.clone(), options.config.clone());
    let stdout = std::io::stdout();
    let mut out = stdout.lock();

    // Warm restart from the journal's snapshot + replay, then attach the commit observer so
    // everything synthesized from here on is journaled as it lands.
    match deployment.open_journal(options.verify_on_load) {
        Ok(Some(recovery)) => writeln!(
            out,
            "# journal recovered replayed={} torn={} snapshot_loaded={} skipped={}",
            recovery.replayed,
            recovery.torn,
            recovery.snapshot.installed,
            recovery.snapshot.skipped + recovery.replay_skipped,
        )
        .expect("stdout is writable"),
        Ok(None) => {}
        Err(e) => {
            eprintln!("anosy-served: cannot open journal: {e}");
            std::process::exit(1);
        }
    }

    if let Some(path) = &options.warm_start {
        match deployment.warm_start_with(path, options.verify_on_load) {
            Ok(outcome) => writeln!(
                out,
                "# warm-start loaded={} skipped={}",
                outcome.installed, outcome.skipped
            ),
            Err(e) => writeln!(out, "# warm-start failed: {e}"),
        }
        .expect("stdout is writable");
    }

    let server_config = ServerConfig::new()
        .ticked(options.ticked)
        .with_telemetry(options.telemetry)
        .with_io_log_cap(options.config.io_log_cap);
    match &options.listen {
        // The reactor pool: an acceptor thread routes connections to N readiness-based
        // reactor shards over the one shared deployment.
        Some(addr) if options.reactors > 1 => {
            let tick_interval = options.tick_ms.map(Duration::from_millis);
            let listener = std::net::TcpListener::bind(addr).unwrap_or_else(|e| {
                eprintln!("anosy-served: cannot listen on {addr}: {e}");
                std::process::exit(1);
            });
            match listener.local_addr() {
                Ok(bound) => writeln!(out, "# listening on {bound} reactors={}", options.reactors),
                Err(e) => writeln!(out, "# listening (address unavailable: {e})"),
            }
            .expect("stdout is writable");
            out.flush().expect("stdout is flushable");
            drop(out);
            let pool = ReactorPool::new(options.reactors).with_config(server_config);
            let servers = pool
                .serve(&deployment, listener, options.accept, tick_interval)
                .unwrap_or_else(|e| {
                    eprintln!("anosy-served: cannot set up the reactor pool: {e}");
                    std::process::exit(1);
                });
            let folded = reactor::fold_stats(
                &servers.iter().map(|s| s.frontend().snapshot()).collect::<Vec<_>>(),
            );
            eprintln!(
                "# pool drained: reactors={} requests={} open={} denied={}",
                options.reactors, folded.requests, folded.open_sessions, folded.denials
            );
            let logs: Vec<&[anosy_serve::IoLogEntry]> =
                servers.iter().map(|s| s.io_log()).collect();
            for entry in reactor::merge_io_logs(&logs, options.config.io_log_cap) {
                eprintln!("# merged io-log: {entry}");
            }
            let reports: Vec<anosy_serve::Report> =
                servers.iter().filter_map(|s| s.telemetry_report().cloned()).collect();
            write_trace(&options, &reports);
            save_on_exit(&deployment, &options);
        }
        Some(addr) => {
            let tick_interval = options.tick_ms.map(Duration::from_millis);
            let transport = PollTransport::bind(addr, options.accept, tick_interval)
                .unwrap_or_else(|e| {
                    eprintln!("anosy-served: cannot listen on {addr}: {e}");
                    std::process::exit(1);
                });
            match transport.local_addr() {
                Ok(bound) => writeln!(out, "# listening on {bound}"),
                Err(e) => writeln!(out, "# listening (address unavailable: {e})"),
            }
            .expect("stdout is writable");
            out.flush().expect("stdout is flushable");
            drop(out);
            let mut server = Server::new(Frontend::new(deployment), transport, server_config);
            finish(&mut server, &options);
        }
        None => {
            drop(out);
            let mut server =
                Server::new(Frontend::new(deployment), StdioTransport::new(), server_config);
            finish(&mut server, &options);
        }
    }
}

/// Persists the synthesis cache when `--save-on-exit` asked for it.
fn save_on_exit<D>(deployment: &Deployment<D>, options: &Options)
where
    D: DomainCodec + SynthesizeInto + Send + Sync + 'static,
{
    if let Some(path) = &options.save_on_exit {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        match deployment.save_cache(path) {
            Ok(outcome) => {
                writeln!(out, "# saved entries={} skipped={}", outcome.written, outcome.skipped)
            }
            Err(e) => writeln!(out, "# save failed: {e}"),
        }
        .expect("stdout is writable");
        out.flush().expect("stdout is flushable");
    }
}

/// Writes the run's spans as a chrome://tracing JSON array when `--trace` asked for it.
fn write_trace(options: &Options, reports: &[anosy_serve::Report]) {
    let Some(path) = &options.trace else { return };
    match std::fs::write(path, anosy_serve::trace_json(reports)) {
        Ok(()) => eprintln!("# trace written: {} ({} reactors)", path.display(), reports.len()),
        Err(e) => eprintln!("# trace write failed: {e}"),
    }
}

/// Runs the reactor to completion (per-connection denials reach stderr as they happen),
/// writes the trace when asked, and persists the synthesis cache when `--save-on-exit`
/// asked for it.
fn finish<D, T>(server: &mut Server<D, T>, options: &Options)
where
    D: DomainCodec + SynthesizeInto + Send + Sync + 'static,
    T: Transport,
{
    server.run();
    let reports: Vec<anosy_serve::Report> =
        server.telemetry_report().cloned().into_iter().collect();
    write_trace(options, &reports);
    save_on_exit(server.frontend().deployment(), options);
}
