//! Compiles an [`anosy_suite::population`] workload into a [`SimNet`] script.
//!
//! The population generator decides *what* every tenant does; this module decides *when*, in
//! `SimNet`'s virtual time, such that the run is deterministic where it must be and chaotic
//! where it may be:
//!
//! * **Opens ride dedicated, globally ordered slots.** Tenant `i`'s `open` line fully arrives
//!   before tenant `i + 1`'s connection even opens, so the frontend assigns session ids in
//!   tenant order and the compiler can predict them (`CompiledPopulation::sessions`) — every
//!   later `downgrade session=…` line is compiled against a known id.
//! * **Bursts share per-round chaos windows.** All burst lines of a round land in one window
//!   at staggered offsets; `SimNet`'s seeded chunking, latency and cross-connection
//!   interleaving then produce a seed-dependent arrival order. Per-connection FIFO still
//!   guarantees each tenant's `register` precedes its own first use of a query, so any
//!   interleaving is oracle-equivalent.
//! * **Exits share a window after the owner's last burst** — clean `close` lines followed by
//!   half-closes, abortive resets for abandoners, nothing for lingerers (whose sessions the
//!   drain-time ledger checks must account for).
//!
//! Waves overlap: wave `w` connects in round `w` and bursts ride rounds `w, w + 1, …`, so a
//! round mixes fresh opens, mid-life bursts and exits — genuine session churn at a bounded
//! number of live sessions (`≈ tenants / waves × max_bursts`).

use crate::{wire, Deployment, ServeConfig, ServeRequest, SessionId, SimNet, Token};
use anosy_core::SharedCacheEntry;
use anosy_domains::IntervalDomain;
use anosy_suite::population::{Exit, Population, TenantAction};
use anosy_synth::ApproxKind;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Spacing between actions inside one shared chaos window (small and odd, so seeded chunk
/// latencies genuinely interleave neighbours).
const INTRA_WINDOW_STEP: u64 = 7;

/// Scheduling knobs for one compiled run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileOptions {
    /// Seed of the simulated network (chunking, latency, interleaving). Independent of the
    /// population's seed: one population can be replayed under many network schedules.
    pub net_seed: u64,
    /// Chunking bound handed to [`SimNet::with_max_chunk`].
    pub max_chunk: usize,
    /// Latency bound handed to [`SimNet::with_max_delay`].
    pub max_delay: u64,
    /// Quiescence timer ticks scheduled per chaos window (for `--ticked` servers).
    pub ticks_per_window: usize,
    /// Predict connection-scoped session ids (`((token + 1) << 32) | 1` for each tenant's
    /// single open — see [`crate::Frontend::with_conn_scoped_sessions`]) instead of the
    /// standalone server's global sequence. Set this when the compiled net will drive a
    /// [`crate::ReactorPool`] (any reactor count): pool frontends always run conn-scoped, so
    /// the predicted ids are invariant under resharding.
    pub conn_scoped: bool,
    /// Speak the binary frame protocol: every connection opens with
    /// [`wire::BINARY_PREAMBLE`], and each scheduled request line rides a checksummed frame
    /// ([`wire::encode_frame`]) instead of a `\n`-terminated line. Responses come back framed
    /// too — decode them with [`crate::SimNet::received_frame_text`].
    pub binary: bool,
}

impl CompileOptions {
    /// Default chaos: `SimNet`'s byte-mangling defaults, two ticks per window, standalone
    /// (globally sequential) session ids.
    pub fn new(net_seed: u64) -> CompileOptions {
        CompileOptions {
            net_seed,
            max_chunk: 17,
            max_delay: 5,
            ticks_per_window: 2,
            conn_scoped: false,
            binary: false,
        }
    }

    /// Switches session-id prediction to the connection-scoped scheme reactor pools use.
    pub fn conn_scoped(mut self) -> CompileOptions {
        self.conn_scoped = true;
        self
    }

    /// Switches every connection to the binary frame protocol (preamble + framed requests).
    pub fn binary(mut self) -> CompileOptions {
        self.binary = true;
        self
    }

    /// Overrides the chunking bound (large chunks make huge runs cheaper to schedule).
    pub fn with_max_chunk(mut self, max_chunk: usize) -> CompileOptions {
        self.max_chunk = max_chunk.max(1);
        self
    }

    /// Overrides the latency bound.
    pub fn with_max_delay(mut self, max_delay: u64) -> CompileOptions {
        self.max_delay = max_delay;
        self
    }

    /// Overrides the tick density.
    pub fn with_ticks_per_window(mut self, ticks: usize) -> CompileOptions {
        self.ticks_per_window = ticks;
        self
    }
}

/// A population compiled onto a simulated network.
#[derive(Debug)]
pub struct CompiledPopulation {
    /// The scheduled network, ready to hand to [`crate::Server::new`].
    pub net: SimNet,
    /// Tenant index → the tenant's connection token.
    pub tokens: Vec<Token>,
    /// Tenant index → the session id the frontend will assign to the tenant's `open` (opens
    /// ride dedicated ordered slots, so ids are known at compile time).
    pub sessions: Vec<SessionId>,
    /// Virtual time after the last scheduled event — append post-run probes (an auditing
    /// `stats` connection, say) strictly after this.
    pub end_time: u64,
    /// Total protocol requests scheduled.
    pub requests: usize,
}

/// Compiles `population` into a deterministic `SimNet` script (see the [module docs](self)
/// for the scheduling scheme).
pub fn compile(population: &Population, options: &CompileOptions) -> CompiledPopulation {
    let mut net = SimNet::new(options.net_seed)
        .with_max_chunk(options.max_chunk)
        .with_max_delay(options.max_delay);

    // A slot must outlast any one line's worst-case arrival spread (≈ line length × max
    // delay); population lines are comfortably under 512 bytes.
    let slot = 2_000.max(512 * options.max_delay);
    let waves = population.config.waves;
    let max_bursts = population.tenants.iter().map(|t| t.bursts.len()).max().unwrap_or(0);

    let mut by_wave: Vec<Vec<usize>> = vec![Vec::new(); waves];
    for tenant in &population.tenants {
        by_wave[tenant.wave.min(waves - 1)].push(tenant.index);
    }

    let n = population.tenants.len();
    let mut tokens = vec![Token(u64::MAX); n];
    let mut sessions = vec![SessionId(0); n];
    let mut next_session = 0u64;
    let mut requests = 0usize;
    let mut cursor = 0u64;

    for round in 0..waves + max_bursts {
        // Phase 1: this wave's opens, one dedicated slot each, in tenant order.
        if round < waves {
            for &index in &by_wave[round] {
                cursor += slot;
                let token = net.connect(cursor);
                if options.binary {
                    // Per-connection FIFO puts the preamble strictly before the open frame.
                    net.send(token, cursor, wire::BINARY_PREAMBLE);
                }
                let open =
                    ServeRequest::OpenSession { policy: population.tenants[index].policy.clone() };
                net.send(token, cursor, encode_line(&open, options.binary));
                tokens[index] = token;
                sessions[index] = if options.conn_scoped {
                    // Each tenant opens exactly once, on its own connection: under the
                    // conn-scoped scheme the id is the token's first slot, independent of
                    // what any other connection (on any shard) does.
                    SessionId(((token.0 + 1) << 32) | 1)
                } else {
                    next_session += 1;
                    SessionId(next_session)
                };
                requests += 1;
            }
        }

        // Phase 2: one shared chaos window for every burst due this round.
        cursor += slot;
        let window = cursor;
        let mut offset = 0u64;
        for burst_index in 0..max_bursts.min(round + 1) {
            let wave = round - burst_index;
            if wave >= waves {
                continue;
            }
            for &index in &by_wave[wave] {
                let tenant = &population.tenants[index];
                let Some(burst) = tenant.bursts.get(burst_index) else { continue };
                for action in burst {
                    let request = request_of(action, sessions[index], population);
                    net.send(
                        tokens[index],
                        window + offset * INTRA_WINDOW_STEP,
                        encode_line(&request, options.binary),
                    );
                    offset += 1;
                    requests += 1;
                }
            }
        }
        let span = offset * INTRA_WINDOW_STEP + 1;
        for tick in 0..options.ticks_per_window as u64 {
            net.tick(window + span * (tick + 1) / (options.ticks_per_window as u64 + 1));
        }
        cursor = window + span + slot;

        // Phase 3: exits of tenants whose last burst rode this round, in one shared window.
        cursor += slot;
        let exit_window = cursor;
        let mut exits = 0u64;
        for burst_count in 1..=max_bursts {
            let Some(wave) = (round + 1).checked_sub(burst_count) else { continue };
            if wave >= waves {
                continue;
            }
            for &index in &by_wave[wave] {
                let tenant = &population.tenants[index];
                if tenant.bursts.len() != burst_count {
                    continue;
                }
                let at = exit_window + exits * INTRA_WINDOW_STEP;
                match tenant.exit {
                    Exit::Clean => {
                        let close = ServeRequest::CloseSession { session: sessions[index] };
                        net.send(tokens[index], at, encode_line(&close, options.binary));
                        // Floors to the close line's last chunk: FIN after the final write.
                        net.half_close(tokens[index], at);
                        requests += 1;
                    }
                    Exit::Abandon => net.abort(tokens[index], at),
                    Exit::Linger => {}
                }
                exits += 1;
            }
        }
        cursor = exit_window + exits * INTRA_WINDOW_STEP + slot;
    }

    CompiledPopulation { net, tokens, sessions, end_time: cursor, requests }
}

/// The typed request for one tenant action.
fn request_of(action: &TenantAction, session: SessionId, population: &Population) -> ServeRequest {
    match action {
        TenantAction::Register { query } => ServeRequest::RegisterQuery {
            query: population.queries[*query].clone(),
            kind: ApproxKind::Under,
            members: None,
        },
        TenantAction::Downgrade { query, secret } => ServeRequest::Downgrade {
            session,
            secret: secret.clone(),
            query: population.queries[*query].name().into(),
        },
        TenantAction::Knowledge { secret } => {
            ServeRequest::Knowledge { session, secret: secret.clone() }
        }
    }
}

fn encode_line(request: &ServeRequest, binary: bool) -> Vec<u8> {
    let line = wire::encode_request(request).expect("population requests are wire-safe");
    if binary {
        wire::encode_frame(line.as_bytes())
    } else {
        let mut bytes = line.into_bytes();
        bytes.push(b'\n');
        bytes
    }
}

/// The population palette's synthesized entries, computed once per process per distinct
/// `(layout, palette, synth config)` and cloned out of a process-wide cache — scenario counts
/// must not multiply solver work.
pub fn palette_entries(
    population: &Population,
    config: &ServeConfig,
) -> Vec<SharedCacheEntry<IntervalDomain>> {
    static CACHE: OnceLock<Mutex<HashMap<String, Vec<SharedCacheEntry<IntervalDomain>>>>> =
        OnceLock::new();
    let key = format!("{:?}|{:?}|{:?}", population.layout(), population.queries, config.synth);
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache.lock().expect("palette cache lock").get(&key) {
        return hit.clone();
    }
    let deployment: Deployment<IntervalDomain> =
        Deployment::new(population.layout(), config.clone());
    for query in &population.queries {
        deployment
            .register_query(query, ApproxKind::Under, None)
            .expect("population palette synthesizes");
    }
    let entries = deployment.shared().export_entries();
    cache.lock().expect("palette cache lock").insert(key, entries.clone());
    entries
}

/// A deployment pre-warmed with the population palette (tests: no per-scenario solver work).
pub fn warm_deployment(
    population: &Population,
    config: &ServeConfig,
) -> Deployment<IntervalDomain> {
    let deployment: Deployment<IntervalDomain> =
        Deployment::new(population.layout(), config.clone());
    for entry in palette_entries(population, config) {
        deployment.shared().insert_ready(entry);
    }
    deployment
}

/// A cold deployment for the same population (benchmarks: synthesis misses are part of the
/// measured workload, so cache hit rates reflect the popularity skew).
pub fn cold_deployment(
    population: &Population,
    config: &ServeConfig,
) -> Deployment<IntervalDomain> {
    Deployment::new(population.layout(), config.clone())
}
