//! Batched bounded downgrades.
//!
//! The serving-path hot loop is `downgrade`: a knowledge lookup, two abstract-domain meets, two
//! policy checks, one query execution. For a batch of secrets against one query those per-secret
//! chains are completely independent, so [`downgrade_batch`] runs the *decision* phase (the pure
//! [`downgrade_step`] chains) on the deployment's worker pool and then *commits* the outcomes
//! sequentially. The result vector, the tracked knowledge and the session counters are
//! element-for-element identical to calling [`AnosySession::downgrade`] in a loop (including
//! duplicate secrets in one batch: occurrences of the same secret are chained in order on one
//! worker, because the i-th downgrade of a secret refines the posterior of the (i-1)-th).
//!
//! [`downgrade_many`] — one secret against a query set — is the transposed API. Its chain is
//! inherently sequential (each query refines the prior the next one sees), so it costs one
//! worker; it exists so callers can express both batch shapes uniformly and so the sequential
//! dependency is documented in exactly one place.

use crate::ShardPool;

/// Oversplit factor for the decision phase: more chunks than workers lets a worker that drew
/// cheap secrets pull further chunks while a skewed run (hot duplicate chains, large priors)
/// is still deciding elsewhere — same rationale as the parallel solver driver's oversplit.
const BATCH_CHUNKS_PER_WORKER: usize = 4;
use anosy_core::{downgrade_step, AnosyError, AnosySession, Knowledge, Policy, QInfo};
use anosy_domains::AbstractDomain;
use anosy_logic::{Point, SecretLayout};
use std::collections::HashMap;
use std::sync::Arc;

/// The decided-but-uncommitted outcome of one secret's occurrences within a batch.
struct SecretOutcome<D: AbstractDomain> {
    point: Point,
    /// Result per occurrence, in occurrence order.
    results: Vec<Result<bool, AnosyError>>,
    /// The final posterior, if any occurrence was authorized.
    posterior: Option<Knowledge<D>>,
    authorized: u64,
    refused: u64,
}

/// Decides the whole chain of one secret's occurrences against one query, starting from the
/// session's tracked prior — the pure phase, safe to run on any thread.
fn decide_chain<D: AbstractDomain>(
    policy: &dyn Policy<D>,
    qinfo: &QInfo<D>,
    layout: &SecretLayout,
    point: Point,
    mut prior: Knowledge<D>,
    occurrences: usize,
) -> SecretOutcome<D> {
    let mut outcome = SecretOutcome {
        point,
        results: Vec::with_capacity(occurrences),
        posterior: None,
        authorized: 0,
        refused: 0,
    };
    for _ in 0..occurrences {
        if !layout.admits(&outcome.point) {
            // Not a policy refusal: no counter moves, matching the sequential path.
            outcome.results.push(Err(AnosyError::SecretOutsideLayout));
            continue;
        }
        match downgrade_step(policy, qinfo, &prior, &outcome.point) {
            Ok((response, posterior)) => {
                prior = posterior;
                outcome.authorized += 1;
                outcome.results.push(Ok(response));
            }
            Err(e) => {
                outcome.refused += 1;
                outcome.results.push(Err(e));
            }
        }
    }
    if outcome.authorized > 0 {
        // Refusals never touch the prior, so after any authorized occurrence `prior` *is* the
        // knowledge the sequential loop would have committed last.
        outcome.posterior = Some(prior);
    }
    outcome
}

/// Downgrades every secret of the batch against one registered query, sharding the decision
/// phase across the pool. Returns one result per input secret, in input order; see the
/// module docs above for the sequential-equivalence guarantee.
pub fn downgrade_batch<D: AbstractDomain + Send + Sync + 'static>(
    pool: &ShardPool,
    session: &mut AnosySession<D>,
    secrets: &[Point],
    query_name: &str,
) -> Vec<Result<bool, AnosyError>> {
    let mut groups = [FusedGroup { session, secrets, query: query_name }];
    downgrade_batch_fused(pool, &mut groups).pop().expect("one group in, one result vector out")
}

/// One session's slice of a fused cross-session decision phase: the session to commit into,
/// the secrets it queued (in arrival order) and the query they all target. Groups in one
/// [`downgrade_batch_fused`] call may belong to different sessions but are expected to share
/// the same *predicate* — that is what makes fusing them profitable — though correctness does
/// not depend on it: every chain is decided against its own group's query and session prior.
pub struct FusedGroup<'s, D: AbstractDomain> {
    /// The session whose knowledge and counters this group's outcomes commit into.
    pub session: &'s mut AnosySession<D>,
    /// The batched secrets, in the order the caller queued them.
    pub secrets: &'s [Point],
    /// The registered query name every secret in this group targets.
    pub query: &'s str,
}

/// Per-group decision context resolved before the scatter; `None` when the group's query is
/// unknown to its session (those groups answer per element without touching the pool).
type GroupCtx<D> = Option<(Arc<QInfo<D>>, Arc<dyn Policy<D> + Send + Sync>, Arc<SecretLayout>)>;

/// Downgrades several sessions' batches in **one** pooled decision phase. Each group is
/// decided and committed exactly as a standalone [`downgrade_batch`] call would — sessions
/// are independent, per-(session, distinct-secret) chains never cross groups, and commits
/// land in deterministic (group, distinct-secret) order — so the returned result vectors are
/// element-for-element identical to calling [`downgrade_batch`] once per group, in order.
/// Fusing buys one scatter/gather over the whole run instead of one per session, which is
/// where the frontend's cross-session regrouping recovers the protocol tax.
pub fn downgrade_batch_fused<D: AbstractDomain + Send + Sync + 'static>(
    pool: &ShardPool,
    groups: &mut [FusedGroup<'_, D>],
) -> Vec<Vec<Result<bool, AnosyError>>> {
    let mut results: Vec<Vec<Option<Result<bool, AnosyError>>>> =
        groups.iter().map(|g| vec![None; g.secrets.len()]).collect();
    let mut contexts: Vec<GroupCtx<D>> = Vec::with_capacity(groups.len());
    // occurrences[g][slot] = input indices of group g's slot-th distinct secret.
    let mut occurrences: Vec<Vec<Vec<usize>>> = Vec::with_capacity(groups.len());
    // Work items carry owned data (the pool requires 'static jobs): group index, occurrence
    // slot, the unique point, its tracked prior and its occurrence count.
    let mut work: Vec<(usize, usize, Point, Knowledge<D>, usize)> = Vec::new();

    for (g, group) in groups.iter_mut().enumerate() {
        let secrets: &[Point] = group.secrets;
        let Some(qinfo) = group.session.query_info(group.query) else {
            for slot in &mut results[g] {
                *slot = Some(Err(AnosyError::UnknownQuery { name: group.query.to_string() }));
            }
            contexts.push(None);
            occurrences.push(Vec::new());
            continue;
        };
        let qinfo = Arc::new(qinfo.clone());
        let policy = group.session.policy_handle();
        let layout = Arc::new(group.session.layout().clone());

        // Group occurrences per distinct secret, preserving first-seen order. Only the first
        // occurrence of a point is cloned; duplicates cost one hash lookup and an index push.
        let mut unique: HashMap<&Point, usize> = HashMap::with_capacity(secrets.len());
        let mut slots: Vec<Vec<usize>> = Vec::new();
        for (index, point) in secrets.iter().enumerate() {
            match unique.get(point) {
                Some(&slot) => slots[slot].push(index),
                None => {
                    unique.insert(point, slots.len());
                    slots.push(vec![index]);
                }
            }
        }
        for (slot, indices) in slots.iter().enumerate() {
            let point = secrets[indices[0]].clone();
            let prior = group.session.knowledge_of(&point);
            work.push((g, slot, point, prior, indices.len()));
        }
        contexts.push(Some((qinfo, policy, layout)));
        occurrences.push(slots);
    }

    if !work.is_empty() {
        // One shared context table instead of three Arc clones per chunk per group.
        let contexts = Arc::new(contexts);
        // Decision phase: contiguous runs of distinct secrets across *all* groups, oversplit
        // so workers can rebalance around skewed chains.
        let jobs: Vec<_> = ShardPool::chunk(work, pool.workers() * BATCH_CHUNKS_PER_WORKER)
            .into_iter()
            .map(|chunk| {
                let contexts = Arc::clone(&contexts);
                move || -> Vec<(usize, usize, SecretOutcome<D>)> {
                    chunk
                        .into_iter()
                        .map(|(g, slot, point, prior, count)| {
                            let (qinfo, policy, layout) = contexts[g]
                                .as_ref()
                                .expect("work items only exist for resolvable groups");
                            let outcome =
                                decide_chain(policy.as_ref(), qinfo, layout, point, prior, count);
                            (g, slot, outcome)
                        })
                        .collect()
                }
            })
            .collect();

        // Commit phase: sequential, in deterministic (group, distinct-secret) order.
        for (g, slot, outcome) in pool.scatter(jobs).into_iter().flat_map(|job_results| {
            // A panic in user policy code surfaces here with its original payload, exactly as
            // the sequential loop would have surfaced it.
            job_results.unwrap_or_else(|payload| std::panic::resume_unwind(payload))
        }) {
            let indices = &occurrences[g][slot];
            debug_assert_eq!(indices.len(), outcome.results.len());
            for (&index, result) in indices.iter().zip(outcome.results) {
                results[g][index] = Some(result);
            }
            groups[g].session.commit_batch_outcome_tcb(
                outcome.point,
                outcome.posterior,
                outcome.authorized,
                outcome.refused,
            );
        }
    }

    results
        .into_iter()
        .map(|rs| rs.into_iter().map(|r| r.expect("every input index was decided")).collect())
        .collect()
}

/// Downgrades one secret against a sequence of registered queries, in order. Equivalent to the
/// corresponding loop of [`AnosySession::downgrade`] calls — the chain is sequential by nature
/// (each authorized answer refines the prior the next query is judged against), so this runs on
/// the calling thread; batch-level parallelism comes from [`downgrade_batch`].
pub fn downgrade_many<D: AbstractDomain>(
    session: &mut AnosySession<D>,
    secret: &Point,
    query_names: &[&str],
) -> Vec<Result<bool, AnosyError>> {
    let policy = session.policy_handle();
    let layout = session.layout().clone();
    let mut prior = session.knowledge_of(secret);
    let mut results = Vec::with_capacity(query_names.len());
    let (mut authorized, mut refused) = (0u64, 0u64);
    for name in query_names {
        let Some(qinfo) = session.query_info(name) else {
            results.push(Err(AnosyError::UnknownQuery { name: name.to_string() }));
            continue;
        };
        if !layout.admits(secret) {
            results.push(Err(AnosyError::SecretOutsideLayout));
            continue;
        }
        match downgrade_step(policy.as_ref(), qinfo, &prior, secret) {
            Ok((response, post)) => {
                prior = post;
                authorized += 1;
                results.push(Ok(response));
            }
            Err(e) => {
                refused += 1;
                results.push(Err(e));
            }
        }
    }
    // As in `decide_chain`: refusals never touch the prior, so after any authorized step
    // `prior` is exactly the knowledge the sequential loop committed last.
    let posterior = (authorized > 0).then_some(prior);
    session.commit_batch_outcome_tcb(secret.clone(), posterior, authorized, refused);
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use anosy_core::MinSizePolicy;
    use anosy_domains::IntervalDomain;
    use anosy_ifc::Protected;
    use anosy_logic::{IntExpr, SecretLayout};
    use anosy_solver::SolverConfig;
    use anosy_synth::{ApproxKind, QueryDef, SynthConfig, Synthesizer};

    fn layout() -> SecretLayout {
        SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build()
    }

    fn session_with(origins: &[(i64, i64)]) -> AnosySession<IntervalDomain> {
        let mut session = AnosySession::new(layout(), MinSizePolicy::new(100));
        let mut synth =
            Synthesizer::with_config(SynthConfig::new().with_solver(SolverConfig::for_tests()));
        for &(xo, yo) in origins {
            let pred = ((IntExpr::var(0) - xo).abs() + (IntExpr::var(1) - yo).abs()).le(100);
            let query = QueryDef::new(format!("nearby_{xo}_{yo}"), layout(), pred).unwrap();
            session.register_synthesized(&mut synth, &query, ApproxKind::Under, None).unwrap();
        }
        session
    }

    fn secrets() -> Vec<Point> {
        let mut points = Vec::new();
        for x in (0..=400).step_by(57) {
            for y in (0..=400).step_by(73) {
                points.push(Point::new(vec![x, y]));
            }
        }
        // Duplicates and an out-of-layout point exercise the tricky paths.
        points.push(Point::new(vec![300, 200]));
        points.push(Point::new(vec![300, 200]));
        points.push(Point::new(vec![9000, 0]));
        points
    }

    fn assert_same(batch: &[Result<bool, AnosyError>], sequential: &[Result<bool, AnosyError>]) {
        assert_eq!(batch.len(), sequential.len());
        for (i, (b, s)) in batch.iter().zip(sequential).enumerate() {
            assert_eq!(b, s, "result {i} diverges");
        }
    }

    #[test]
    fn batch_matches_the_sequential_loop_exactly() {
        let pool = ShardPool::new(4);
        let mut batched = session_with(&[(200, 200)]);
        let mut looped = session_with(&[(200, 200)]);
        let points = secrets();

        let batch_results = downgrade_batch(&pool, &mut batched, &points, "nearby_200_200");
        let loop_results: Vec<_> = points
            .iter()
            .map(|p| looped.downgrade(&Protected::new(p.clone()), "nearby_200_200"))
            .collect();

        assert_same(&batch_results, &loop_results);
        assert_eq!(batched.stats(), looped.stats());
        assert_eq!(batched.tracked_secrets(), looped.tracked_secrets());
        for p in &points {
            assert_eq!(
                batched.knowledge_of(p).size(),
                looped.knowledge_of(p).size(),
                "knowledge diverges for {p}"
            );
        }
    }

    #[test]
    fn fused_groups_match_per_session_batches_exactly() {
        let pool = ShardPool::new(4);
        let mut fused_a = session_with(&[(200, 200)]);
        let mut fused_b = session_with(&[(200, 200), (300, 200)]);
        let mut solo_a = session_with(&[(200, 200)]);
        let mut solo_b = session_with(&[(200, 200), (300, 200)]);
        let points_a = secrets();
        let mut points_b = secrets();
        points_b.reverse();

        let fused = {
            let mut groups = [
                FusedGroup { session: &mut fused_a, secrets: &points_a, query: "nearby_200_200" },
                FusedGroup { session: &mut fused_b, secrets: &points_b, query: "nearby_300_200" },
                FusedGroup { session: &mut solo_a, secrets: &[], query: "nearby_200_200" },
            ];
            // The empty group aliases `solo_a` deliberately: zero secrets must mean zero
            // commits, so the sequential replay below starts from an untouched session.
            downgrade_batch_fused(&pool, &mut groups)
        };
        assert!(fused[2].is_empty());
        let solo = [
            downgrade_batch(&pool, &mut solo_a, &points_a, "nearby_200_200"),
            downgrade_batch(&pool, &mut solo_b, &points_b, "nearby_300_200"),
        ];
        for (f, s) in fused.iter().zip(&solo) {
            assert_same(f, s);
        }
        assert_eq!(fused_a.stats(), solo_a.stats());
        assert_eq!(fused_b.stats(), solo_b.stats());
        assert_eq!(fused_a.tracked_secrets(), solo_a.tracked_secrets());
        assert_eq!(fused_b.tracked_secrets(), solo_b.tracked_secrets());
        for p in &points_a {
            assert_eq!(fused_a.knowledge_of(p).size(), solo_a.knowledge_of(p).size());
            assert_eq!(fused_b.knowledge_of(p).size(), solo_b.knowledge_of(p).size());
        }
    }

    #[test]
    fn fused_unknown_query_groups_answer_per_element() {
        let pool = ShardPool::new(2);
        let mut known = session_with(&[(200, 200)]);
        let mut unknown = session_with(&[(200, 200)]);
        let points = vec![Point::new(vec![200, 200]), Point::new(vec![1, 1])];
        let fused = {
            let mut groups = [
                FusedGroup { session: &mut known, secrets: &points, query: "nearby_200_200" },
                FusedGroup { session: &mut unknown, secrets: &points, query: "never_registered" },
            ];
            downgrade_batch_fused(&pool, &mut groups)
        };
        assert_eq!(fused[0].len(), 2);
        assert!(fused[0][0].is_ok());
        for r in &fused[1] {
            assert!(matches!(r, Err(AnosyError::UnknownQuery { .. })));
        }
        assert_eq!(unknown.stats().downgrades_authorized, 0);
    }

    #[test]
    fn unknown_queries_error_per_element() {
        let pool = ShardPool::new(2);
        let mut session = session_with(&[(200, 200)]);
        let points = vec![Point::new(vec![1, 1]), Point::new(vec![2, 2])];
        let results = downgrade_batch(&pool, &mut session, &points, "never_registered");
        assert_eq!(results.len(), 2);
        for r in results {
            assert!(matches!(r, Err(AnosyError::UnknownQuery { .. })));
        }
        assert_eq!(session.stats().downgrades_authorized, 0);
    }

    #[test]
    fn empty_batches_are_noops() {
        let pool = ShardPool::new(2);
        let mut session = session_with(&[(200, 200)]);
        assert!(downgrade_batch(&pool, &mut session, &[], "nearby_200_200").is_empty());
        assert_eq!(session.stats().downgrades_authorized, 0);
    }

    #[test]
    fn many_matches_the_sequential_loop_exactly() {
        let mut batched = session_with(&[(200, 200), (300, 200), (400, 200)]);
        let mut looped = session_with(&[(200, 200), (300, 200), (400, 200)]);
        let secret = Point::new(vec![300, 200]);
        let names = ["nearby_200_200", "no_such_query", "nearby_300_200", "nearby_400_200"];

        let many_results = downgrade_many(&mut batched, &secret, &names);
        let loop_results: Vec<_> =
            names.iter().map(|n| looped.downgrade(&Protected::new(secret.clone()), n)).collect();

        assert_same(&many_results, &loop_results);
        assert_eq!(batched.stats(), looped.stats());
        assert_eq!(batched.knowledge_of(&secret).size(), looped.knowledge_of(&secret).size());
    }
}
