//! Multi-reactor serving: shard the event loop across `N` reactor threads.
//!
//! One [`Server`] is a single-threaded reactor — batching amortizes solver work, but every
//! byte of every connection still funnels through one event loop. A [`ReactorPool`] runs `N`
//! such reactors over **one shared [`Deployment`]**: each reactor owns a disjoint shard of the
//! connections (with its own [`Frontend`]) and the deployment's single-flight synthesis cache
//! plus shard pool stay safe to share, so the pool scales connection handling without
//! duplicating any synthesized state.
//!
//! # Shard assignment
//!
//! Connection tokens are minted **globally in arrival order** (by the pool's acceptor thread,
//! or by the caller when driving simulated transports) and a connection lands on shard
//! [`shard_of`]`(token, N)` — a splitmix64-style hash, so consecutive arrivals spread evenly.
//! Because every request of a connection stays on its shard in FIFO order, and session ids are
//! derived from the opening connection ([`Frontend::with_conn_scoped_sessions`]), **responses
//! are invariant under the reactor count**: the same arrival schedule yields element-wise
//! identical per-connection response streams at `N = 1` and `N = 4` (property-tested in
//! `tests/multi_reactor.rs`).
//!
//! Logical `@conn` ids bind within a shard. A claim whose id hashes to another shard is
//! refused (`connection … belongs to another reactor shard`), mirroring the existing
//! cross-socket ownership rule — two shards must never bind the same logical id.
//!
//! # Stats and logs
//!
//! Each shard answers `stats` with its own counters, marked `reactors=N shard=i`. A
//! deployment-wide view is [`fold_stats`]: per-frontend counters sum (deployment counters are
//! already shared), and the folded snapshot marks itself `shard == reactors`. I/O logs merge
//! under the same global cap a standalone server has ([`merge_io_logs`], at most
//! [`crate::ServeConfig::io_log_cap`] entries however many shards contributed).

use crate::proto::StatsSnapshot;
use crate::server::{IoLogEntry, PollTransport, Server, ServerConfig, ServerStats, Transport};
use crate::{Deployment, Frontend};
use anosy_core::SynthesizeInto;
use anosy_domains::AbstractDomain;
use anosy_synth::DomainCodec;
use std::io::{ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{self, Sender};
use std::time::Duration;

/// The reactor shard a connection token lands on: a splitmix64-style avalanche of the token
/// mod `shards`, so tokens minted in arrival order spread evenly instead of striping.
/// Deterministic and stable — resharding only happens by restarting with a different `N`.
pub fn shard_of(token: u64, shards: u64) -> u64 {
    if shards <= 1 {
        return 0;
    }
    let mut x = token.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x % shards
}

/// Runs `N` reactor shards over one shared deployment (see the [module docs](self)).
///
/// The pool itself is just configuration: [`ReactorPool::run`] drives caller-supplied
/// transports (one per shard — e.g. [`crate::SimNet::split`] halves of a simulated schedule)
/// and [`ReactorPool::serve`] accepts real TCP connections, routing each accepted stream to
/// the shard its arrival-order token hashes to. Both run the shards on scoped threads and
/// return the finished [`Server`]s in shard order, frontends and transcripts intact, so tests
/// and callers inspect per-shard state exactly as they would a standalone server's.
#[derive(Debug, Clone)]
pub struct ReactorPool {
    reactors: u64,
    config: ServerConfig,
}

impl ReactorPool {
    /// A pool of `reactors` shards (clamped to at least one) with default
    /// [`ServerConfig`] semantics per shard.
    pub fn new(reactors: u64) -> ReactorPool {
        ReactorPool { reactors: reactors.max(1), config: ServerConfig::new() }
    }

    /// Overrides the per-shard server configuration (ticking mode, recording, line cap).
    /// The pool still applies its own sharding and io-log-cap splits on top.
    pub fn with_config(mut self, config: ServerConfig) -> ReactorPool {
        self.config = config;
        self
    }

    /// How many reactor shards this pool runs.
    pub fn reactors(&self) -> u64 {
        self.reactors
    }

    /// Builds the per-shard servers: shard `i` gets a conn-scoped frontend marked
    /// `(i, N)`, a sharded server config, and `1/N`-th of the io-log budget.
    fn build<D, T>(&self, deployment: &Deployment<D>, transports: Vec<T>) -> Vec<Server<D, T>>
    where
        D: AbstractDomain + SynthesizeInto + DomainCodec + Send + Sync + 'static,
        T: Transport,
    {
        let n = self.reactors;
        assert_eq!(
            transports.len() as u64,
            n,
            "a {n}-reactor pool needs exactly one transport per shard"
        );
        transports
            .into_iter()
            .enumerate()
            .map(|(i, transport)| {
                let shard = i as u64;
                let frontend = Frontend::new(deployment.share())
                    .with_conn_scoped_sessions()
                    .with_shard(shard, n);
                let config = self
                    .config
                    .clone()
                    .sharded(shard, n)
                    .with_io_log_cap((deployment.config().io_log_cap / n as usize).max(1));
                Server::new(frontend, transport, config)
            })
            .collect()
    }

    /// Runs one reactor per supplied transport on scoped threads and returns the finished
    /// servers in shard order. The caller is responsible for having sharded the traffic:
    /// transport `i` must only carry tokens with [`shard_of`]`(token, N) == i` (which is
    /// exactly what [`crate::SimNet::split`] produces).
    ///
    /// # Panics
    ///
    /// Panics when the transport count does not match the pool's reactor count, or when a
    /// reactor thread panics.
    pub fn run<D, T>(&self, deployment: &Deployment<D>, transports: Vec<T>) -> Vec<Server<D, T>>
    where
        D: AbstractDomain + SynthesizeInto + DomainCodec + Send + Sync + 'static,
        T: Transport + Send,
    {
        let servers = self.build(deployment, transports);
        std::thread::scope(|scope| {
            let handles: Vec<_> = servers
                .into_iter()
                .map(|mut server| {
                    scope.spawn(move || {
                        server.run();
                        server
                    })
                })
                .collect();
            handles.into_iter().map(|handle| handle.join().expect("reactor panicked")).collect()
        })
    }

    /// Serves real TCP connections: an acceptor thread accepts from `listener` (at most
    /// `accept_budget` connections when given), mints tokens in arrival order and hands each
    /// stream to the [`PollTransport`] of the shard its token hashes to, waking that shard's
    /// readiness wait through a loopback notify stream. Returns the finished servers in shard
    /// order once the budget is exhausted and every shard has drained — with no budget this
    /// only returns if the listener breaks.
    ///
    /// # Errors
    ///
    /// Setting up the loopback notify pairs can fail; no thread has started at that point.
    ///
    /// # Panics
    ///
    /// Panics when a reactor thread panics.
    pub fn serve<D>(
        &self,
        deployment: &Deployment<D>,
        listener: TcpListener,
        accept_budget: Option<usize>,
        tick_interval: Option<Duration>,
    ) -> std::io::Result<Vec<Server<D, PollTransport>>>
    where
        D: AbstractDomain + SynthesizeInto + DomainCodec + Send + Sync + 'static,
    {
        listener.set_nonblocking(false)?;
        let mut senders = Vec::new();
        let mut notifiers = Vec::new();
        let mut transports = Vec::new();
        for _ in 0..self.reactors {
            let (sender, handoffs) = mpsc::channel();
            let (writer, reader) = notify_pair()?;
            senders.push(sender);
            notifiers.push(writer);
            transports.push(PollTransport::intake(handoffs, reader, tick_interval));
        }
        let servers = self.build(deployment, transports);
        Ok(std::thread::scope(|scope| {
            scope.spawn(move || accept_loop(&listener, accept_budget, &senders, &mut notifiers));
            let handles: Vec<_> = servers
                .into_iter()
                .map(|mut server| {
                    scope.spawn(move || {
                        server.run();
                        server
                    })
                })
                .collect();
            handles.into_iter().map(|handle| handle.join().expect("reactor panicked")).collect()
        }))
    }
}

/// The pool's acceptor: accepts in arrival order, routes each stream to the shard its token
/// hashes to, and writes one wake-up byte per handoff. Dropping the senders and notify
/// writers on return is the shutdown signal — every shard sees its channel disconnect, stops
/// accepting, and drains.
fn accept_loop(
    listener: &TcpListener,
    budget: Option<usize>,
    senders: &[Sender<(u64, TcpStream)>],
    notifiers: &mut [TcpStream],
) {
    let shards = senders.len() as u64;
    let mut token = 0u64;
    loop {
        if let Some(budget) = budget {
            if token >= budget as u64 {
                break;
            }
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shard = shard_of(token, shards) as usize;
                if senders[shard].send((token, stream)).is_err() {
                    break;
                }
                // Best-effort wake-up: a full loopback buffer already holds unread wake-ups,
                // so the shard is waking anyway.
                let _ = notifiers[shard].write(&[1]);
                token += 1;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// A connected loopback stream pair — the pool's wake-up channel. Pure `std`: an ephemeral
/// listener on `127.0.0.1` is connected to once and immediately dropped.
fn notify_pair() -> std::io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let writer = TcpStream::connect(listener.local_addr()?)?;
    let (reader, _peer) = listener.accept()?;
    writer.set_nonblocking(true)?;
    Ok((writer, reader))
}

/// Folds per-shard frontend snapshots into the deployment-wide view: frontend counters sum
/// (`largest_batch` takes the max), the shared deployment counters — including the
/// deployment-wide `journal` and `saves_skipped` fields, which every shard reports
/// identically — are taken once, and the folded snapshot marks itself with
/// `shard == reactors` — impossible for a real shard, so consumers can tell a fold from a
/// shard.
///
/// # Panics
///
/// Panics on an empty slice — a pool always has at least one shard.
pub fn fold_stats(shards: &[StatsSnapshot]) -> StatsSnapshot {
    let first = shards.first().expect("fold_stats needs at least one shard snapshot");
    let mut folded = *first;
    for shard in &shards[1..] {
        folded.open_sessions += shard.open_sessions;
        folded.ticks += shard.ticks;
        folded.requests += shard.requests;
        folded.batched_downgrades += shard.batched_downgrades;
        folded.largest_batch = folded.largest_batch.max(shard.largest_batch);
        folded.sessions_torn_down += shard.sessions_torn_down;
        folded.tenants += shard.tenants;
        folded.denials += shard.denials;
    }
    folded.reactors = shards.len() as u64;
    folded.shard = folded.reactors;
    folded
}

/// Folds per-shard reactor counters by summing every field.
pub fn fold_server_stats(shards: &[ServerStats]) -> ServerStats {
    let mut folded = ServerStats::default();
    for shard in shards {
        folded.conns_opened += shard.conns_opened;
        folded.conns_closed += shard.conns_closed;
        folded.conn_failures += shard.conn_failures;
        folded.lines += shard.lines;
        folded.requests += shard.requests;
        folded.malformed += shard.malformed;
        folded.binary_conns += shard.binary_conns;
        folded.frames += shard.frames;
    }
    folded
}

/// Merges per-shard I/O logs under the deployment-wide cap ([`crate::ServeConfig::io_log_cap`]
/// — the same bound a standalone server enforces): however many shards contributed, at most
/// `cap` entries survive (the most recent ones, matching the per-server aging rule). Entries
/// sort by their clock timestamp, ties broken by shard — under virtual clocks this reproduces
/// the order a single unsharded reactor would have logged.
pub fn merge_io_logs(shards: &[&[IoLogEntry]], cap: usize) -> Vec<IoLogEntry> {
    let mut merged: Vec<IoLogEntry> = shards.iter().flat_map(|log| log.iter().cloned()).collect();
    merged.sort_by_key(|entry| (entry.at, entry.shard));
    if merged.len() > cap.max(1) {
        merged.drain(..merged.len() - cap.max(1));
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for shards in 1..=8u64 {
            for token in 0..1000u64 {
                let shard = shard_of(token, shards);
                assert!(shard < shards);
                assert_eq!(shard, shard_of(token, shards), "deterministic");
            }
        }
        assert_eq!(shard_of(12345, 1), 0);
    }

    #[test]
    fn shard_of_spreads_arrival_order() {
        // Arrival-order tokens are consecutive integers; the hash must not stripe them all
        // onto one shard or leave a shard starved.
        let shards = 4u64;
        let mut counts = [0usize; 4];
        for token in 0..1000u64 {
            counts[shard_of(token, shards) as usize] += 1;
        }
        for (shard, count) in counts.iter().enumerate() {
            assert!((150..=350).contains(count), "shard {shard} got {count} of 1000 connections");
        }
    }

    #[test]
    fn merge_io_logs_respects_global_cap_and_orders_by_time() {
        let entry = |shard: u64, at: u64, reason: &str| IoLogEntry {
            shard,
            at,
            token: crate::server::Token(at),
            reason: reason.to_string(),
        };
        // Shard 0's denials interleave in time with shard 1's.
        let a: Vec<IoLogEntry> = (0..40).map(|i| entry(0, 2 * i, "a")).collect();
        let b: Vec<IoLogEntry> = (0..40).map(|i| entry(1, 2 * i + 1, "b")).collect();
        let merged = merge_io_logs(&[&a, &b], 64);
        assert_eq!(merged.len(), 64);
        // The most recent 64 of the 80 interleaved entries survive, in timestamp order.
        assert_eq!(merged.first().unwrap().at, 16);
        assert_eq!(merged.last().unwrap().at, 79);
        assert!(merged.windows(2).all(|w| w[0].at < w[1].at), "sorted by virtual time");
        // The cap clamps to one, like the config knob.
        assert_eq!(merge_io_logs(&[&a], 0).len(), 1);
    }
}
