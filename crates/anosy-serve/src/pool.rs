//! The fixed worker pool the deployment shards work across.
//!
//! A [`ShardPool`] owns `workers` OS threads for its whole lifetime (a deployment's pool lives
//! as long as the deployment, amortizing thread spawns to zero on the serving path). Work is
//! submitted as batches of independent jobs via [`ShardPool::scatter`]; results come back in
//! submission order, so callers see deterministic output regardless of which worker ran what or
//! in which order workers finished — the property every driver built on top (batched downgrades,
//! sharded counting) relies on for sequential-equivalence.
//!
//! The design is the classic share-nothing-then-merge worker pool of the differential-dataflow
//! lineage: jobs carry owned data in, results are merged by the caller after the barrier.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed pool of worker threads executing boxed jobs (see the module docs above).
pub struct ShardPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ShardPool {
    /// Spawns a pool with the given number of workers (clamped to at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let handles = (0..workers)
            .map(|index| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("anosy-shard-{index}"))
                    .spawn(move || worker_loop(&receiver))
                    .expect("spawning a shard worker")
            })
            .collect();
        ShardPool { sender: Some(sender), workers: handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Runs every job on the pool and returns their results **in submission order**. Blocks
    /// until all jobs finish (a barrier). A job that panics yields `Err` carrying the original
    /// panic payload in its slot (so callers can `resume_unwind` it with the real message); the
    /// other jobs still complete.
    pub fn scatter<T, F>(&self, jobs: Vec<F>) -> Vec<std::thread::Result<T>>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let total = jobs.len();
        let (results_tx, results_rx) = channel::<(usize, std::thread::Result<T>)>();
        for (index, job) in jobs.into_iter().enumerate() {
            let results_tx = results_tx.clone();
            let boxed: Job = Box::new(move || {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                // The receiver only disappears if the caller itself unwound; dropping the
                // result is the right behavior then.
                let _ = results_tx.send((index, result));
            });
            self.sender
                .as_ref()
                .expect("pool sender lives until drop")
                .send(boxed)
                .expect("workers live until drop");
        }
        drop(results_tx);
        let mut slots: Vec<Option<std::thread::Result<T>>> =
            std::iter::repeat_with(|| None).take(total).collect();
        // The results channel closes once every clone of `results_tx` is dropped; the
        // catch_unwind above guarantees every job sends exactly once.
        for (index, result) in results_rx.iter() {
            slots[index] = Some(result);
        }
        slots.into_iter().map(|slot| slot.expect("every job sends exactly once")).collect()
    }

    /// Splits `items` into at most `parts` contiguous chunks of near-equal length (for sharding
    /// a work list across the pool). Returns fewer chunks when there are fewer items.
    pub fn chunk<T>(items: Vec<T>, parts: usize) -> Vec<Vec<T>> {
        let parts = parts.max(1).min(items.len().max(1));
        let mut chunks: Vec<Vec<T>> = (0..parts).map(|_| Vec::new()).collect();
        let per_chunk = items.len().div_ceil(parts);
        for (i, item) in items.into_iter().enumerate() {
            chunks[i / per_chunk].push(item);
        }
        chunks.retain(|c| !c.is_empty());
        chunks
    }
}

fn worker_loop(receiver: &Arc<Mutex<Receiver<Job>>>) {
    loop {
        // Holding the lock only while popping keeps the other workers runnable; a poisoned lock
        // (a panicking job elsewhere) is recovered, not propagated.
        let job = {
            let guard = receiver.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            guard.recv()
        };
        match job {
            Ok(job) => {
                // A panicking job must not take the worker down with it: swallow the unwind and
                // move on to the next job. The caller observes the panic as a `None` slot.
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            }
            Err(_) => return, // pool dropped: no more jobs will ever arrive
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        drop(self.sender.take()); // closes the job channel; workers drain and exit
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ShardPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPool").field("workers", &self.workers.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_preserves_submission_order() {
        let pool = ShardPool::new(4);
        assert_eq!(pool.workers(), 4);
        let jobs: Vec<_> = (0..64).map(|i| move || i * i).collect();
        let results = pool.scatter(jobs);
        let got: Vec<i32> = results.into_iter().map(Result::unwrap).collect();
        let want: Vec<i32> = (0..64).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn pool_survives_panicking_jobs_and_preserves_the_payload() {
        let pool = ShardPool::new(2);
        let jobs: Vec<Box<dyn FnOnce() -> i32 + Send>> =
            vec![Box::new(|| 1), Box::new(|| panic!("job 1 exploded")), Box::new(|| 3)];
        let results = pool.scatter(jobs);
        assert_eq!(results[0].as_ref().ok(), Some(&1));
        assert_eq!(results[2].as_ref().ok(), Some(&3));
        let payload = results[1].as_ref().unwrap_err();
        let message = payload.downcast_ref::<&str>().expect("payload is the panic message");
        assert_eq!(*message, "job 1 exploded");
        // The pool still works afterwards.
        let again = pool.scatter(vec![|| 7]);
        assert_eq!(again.into_iter().map(Result::unwrap).collect::<Vec<_>>(), vec![7]);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = ShardPool::new(0);
        assert_eq!(pool.workers(), 1);
        let results = pool.scatter(vec![|| 42]);
        assert_eq!(results.into_iter().map(Result::unwrap).collect::<Vec<_>>(), vec![42]);
    }

    #[test]
    fn chunking_is_near_even_and_total() {
        let chunks = ShardPool::chunk((0..10).collect(), 4);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks.concat(), (0..10).collect::<Vec<_>>());
        assert!(chunks.iter().all(|c| c.len() <= 3));
        assert_eq!(ShardPool::chunk(Vec::<i32>::new(), 4).len(), 0);
        assert_eq!(ShardPool::chunk(vec![1], 4), vec![vec![1]]);
    }
}
