//! The wire forms of the serving protocol: a line-oriented text codec and a length-prefixed
//! binary frame codec, one request or response per line/frame.
//!
//! This is the transport-independent half of `anosy-served`: anything that can move bytes
//! (stdin/stdout, a TCP stream, a test script) can speak the protocol by pairing one of these
//! codecs with a [`Frontend`](crate::Frontend). The text format follows the workspace's
//! existing text-format conventions (the `anosy-synth-cache` persistence file): space-separated
//! `key=value` tokens, predicates and paths last on the line so they may contain spaces, and
//! domain elements in their [`DomainCodec`](anosy_synth::DomainCodec) one-line encoding.
//!
//! # Binary frames
//!
//! The binary protocol carries the same request/response text, but framed instead of
//! newline-delimited, which removes the per-byte terminator scan and the per-line allocation
//! from the hot path. A connection opts in by sending [`BINARY_PREAMBLE`] (`anosy-bin v1\n`) as
//! its **first bytes**; anything else falls back to the line protocol, so text peers, smoke
//! scripts and humans under `netcat` are untouched. After the preamble, every unit in either
//! direction is one frame:
//!
//! ```text
//! [payload length: u32 LE] [fnv1a-64(payload): u64 LE] [payload bytes]
//! ```
//!
//! The payload is one protocol line, terminator-free. [`FrameDecoder`] mirrors
//! [`LineDecoder`]'s guarantees: carry-over buffering under arbitrary chunking, and malformed
//! input reported *as data* ([`DecodedFrame::Corrupt`] on a checksum mismatch,
//! [`DecodedFrame::Oversize`] for a declared length over the cap — the oversize payload is
//! swallowed, never buffered) with the decoder staying in sync on the next frame boundary.
//! Fuzzed alongside the line decoder in `tests/proptest_wire_fuzz.rs`.
//!
//! # Requests
//!
//! ```text
//! open min-size:100
//! register name=nearby kind=under members=- pred=abs(x - 200) + abs(y - 200) <= 100
//! downgrade session=1 query=nearby secret=300,200
//! batch session=1 query=nearby secrets=300,200;10,10
//! count pred=x <= 100
//! valid pred=x <= 100
//! knowledge session=1 secret=300,200
//! stats
//! save path=warm.cache
//! warm verify path=warm.cache
//! close session=1
//! ```
//!
//! # Responses
//!
//! ```text
//! ok session 1
//! ok registered nearby
//! ok answer true
//! deny policy policy violation: …
//! ok answers true false !outside-layout
//! ok count 20201
//! ok valid
//! ok counterexample 0,0
//! ok knowledge size=6837 121..279,179..221
//! ok stats open=1 ticks=2 …
//! ok saved 2 skipped=0
//! ok warm loaded=2 skipped=0
//! ok closed 1
//! err unknown-session no open session 7
//! ```
//!
//! Encoding and parsing are inverses on every value the frontend can produce, except that query
//! names and paths are taken verbatim from the line — a query name containing whitespace, or a
//! path containing a line break, cannot ride this wire. The typed protocol allows such values;
//! the codec **rejects them at encode time** ([`encode_request`] errors) rather than emitting a
//! line that would silently token-split into a different request at parse time. Predicates are
//! parsed first against the deployment layout's field names and then in the printer's
//! positional `v0` syntax, so both human-written and re-encoded lines parse.

use crate::proto::{Denial, DenialCode, ServeRequest, ServeResponse, SessionId, StatsSnapshot};
use crate::ServeStats;
use anosy_core::{PolicySpec, SharedCacheStats};
use anosy_logic::{parse_pred, parse_pred_with_layout, Point, Pred, SecretLayout};
use anosy_synth::QueryDef;
use std::collections::HashSet;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

/// A line that does not encode a request or response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What was wrong with the line.
    pub reason: String,
}

impl WireError {
    fn new(reason: impl Into<String>) -> WireError {
        WireError { reason: reason.into() }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed wire line: {}", self.reason)
    }
}

impl std::error::Error for WireError {}

/// Renders a point as comma-joined coordinates (`300,200`).
pub fn encode_point(point: &Point) -> String {
    point.as_slice().iter().map(i64::to_string).collect::<Vec<_>>().join(",")
}

/// Parses the [`encode_point`] form. Returns `None` on empty or non-numeric input.
pub fn parse_point(text: &str) -> Option<Point> {
    // Exact-capacity up front: `collect` only knows a lower bound for split iterators, so it
    // would grow (and re-copy) once per point on the bulk decode path.
    let mut coords: Vec<i64> = Vec::with_capacity(text.bytes().filter(|&b| b == b',').count() + 1);
    for c in text.split(',') {
        coords.push(c.trim().parse().ok()?);
    }
    if coords.is_empty() {
        None
    } else {
        Some(Point::new(coords))
    }
}

/// Parses a layout from `name:lo:hi` tokens (the same per-field form the warm-start cache file
/// uses) — how `anosy-served --layout "x:0:400 y:0:400"` declares its secret space.
pub fn parse_layout(text: &str) -> Option<SecretLayout> {
    let mut builder = SecretLayout::builder();
    let mut any = false;
    for token in text.split_whitespace() {
        let mut parts = token.splitn(3, ':');
        let (name, lo, hi) = (parts.next()?, parts.next()?, parts.next()?);
        let (lo, hi) = (lo.parse().ok()?, hi.parse().ok()?);
        if name.is_empty() || lo > hi {
            return None;
        }
        builder = builder.field(name, lo, hi);
        any = true;
    }
    if any {
        Some(builder.build())
    } else {
        None
    }
}

/// Parses a predicate for the wire: field names of the deployment layout first, the printer's
/// positional `v0` syntax second.
fn parse_wire_pred(text: &str, layout: &SecretLayout) -> Result<Pred, WireError> {
    parse_pred_with_layout(text, layout)
        .or_else(|_| parse_pred(text))
        .map_err(|e| WireError::new(format!("unparseable predicate `{text}`: {e}")))
}

/// Looks up `key=` among the space-separated tokens of `head`.
fn token<'a>(head: &'a str, key: &str) -> Option<&'a str> {
    head.split_whitespace().find_map(|t| t.strip_prefix(key))
}

fn session_token(head: &str) -> Result<SessionId, WireError> {
    token(head, "session=")
        .and_then(|s| s.parse().ok())
        .map(SessionId)
        .ok_or_else(|| WireError::new("missing or bad session="))
}

fn secret_token(head: &str) -> Result<Point, WireError> {
    token(head, "secret=")
        .and_then(parse_point)
        .ok_or_else(|| WireError::new("missing or bad secret="))
}

fn query_token(head: &str) -> Result<&str, WireError> {
    token(head, "query=").ok_or_else(|| WireError::new("missing query="))
}

/// An intern pool for query names crossing the wire: the first occurrence of a name allocates
/// one [`Arc<str>`]; every later request carrying the same name gets a clone of that `Arc` —
/// no `String` per token on the decode hot path, and requests naming the same query share one
/// allocation (cheap equality in the frontend's per-tick regrouping).
#[derive(Debug, Default)]
pub struct NameInterner {
    names: HashSet<Arc<str>>,
}

impl NameInterner {
    /// An empty pool.
    pub fn new() -> NameInterner {
        NameInterner::default()
    }

    /// The interned handle for `name`, allocating only on first sight.
    pub fn intern(&mut self, name: &str) -> Arc<str> {
        if let Some(hit) = self.names.get(name) {
            return Arc::clone(hit);
        }
        let arc: Arc<str> = Arc::from(name);
        self.names.insert(Arc::clone(&arc));
        arc
    }

    /// Distinct names interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Splits `rest` around a `key=` marker whose value runs to the end of the line.
fn tail<'a>(rest: &'a str, key: &str) -> Result<(&'a str, &'a str), WireError> {
    rest.split_once(key)
        .map(|(head, tail)| (head, tail.trim()))
        .ok_or_else(|| WireError::new(format!("missing {key}")))
}

/// Parses one request line (see the [module docs](self) for the grammar). `layout` is the
/// deployment's secret space, used to resolve predicate field names and validate queries.
pub fn parse_request(line: &str, layout: &SecretLayout) -> Result<ServeRequest, WireError> {
    parse_request_inner(line, layout, None)
}

/// [`parse_request`] with an intern pool for query names: fields are parsed as `&str` slices
/// borrowed from `line` and only the tokens that must outlive the call are materialized —
/// query names through `interner` (an `Arc` clone after first sight, never a fresh `String`).
/// This is the serving reactor's decode path for both wire forms.
pub fn parse_request_interned(
    line: &str,
    layout: &SecretLayout,
    interner: &mut NameInterner,
) -> Result<ServeRequest, WireError> {
    parse_request_inner(line, layout, Some(interner))
}

fn parse_request_inner(
    line: &str,
    layout: &SecretLayout,
    mut interner: Option<&mut NameInterner>,
) -> Result<ServeRequest, WireError> {
    let mut intern = |name: &str| -> Arc<str> {
        match interner.as_deref_mut() {
            Some(pool) => pool.intern(name),
            None => Arc::from(name),
        }
    };
    let line = line.trim();
    let (verb, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
    match verb {
        "open" => PolicySpec::parse(rest.trim())
            .map(|policy| ServeRequest::OpenSession { policy })
            .ok_or_else(|| WireError::new(format!("bad policy spec `{}`", rest.trim()))),
        "register" => {
            let (head, pred_text) = tail(rest, "pred=")?;
            let name =
                token(head, "name=").ok_or_else(|| WireError::new("missing name="))?.to_string();
            let kind = token(head, "kind=")
                .and_then(anosy_synth::parse_approx_kind)
                .ok_or_else(|| WireError::new("missing or bad kind="))?;
            let members = match token(head, "members=") {
                None | Some("-") => None,
                Some(m) => Some(m.parse().map_err(|_| WireError::new("bad members= count"))?),
            };
            let pred = parse_wire_pred(pred_text, layout)?;
            let query = QueryDef::new(name, layout.clone(), pred)
                .map_err(|e| WireError::new(e.to_string()))?;
            Ok(ServeRequest::RegisterQuery { query, kind, members })
        }
        "downgrade" => Ok(ServeRequest::Downgrade {
            session: session_token(rest)?,
            secret: secret_token(rest)?,
            query: intern(query_token(rest)?),
        }),
        "batch" => {
            // One pass over the tokens: the `secrets=` list dominates a bulk line's length,
            // so the per-key scans the small requests use would walk it once per key. First
            // occurrence of each key wins, matching [`token`].
            let (mut session, mut query, mut list) = (None, None, None);
            for t in rest.split_whitespace() {
                if let Some(v) = t.strip_prefix("session=") {
                    session.get_or_insert(v);
                } else if let Some(v) = t.strip_prefix("query=") {
                    query.get_or_insert(v);
                } else if let Some(v) = t.strip_prefix("secrets=") {
                    list.get_or_insert(v);
                }
            }
            let session = session
                .and_then(|v| v.parse().ok())
                .map(SessionId)
                .ok_or_else(|| WireError::new("missing or bad session="))?;
            let query = intern(query.ok_or_else(|| WireError::new("missing query="))?);
            let list = list.ok_or_else(|| WireError::new("missing secrets="))?;
            let secrets = if list.is_empty() {
                Vec::new()
            } else {
                let mut secrets =
                    Vec::with_capacity(list.bytes().filter(|&b| b == b';').count() + 1);
                for item in list.split(';') {
                    secrets.push(
                        parse_point(item).ok_or_else(|| WireError::new("bad secrets= list"))?,
                    );
                }
                secrets
            };
            Ok(ServeRequest::DowngradeBatch { session, secrets, query })
        }
        "count" => {
            let (_, pred_text) = tail(rest, "pred=")?;
            Ok(ServeRequest::CountModels { pred: parse_wire_pred(pred_text, layout)? })
        }
        "valid" => {
            let (_, pred_text) = tail(rest, "pred=")?;
            Ok(ServeRequest::CheckValidity { pred: parse_wire_pred(pred_text, layout)? })
        }
        "knowledge" => Ok(ServeRequest::Knowledge {
            session: session_token(rest)?,
            secret: secret_token(rest)?,
        }),
        "stats" if rest.trim().is_empty() => Ok(ServeRequest::Stats),
        "save" => {
            let (_, path) = tail(rest, "path=")?;
            Ok(ServeRequest::SaveCache { path: PathBuf::from(path) })
        }
        "warm" => {
            let (head, path) = tail(rest, "path=")?;
            let verify = head.split_whitespace().any(|t| t == "verify");
            Ok(ServeRequest::WarmStart { path: PathBuf::from(path), verify })
        }
        "close" => Ok(ServeRequest::CloseSession { session: session_token(rest)? }),
        "metrics" if rest.trim().is_empty() => Ok(ServeRequest::Metrics),
        "trace" if rest.trim().is_empty() => Ok(ServeRequest::Trace),
        other => Err(WireError::new(format!("unknown request `{other}`"))),
    }
}

/// A query name rides the wire as one `key=value` token, so whitespace in it would token-split
/// into a *different* (silently corrupted) request on parse. The typed protocol allows any
/// name; the codec refuses the ones it cannot carry faithfully.
fn wire_safe_name(name: &str) -> Result<&str, WireError> {
    if name.chars().any(char::is_whitespace) {
        return Err(WireError::new(format!(
            "query name `{name}` cannot ride the line wire (contains whitespace)"
        )));
    }
    Ok(name)
}

/// Paths ride as the rest of the line, so interior spaces are fine — but a line break would
/// frame as two lines (the second parsing as garbage), and leading/trailing whitespace is
/// trimmed on parse; both break the encode/parse inverse and are refused.
fn wire_safe_path(path: &std::path::Path) -> Result<std::path::Display<'_>, WireError> {
    let text = path.to_string_lossy();
    if text.contains(['\n', '\r']) || text.trim() != text {
        return Err(WireError::new(format!(
            "path `{}` cannot ride the line wire (line break or edge whitespace)",
            text.escape_debug()
        )));
    }
    Ok(path.display())
}

/// Renders a request as one wire line — the inverse of [`parse_request`] (predicates re-encode
/// in the printer's positional syntax, which [`parse_request`] accepts).
///
/// # Errors
///
/// Returns [`WireError`] for requests this codec cannot carry faithfully (a query name
/// containing whitespace) instead of emitting a line that would parse as something else.
pub fn encode_request(request: &ServeRequest) -> Result<String, WireError> {
    Ok(match request {
        ServeRequest::OpenSession { policy } => format!("open {policy}"),
        ServeRequest::RegisterQuery { query, kind, members } => {
            let members = match members {
                Some(m) => m.to_string(),
                None => "-".to_string(),
            };
            format!(
                "register name={} kind={kind} members={members} pred={}",
                wire_safe_name(query.name())?,
                query.pred()
            )
        }
        ServeRequest::Downgrade { session, secret, query } => {
            let query = wire_safe_name(query)?;
            format!("downgrade session={session} query={query} secret={}", encode_point(secret))
        }
        ServeRequest::DowngradeBatch { session, secrets, query } => {
            let query = wire_safe_name(query)?;
            let list: Vec<String> = secrets.iter().map(encode_point).collect();
            format!("batch session={session} query={query} secrets={}", list.join(";"))
        }
        ServeRequest::CountModels { pred } => format!("count pred={pred}"),
        ServeRequest::CheckValidity { pred } => format!("valid pred={pred}"),
        ServeRequest::Knowledge { session, secret } => {
            format!("knowledge session={session} secret={}", encode_point(secret))
        }
        ServeRequest::Stats => "stats".to_string(),
        ServeRequest::SaveCache { path } => format!("save path={}", wire_safe_path(path)?),
        ServeRequest::WarmStart { path, verify } => {
            let verify = if *verify { "verify " } else { "" };
            format!("warm {verify}path={}", wire_safe_path(path)?)
        }
        ServeRequest::CloseSession { session } => format!("close session={session}"),
        ServeRequest::Metrics => "metrics".to_string(),
        ServeRequest::Trace => "trace".to_string(),
    })
}

/// Flattens a denial message to one physical line: the wire is line-oriented, and some session
/// errors (a failed verification's report, say) render multi-line — embedded verbatim they
/// would desync every line-per-response client.
fn flatten_message(message: &str) -> String {
    if !message.contains(['\n', '\r']) {
        return message.to_string();
    }
    message
        .split(['\n', '\r'])
        .map(str::trim)
        .filter(|part| !part.is_empty())
        .collect::<Vec<_>>()
        .join("; ")
}

/// Renders a response as one wire line (the transport prefixes the request id).
pub fn encode_response(response: &ServeResponse) -> String {
    match response {
        ServeResponse::SessionOpened { session } => format!("ok session {session}"),
        ServeResponse::QueryRegistered { name } => format!("ok registered {name}"),
        ServeResponse::Answer(Ok(answer)) => format!("ok answer {answer}"),
        ServeResponse::Answer(Err(denial)) => {
            format!("deny {} {}", denial.code, flatten_message(&denial.message))
        }
        ServeResponse::Answers(results) => {
            let mut line = String::from("ok answers");
            for result in results {
                line.push(' ');
                match result {
                    Ok(answer) => line.push_str(&answer.to_string()),
                    Err(code) => {
                        line.push('!');
                        line.push_str(code.as_str());
                    }
                }
            }
            line
        }
        ServeResponse::Count { models } => format!("ok count {models}"),
        ServeResponse::Validity { counterexample: None } => "ok valid".to_string(),
        ServeResponse::Validity { counterexample: Some(point) } => {
            format!("ok counterexample {}", encode_point(point))
        }
        ServeResponse::Knowledge { size, encoded } => {
            format!("ok knowledge size={size} {encoded}")
        }
        ServeResponse::Stats(s) => format!(
            "ok stats open={} ticks={} requests={} batched={} largest={} torn={} tenants={} \
             denied={} reactors={} shard={} workers={} entries={} sessions={} closed={} \
             synth_hits={} synth_misses={} warm={} authorized={} refused={} memo_cfg={} \
             memo_hint={} memo={} journal={} saves_skipped={}",
            s.open_sessions,
            s.ticks,
            s.requests,
            s.batched_downgrades,
            s.largest_batch,
            s.sessions_torn_down,
            s.tenants,
            s.denials,
            s.reactors,
            s.shard,
            s.serve.workers,
            s.serve.entries,
            s.serve.cache.sessions_opened,
            s.serve.cache.sessions_closed,
            s.serve.cache.synth_hits,
            s.serve.cache.synth_misses,
            s.serve.cache.warm_loaded,
            s.serve.cache.downgrades_authorized,
            s.serve.cache.downgrades_refused,
            s.memo_min_depth,
            s.memo_suggested_depth,
            encode_memo_buckets(&s.memo_depth),
            encode_journal(&s.journal),
            s.saves_skipped,
        ),
        ServeResponse::CacheSaved { entries, skipped } => {
            format!("ok saved {entries} skipped={skipped}")
        }
        ServeResponse::WarmStarted { loaded, skipped } => {
            format!("ok warm loaded={loaded} skipped={skipped}")
        }
        ServeResponse::SessionClosed { session } => format!("ok closed {session}"),
        // The payload is emitted by the telemetry renderers, which guarantee one physical
        // line; `flatten_message` would corrupt JSON, so it is deliberately not applied.
        ServeResponse::Metrics { json } => format!("ok metrics {json}"),
        ServeResponse::Trace { json } => format!("ok trace {json}"),
        ServeResponse::Rejected(denial) => {
            format!("err {} {}", denial.code, flatten_message(&denial.message))
        }
    }
}

/// Renders the per-depth memo counters as `hits:misses:bypassed` triples, one per bucket,
/// comma-joined — compact enough for the single-line stats response.
fn encode_memo_buckets(buckets: &[[u64; 3]; anosy_logic::BOX_MEMO_DEPTH_BUCKETS]) -> String {
    let triples: Vec<String> = buckets
        .iter()
        .map(|[hits, misses, bypassed]| format!("{hits}:{misses}:{bypassed}"))
        .collect();
    triples.join(",")
}

/// Renders the journal counters as `appended:compacted:replayed:torn` (the same colon-joined
/// sub-token idiom as the memo buckets).
fn encode_journal(journal: &[u64; 4]) -> String {
    let [appended, compacted, replayed, torn] = journal;
    format!("{appended}:{compacted}:{replayed}:{torn}")
}

/// Parses the [`encode_journal`] form back into the four journal counters.
fn parse_journal(text: &str) -> Option<[u64; 4]> {
    let mut counters = [0u64; 4];
    let mut parts = text.splitn(4, ':');
    for slot in counters.iter_mut() {
        *slot = parts.next()?.parse().ok()?;
    }
    Some(counters)
}

/// Parses the [`encode_memo_buckets`] form back into per-bucket counters.
fn parse_memo_buckets(text: &str) -> Option<[[u64; 3]; anosy_logic::BOX_MEMO_DEPTH_BUCKETS]> {
    let mut buckets = [[0u64; 3]; anosy_logic::BOX_MEMO_DEPTH_BUCKETS];
    let mut triples = text.split(',');
    for bucket in &mut buckets {
        let mut parts = triples.next()?.splitn(3, ':');
        for slot in bucket.iter_mut() {
            *slot = parts.next()?.parse().ok()?;
        }
    }
    triples.next().is_none().then_some(buckets)
}

/// Default cap on one wire line for the incremental [`LineDecoder`], in bytes. Protocol lines
/// are short; anything approaching this is a peer that never terminates its line.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// One decoded unit from a [`LineDecoder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodedLine {
    /// A complete line, terminator stripped (a trailing `\r` before the `\n` is stripped too,
    /// so CRLF and LF peers decode identically — the `BufRead::lines` convention).
    Line(String),
    /// A complete line that was not valid UTF-8. An error *as data*: the decoder stays in sync
    /// and the next line decodes normally.
    NonUtf8,
    /// A line exceeded the decoder's byte cap before any terminator arrived. Reported once;
    /// the rest of the line (up to the next terminator) is discarded silently.
    Overlong,
}

/// An incremental line decoder with carry-over buffering: feed it byte chunks exactly as a
/// transport produces them — partial lines, several lines coalesced into one read, CRLF or LF
/// terminators, arbitrary split points — and it yields each complete line exactly once.
///
/// The decoder can never desync: malformed input (non-UTF-8 bytes, embedded NUL, a line longer
/// than the cap) is reported as a [`DecodedLine`] variant and the carry-over state resumes at
/// the next terminator. Decoding is a pure function of the concatenated input bytes — chunk
/// boundaries never change what is produced (property-tested in
/// `tests/proptest_wire_fuzz.rs`).
#[derive(Debug)]
pub struct LineDecoder {
    buffer: Vec<u8>,
    max_line: usize,
    /// An overlong line was reported; swallow bytes until the next terminator.
    discarding: bool,
}

impl LineDecoder {
    /// A decoder with the [`MAX_LINE_BYTES`] cap.
    pub fn new() -> LineDecoder {
        LineDecoder::with_max_line(MAX_LINE_BYTES)
    }

    /// A decoder that reports lines longer than `max_line` bytes (terminator excluded) as
    /// [`DecodedLine::Overlong`].
    pub fn with_max_line(max_line: usize) -> LineDecoder {
        assert!(max_line > 0, "a zero-byte line cap would reject every line");
        LineDecoder { buffer: Vec::new(), max_line, discarding: false }
    }

    /// The configured line cap, in bytes.
    pub fn max_line(&self) -> usize {
        self.max_line
    }

    /// Bytes of the current partial line carried over for the next [`LineDecoder::feed`].
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Consumes one transport read's worth of bytes and returns every line completed by it.
    pub fn feed(&mut self, bytes: &[u8]) -> Vec<DecodedLine> {
        let mut out = Vec::new();
        for &byte in bytes {
            if byte == b'\n' {
                if self.discarding {
                    self.discarding = false;
                } else {
                    out.push(self.take_line(true));
                }
            } else if self.discarding {
                // Tail of an already-reported overlong line.
            } else {
                self.buffer.push(byte);
                // A trailing `\r` may still turn out to be a CRLF terminator (stripped on the
                // `\n`), so it gets one byte of grace: the cap counts content, not terminator,
                // and CRLF peers must see the same line capacity as LF peers.
                let limit = self.max_line + usize::from(byte == b'\r');
                if self.buffer.len() > limit {
                    out.push(DecodedLine::Overlong);
                    self.buffer.clear();
                    self.discarding = true;
                }
            }
        }
        out
    }

    /// Flushes the trailing unterminated line at end of stream, mirroring `BufRead::lines`
    /// (which yields a final line even without a terminator — so a peer that half-closes
    /// mid-line still gets its last fragment interpreted). Returns `None` when nothing is
    /// buffered; the decoder is reusable afterwards.
    pub fn finish(&mut self) -> Option<DecodedLine> {
        if self.discarding {
            self.discarding = false;
            return None;
        }
        if self.buffer.is_empty() {
            return None;
        }
        // The one-byte CRLF grace never materialized into a terminator: at end of stream the
        // trailing `\r` is data, and the line really is over the cap.
        if self.buffer.len() > self.max_line {
            self.buffer.clear();
            return Some(DecodedLine::Overlong);
        }
        Some(self.take_line(false))
    }

    /// Drops any carried-over partial line (an abortive disconnect: the fragment never
    /// completed and must not be interpreted).
    pub fn discard(&mut self) {
        self.buffer.clear();
        self.discarding = false;
    }

    fn take_line(&mut self, terminated: bool) -> DecodedLine {
        let mut line = std::mem::take(&mut self.buffer);
        if terminated && line.last() == Some(&b'\r') {
            line.pop();
        }
        match String::from_utf8(line) {
            Ok(text) => DecodedLine::Line(text),
            Err(_) => DecodedLine::NonUtf8,
        }
    }
}

impl Default for LineDecoder {
    fn default() -> Self {
        LineDecoder::new()
    }
}

/// The magic first bytes a connection sends to negotiate the binary frame protocol. Anything
/// else (including a too-short stream) is served as the line protocol — see the
/// [module docs](self).
pub const BINARY_PREAMBLE: &[u8] = b"anosy-bin v1\n";

/// Default cap on one frame's payload for [`FrameDecoder`], in bytes — the same budget as
/// [`MAX_LINE_BYTES`], since a frame payload is one protocol line.
pub const MAX_FRAME_BYTES: usize = 64 * 1024;

/// Bytes of a frame header: `u32` LE payload length + `u64` LE FNV-1a checksum of the payload.
const FRAME_HEADER_BYTES: usize = 12;

/// FNV-1a 64-bit — the frame checksum (the same record checksum the durability journal uses:
/// cheap, dependency-free, and plenty to catch truncation or bit rot; not cryptographic).
pub fn frame_checksum(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Appends one encoded frame carrying `payload` to `out` (header + payload; see the
/// [module docs](self) for the layout).
pub fn frame_into(out: &mut Vec<u8>, payload: &[u8]) {
    out.reserve(FRAME_HEADER_BYTES + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&frame_checksum(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// One encoded frame carrying `payload`, as fresh bytes.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    frame_into(&mut out, payload);
    out
}

/// One decoded unit from a [`FrameDecoder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodedFrame {
    /// A complete frame whose checksum verified; the payload is one protocol line,
    /// terminator-free.
    Frame(Vec<u8>),
    /// A complete frame whose payload did not match its header checksum. An error *as data*:
    /// the frame boundary was still known exactly, so the decoder stays in sync and the next
    /// frame decodes normally.
    Corrupt,
    /// A frame declared a payload longer than the decoder's cap. Reported once; the declared
    /// payload is swallowed without buffering and decoding resumes at the next frame boundary.
    Oversize,
    /// The stream ended (or was explicitly finished) mid-frame: an incomplete trailing
    /// fragment that can never be verified. Only produced by [`FrameDecoder::finish`].
    Truncated,
}

/// An incremental binary-frame decoder with carry-over buffering — the frame-protocol twin of
/// [`LineDecoder`]. Feed it byte chunks exactly as a transport produces them (partial frames,
/// several frames coalesced into one read, arbitrary split points) and it yields each complete
/// frame exactly once.
///
/// The decoder can never desync or panic on any byte sequence: corrupt and oversize frames are
/// reported as [`DecodedFrame`] variants and decoding resumes at the next frame boundary.
/// Decoding is a pure function of the concatenated input bytes — chunk boundaries never change
/// what is produced (property-tested in `tests/proptest_wire_fuzz.rs`). At most
/// `12 + max_frame` bytes are ever buffered: an oversize frame's payload is counted down, not
/// stored.
#[derive(Debug)]
pub struct FrameDecoder {
    buffer: Vec<u8>,
    max_frame: usize,
    /// Remaining payload bytes of an already-reported oversize frame to swallow.
    skip: u64,
}

impl FrameDecoder {
    /// A decoder with the [`MAX_FRAME_BYTES`] payload cap.
    pub fn new() -> FrameDecoder {
        FrameDecoder::with_max_frame(MAX_FRAME_BYTES)
    }

    /// A decoder that reports frames declaring more than `max_frame` payload bytes as
    /// [`DecodedFrame::Oversize`].
    pub fn with_max_frame(max_frame: usize) -> FrameDecoder {
        assert!(max_frame > 0, "a zero-byte frame cap would reject every frame");
        FrameDecoder { buffer: Vec::new(), max_frame, skip: 0 }
    }

    /// The configured payload cap, in bytes.
    pub fn max_frame(&self) -> usize {
        self.max_frame
    }

    /// Bytes of the current partial frame carried over for the next [`FrameDecoder::feed`].
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Consumes one transport read's worth of bytes and returns every frame completed by it.
    pub fn feed(&mut self, bytes: &[u8]) -> Vec<DecodedFrame> {
        let mut out = Vec::new();
        let mut rest = bytes;
        while !rest.is_empty() {
            if self.skip > 0 {
                // Tail of an already-reported oversize frame: count it down, never buffer it.
                let n = usize::try_from(self.skip).unwrap_or(usize::MAX).min(rest.len());
                self.skip -= n as u64;
                rest = &rest[n..];
                continue;
            }
            if self.buffer.len() < FRAME_HEADER_BYTES {
                let need = FRAME_HEADER_BYTES - self.buffer.len();
                let take = need.min(rest.len());
                self.buffer.extend_from_slice(&rest[..take]);
                rest = &rest[take..];
                if self.buffer.len() < FRAME_HEADER_BYTES {
                    break;
                }
            }
            let len = u32::from_le_bytes(self.buffer[..4].try_into().expect("4 header bytes"));
            if len as usize > self.max_frame {
                out.push(DecodedFrame::Oversize);
                self.buffer.clear();
                self.skip = u64::from(len);
                continue;
            }
            let total = FRAME_HEADER_BYTES + len as usize;
            if self.buffer.len() < total {
                let take = (total - self.buffer.len()).min(rest.len());
                self.buffer.extend_from_slice(&rest[..take]);
                rest = &rest[take..];
                if self.buffer.len() < total {
                    break;
                }
            }
            let sum = u64::from_le_bytes(self.buffer[4..12].try_into().expect("8 header bytes"));
            let mut payload = std::mem::take(&mut self.buffer);
            payload.drain(..FRAME_HEADER_BYTES);
            if frame_checksum(&payload) == sum {
                out.push(DecodedFrame::Frame(payload));
            } else {
                out.push(DecodedFrame::Corrupt);
            }
        }
        out
    }

    /// Reports the trailing incomplete frame at end of stream, if any — a peer that
    /// half-closes mid-frame left an unverifiable fragment ([`DecodedFrame::Truncated`]),
    /// unlike the line protocol where a trailing fragment is still an interpretable line.
    /// Returns `None` on a clean frame boundary; the decoder is reusable afterwards.
    pub fn finish(&mut self) -> Option<DecodedFrame> {
        if self.skip > 0 {
            self.skip = 0;
            return Some(DecodedFrame::Truncated);
        }
        if self.buffer.is_empty() {
            return None;
        }
        self.buffer.clear();
        Some(DecodedFrame::Truncated)
    }

    /// Drops any carried-over partial frame (an abortive disconnect: the fragment never
    /// completed and must not be reported).
    pub fn discard(&mut self) {
        self.buffer.clear();
        self.skip = 0;
    }
}

impl Default for FrameDecoder {
    fn default() -> Self {
        FrameDecoder::new()
    }
}

fn parse_denial(rest: &str) -> Result<Denial, WireError> {
    let (code, message) = rest.split_once(' ').unwrap_or((rest, ""));
    let code =
        DenialCode::parse(code).ok_or_else(|| WireError::new(format!("bad code `{code}`")))?;
    Ok(Denial::new(code, message))
}

fn parse_counter<T: std::str::FromStr>(head: &str, key: &str) -> Result<T, WireError> {
    token(head, key)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| WireError::new(format!("missing or bad {key}")))
}

/// Parses one response line — the inverse of [`encode_response`].
pub fn parse_response(line: &str) -> Result<ServeResponse, WireError> {
    let line = line.trim();
    let (status, rest) = line.split_once(' ').unwrap_or((line, ""));
    match status {
        "deny" => Ok(ServeResponse::Answer(Err(parse_denial(rest)?))),
        "err" => Ok(ServeResponse::Rejected(parse_denial(rest)?)),
        "ok" => {
            let (what, rest) = rest.split_once(' ').unwrap_or((rest, ""));
            match what {
                "session" => rest
                    .parse()
                    .map(|id| ServeResponse::SessionOpened { session: SessionId(id) })
                    .map_err(|_| WireError::new("bad session id")),
                "registered" => Ok(ServeResponse::QueryRegistered { name: rest.to_string() }),
                "answer" => match rest {
                    "true" => Ok(ServeResponse::Answer(Ok(true))),
                    "false" => Ok(ServeResponse::Answer(Ok(false))),
                    other => Err(WireError::new(format!("bad answer `{other}`"))),
                },
                "answers" => {
                    let mut results = Vec::new();
                    for tok in rest.split_whitespace() {
                        results.push(match tok {
                            "true" => Ok(true),
                            "false" => Ok(false),
                            denied => {
                                let code = denied
                                    .strip_prefix('!')
                                    .and_then(DenialCode::parse)
                                    .ok_or_else(|| {
                                        WireError::new(format!("bad answer token `{denied}`"))
                                    })?;
                                Err(code)
                            }
                        });
                    }
                    Ok(ServeResponse::Answers(results))
                }
                "count" => rest
                    .parse()
                    .map(|models| ServeResponse::Count { models })
                    .map_err(|_| WireError::new("bad count")),
                "valid" if rest.is_empty() => Ok(ServeResponse::Validity { counterexample: None }),
                "counterexample" => parse_point(rest)
                    .map(|p| ServeResponse::Validity { counterexample: Some(p) })
                    .ok_or_else(|| WireError::new("bad counterexample point")),
                "knowledge" => {
                    let (head, encoded) = tail(rest, "size=").and_then(|(_, tail)| {
                        tail.split_once(' ')
                            .ok_or_else(|| WireError::new("missing encoded element"))
                    })?;
                    let size = head.parse().map_err(|_| WireError::new("bad knowledge size"))?;
                    Ok(ServeResponse::Knowledge { size, encoded: encoded.to_string() })
                }
                "stats" => Ok(ServeResponse::Stats(Box::new(StatsSnapshot {
                    open_sessions: parse_counter(rest, "open=")?,
                    ticks: parse_counter(rest, "ticks=")?,
                    requests: parse_counter(rest, "requests=")?,
                    batched_downgrades: parse_counter(rest, "batched=")?,
                    largest_batch: parse_counter(rest, "largest=")?,
                    sessions_torn_down: parse_counter(rest, "torn=")?,
                    tenants: parse_counter(rest, "tenants=")?,
                    denials: parse_counter(rest, "denied=")?,
                    reactors: parse_counter(rest, "reactors=")?,
                    shard: parse_counter(rest, "shard=")?,
                    serve: ServeStats {
                        workers: parse_counter(rest, "workers=")?,
                        entries: parse_counter(rest, "entries=")?,
                        cache: SharedCacheStats {
                            sessions_opened: parse_counter(rest, "sessions=")?,
                            sessions_closed: parse_counter(rest, "closed=")?,
                            synth_hits: parse_counter(rest, "synth_hits=")?,
                            synth_misses: parse_counter(rest, "synth_misses=")?,
                            warm_loaded: parse_counter(rest, "warm=")?,
                            downgrades_authorized: parse_counter(rest, "authorized=")?,
                            downgrades_refused: parse_counter(rest, "refused=")?,
                        },
                    },
                    memo_depth: token(rest, "memo=")
                        .and_then(parse_memo_buckets)
                        .ok_or_else(|| WireError::new("missing or bad memo="))?,
                    memo_min_depth: parse_counter(rest, "memo_cfg=")?,
                    memo_suggested_depth: parse_counter(rest, "memo_hint=")?,
                    journal: token(rest, "journal=")
                        .and_then(parse_journal)
                        .ok_or_else(|| WireError::new("missing or bad journal="))?,
                    saves_skipped: parse_counter(rest, "saves_skipped=")?,
                }))),
                "saved" => {
                    let (head, _) = tail(rest, "skipped=")?;
                    Ok(ServeResponse::CacheSaved {
                        entries: head
                            .trim_end()
                            .parse()
                            .map_err(|_| WireError::new("bad saved count"))?,
                        skipped: parse_counter(rest, "skipped=")?,
                    })
                }
                "warm" => Ok(ServeResponse::WarmStarted {
                    loaded: parse_counter(rest, "loaded=")?,
                    skipped: parse_counter(rest, "skipped=")?,
                }),
                "closed" => rest
                    .parse()
                    .map(|id| ServeResponse::SessionClosed { session: SessionId(id) })
                    .map_err(|_| WireError::new("bad session id")),
                "metrics" if !rest.is_empty() => {
                    Ok(ServeResponse::Metrics { json: rest.to_string() })
                }
                "trace" if !rest.is_empty() => Ok(ServeResponse::Trace { json: rest.to_string() }),
                other => Err(WireError::new(format!("unknown response `{other}`"))),
            }
        }
        other => Err(WireError::new(format!("unknown status `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anosy_logic::IntExpr;

    fn layout() -> SecretLayout {
        SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build()
    }

    fn nearby() -> QueryDef {
        let pred = ((IntExpr::var(0) - 200).abs() + (IntExpr::var(1) - 200).abs()).le(100);
        QueryDef::new("nearby", layout(), pred).unwrap()
    }

    #[test]
    fn every_request_round_trips() {
        let requests = vec![
            ServeRequest::OpenSession { policy: PolicySpec::parse("min-size:100").unwrap() },
            ServeRequest::RegisterQuery {
                query: nearby(),
                kind: anosy_synth::ApproxKind::Under,
                members: None,
            },
            ServeRequest::RegisterQuery {
                query: nearby(),
                kind: anosy_synth::ApproxKind::Over,
                members: Some(3),
            },
            ServeRequest::Downgrade {
                session: SessionId(1),
                secret: Point::new(vec![300, 200]),
                query: "nearby".into(),
            },
            ServeRequest::DowngradeBatch {
                session: SessionId(2),
                secrets: vec![Point::new(vec![1, 2]), Point::new(vec![-3, 4])],
                query: "nearby".into(),
            },
            ServeRequest::DowngradeBatch {
                session: SessionId(2),
                secrets: vec![],
                query: "nearby".into(),
            },
            ServeRequest::CountModels { pred: IntExpr::var(0).le(100) },
            ServeRequest::CheckValidity { pred: IntExpr::var(1).ge(0) },
            ServeRequest::Knowledge { session: SessionId(1), secret: Point::new(vec![0, 0]) },
            ServeRequest::Stats,
            ServeRequest::SaveCache { path: PathBuf::from("/tmp/a b.cache") },
            ServeRequest::WarmStart { path: PathBuf::from("warm.cache"), verify: true },
            ServeRequest::WarmStart { path: PathBuf::from("warm.cache"), verify: false },
            ServeRequest::CloseSession { session: SessionId(9) },
            ServeRequest::Metrics,
            ServeRequest::Trace,
        ];
        for request in requests {
            let line = encode_request(&request).unwrap();
            assert!(!line.contains('\n'));
            let parsed = parse_request(&line, &layout()).unwrap_or_else(|e| {
                panic!("`{line}` failed to parse: {e}");
            });
            assert_eq!(parsed, request, "`{line}`");
        }
    }

    #[test]
    fn wire_unsafe_query_names_are_refused_at_encode_time() {
        // A name with whitespace would token-split into a different request on parse; the
        // codec must refuse it instead of corrupting silently.
        let spaced = QueryDef::new("my query", layout(), IntExpr::var(0).le(1)).unwrap();
        let register = ServeRequest::RegisterQuery {
            query: spaced,
            kind: anosy_synth::ApproxKind::Under,
            members: None,
        };
        assert!(encode_request(&register).is_err());
        let downgrade = ServeRequest::Downgrade {
            session: SessionId(1),
            secret: Point::new(vec![0, 0]),
            query: "my query".into(),
        };
        assert!(encode_request(&downgrade).is_err());
        // Paths tolerate interior spaces but not line breaks (two physical lines) or edge
        // whitespace (trimmed on parse): both would break the encode/parse inverse.
        for bad in ["a\nb.cache", " padded.cache", "padded.cache "] {
            let save = ServeRequest::SaveCache { path: PathBuf::from(bad) };
            assert!(encode_request(&save).is_err(), "{bad:?}");
            let warm = ServeRequest::WarmStart { path: PathBuf::from(bad), verify: true };
            assert!(encode_request(&warm).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn human_written_requests_parse_with_field_names() {
        let req = parse_request("register name=near kind=under pred=abs(x - 200) <= 50", &layout())
            .unwrap();
        match req {
            ServeRequest::RegisterQuery { query, members: None, .. } => {
                assert_eq!(query.name(), "near");
                // `x` resolved to field 0 of the layout.
                assert!(query.pred().free_vars().contains(&0));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_request("open min-size:100&min-entropy-mb:2000", &layout()).is_ok());
    }

    #[test]
    fn every_response_round_trips() {
        let responses = vec![
            ServeResponse::SessionOpened { session: SessionId(3) },
            ServeResponse::QueryRegistered { name: "nearby".into() },
            ServeResponse::Answer(Ok(true)),
            ServeResponse::Answer(Ok(false)),
            ServeResponse::Answer(Err(Denial::new(
                DenialCode::Policy,
                "policy violation: min-size(100) refuses nearby",
            ))),
            ServeResponse::Answers(vec![Ok(true), Err(DenialCode::OutsideLayout), Ok(false)]),
            ServeResponse::Answers(vec![]),
            ServeResponse::Count { models: 20_201 },
            ServeResponse::Validity { counterexample: None },
            ServeResponse::Validity { counterexample: Some(Point::new(vec![0, 0])) },
            ServeResponse::Knowledge { size: 6837, encoded: "121..279,179..221".into() },
            ServeResponse::Stats(Box::new(StatsSnapshot {
                open_sessions: 2,
                ticks: 5,
                requests: 17,
                batched_downgrades: 9,
                largest_batch: 4,
                sessions_torn_down: 1,
                tenants: 3,
                denials: 2,
                reactors: 4,
                shard: 2,
                serve: ServeStats {
                    workers: 4,
                    entries: 1,
                    cache: SharedCacheStats {
                        synth_hits: 3,
                        synth_misses: 1,
                        downgrades_authorized: 7,
                        downgrades_refused: 2,
                        sessions_opened: 2,
                        sessions_closed: 1,
                        warm_loaded: 0,
                    },
                },
                memo_depth: [[0, 0, 12], [3, 1, 0], [250, 9, 0], [0, 0, 0]],
                memo_min_depth: 2,
                memo_suggested_depth: 3,
                journal: [14, 9, 5, 1],
                saves_skipped: 2,
            })),
            ServeResponse::CacheSaved { entries: 2, skipped: 1 },
            ServeResponse::CacheSaved { entries: 0, skipped: 0 },
            ServeResponse::WarmStarted { loaded: 2, skipped: 1 },
            ServeResponse::SessionClosed { session: SessionId(3) },
            ServeResponse::Metrics {
                json: "{\"counters\":{\"wire.lines\":7},\"histograms\":{}}".into(),
            },
            ServeResponse::Metrics { json: "{}".into() },
            ServeResponse::Trace { json: "[]".into() },
            ServeResponse::Rejected(Denial::new(DenialCode::UnknownSession, "no open session 7")),
        ];
        for response in responses {
            let line = encode_response(&response);
            assert!(!line.contains('\n'));
            let parsed = parse_response(&line).unwrap_or_else(|e| {
                panic!("`{line}` failed to parse: {e}");
            });
            assert_eq!(parsed, response, "`{line}`");
        }
    }

    #[test]
    fn multi_line_denial_messages_stay_on_one_wire_line() {
        // Verification failures render multi-line reports; the wire must flatten them or every
        // subsequent line desyncs a line-per-response client.
        let denial = Denial::new(
            DenialCode::Internal,
            "synthesized approximation for q failed verification:\n  under_truthy: refuted\r\n  under_falsy: ok\n",
        );
        for response in
            [ServeResponse::Rejected(denial.clone()), ServeResponse::Answer(Err(denial))]
        {
            let line = encode_response(&response);
            assert!(!line.contains('\n') && !line.contains('\r'), "`{line}`");
            assert!(line.contains("failed verification:; under_truthy: refuted; under_falsy: ok"));
            // Still parseable; the flattened message is the canonical wire form.
            let parsed = parse_response(&line).unwrap();
            assert_eq!(encode_response(&parsed), line);
        }
    }

    #[test]
    fn malformed_lines_error_instead_of_panicking() {
        for bad in [
            "",
            "unknown stuff",
            "open",
            "open sideways",
            "register name=q kind=under", // no pred=
            "register kind=under pred=x <= 1",
            "downgrade session=1 query=q", // no secret=
            "downgrade session=x query=q secret=1,2",
            "batch session=1 query=q secrets=1,2;x",
            "count pred=)((",
            "stats extra",
            "metrics extra",
            "trace extra",
            "save",
            "close session=",
        ] {
            assert!(parse_request(bad, &layout()).is_err(), "`{bad}` must not parse");
        }
        for bad in
            ["", "ok", "ok what 3", "ok answer perhaps", "deny nonsense msg", "nah 3", "ok metrics"]
        {
            assert!(parse_response(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn the_line_decoder_reassembles_arbitrary_chunkings() {
        let input = b"stats\r\ndowngrade session=1\nclose session=2\n";
        for split in 0..input.len() {
            let mut decoder = LineDecoder::new();
            let mut lines = decoder.feed(&input[..split]);
            lines.extend(decoder.feed(&input[split..]));
            assert_eq!(
                lines,
                vec![
                    DecodedLine::Line("stats".into()),
                    DecodedLine::Line("downgrade session=1".into()),
                    DecodedLine::Line("close session=2".into()),
                ],
                "split at {split}"
            );
            assert_eq!(decoder.finish(), None);
        }
    }

    #[test]
    fn the_line_decoder_reports_errors_as_data_and_stays_in_sync() {
        let mut decoder = LineDecoder::with_max_line(8);
        // Non-UTF-8 bytes (with an embedded NUL) make one NonUtf8 item, then resync.
        let lines = decoder.feed(b"ab\xff\x00\nstats\n");
        assert_eq!(lines, vec![DecodedLine::NonUtf8, DecodedLine::Line("stats".into())]);
        // An overlong line reports once, swallows its tail, then resyncs.
        let lines = decoder.feed(b"0123456789abcdef-more-tail\nok\n");
        assert_eq!(lines, vec![DecodedLine::Overlong, DecodedLine::Line("ok".into())]);
        assert_eq!(decoder.max_line(), 8);
        // A trailing fragment at EOF is a final line (mid-line half-close) …
        assert_eq!(decoder.feed(b"last"), vec![]);
        assert_eq!(decoder.buffered(), 4);
        assert_eq!(decoder.finish(), Some(DecodedLine::Line("last".into())));
        // … unless the stream aborted and the fragment is explicitly discarded.
        decoder.feed(b"gone");
        decoder.discard();
        assert_eq!(decoder.finish(), None);
        // Interior `\r` is data; only the terminator's `\r` strips.
        assert_eq!(decoder.feed(b"a\rb\r\n"), vec![DecodedLine::Line("a\rb".into())]);
    }

    #[test]
    fn crlf_peers_get_the_same_line_capacity_as_lf_peers() {
        // A CRLF line whose *content* is exactly the cap must decode, not report Overlong:
        // the cap counts content, terminator excluded.
        let mut decoder = LineDecoder::with_max_line(8);
        assert_eq!(decoder.feed(b"01234567\r\n"), vec![DecodedLine::Line("01234567".into())]);
        assert_eq!(decoder.feed(b"01234567\n"), vec![DecodedLine::Line("01234567".into())]);
        // One content byte over the cap overflows for both terminators alike.
        assert_eq!(
            decoder.feed(b"012345678\r\n"),
            vec![DecodedLine::Overlong],
            "9 content bytes exceed the cap regardless of terminator"
        );
        assert_eq!(decoder.feed(b"ok\n"), vec![DecodedLine::Line("ok".into())]);
        // At end of stream the grace `\r` is data, and the line really is over the cap.
        decoder.feed(b"01234567\r");
        assert_eq!(decoder.finish(), Some(DecodedLine::Overlong));
        assert_eq!(decoder.feed(b"ok\n"), vec![DecodedLine::Line("ok".into())]);
    }

    #[test]
    fn the_frame_decoder_reassembles_arbitrary_chunkings() {
        let mut input = Vec::new();
        frame_into(&mut input, b"stats");
        frame_into(&mut input, b"");
        frame_into(&mut input, b"close session=2");
        for split in 0..input.len() {
            let mut decoder = FrameDecoder::new();
            let mut frames = decoder.feed(&input[..split]);
            frames.extend(decoder.feed(&input[split..]));
            assert_eq!(
                frames,
                vec![
                    DecodedFrame::Frame(b"stats".to_vec()),
                    DecodedFrame::Frame(Vec::new()),
                    DecodedFrame::Frame(b"close session=2".to_vec()),
                ],
                "split at {split}"
            );
            assert_eq!(decoder.finish(), None);
        }
    }

    #[test]
    fn the_frame_decoder_reports_errors_as_data_and_stays_in_sync() {
        let mut decoder = FrameDecoder::with_max_frame(8);
        // A corrupt frame (checksum mismatch) reports once and the next frame decodes.
        let mut bytes = encode_frame(b"evil");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        bytes.extend_from_slice(&encode_frame(b"ok"));
        assert_eq!(
            decoder.feed(&bytes),
            vec![DecodedFrame::Corrupt, DecodedFrame::Frame(b"ok".to_vec())]
        );
        // An oversize declaration swallows its payload without buffering it, then resyncs.
        let mut bytes = encode_frame(b"0123456789abcdef");
        bytes.extend_from_slice(&encode_frame(b"after"));
        let frames = decoder.feed(&bytes);
        assert_eq!(frames, vec![DecodedFrame::Oversize, DecodedFrame::Frame(b"after".to_vec())]);
        assert!(decoder.buffered() <= 12 + decoder.max_frame());
        // A trailing partial frame at EOF is unverifiable — Truncated, not a frame.
        decoder.feed(&encode_frame(b"tail")[..6]);
        assert_eq!(decoder.finish(), Some(DecodedFrame::Truncated));
        assert_eq!(decoder.feed(&encode_frame(b"go")), vec![DecodedFrame::Frame(b"go".to_vec())]);
        // … unless explicitly discarded (abortive disconnect).
        decoder.feed(&encode_frame(b"gone")[..3]);
        decoder.discard();
        assert_eq!(decoder.finish(), None);
        // Mid-skip EOF of an oversize frame is also Truncated.
        let oversize = encode_frame(b"0123456789abcdef");
        decoder.feed(&oversize[..14]);
        assert_eq!(decoder.finish(), Some(DecodedFrame::Truncated));
        assert_eq!(decoder.feed(&encode_frame(b"go")), vec![DecodedFrame::Frame(b"go".to_vec())]);
    }

    #[test]
    fn interned_parsing_shares_one_allocation_per_query_name() {
        let mut interner = NameInterner::new();
        let a = parse_request_interned(
            "downgrade session=1 query=nearby secret=1,2",
            &layout(),
            &mut interner,
        )
        .unwrap();
        let b = parse_request_interned(
            "batch session=2 query=nearby secrets=1,2",
            &layout(),
            &mut interner,
        )
        .unwrap();
        let (
            ServeRequest::Downgrade { query: qa, .. },
            ServeRequest::DowngradeBatch { query: qb, .. },
        ) = (a, b)
        else {
            panic!("parsed wrong variants");
        };
        assert!(Arc::ptr_eq(&qa, &qb), "same name must intern to one allocation");
        assert_eq!(interner.len(), 1);
        assert!(!interner.is_empty());
    }

    #[test]
    fn points_and_layouts_parse() {
        assert_eq!(parse_point("300,200"), Some(Point::new(vec![300, 200])));
        assert_eq!(parse_point("-3"), Some(Point::new(vec![-3])));
        assert_eq!(parse_point(""), None);
        assert_eq!(parse_point("1,,2"), None);
        let layout = parse_layout("x:0:400 y:-5:5").unwrap();
        assert_eq!(layout.arity(), 2);
        assert_eq!(layout.fields()[1].lo(), -5);
        assert_eq!(parse_layout(""), None);
        assert_eq!(parse_layout("x:9:1"), None);
        assert_eq!(parse_layout("x:a:b"), None);
    }
}
