//! Errors of the deployment layer.

use anosy_core::AnosyError;
use anosy_solver::SolverError;
use std::fmt;

/// Errors raised by `anosy-serve` operations.
#[derive(Debug)]
pub enum ServeError {
    /// An I/O failure while reading or writing the warm-start cache.
    Io(std::io::Error),
    /// The warm-start cache file is malformed (wrong version, wrong domain, or a line that does
    /// not decode). The deployment treats the cache as cold in this case.
    Format {
        /// 1-based line of the offending input, `0` for file-level problems.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// A session-layer failure surfaced through a deployment API.
    Anosy(AnosyError),
    /// A solver failure inside the parallel driver.
    Solver(SolverError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "cache I/O failure: {e}"),
            ServeError::Format { line, reason } => {
                write!(f, "malformed cache file (line {line}): {reason}")
            }
            ServeError::Anosy(e) => write!(f, "{e}"),
            ServeError::Solver(e) => write!(f, "solver failure: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Anosy(e) => Some(e),
            ServeError::Solver(e) => Some(e),
            ServeError::Format { .. } => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<AnosyError> for ServeError {
    fn from(e: AnosyError) -> Self {
        ServeError::Anosy(e)
    }
}

impl From<SolverError> for ServeError {
    fn from(e: SolverError) -> Self {
        ServeError::Solver(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_cover_every_variant() {
        let io: ServeError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(io.to_string().contains("gone"));
        assert!(std::error::Error::source(&io).is_some());
        let fmt = ServeError::Format { line: 3, reason: "bad token".into() };
        assert!(fmt.to_string().contains("line 3"));
        assert!(std::error::Error::source(&fmt).is_none());
        let anosy: ServeError = AnosyError::SecretOutsideLayout.into();
        assert!(anosy.to_string().contains("outside"));
        let solver: ServeError = SolverError::BudgetExhausted { limit: "node", explored: 9 }.into();
        assert!(solver.to_string().contains("solver failure"));
        assert!(std::error::Error::source(&solver).is_some());
    }
}
