//! `anosy-serve` — the concurrent deployment layer.
//!
//! The paper's workflow is per-process and offline: synthesize an approximated-knowledge
//! downgrade once, then enforce it query by query. This crate turns that into a *deployment*:
//! the shape of a server answering bounded downgrades for thousands of concurrent sessions over
//! one shared query set.
//!
//! # The deployment model
//!
//! A [`Deployment`] owns three things:
//!
//! * **One shared term store + synthesis cache** ([`anosy_core::SharedSynthCache`], behind
//!   `Arc`). Query predicates are interned into one store (interning writes serialized behind an
//!   `RwLock`; reads — snapshots, stats — are concurrent), and synthesis results are cached
//!   under the canonical `(interned predicate, layout, direction, members)` key with
//!   **single-flight** semantics. However many sessions register the same query concurrently,
//!   the synthesize-and-verify pipeline runs **exactly once per deployment**; every other
//!   registration either hits the cache or blocks briefly on the in-flight synthesis. Sessions
//!   join with [`Deployment::session`] and behave exactly like self-contained
//!   [`anosy_core::AnosySession`]s otherwise.
//!
//! * **One fixed shard pool** ([`ShardPool`]): `workers` OS threads that live as long as the
//!   deployment. Two drivers shard across it, both in the share-nothing-then-merge style:
//!   [`Deployment::downgrade_batch`] decides independent secrets' downgrades on workers and
//!   commits sequentially, and the parallel solver driver ([`par_count_models`],
//!   [`par_check_validity`]) splits a space into disjoint sub-boxes, seeds each worker with a
//!   private read-only [`anosy_logic::TermStore`] snapshot, and merges counts/outcomes plus
//!   [`anosy_solver::SolverStats`].
//!
//! * **The warm-start cache** ([`Deployment::warm_start`] / [`Deployment::save_cache`]): the
//!   synthesis cache serialized to a simple versioned text format, so a restarted deployment
//!   skips cold-start synthesis entirely for every query it has served before. For caches of
//!   dubious provenance, [`Deployment::warm_start_verified`] re-checks every entry's refinement
//!   obligations with the solver before installing it.
//!
//! On top of the deployment sits the **serving frontend** ([`Frontend`]): a sans-IO state
//! machine exposing the whole surface as one typed request/response protocol
//! ([`ServeRequest`]/[`ServeResponse`] in [`proto`]). The frontend owns sessions keyed by
//! [`SessionId`], accepts requests from any number of logical connections, batches each tick's
//! consecutive downgrades onto the [`Deployment::downgrade_batch`] path, and answers with
//! responses tagged by [`RequestId`] — element-wise identical to processing the same requests
//! sequentially against plain sessions. The [`wire`] module gives the protocol a line-oriented
//! text form, and the `anosy-served` binary serves it over stdin/stdout.
//!
//! A [`server::Server`] drives one frontend from transport events (stdio, TCP, or the
//! deterministic [`SimNet`] simulator), and a [`ReactorPool`] shards connections across `N`
//! such reactors over one shared deployment — readiness-based I/O via [`PollTransport`]
//! (epoll where available, the portable sleep loop otherwise), with responses invariant under
//! the reactor count (see the [`reactor`] module docs).
//!
//! # Determinism guarantees
//!
//! Concurrency here never changes answers, only wall-clock:
//!
//! * `downgrade_batch` returns results (and leaves the session's tracked knowledge and
//!   counters) **identical to the sequential per-call loop**, including duplicate secrets in one
//!   batch — occurrences of the same secret are chained in order on one worker, and commits
//!   happen in deterministic order (property-tested against the loop in
//!   `tests/proptest_batch.rs`).
//! * The sharded solver drivers return exactly the sequential procedures' results: counts over
//!   a disjoint partition sum to the whole-space count, validity holds iff it holds on every
//!   chunk, and the reported counterexample is chosen in deterministic chunk order.
//! * Synthesis results are independent of racing: whichever session wins the single-flight slot
//!   runs the same deterministic synthesizer every other session would have run, and everyone
//!   observes the one published result (asserted under thread stress in
//!   `tests/concurrency.rs`).
//!
//! # Example
//!
//! ```
//! use anosy_core::MinSizePolicy;
//! use anosy_domains::IntervalDomain;
//! use anosy_logic::{IntExpr, Point, SecretLayout};
//! use anosy_serve::{Deployment, ServeConfig};
//! use anosy_synth::{ApproxKind, QueryDef};
//!
//! let layout = SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build();
//! let nearby = ((IntExpr::var(0) - 200).abs() + (IntExpr::var(1) - 200).abs()).le(100);
//! let query = QueryDef::new("nearby_200_200", layout.clone(), nearby).unwrap();
//!
//! // Deployment start-up: synthesize the query set once.
//! let deployment: Deployment<IntervalDomain> =
//!     Deployment::new(layout, ServeConfig::for_tests());
//! deployment.register_query(&query, ApproxKind::Under, None).unwrap();
//!
//! // Serving: sessions share the cache; batches shard across the pool.
//! let mut session = deployment.session(MinSizePolicy::new(100));
//! let mut synth = anosy_synth::Synthesizer::with_config(deployment.config().synth.clone());
//! session.register_synthesized(&mut synth, &query, ApproxKind::Under, None).unwrap();
//! assert_eq!(session.stats().synth_cache_hits, 1); // no solver work at all
//!
//! let users: Vec<Point> = (0..100).map(|i| Point::new(vec![i * 4, 200])).collect();
//! let answers = deployment.downgrade_batch(&mut session, &users, "nearby_200_200");
//! assert_eq!(answers.len(), 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod config;
mod deployment;
mod error;
pub mod frontend;
pub mod journal;
pub mod loadgen;
mod parallel;
mod persist;
mod pool;
pub mod popsim;
pub mod proto;
pub mod reactor;
pub mod server;
pub mod sim;
pub mod wire;

pub use batch::{downgrade_batch, downgrade_batch_fused, downgrade_many, FusedGroup};
pub use config::ServeConfig;
pub use deployment::{Deployment, RecoveryOutcome, ServeStats, WarmStartOutcome};
pub use error::ServeError;
pub use frontend::{Frontend, FrontendStats};
pub use journal::{FlushPolicy, Journal, JournalConfig, JournalStats};
pub use parallel::{par_check_validity, par_count_models, par_is_valid, Sharded};
pub use persist::{load_entries, save_entries, SaveOutcome};
pub use pool::ShardPool;
pub use popsim::{compile as compile_population, CompileOptions, CompiledPopulation};
pub use proto::{
    ConnId, Denial, DenialCode, RequestId, ServeRequest, ServeResponse, SessionId, StatsSnapshot,
    TaggedResponse,
};
pub use reactor::{fold_server_stats, fold_stats, merge_io_logs, shard_of, ReactorPool};
pub use server::{
    Event, IoLogEntry, PollTransport, Server, ServerConfig, ServerStats, StdioTransport,
    TcpTransport, Token, TranscriptEvent, Transport, IO_LOG_CAP,
};
pub use sim::SimNet;

/// The deterministic telemetry layer (spans, counters, latency histograms), re-exported so
/// transports, benchmarks and binaries built on the serving stack reach it without a direct
/// dependency. Recording is active only when the `telemetry` cargo feature is on (the default)
/// *and* the reactor installed a collector ([`ServerConfig::telemetry`]).
pub use anosy_telemetry as telemetry;
pub use anosy_telemetry::{merge_metrics, trace_json, MetricsRegistry, Report};
