//! The event-loop server: a reactor driving the sans-IO [`Frontend`] over a pluggable
//! [`Transport`].
//!
//! PR 4 separated protocol semantics from I/O: the [`Frontend`] state machine knows requests,
//! ticks and responses but never touches a byte of transport. This module adds the other half —
//! an event loop that owns a frontend and a [`Transport`], and translates between the two:
//!
//! * transport **connections** ([`Token`]s) become logical [`ConnId`]s (a base id per
//!   connection, plus any explicit `@conn` ids its lines claim);
//! * transport **bytes** run through a per-connection protocol decoder — negotiated from the
//!   first bytes: connections opening with [`wire::BINARY_PREAMBLE`] speak length-prefixed
//!   checksummed [`wire::FrameDecoder`] frames, everything else falls back to the classic
//!   [`wire::LineDecoder`] line protocol (carry-over buffering either way, so partial items,
//!   coalesced writes and CRLF/LF mixes all decode identically) — and each complete
//!   line/frame becomes one [`wire::parse_request_interned`] submission;
//! * **quiescence timers and blank lines** become [`Frontend::tick`] calls, whose tagged
//!   responses are routed back to whichever connection submitted the request;
//! * **disconnects** become [`Frontend::disconnect`] teardowns: every session the connection
//!   opened is released at the disconnect's queue position, so nothing leaks and requests
//!   behind the disconnect observe exactly what a sequential replay would.
//!
//! Nondeterminism lives *only* in the transport (when bytes arrive, how they are chunked, when
//! peers vanish). The reactor is a deterministic function of the event sequence its transport
//! produces — which is why the whole server can run inside `cargo test` on
//! [`SimNet`](crate::SimNet), the seeded in-memory transport, and be replayed byte-identically
//! from a seed (`tests/sim_chaos.rs`). The same reactor serves real sockets
//! ([`TcpTransport`]) and stdin/stdout ([`StdioTransport`]) in the `anosy-served` binary; the
//! response-level determinism guarantee (element-wise identical to sequential
//! [`anosy_core::AnosySession`] replay) is unchanged from the frontend because the reactor adds
//! no protocol semantics of its own.
//!
//! # Failure policy
//!
//! A connection's I/O error ([`Event::Failed`]) closes *that connection*: its partial input is
//! discarded, its sessions are torn down, the denial is logged ([`Server::io_log`]) and every
//! other connection keeps serving. One bad peer cannot take down the process.

use crate::proto::{ConnId, RequestId, ServeRequest, TaggedResponse};
use crate::wire::{self, DecodedFrame, DecodedLine, FrameDecoder, LineDecoder};
use crate::Frontend;
use anosy_core::SynthesizeInto;
use anosy_domains::AbstractDomain;
use anosy_logic::SecretLayout;
use anosy_synth::DomainCodec;
use anosy_telemetry::{self as telemetry, Clock, ClockHandle, Collector, Report, VirtualClock};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{Receiver, TryRecvError};
use std::time::{Duration, Instant};

/// Identifies one transport-level (physical) connection. Distinct from [`ConnId`], the
/// protocol-level (logical) connection: a transport connection gets one base `ConnId` and may
/// claim more with `@conn` line prefixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub u64);

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One thing a [`Transport`] observed. The reactor is a deterministic function of the event
/// sequence, so a transport that replays the same events replays the same serve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A new connection. The reactor allocates its base [`ConnId`] in arrival order.
    Opened(Token),
    /// Bytes arrived on a connection — chunked however the transport happened to read them
    /// (partial lines, many lines coalesced; the line decoder reassembles).
    Data(Token, Vec<u8>),
    /// The read side reached a clean end of stream (EOF / FIN). The connection can still be
    /// written: the reactor interprets any trailing partial line, answers everything pending,
    /// then tears the connection down.
    HalfClosed(Token),
    /// The connection failed mid-stream (reset, read or write error). Nothing more can be
    /// delivered: buffered partial input is discarded and the connection is torn down; the
    /// reason lands in [`Server::io_log`].
    Failed(Token, String),
    /// A quiescence timer fired: tick now if work is pending. Transports without timers simply
    /// never emit this.
    TimerTick,
}

/// A source and sink of connection events — the only nondeterministic half of the server.
///
/// Implementations: [`TcpTransport`] (real sockets), [`StdioTransport`] (the classic
/// stdin/stdout pipe as a single-connection transport) and [`SimNet`](crate::SimNet) (seeded
/// deterministic simulation for tests).
pub trait Transport {
    /// Blocks until something happens and returns the batch of events, in the order the
    /// transport commits to. An **empty batch means the transport is finished** — no connection
    /// is open and none can ever arrive — and stops the reactor.
    fn poll(&mut self) -> Vec<Event>;

    /// Queues response bytes for a connection. Delivery failures surface as a later
    /// [`Event::Failed`] for the connection, never as a process error.
    fn send(&mut self, token: Token, bytes: &[u8]);

    /// Closes a connection after flushing whatever [`Transport::send`] queued for it. Unknown
    /// tokens are ignored (the connection may have failed first).
    fn close(&mut self, token: Token);

    /// The clock the reactor should timestamp telemetry with. Real transports keep the
    /// monotonic default; deterministic transports ([`SimNet`](crate::SimNet),
    /// [`StdioTransport`]) hand out a [`VirtualClock`] driven by their own event schedule, so
    /// traces replay byte-identically. Called once at [`Server::new`] — a monotonic clock's
    /// origin is fixed at that call.
    fn clock(&self) -> ClockHandle {
        ClockHandle::monotonic()
    }
}

/// Default cap on entries retained by [`Server::io_log`] (a whole serving process's budget —
/// a [`crate::ReactorPool`] divides it across its shards so N reactors still expose at most
/// this many merged entries).
pub const IO_LOG_CAP: usize = 64;

/// Reactor configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// `false` (default): tick after every request line, like `anosy-served` without flags.
    /// `true`: accumulate and tick on blank lines, quiescence timers and connection teardown —
    /// `anosy-served --ticked`, the batching-friendly mode.
    pub ticked: bool,
    /// Byte cap handed to each connection's [`LineDecoder`].
    pub max_line: usize,
    /// Record every submitted request and every produced response ([`Server::transcript`],
    /// [`Server::responses`]) — the oracle hook for the simulation tests. Off in production:
    /// requests are cloned when it is on.
    pub record_transcript: bool,
    /// `Some((shard, reactors))`: this server is one reactor shard of a
    /// [`crate::ReactorPool`]. Base [`ConnId`]s are then derived from the transport [`Token`]
    /// (minted globally in arrival order) instead of a per-server counter, and `@conn` claims
    /// whose id hashes to another shard are refused — two shards must never bind the same
    /// logical id. `None` (default): the standalone allocation the stdio/TCP binary always had.
    pub shard: Option<(u64, u64)>,
    /// Most recent entries retained by [`Server::io_log`]; older denials age out so a stream
    /// of bad peers cannot grow memory.
    pub io_log_cap: usize,
    /// Install a telemetry [`Collector`] for the duration of [`Server::run`] (spans, counters
    /// and latency histograms on this reactor's thread; harvest with
    /// [`Server::telemetry_report`]). On by default; a no-op when the `telemetry` cargo
    /// feature is off. The runtime toggle exists so the overhead of *recording* can be
    /// measured inside one build — `report_serve` benches both settings.
    pub telemetry: bool,
}

impl ServerConfig {
    /// Per-request ticks, default line cap, no recording, standalone (unsharded).
    pub fn new() -> ServerConfig {
        ServerConfig {
            ticked: false,
            max_line: wire::MAX_LINE_BYTES,
            record_transcript: false,
            shard: None,
            io_log_cap: IO_LOG_CAP,
            telemetry: true,
        }
    }

    /// Switches to blank-line/timer ticking (`--ticked`).
    pub fn ticked(mut self, ticked: bool) -> ServerConfig {
        self.ticked = ticked;
        self
    }

    /// Overrides the line-length cap.
    pub fn with_max_line(mut self, max_line: usize) -> ServerConfig {
        self.max_line = max_line;
        self
    }

    /// Enables request/response recording for oracle checks.
    pub fn recording(mut self) -> ServerConfig {
        self.record_transcript = true;
        self
    }

    /// Marks this server as reactor shard `shard` of `reactors` (see [`ServerConfig::shard`]).
    pub fn sharded(mut self, shard: u64, reactors: u64) -> ServerConfig {
        self.shard = Some((shard, reactors.max(1)));
        self
    }

    /// Overrides the [`Server::io_log`] retention cap (clamped to at least one entry).
    pub fn with_io_log_cap(mut self, cap: usize) -> ServerConfig {
        self.io_log_cap = cap.max(1);
        self
    }

    /// Turns telemetry recording on or off for this server's [`Server::run`].
    pub fn with_telemetry(mut self, telemetry: bool) -> ServerConfig {
        self.telemetry = telemetry;
        self
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig::new()
    }
}

/// Reactor counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Transport connections opened.
    pub conns_opened: u64,
    /// Transport connections closed (both clean and failed).
    pub conns_closed: u64,
    /// Connections torn down by an I/O failure ([`Event::Failed`]).
    pub conn_failures: u64,
    /// Complete lines decoded (including comments, blanks and malformed lines).
    pub lines: u64,
    /// Lines that parsed into a request and were submitted.
    pub requests: u64,
    /// Lines answered with a `!` error instead of reaching the frontend (malformed requests,
    /// non-UTF-8 lines, overlong lines, bad `@conn` prefixes, corrupt/oversize frames).
    pub malformed: u64,
    /// Connections that negotiated the binary frame protocol (sent
    /// [`wire::BINARY_PREAMBLE`] as their first bytes).
    pub binary_conns: u64,
    /// Complete binary frames decoded (including corrupt, oversize and truncated ones —
    /// counted alongside [`ServerStats::lines`], never double-counted).
    pub frames: u64,
}

/// One recorded unit of the serve, in submission order — the sequential-replay oracle's input
/// (see `tests/sim_chaos.rs`). Only recorded under [`ServerConfig::recording`].
#[derive(Debug, Clone, PartialEq)]
pub enum TranscriptEvent {
    /// A request was submitted to the frontend.
    Request {
        /// Transport connection the line arrived on.
        token: Token,
        /// The id the frontend assigned (also tags the response).
        id: RequestId,
        /// The parsed request.
        request: ServeRequest,
    },
    /// A logical connection was reported gone; its sessions tear down at this position.
    Disconnect {
        /// Transport connection that died.
        token: Token,
        /// The logical connection being torn down.
        conn: ConnId,
    },
}

/// One logged connection denial (an I/O failure downgraded to a connection close), tagged with
/// where and when it happened so a merged multi-reactor log keeps that context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoLogEntry {
    /// The reactor shard that observed the failure (`0` for a standalone server).
    pub shard: u64,
    /// When it happened, in the server clock's units ([`Transport::clock`]: microseconds on
    /// real transports, virtual time under the simulator).
    pub at: u64,
    /// The transport connection that failed.
    pub token: Token,
    /// The transport's reason (reset, read/write error, injected failure).
    pub reason: String,
}

impl fmt::Display for IoLogEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[shard {} t={}] connection {} failed: {}",
            self.shard, self.at, self.token, self.reason
        )
    }
}

/// What one feed of a connection's decoder produced. Items within a batch are in wire order;
/// a connection is only ever one protocol, so batches never mix lines and frames.
enum DecodedBatch {
    /// Still sniffing the preamble — no complete item can exist yet.
    Pending,
    Lines(Vec<DecodedLine>),
    Frames(Vec<DecodedFrame>),
}

/// Per-connection protocol decoder. Every connection starts **sniffing** its first bytes
/// against [`wire::BINARY_PREAMBLE`]: a full match switches it to binary frames for the rest
/// of its life, the first divergent byte falls back to the line protocol with every sniffed
/// byte replayed — so text peers, smoke transcripts and `telnet` debugging behave exactly as
/// before, and a binary peer pays thirteen bytes once.
enum ConnDecoder {
    /// Undecided: the bytes seen so far are a strict prefix of the preamble.
    Sniffing(Vec<u8>),
    Line(LineDecoder),
    Binary(FrameDecoder),
}

impl ConnDecoder {
    /// Feeds a chunk, resolving the protocol if this chunk decides it. `max_item` caps both
    /// line length and frame payload length (one frame carries one protocol line).
    fn feed(&mut self, bytes: &[u8], max_item: usize) -> DecodedBatch {
        match self {
            ConnDecoder::Sniffing(seen) => {
                seen.extend_from_slice(bytes);
                let preamble = wire::BINARY_PREAMBLE;
                let probe = seen.len().min(preamble.len());
                if seen[..probe] != preamble[..probe] {
                    // Divergence: a text peer. Replay everything sniffed through a fresh
                    // line decoder.
                    let seen = std::mem::take(seen);
                    let mut decoder = LineDecoder::with_max_line(max_item);
                    let lines = decoder.feed(&seen);
                    *self = ConnDecoder::Line(decoder);
                    DecodedBatch::Lines(lines)
                } else if seen.len() >= preamble.len() {
                    // Full preamble: binary from here on; bytes after it are frame data.
                    let rest = seen.split_off(preamble.len());
                    let mut decoder = FrameDecoder::with_max_frame(max_item);
                    let frames = decoder.feed(&rest);
                    *self = ConnDecoder::Binary(decoder);
                    DecodedBatch::Frames(frames)
                } else {
                    DecodedBatch::Pending
                }
            }
            ConnDecoder::Line(decoder) => DecodedBatch::Lines(decoder.feed(bytes)),
            ConnDecoder::Binary(decoder) => DecodedBatch::Frames(decoder.feed(bytes)),
        }
    }

    /// Interprets a clean EOF: a sniffing connection's bytes were a (possibly empty) partial
    /// text line — no preamble ever arrived — and established protocols flush their own
    /// carry-over ([`LineDecoder::finish`] / [`FrameDecoder::finish`]).
    fn finish(&mut self, max_item: usize) -> DecodedBatch {
        match self {
            ConnDecoder::Sniffing(seen) => {
                let seen = std::mem::take(seen);
                let mut decoder = LineDecoder::with_max_line(max_item);
                let mut lines = decoder.feed(&seen);
                lines.extend(decoder.finish());
                *self = ConnDecoder::Line(decoder);
                DecodedBatch::Lines(lines)
            }
            ConnDecoder::Line(decoder) => {
                DecodedBatch::Lines(decoder.finish().into_iter().collect())
            }
            ConnDecoder::Binary(decoder) => {
                DecodedBatch::Frames(decoder.finish().into_iter().collect())
            }
        }
    }

    /// Drops buffered partial input (failure-path teardown).
    fn discard(&mut self) {
        match self {
            ConnDecoder::Sniffing(seen) => seen.clear(),
            ConnDecoder::Line(decoder) => decoder.discard(),
            ConnDecoder::Binary(decoder) => decoder.discard(),
        }
    }

    fn is_binary(&self) -> bool {
        matches!(self, ConnDecoder::Binary(_))
    }
}

/// Per-connection reactor state.
struct ConnState {
    decoder: ConnDecoder,
    /// The logical id bare (un-`@`-prefixed) lines of this connection ride.
    base: ConnId,
    /// Logical ids this connection owns (its base id plus every `@conn` it claimed first).
    logicals: BTreeSet<ConnId>,
}

/// The event-loop server (see the [module docs](self)).
pub struct Server<D: AbstractDomain, T: Transport> {
    frontend: Frontend<D>,
    transport: T,
    config: ServerConfig,
    layout: SecretLayout,
    conns: HashMap<Token, ConnState>,
    /// Logical id → transport connection that owns it (first use wins; unbound on teardown so a
    /// reconnecting peer can claim the id again).
    bound: BTreeMap<ConnId, Token>,
    /// Request id → transport connection to deliver the response to, plus the arrival
    /// timestamp (0 when telemetry is not recording) feeding the `request.latency` histogram.
    inflight: HashMap<RequestId, (Token, u64)>,
    next_base: u64,
    stats: ServerStats,
    clock: ClockHandle,
    /// Query-name pool shared by every connection's request parsing: each distinct name is
    /// allocated once and every [`ServeRequest`] referencing it shares the `Arc<str>`.
    interner: wire::NameInterner,
    io_log: Vec<IoLogEntry>,
    transcript: Vec<TranscriptEvent>,
    responses: Vec<TaggedResponse>,
    telemetry: Option<Report>,
}

impl<D, T> Server<D, T>
where
    D: AbstractDomain + SynthesizeInto + DomainCodec + Send + Sync + 'static,
    T: Transport,
{
    /// Wraps a frontend and a transport into a reactor. The frontend may already be warm
    /// (warm-started deployment, pre-registered queries).
    pub fn new(frontend: Frontend<D>, transport: T, config: ServerConfig) -> Self {
        let layout = frontend.deployment().layout().clone();
        // Captured exactly once: a monotonic clock's origin is "now", so re-asking the
        // transport on every read would reset time to zero.
        let clock = transport.clock();
        Server {
            frontend,
            transport,
            config,
            layout,
            conns: HashMap::new(),
            bound: BTreeMap::new(),
            inflight: HashMap::new(),
            next_base: 0,
            stats: ServerStats::default(),
            clock,
            interner: wire::NameInterner::new(),
            io_log: Vec::new(),
            transcript: Vec::new(),
            responses: Vec::new(),
            telemetry: None,
        }
    }

    /// Runs the event loop until the transport reports itself finished, then flushes one final
    /// tick so queued work (ticked-mode stragglers, trailing teardowns) settles.
    pub fn run(&mut self) {
        if self.config.telemetry {
            let shard = self.config.shard.map(|(shard, _)| shard).unwrap_or(0);
            telemetry::install(Collector::new(self.clock.clone(), shard));
        }
        loop {
            let events = self.transport.poll();
            if events.is_empty() {
                break;
            }
            for event in events {
                self.on_event(event);
            }
        }
        self.tick_and_route();
        if self.config.telemetry {
            self.telemetry = telemetry::uninstall();
        }
    }

    fn on_event(&mut self, event: Event) {
        match event {
            Event::Opened(token) => self.on_opened(token),
            Event::Data(token, bytes) => self.on_data(token, &bytes),
            Event::HalfClosed(token) => self.on_half_closed(token),
            Event::Failed(token, reason) => self.on_failed(token, reason),
            Event::TimerTick => {
                // A quiescence timer only matters when work is actually pending; an idle tick
                // would just inflate the tick counter.
                if self.frontend.pending_requests() > 0 {
                    self.tick_and_route();
                }
            }
        }
    }

    fn on_opened(&mut self, token: Token) {
        let base = if self.config.shard.is_some() {
            // Shard mode: the pool mints tokens globally in arrival order and routes each to
            // the shard its id hashes to, so deriving the base id from the token keeps ids
            // (and therefore conn-scoped session ids) invariant under the reactor count.
            ConnId(token.0)
        } else {
            // Base ids are allocated in arrival order, skipping ids some earlier connection
            // already claimed with an explicit `@conn` prefix.
            while self.bound.contains_key(&ConnId(self.next_base)) {
                self.next_base += 1;
            }
            self.next_base += 1;
            ConnId(self.next_base - 1)
        };
        self.bound.insert(base, token);
        let mut logicals = BTreeSet::new();
        logicals.insert(base);
        let decoder = ConnDecoder::Sniffing(Vec::new());
        self.conns.insert(token, ConnState { decoder, base, logicals });
        self.stats.conns_opened += 1;
    }

    fn on_data(&mut self, token: Token, bytes: &[u8]) {
        let Some(state) = self.conns.get_mut(&token) else { return };
        telemetry::count("wire.bytes_in", bytes.len() as u64);
        let was_binary = state.decoder.is_binary();
        let batch = {
            let _span = telemetry::span("wire.decode");
            state.decoder.feed(bytes, self.config.max_line)
        };
        if !was_binary && state.decoder.is_binary() {
            self.stats.binary_conns += 1;
            telemetry::count("wire.binary_conns", 1);
        }
        self.on_batch(token, batch);
    }

    fn on_half_closed(&mut self, token: Token) {
        // A clean EOF mid-line still delivers the fragment as a final line (the
        // `BufRead::lines` convention the stdin transport always had); a mid-frame EOF is
        // unverifiable and refuses as truncated.
        if let Some(state) = self.conns.get_mut(&token) {
            let batch = state.decoder.finish(self.config.max_line);
            self.on_batch(token, batch);
        }
        self.teardown(token, true);
    }

    fn on_batch(&mut self, token: Token, batch: DecodedBatch) {
        match batch {
            DecodedBatch::Pending => {}
            DecodedBatch::Lines(lines) => {
                for item in lines {
                    self.on_decoded(token, item);
                }
            }
            DecodedBatch::Frames(frames) => {
                for frame in frames {
                    self.on_frame(token, frame);
                }
            }
        }
    }

    fn on_failed(&mut self, token: Token, reason: String) {
        if !self.conns.contains_key(&token) {
            return;
        }
        self.stats.conn_failures += 1;
        // The logged denial: one bad peer is an event, not a process failure. Logged to
        // stderr immediately — a forever-serving transport never returns from `run`.
        let entry = IoLogEntry {
            shard: self.config.shard.map(|(shard, _)| shard).unwrap_or(0),
            at: self.clock.now(),
            token,
            reason,
        };
        eprintln!("{entry}");
        if self.io_log.len() >= self.config.io_log_cap {
            self.io_log.remove(0);
        }
        self.io_log.push(entry);
        self.teardown(token, false);
    }

    /// Releases a transport connection: its partial input is discarded on failure (interpreted
    /// on clean EOF, which ran before this), its logical connections are reported to the
    /// frontend (sessions tear down at queue position), and one tick runs *before* the
    /// transport closes. On the graceful path that delivers the final responses to the peer's
    /// half-open write side; on the failure path the writes may go nowhere, but flushing keeps
    /// every accepted request answered before the connection's state is dropped — so what a
    /// connection observed is a function of its own request stream, not of which unrelated
    /// connection's tick happened to flush the queue first (the reactor-count-invariance
    /// property of [`crate::ReactorPool`] depends on this).
    fn teardown(&mut self, token: Token, graceful: bool) {
        let Some(state) = self.conns.get_mut(&token) else { return };
        if !graceful {
            state.decoder.discard();
        }
        let logicals: Vec<ConnId> = state.logicals.iter().copied().collect();
        for logical in logicals {
            self.bound.remove(&logical);
            self.frontend.disconnect(logical);
            if self.config.record_transcript {
                self.transcript.push(TranscriptEvent::Disconnect { token, conn: logical });
            }
        }
        self.tick_and_route();
        self.transport.close(token);
        self.conns.remove(&token);
        self.stats.conns_closed += 1;
    }

    fn on_decoded(&mut self, token: Token, item: DecodedLine) {
        self.stats.lines += 1;
        telemetry::count("wire.lines", 1);
        let line = match item {
            DecodedLine::Line(line) => line,
            DecodedLine::NonUtf8 => {
                self.refuse_line(token, "non-UTF-8 input line".to_string());
                return;
            }
            DecodedLine::Overlong => {
                let cap = self.config.max_line;
                self.refuse_line(token, format!("line exceeds {cap} bytes"));
                return;
            }
        };
        self.on_line(token, &line);
    }

    /// One decoded binary frame: the payload is one protocol line (without terminator), so a
    /// good frame rejoins the shared line path; corrupt, oversize and truncated frames refuse
    /// as errors-as-data — the decoder itself never desyncs.
    fn on_frame(&mut self, token: Token, frame: DecodedFrame) {
        self.stats.frames += 1;
        telemetry::count("wire.frames", 1);
        match frame {
            DecodedFrame::Frame(payload) => match std::str::from_utf8(&payload) {
                Ok(line) => {
                    let line = line.to_string();
                    self.on_line(token, &line);
                }
                Err(_) => self.refuse_line(token, "non-UTF-8 frame payload".to_string()),
            },
            DecodedFrame::Corrupt => {
                self.refuse_line(token, "corrupt frame (checksum mismatch)".to_string());
            }
            DecodedFrame::Oversize => {
                let cap = self.config.max_line;
                self.refuse_line(token, format!("frame payload exceeds {cap} bytes"));
            }
            DecodedFrame::Truncated => {
                self.refuse_line(token, "truncated frame at end of stream".to_string());
            }
        }
    }

    /// One complete protocol line, however it arrived (text line or frame payload).
    fn on_line(&mut self, token: Token, line: &str) {
        let trimmed = line.trim();
        if trimmed.starts_with('#') {
            return;
        }
        if trimmed.is_empty() {
            self.tick_and_route();
            return;
        }
        let (conn, request_text) = match trimmed.strip_prefix('@') {
            Some(rest) => match rest.split_once(char::is_whitespace) {
                Some((id, rest)) => match id.parse() {
                    Ok(id) => (ConnId(id), rest),
                    Err(_) => {
                        self.refuse_line(token, format!("bad connection id `{id}`"));
                        return;
                    }
                },
                None => {
                    self.refuse_line(token, format!("request missing after `@{rest}`"));
                    return;
                }
            },
            None => (self.conns[&token].base, trimmed),
        };
        match wire::parse_request_interned(request_text, &self.layout, &mut self.interner) {
            Ok(request) => {
                // Cross-shard rule, mirroring the cross-socket one below: a logical id lives
                // on exactly the shard it hashes to. A claim for an id routed elsewhere is
                // refused outright — two shards binding the same id would entangle session
                // ownership across reactors.
                if let Some((shard, reactors)) = self.config.shard {
                    if crate::reactor::shard_of(conn.0, reactors) != shard {
                        self.refuse_line(
                            token,
                            format!("connection {conn} belongs to another reactor shard"),
                        );
                        return;
                    }
                }
                // A logical id is claimed only by a line that actually parses — a malformed
                // line must not squat on an id another socket could legitimately use. First
                // (successful) use wins: letting a second transport connection speak for a
                // logical id would entangle session ownership across unrelated peers.
                match self.bound.get(&conn) {
                    Some(owner) if *owner != token => {
                        self.refuse_line(
                            token,
                            format!("connection {conn} is bound to another transport connection"),
                        );
                        return;
                    }
                    Some(_) => {}
                    None => {
                        self.bound.insert(conn, token);
                        if let Some(state) = self.conns.get_mut(&token) {
                            state.logicals.insert(conn);
                        }
                    }
                }
                let recorded = self.config.record_transcript.then(|| request.clone());
                // One collector round-trip: the wire counters plus the arrival stamp for the
                // request.latency histogram. No clock is read when nothing records.
                let at = telemetry::with_collector(|collector| {
                    collector.count("wire.requests", 1);
                    collector.observe("request.bytes", trimmed.len() as u64);
                    collector.now()
                })
                .unwrap_or(0);
                let id = self.frontend.submit(conn, request);
                self.inflight.insert(id, (token, at));
                self.stats.requests += 1;
                if let Some(request) = recorded {
                    self.transcript.push(TranscriptEvent::Request { token, id, request });
                }
                if !self.config.ticked {
                    self.tick_and_route();
                }
            }
            Err(e) => self.refuse_line(token, e.to_string()),
        }
    }

    /// Answers a line that never reached the frontend with an unnumbered `! <reason>` line
    /// (exactly the stdin transport's convention — malformed lines consume no sequence number).
    fn refuse_line(&mut self, token: Token, reason: String) {
        self.stats.malformed += 1;
        telemetry::count("wire.malformed", 1);
        self.send_line(token, &format!("! {reason}"));
    }

    /// Sends one response line (without terminator) in the connection's negotiated encoding:
    /// newline-terminated text on line connections, a checksummed frame on binary ones.
    /// Returns the byte count handed to the transport.
    fn send_line(&mut self, token: Token, text: &str) -> usize {
        let binary = self.conns.get(&token).is_some_and(|state| state.decoder.is_binary());
        if binary {
            let frame = wire::encode_frame(text.as_bytes());
            self.transport.send(token, &frame);
            frame.len()
        } else {
            let line = format!("{text}\n");
            self.transport.send(token, line.as_bytes());
            line.len()
        }
    }

    /// Runs one frontend tick and routes every tagged response back to the transport
    /// connection that submitted its request. Responses whose connection died in the meantime
    /// have nowhere to go and are dropped (after recording, when enabled).
    fn tick_and_route(&mut self) {
        let frontend = &self.frontend;
        let start = telemetry::with_collector(|collector| {
            collector.observe("tick.queue_depth", frontend.pending_requests() as u64);
            collector.now()
        });
        let responses = self.frontend.tick();
        if let Some(start) = start {
            telemetry::with_collector(|collector| {
                let elapsed = collector.now().saturating_sub(start);
                collector.observe("tick.latency", elapsed);
            });
        }
        let recording = start.is_some();
        for tagged in responses {
            if self.config.record_transcript {
                self.responses.push(tagged.clone());
            }
            let Some((token, at)) = self.inflight.remove(&tagged.request) else { continue };
            if self.conns.contains_key(&token) {
                let line =
                    format!("{} {}", tagged.request, wire::encode_response(&tagged.response));
                let sent = self.send_line(token, &line);
                if recording {
                    telemetry::with_collector(|collector| {
                        collector.observe("request.latency", collector.now().saturating_sub(at));
                        collector.observe("response.bytes", sent as u64);
                    });
                }
            }
        }
        // Journal housekeeping rides the tick boundary: the `on-tick` flush and the periodic
        // compaction both happen here, on the reactor thread (a no-op without a journal).
        self.frontend.deployment().journal_tick();
    }

    /// The frontend (sessions, stats, deployment) behind this server.
    pub fn frontend(&self) -> &Frontend<D> {
        &self.frontend
    }

    /// The transport (e.g. to read a [`SimNet`](crate::SimNet)'s delivered bytes after a run).
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Reactor counters.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Logged per-connection denials (I/O failures downgraded to connection closes): the most
    /// recent [`ServerConfig::io_log_cap`] entries, each tagged with its reactor shard and a
    /// clock timestamp. Each is also written to stderr as it happens.
    pub fn io_log(&self) -> &[IoLogEntry] {
        &self.io_log
    }

    /// The telemetry this server's [`Server::run`] recorded: spans, counters and latency
    /// histograms. `None` before the run, when [`ServerConfig::telemetry`] was off, or when
    /// the `telemetry` cargo feature is compiled out.
    pub fn telemetry_report(&self) -> Option<&Report> {
        self.telemetry.as_ref()
    }

    /// Consumes the server and returns its frontend (a [`crate::ReactorPool`] folds shard
    /// frontends after the join).
    pub fn into_frontend(self) -> Frontend<D> {
        self.frontend
    }

    /// Submitted requests and teardowns in submission order (empty unless
    /// [`ServerConfig::recording`]).
    pub fn transcript(&self) -> &[TranscriptEvent] {
        &self.transcript
    }

    /// Every response the frontend produced, in order (empty unless
    /// [`ServerConfig::recording`]).
    pub fn responses(&self) -> &[TaggedResponse] {
        &self.responses
    }
}

impl<D: AbstractDomain, T: Transport> fmt::Debug for Server<D, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Server")
            .field("conns", &self.conns.len())
            .field("bound", &self.bound.len())
            .field("inflight", &self.inflight.len())
            .field("stats", &self.stats)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Stdio transport: the classic pipe as a single-connection transport.
// ---------------------------------------------------------------------------

/// Serves the wire protocol over stdin/stdout: one connection ([`Token`] 0, base [`ConnId`] 0)
/// that opens immediately and half-closes at EOF. `@conn` prefixes multiplex logical
/// connections exactly as before — this is the `anosy-served` default transport, now running on
/// the same reactor as the socket path.
///
/// Its telemetry clock is a poll counter, not wall time: reading a script from a file produces
/// the same read sequence every run, so `anosy-served --trace` over piped stdin emits a
/// byte-identical trace on every replay.
#[derive(Debug, Default)]
pub struct StdioTransport {
    opened: bool,
    eof: bool,
    /// A write failure (EPIPE once the reader vanished) recorded by [`Transport::send`] and
    /// surfaced as one [`Event::Failed`] at the next poll — the per-connection close path
    /// every transport promises, never a process panic.
    failed: Option<String>,
    /// The failure has been delivered: the transport is finished and polls empty.
    dead: bool,
    clock: VirtualClock,
}

impl StdioTransport {
    /// A fresh stdin/stdout transport.
    pub fn new() -> StdioTransport {
        StdioTransport::default()
    }
}

impl Transport for StdioTransport {
    fn poll(&mut self) -> Vec<Event> {
        self.clock.advance(1);
        if self.dead {
            return Vec::new();
        }
        if let Some(reason) = self.failed.take() {
            self.dead = true;
            return vec![Event::Failed(Token(0), reason)];
        }
        if !self.opened {
            self.opened = true;
            return vec![Event::Opened(Token(0))];
        }
        if self.eof {
            return Vec::new();
        }
        let mut buf = [0u8; 8192];
        loop {
            match std::io::stdin().lock().read(&mut buf) {
                Ok(0) => {
                    self.eof = true;
                    return vec![Event::HalfClosed(Token(0))];
                }
                Ok(n) => return vec![Event::Data(Token(0), buf[..n].to_vec())],
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                // A dead stdin means the transport is gone: drain pending work and exit
                // cleanly, exactly as the pre-reactor binary did.
                Err(_) => {
                    self.eof = true;
                    return vec![Event::HalfClosed(Token(0))];
                }
            }
        }
    }

    fn send(&mut self, _token: Token, bytes: &[u8]) {
        if self.failed.is_some() || self.dead {
            return;
        }
        let mut out = std::io::stdout().lock();
        if let Err(e) = out.write_all(bytes).and_then(|()| out.flush()) {
            // A closed pipe is the *peer's* failure: record it for the next poll so the
            // reactor tears the connection down through its normal failure path instead of
            // panicking the whole process mid-serve.
            self.failed = Some(format!("stdout write failed: {e}"));
        }
    }

    fn close(&mut self, _token: Token) {}

    fn clock(&self) -> ClockHandle {
        ClockHandle::Virtual(self.clock.clone())
    }
}

// ---------------------------------------------------------------------------
// TCP transport: std-only nonblocking sockets.
// ---------------------------------------------------------------------------

/// How long [`TcpTransport::close`] keeps retrying to flush a closing connection's queued
/// responses before giving up on the peer.
const CLOSE_FLUSH_BUDGET: Duration = Duration::from_secs(2);

/// How long the poll loop sleeps when nothing is readable (std has no portable readiness API,
/// so the listener is polled; half a millisecond keeps idle CPU negligible without hurting
/// request latency at serving scale).
const POLL_IDLE_SLEEP: Duration = Duration::from_micros(500);

struct TcpConn {
    stream: TcpStream,
    /// Responses not yet accepted by the kernel (nonblocking writes are partial by design).
    out: Vec<u8>,
    read_eof: bool,
    /// `Some(deadline)` once the reactor asked for a close: the connection only lingers to
    /// drain `out`, is never read again, and is dropped when drained or at the deadline —
    /// inside the normal poll loop, so a peer that stopped reading cannot stall the reactor.
    closing: Option<Instant>,
}

/// A std-only nonblocking TCP listener transport: `accept` becomes [`Event::Opened`], readable
/// bytes become [`Event::Data`], a peer's FIN becomes [`Event::HalfClosed`] (half-closed peers
/// still receive their final responses), and read/write errors become per-connection
/// [`Event::Failed`] — never process failures.
pub struct TcpTransport {
    listener: TcpListener,
    conns: BTreeMap<u64, TcpConn>,
    next_token: u64,
    /// `Some(n)`: stop accepting after `n` connections and finish once all are closed
    /// (`--accept N`). `None`: serve forever.
    accept_budget: Option<usize>,
    accepted: usize,
    /// Quiescence timer: emit [`Event::TimerTick`] after this much idleness (`--tick-ms`).
    tick_interval: Option<Duration>,
    last_activity: Instant,
    /// Failures noticed during [`Transport::send`], surfaced at the next poll.
    pending: Vec<Event>,
}

impl TcpTransport {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and returns the listening transport.
    ///
    /// # Errors
    ///
    /// Propagates the bind/configure error; callers report it and exit.
    pub fn bind(
        addr: &str,
        accept_budget: Option<usize>,
        tick_interval: Option<Duration>,
    ) -> std::io::Result<TcpTransport> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(TcpTransport {
            listener,
            conns: BTreeMap::new(),
            next_token: 0,
            accept_budget,
            accepted: 0,
            tick_interval,
            last_activity: Instant::now(),
            pending: Vec::new(),
        })
    }

    /// The bound address (the actual port when bound to port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket-name lookup error.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    fn accepting(&self) -> bool {
        match self.accept_budget {
            Some(budget) => self.accepted < budget,
            None => true,
        }
    }

    fn poll_accept(&mut self, events: &mut Vec<Event>) {
        while self.accepting() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    self.accepted += 1;
                    let conn = TcpConn { stream, out: Vec::new(), read_eof: false, closing: None };
                    self.conns.insert(token, conn);
                    events.push(Event::Opened(Token(token)));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                // A broken listener: stop accepting, keep serving what is open.
                Err(_) => {
                    self.accept_budget = Some(self.accepted);
                    break;
                }
            }
        }
    }

    /// Flushes queued writes, retires draining (closing) connections, and reads available
    /// bytes on every live connection, in token order.
    fn poll_conns(&mut self, events: &mut Vec<Event>) {
        let mut failed: Vec<(u64, String)> = Vec::new();
        let mut done: Vec<u64> = Vec::new();
        for (&token, conn) in self.conns.iter_mut() {
            let flushed = flush_some(conn);
            if let Some(deadline) = conn.closing {
                // Half of the close protocol: drain what the reactor queued, then drop. A
                // flush error, an empty buffer or the deadline all retire the connection —
                // the reactor already considers it gone, so no event is emitted.
                if flushed.is_err() || conn.out.is_empty() || Instant::now() >= deadline {
                    done.push(token);
                }
                continue;
            }
            if let Err(reason) = flushed {
                failed.push((token, reason));
                continue;
            }
            if conn.read_eof {
                continue;
            }
            let mut buf = [0u8; 65536];
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    conn.read_eof = true;
                    events.push(Event::HalfClosed(Token(token)));
                }
                Ok(n) => events.push(Event::Data(Token(token), buf[..n].to_vec())),
                Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => failed.push((token, format!("read error: {e}"))),
            }
        }
        for token in done {
            if let Some(conn) = self.conns.remove(&token) {
                let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            }
        }
        for (token, reason) in failed {
            self.conns.remove(&token);
            events.push(Event::Failed(Token(token), reason));
        }
    }
}

/// Writes as much of the connection's queued output as the kernel accepts right now.
fn flush_some(conn: &mut TcpConn) -> Result<(), String> {
    while !conn.out.is_empty() {
        match conn.stream.write(&conn.out) {
            Ok(0) => return Err("write error: connection closed".to_string()),
            Ok(n) => {
                conn.out.drain(..n);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(format!("write error: {e}")),
        }
    }
    Ok(())
}

impl Transport for TcpTransport {
    fn poll(&mut self) -> Vec<Event> {
        loop {
            let mut events = std::mem::take(&mut self.pending);
            self.poll_accept(&mut events);
            self.poll_conns(&mut events);
            if !events.is_empty() {
                self.last_activity = Instant::now();
                return events;
            }
            if !self.accepting() && self.conns.is_empty() {
                return Vec::new();
            }
            if let Some(interval) = self.tick_interval {
                if self.last_activity.elapsed() >= interval {
                    self.last_activity = Instant::now();
                    return vec![Event::TimerTick];
                }
            }
            std::thread::sleep(POLL_IDLE_SLEEP);
        }
    }

    fn send(&mut self, token: Token, bytes: &[u8]) {
        let Some(conn) = self.conns.get_mut(&token.0) else { return };
        conn.out.extend_from_slice(bytes);
        if let Err(reason) = flush_some(conn) {
            self.conns.remove(&token.0);
            self.pending.push(Event::Failed(token, reason));
        }
    }

    fn close(&mut self, token: Token) {
        let Some(conn) = self.conns.get_mut(&token.0) else { return };
        // Best-effort flush of the final responses before the FIN. If the kernel takes it all
        // now, the connection drops immediately; otherwise it lingers in draining state and
        // the poll loop keeps flushing — without ever blocking the reactor — until empty or
        // the budget runs out (a peer that stopped reading forfeits its tail).
        let flushed = flush_some(conn);
        if flushed.is_err() || conn.out.is_empty() {
            if let Some(conn) = self.conns.remove(&token.0) {
                let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            }
            return;
        }
        conn.closing = Some(Instant::now() + CLOSE_FLUSH_BUDGET);
    }
}

// ---------------------------------------------------------------------------
// Poll transport: readiness-based (epoll) TCP, with the sleep loop as fallback.
// ---------------------------------------------------------------------------

/// Epoll tag of the listening socket (never a connection token).
const TAG_LISTENER: u64 = u64::MAX;
/// Epoll tag of the reactor-pool handoff notifier.
const TAG_NOTIFY: u64 = u64::MAX - 1;
/// Longest a readiness wait may park while draining (closing) connections hold queued bytes —
/// their flush progress and deadlines are checked at least this often.
const DRAIN_WAIT: Duration = Duration::from_millis(10);

/// The raw descriptor epoll registration needs. Only ever called when an [`epoll::Epoll`] was
/// actually created, which [`epoll::Epoll::is_supported`] guarantees implies a Unix target.
#[cfg(unix)]
fn raw_fd<T: std::os::fd::AsRawFd>(io: &T) -> i32 {
    io.as_raw_fd()
}

#[cfg(not(unix))]
fn raw_fd<T>(_io: &T) -> i32 {
    -1
}

/// Where a [`PollTransport`]'s connections come from.
enum Intake {
    /// Standalone: accept from an owned listener, minting tokens locally in arrival order.
    Listener { listener: TcpListener, next_token: u64, budget: Option<usize>, accepted: usize },
    /// One shard of a [`crate::ReactorPool`]: the pool's acceptor thread accepts, mints tokens
    /// globally and hands each stream to the shard its token hashes to. The paired `notify`
    /// stream carries one byte per handoff so an epoll wait wakes for channel traffic too.
    Channel { handoffs: Receiver<(u64, TcpStream)>, notify: TcpStream, done: bool },
}

/// A readiness-based TCP transport: the same nonblocking-socket state machine as
/// [`TcpTransport`], but instead of sleeping a fixed `POLL_IDLE_SLEEP` between scans it parks in
/// `epoll_wait` (via the in-tree raw-syscall `epoll` shim) and then services only the
/// connections the kernel reported ready. Where epoll is unavailable — unsupported platform,
/// or any registration error at runtime — it degrades to exactly the [`TcpTransport`] sleep
/// loop, so behavior is identical and only idle latency differs. The reactor on top is a pure
/// function of the event sequence, so responses are byte-identical across [`TcpTransport`],
/// `PollTransport` and the epoll/fallback paths (asserted in `tests/multi_reactor.rs`).
pub struct PollTransport {
    intake: Intake,
    conns: BTreeMap<u64, TcpConn>,
    tick_interval: Option<Duration>,
    last_activity: Instant,
    /// Failures noticed during [`Transport::send`], surfaced at the next poll.
    pending: Vec<Event>,
    epoll: Option<epoll::Epoll>,
    /// Interest bits currently registered per token (epoll mode only).
    interest: HashMap<u64, u32>,
}

/// The readiness bits a connection currently cares about.
fn want_interest(conn: &TcpConn) -> u32 {
    let mut want = 0;
    if !conn.read_eof && conn.closing.is_none() {
        want |= epoll::EPOLLIN | epoll::EPOLLRDHUP;
    }
    if !conn.out.is_empty() {
        want |= epoll::EPOLLOUT;
    }
    want
}

impl PollTransport {
    /// Binds `addr` as a standalone readiness-based listener (the `PollTransport` analogue of
    /// [`TcpTransport::bind`], same budget and quiescence-timer semantics).
    ///
    /// # Errors
    ///
    /// Propagates the bind/configure error; callers report it and exit.
    pub fn bind(
        addr: &str,
        accept_budget: Option<usize>,
        tick_interval: Option<Duration>,
    ) -> std::io::Result<PollTransport> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let epoll = epoll::Epoll::new()
            .ok()
            .filter(|ep| ep.add(raw_fd(&listener), epoll::EPOLLIN, TAG_LISTENER).is_ok());
        Ok(PollTransport {
            intake: Intake::Listener {
                listener,
                next_token: 0,
                budget: accept_budget,
                accepted: 0,
            },
            conns: BTreeMap::new(),
            tick_interval,
            last_activity: Instant::now(),
            pending: Vec::new(),
            epoll,
            interest: HashMap::new(),
        })
    }

    /// A reactor-pool shard transport: connections arrive pre-accepted over `handoffs` as
    /// `(global token, stream)` pairs, and `notify` receives one byte per handoff (the pool's
    /// acceptor holds the write end) so a parked epoll wait wakes for them. The transport
    /// finishes when the channel disconnects (acceptor done) and every connection has closed.
    pub fn intake(
        handoffs: Receiver<(u64, TcpStream)>,
        notify: TcpStream,
        tick_interval: Option<Duration>,
    ) -> PollTransport {
        let _ = notify.set_nonblocking(true);
        let epoll = epoll::Epoll::new()
            .ok()
            .filter(|ep| ep.add(raw_fd(&notify), epoll::EPOLLIN, TAG_NOTIFY).is_ok());
        PollTransport {
            intake: Intake::Channel { handoffs, notify, done: false },
            conns: BTreeMap::new(),
            tick_interval,
            last_activity: Instant::now(),
            pending: Vec::new(),
            epoll,
            interest: HashMap::new(),
        }
    }

    /// The bound address (standalone mode only).
    ///
    /// # Errors
    ///
    /// Propagates the socket-name lookup error; `NotConnected` in intake (pool-shard) mode.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        match &self.intake {
            Intake::Listener { listener, .. } => listener.local_addr(),
            Intake::Channel { .. } => Err(std::io::Error::new(
                ErrorKind::NotConnected,
                "a pool-shard transport owns no listener",
            )),
        }
    }

    /// Whether readiness waits actually ride epoll (`false`: the portable sleep fallback).
    pub fn uses_epoll(&self) -> bool {
        self.epoll.is_some()
    }

    fn accepting(&self) -> bool {
        match &self.intake {
            Intake::Listener { budget, accepted, .. } => match budget {
                Some(budget) => accepted < budget,
                None => true,
            },
            Intake::Channel { done, .. } => !done,
        }
    }

    /// Drops epoll entirely: a registration failed, so readiness reports can no longer be
    /// trusted to cover every connection. The sleep-scan fallback is always correct.
    fn degrade(&mut self) {
        self.epoll = None;
        self.interest.clear();
    }

    fn register(&mut self, token: u64) {
        if self.epoll.is_none() {
            return;
        }
        let Some(conn) = self.conns.get(&token) else { return };
        let want = want_interest(conn);
        let added = self
            .epoll
            .as_ref()
            .expect("checked above")
            .add(raw_fd(&conn.stream), want, token)
            .is_ok();
        if added {
            self.interest.insert(token, want);
        } else {
            self.degrade();
        }
    }

    fn update_interest(&mut self, token: u64) {
        if self.epoll.is_none() {
            return;
        }
        let Some(conn) = self.conns.get(&token) else { return };
        let want = want_interest(conn);
        if self.interest.get(&token) == Some(&want) {
            return;
        }
        let modified = self
            .epoll
            .as_ref()
            .expect("checked above")
            .modify(raw_fd(&conn.stream), want, token)
            .is_ok();
        if modified {
            self.interest.insert(token, want);
        } else {
            self.degrade();
        }
    }

    /// Removes a connection. Deregistration is best-effort: dropping the stream closes the
    /// descriptor, which removes any leftover epoll registration kernel-side.
    fn drop_conn(&mut self, token: u64, shutdown: bool) {
        if let (Some(ep), Some(conn)) = (&self.epoll, self.conns.get(&token)) {
            let _ = ep.delete(raw_fd(&conn.stream));
        }
        self.interest.remove(&token);
        if let Some(conn) = self.conns.remove(&token) {
            if shutdown {
                let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            }
        }
    }

    /// Takes in new connections: accepts from the listener, or drains the pool handoff
    /// channel (and its notify bytes).
    fn poll_intake(&mut self, events: &mut Vec<Event>) {
        let mut opened: Vec<u64> = Vec::new();
        match &mut self.intake {
            Intake::Listener { listener, next_token, budget, accepted } => loop {
                match *budget {
                    Some(b) if *accepted >= b => break,
                    _ => {}
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let token = *next_token;
                        *next_token += 1;
                        *accepted += 1;
                        let conn =
                            TcpConn { stream, out: Vec::new(), read_eof: false, closing: None };
                        self.conns.insert(token, conn);
                        opened.push(token);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    // A broken listener: stop accepting, keep serving what is open.
                    Err(_) => {
                        *budget = Some(*accepted);
                        break;
                    }
                }
            },
            Intake::Channel { handoffs, notify, done } => {
                // Swallow the wake-up bytes; the channel itself is the source of truth. An
                // EOF or error here means the acceptor is gone — the channel disconnect
                // below reports the same thing, so nothing extra to do.
                let mut sink = [0u8; 256];
                while let Ok(n) = notify.read(&mut sink) {
                    if n == 0 {
                        break;
                    }
                }
                loop {
                    match handoffs.try_recv() {
                        Ok((token, stream)) => {
                            let _ = stream.set_nonblocking(true);
                            let conn =
                                TcpConn { stream, out: Vec::new(), read_eof: false, closing: None };
                            self.conns.insert(token, conn);
                            opened.push(token);
                        }
                        Err(TryRecvError::Empty) => break,
                        Err(TryRecvError::Disconnected) => {
                            *done = true;
                            break;
                        }
                    }
                }
            }
        }
        for token in opened {
            self.register(token);
            events.push(Event::Opened(Token(token)));
        }
    }

    /// Flushes, retires and reads connections — all of them (`None`, the fallback scan) or
    /// just the ones a readiness wait reported (`Some`).
    fn poll_conns(&mut self, events: &mut Vec<Event>, only: Option<&[u64]>) {
        enum Outcome {
            Keep,
            Retire,
            Fail(String),
        }
        let tokens: Vec<u64> = match only {
            Some(ready) => {
                let mut tokens: Vec<u64> =
                    ready.iter().copied().filter(|t| self.conns.contains_key(t)).collect();
                // Kernel report order is not deterministic; token order is.
                tokens.sort_unstable();
                tokens.dedup();
                tokens
            }
            None => self.conns.keys().copied().collect(),
        };
        for token in tokens {
            let outcome = {
                let Some(conn) = self.conns.get_mut(&token) else { continue };
                let flushed = flush_some(conn);
                if let Some(deadline) = conn.closing {
                    // Draining close: see `TcpTransport::poll_conns` — drained, errored and
                    // expired connections retire without an event.
                    if flushed.is_err() || conn.out.is_empty() || Instant::now() >= deadline {
                        Outcome::Retire
                    } else {
                        Outcome::Keep
                    }
                } else if let Err(reason) = flushed {
                    Outcome::Fail(reason)
                } else if conn.read_eof {
                    Outcome::Keep
                } else {
                    let mut buf = [0u8; 65536];
                    match conn.stream.read(&mut buf) {
                        Ok(0) => {
                            conn.read_eof = true;
                            events.push(Event::HalfClosed(Token(token)));
                            Outcome::Keep
                        }
                        Ok(n) => {
                            events.push(Event::Data(Token(token), buf[..n].to_vec()));
                            Outcome::Keep
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => Outcome::Keep,
                        Err(e) if e.kind() == ErrorKind::Interrupted => Outcome::Keep,
                        Err(e) => Outcome::Fail(format!("read error: {e}")),
                    }
                }
            };
            match outcome {
                Outcome::Keep => self.update_interest(token),
                Outcome::Retire => self.drop_conn(token, true),
                Outcome::Fail(reason) => {
                    self.drop_conn(token, false);
                    events.push(Event::Failed(Token(token), reason));
                }
            }
        }
    }

    /// Upper bound for one readiness wait: the quiescence timer's remaining slice, tightened
    /// to [`DRAIN_WAIT`] while draining connections need their deadlines checked. `-1` (block
    /// until readiness) when neither applies.
    fn wait_timeout_ms(&self) -> i32 {
        let mut timeout: i64 = -1;
        if let Some(interval) = self.tick_interval {
            let remaining = interval.saturating_sub(self.last_activity.elapsed());
            timeout = (remaining.as_millis() as i64).max(1);
        }
        if self.conns.values().any(|c| c.closing.is_some()) {
            let drain = DRAIN_WAIT.as_millis() as i64;
            timeout = if timeout < 0 { drain } else { timeout.min(drain) };
        }
        timeout.min(i32::MAX as i64) as i32
    }

    /// Parks until something is ready. Returns the connection tokens the kernel reported
    /// (`Some`, possibly empty on timeout — intake tags are handled by the caller's next
    /// intake pass), or `None` in fallback mode (scan everything).
    fn wait_ready(&mut self) -> Option<Vec<u64>> {
        let Some(ep) = &self.epoll else {
            std::thread::sleep(POLL_IDLE_SLEEP);
            return None;
        };
        let mut buf = [epoll::EpollEvent::default(); 64];
        match ep.wait(self.wait_timeout_ms(), &mut buf) {
            Ok(n) => Some(
                buf[..n]
                    .iter()
                    .map(|event| event.data)
                    .filter(|data| *data != TAG_LISTENER && *data != TAG_NOTIFY)
                    .collect(),
            ),
            Err(_) => {
                self.degrade();
                None
            }
        }
    }
}

impl Transport for PollTransport {
    fn poll(&mut self) -> Vec<Event> {
        // The first pass scans everything: send-time failures and bytes that arrived while
        // the reactor was busy must not wait for a readiness report.
        let mut ready: Option<Vec<u64>> = None;
        loop {
            let mut events = std::mem::take(&mut self.pending);
            self.poll_intake(&mut events);
            self.poll_conns(&mut events, ready.as_deref());
            if !events.is_empty() {
                self.last_activity = Instant::now();
                return events;
            }
            if !self.accepting() && self.conns.is_empty() {
                return Vec::new();
            }
            if let Some(interval) = self.tick_interval {
                if self.last_activity.elapsed() >= interval {
                    self.last_activity = Instant::now();
                    return vec![Event::TimerTick];
                }
            }
            ready = self.wait_ready();
        }
    }

    fn send(&mut self, token: Token, bytes: &[u8]) {
        let Some(conn) = self.conns.get_mut(&token.0) else { return };
        conn.out.extend_from_slice(bytes);
        if let Err(reason) = flush_some(conn) {
            self.drop_conn(token.0, false);
            self.pending.push(Event::Failed(token, reason));
            return;
        }
        self.update_interest(token.0);
    }

    fn close(&mut self, token: Token) {
        let Some(conn) = self.conns.get_mut(&token.0) else { return };
        let flushed = flush_some(conn);
        if flushed.is_err() || conn.out.is_empty() {
            self.drop_conn(token.0, true);
            return;
        }
        conn.closing = Some(Instant::now() + CLOSE_FLUSH_BUDGET);
        self.update_interest(token.0);
    }
}
