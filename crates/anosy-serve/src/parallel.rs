//! The sharded parallel solver driver.
//!
//! Branch-and-prune subtrees over disjoint sub-boxes are completely independent once the
//! predicate is an interned id, so the driver:
//!
//! 1. interns and simplifies the predicate once, in a template [`TermStore`] (warming its
//!    simplify/NNF memos);
//! 2. partitions the space into `workers × chunks_per_worker` sub-boxes
//!    ([`IntBox::split_chunks`]);
//! 3. submits one job per chunk, each seeding a private read-only snapshot of the template
//!    store ([`Solver::with_store`]) — share-nothing, no locks on the hot path; workers pull
//!    chunks from the shared queue, so load balances dynamically;
//! 4. merges the per-chunk results (sums for counting, conjunction for validity) and the
//!    per-chunk [`SolverStats`] into one aggregate, exactly as a sequential run would have
//!    reported.
//!
//! Results are deterministic and identical to the sequential procedures: model counts over a
//! partition sum to the whole-space count, and a predicate is valid on the space iff it is valid
//! on every chunk (the first counterexample in chunk order is returned, which is a
//! counterexample of the whole space).

use crate::ShardPool;
use anosy_logic::{IntBox, Point, Pred, TermStore};
use anosy_solver::{Solver, SolverConfig, SolverError, SolverStats, ValidityOutcome};
use std::sync::Arc;

/// How many chunks the space is oversplit into per worker. Each chunk is one pool job, so
/// workers pull chunks dynamically from the shared queue: a worker that drew an easy region
/// goes back for more while a hard region is still being searched. The value is deliberately
/// small because every chunk pays one search start-up and one store snapshot.
const CHUNKS_PER_WORKER: usize = 4;

/// The outcome of a sharded run: the merged value plus the aggregate search effort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sharded<T> {
    /// The merged result (identical to what the sequential procedure returns).
    pub value: T,
    /// Search statistics summed over all shards.
    pub stats: SolverStats,
    /// How many sub-boxes the space was split into.
    pub shards: usize,
}

fn prepare(pred: &Pred, space: &IntBox, workers: usize) -> (Arc<TermStore>, Vec<IntBox>) {
    let mut template = TermStore::new();
    let id = template.intern_pred(pred);
    let _ = template.simplify(id);
    let _ = template.negate_simplified(id);
    (Arc::new(template), space.split_chunks(workers * CHUNKS_PER_WORKER))
}

/// Counts the models of `pred` in `space` by sharding disjoint sub-boxes across the pool.
/// The count equals [`Solver::count_models`] on the whole space.
///
/// # Errors
///
/// Propagates the first [`SolverError`] any shard hits (budgets apply *per shard*, so a sharded
/// run can complete searches a sequential one cannot).
pub fn par_count_models(
    pool: &ShardPool,
    config: &SolverConfig,
    pred: &Pred,
    space: &IntBox,
) -> Result<Sharded<u128>, SolverError> {
    let (template, chunks) = prepare(pred, space, pool.workers());
    let shards = chunks.len();
    // One job per chunk: the pool's workers pull chunks dynamically, so an easy region frees
    // its worker for the remaining hard ones.
    let jobs: Vec<_> = chunks
        .into_iter()
        .map(|chunk| {
            let template = Arc::clone(&template);
            let config = config.clone();
            let pred = pred.clone();
            move || -> Result<(u128, SolverStats), SolverError> {
                let mut solver = Solver::with_store(config, template.snapshot());
                let id = solver.intern_simplified(&pred);
                let total = solver.count_models_id(id, &chunk)?;
                Ok((total, *solver.stats()))
            }
        })
        .collect();
    let mut value = 0u128;
    let mut stats = SolverStats::new();
    for slot in pool.scatter(jobs) {
        let (count, worker_stats) =
            slot.unwrap_or_else(|payload| std::panic::resume_unwind(payload))?;
        value += count;
        stats.absorb(&worker_stats);
    }
    Ok(Sharded { value, stats, shards })
}

/// Checks whether `pred` holds on every point of `space` by sharding sub-boxes across the pool.
/// The outcome matches [`Solver::check_validity`]: valid iff valid on every shard, otherwise the
/// first shard's counterexample (in deterministic chunk order).
///
/// # Errors
///
/// See [`par_count_models`].
pub fn par_check_validity(
    pool: &ShardPool,
    config: &SolverConfig,
    pred: &Pred,
    space: &IntBox,
) -> Result<Sharded<ValidityOutcome>, SolverError> {
    let (template, chunks) = prepare(pred, space, pool.workers());
    let shards = chunks.len();
    let jobs: Vec<_> = chunks
        .into_iter()
        .map(|chunk| {
            let template = Arc::clone(&template);
            let config = config.clone();
            let pred = pred.clone();
            move || -> Result<(Option<Point>, SolverStats), SolverError> {
                let mut solver = Solver::with_store(config, template.snapshot());
                let id = solver.intern_simplified(&pred);
                let found = match solver.check_validity_id(id, &chunk)? {
                    ValidityOutcome::CounterExample(point) => Some(point),
                    ValidityOutcome::Valid => None,
                };
                Ok((found, *solver.stats()))
            }
        })
        .collect();
    let mut stats = SolverStats::new();
    let mut counterexample: Option<Point> = None;
    let mut first_error: Option<SolverError> = None;
    for slot in pool.scatter(jobs) {
        match slot.unwrap_or_else(|payload| std::panic::resume_unwind(payload)) {
            Ok((found, worker_stats)) => {
                stats.absorb(&worker_stats);
                if counterexample.is_none() {
                    counterexample = found; // first chunk in submission order wins: deterministic
                }
            }
            Err(e) => {
                if first_error.is_none() {
                    first_error = Some(e);
                }
            }
        }
    }
    // A counterexample is a definitive answer even if some other shard blew its budget: the
    // predicate is refuted regardless of what that shard would have found.
    let value = match (counterexample, first_error) {
        (Some(point), _) => ValidityOutcome::CounterExample(point),
        (None, Some(e)) => return Err(e),
        (None, None) => ValidityOutcome::Valid,
    };
    Ok(Sharded { value, stats, shards })
}

/// `true` iff `pred` holds on every point of `space` (the boolean view of
/// [`par_check_validity`]).
///
/// # Errors
///
/// See [`par_count_models`].
pub fn par_is_valid(
    pool: &ShardPool,
    config: &SolverConfig,
    pred: &Pred,
    space: &IntBox,
) -> Result<bool, SolverError> {
    Ok(matches!(par_check_validity(pool, config, pred, space)?.value, ValidityOutcome::Valid))
}

#[cfg(test)]
mod tests {
    use super::*;
    use anosy_logic::{IntExpr, SecretLayout};

    fn layout() -> SecretLayout {
        SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build()
    }

    fn nearby(xo: i64, yo: i64) -> Pred {
        ((IntExpr::var(0) - xo).abs() + (IntExpr::var(1) - yo).abs()).le(100)
    }

    #[test]
    fn sharded_count_equals_sequential() {
        let pool = ShardPool::new(4);
        let config = SolverConfig::for_tests();
        let space = layout().space();
        let mut sequential = Solver::with_config(config.clone());
        for pred in [nearby(200, 200), nearby(0, 0), Pred::True, Pred::False] {
            let expected = sequential.count_models(&pred, &space).unwrap();
            let sharded = par_count_models(&pool, &config, &pred, &space).unwrap();
            assert_eq!(sharded.value, expected, "count mismatch for {pred}");
            assert!(sharded.shards > 1);
            assert!(sharded.stats.queries >= sharded.shards as u64);
        }
    }

    #[test]
    fn sharded_validity_agrees_with_sequential_and_is_deterministic() {
        let pool = ShardPool::new(4);
        let config = SolverConfig::for_tests();
        let space = layout().space();
        // Valid on the whole space.
        let valid = (IntExpr::var(0) + IntExpr::var(1)).ge(0);
        assert!(par_is_valid(&pool, &config, &valid, &space).unwrap());
        // Invalid: both drivers find *a* counterexample; the parallel one is stable run-to-run.
        let invalid = IntExpr::var(0).le(100);
        let a = par_check_validity(&pool, &config, &invalid, &space).unwrap();
        let b = par_check_validity(&pool, &config, &invalid, &space).unwrap();
        assert_eq!(a.value, b.value);
        match a.value {
            ValidityOutcome::CounterExample(p) => {
                assert!(!invalid.eval(&p).unwrap(), "not a counterexample: {p}")
            }
            ValidityOutcome::Valid => panic!("x <= 100 is not valid on [0,400]^2"),
        }
    }

    #[test]
    fn single_worker_pool_still_works() {
        let pool = ShardPool::new(1);
        let config = SolverConfig::for_tests();
        let space = layout().space();
        let sharded = par_count_models(&pool, &config, &nearby(200, 200), &space).unwrap();
        let mut sequential = Solver::with_config(config);
        assert_eq!(sharded.value, sequential.count_models(&nearby(200, 200), &space).unwrap());
    }
}
