//! The versioned on-disk format of the synthesis cache (warm start).
//!
//! A restarted deployment loads this file at startup and skips cold-start synthesis entirely for
//! every query it has served before (the ROADMAP's persist/warm-start item). The format is a
//! deliberately simple line-oriented text file — the workspace carries no serde — with a version
//! header, so future layout changes can evolve it without ambiguity:
//!
//! ```text
//! anosy-synth-cache v1 domain=interval
//! entry kind=under members=-
//! layout x:0:400 y:0:400
//! pred ((abs((v0 - 200)) + abs((v1 - 200))) <= 100)
//! truthy 121..279,179..221
//! falsy 0..400,0..99
//! end
//! ```
//!
//! Predicates are persisted in their `Display` form and re-parsed with
//! [`anosy_logic::parse_pred`] (the printer and parser are exact inverses on the printable
//! fragment — property-tested in `anosy-logic`); domain elements use the
//! [`DomainCodec`](anosy_synth::DomainCodec) hooks. Entries whose predicate does not round-trip
//! (e.g. one using a printable-fragment escape hatch) are *skipped on save* rather than written
//! unreadably; [`save_entries`] reports both counts as a [`SaveOutcome`], and the serving
//! surfaces propagate the skipped count (wire `ok saved` responses, the stats snapshot) so a
//! lossy save is visible to operators.
//!
//! Loading is all-or-nothing per file (a malformed line fails the load with
//! [`ServeError::Format`]) but tolerant in effect: the deployment treats a failed load as a cold
//! cache and proceeds. Loaded entries are trusted — they were verified before being saved — so a
//! warm start performs no solver work at all.

use crate::ServeError;
use anosy_core::SharedCacheEntry;
use anosy_logic::{parse_pred, SecretLayout};
use anosy_synth::{decode_indsets, encode_indsets, parse_approx_kind, DomainCodec};
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

/// Magic prefix of the cache file; the version is bumped on any incompatible format change.
const HEADER_PREFIX: &str = "anosy-synth-cache v1 domain=";

fn format_err(line: usize, reason: impl Into<String>) -> ServeError {
    ServeError::Format { line, reason: reason.into() }
}

/// Renders a layout as `name:lo:hi` tokens. Returns `None` when a field name would not survive
/// the encoding (whitespace or `:` in the name).
fn encode_layout(layout: &SecretLayout) -> Option<String> {
    let mut tokens = Vec::with_capacity(layout.arity());
    for field in layout.fields() {
        let name = field.name();
        if name.contains(':') || name.chars().any(char::is_whitespace) || name.is_empty() {
            return None;
        }
        tokens.push(format!("{name}:{}:{}", field.lo(), field.hi()));
    }
    Some(tokens.join(" "))
}

/// The `name:lo:hi` grammar is shared with the wire layer (`anosy-served --layout` speaks the
/// same per-field form); [`crate::wire::parse_layout`] is the single parser for it.
fn decode_layout(text: &str, line: usize) -> Result<SecretLayout, ServeError> {
    crate::wire::parse_layout(text)
        .ok_or_else(|| format_err(line, format!("malformed layout `{text}`")))
}

/// What a [`save_entries`] call accomplished: entries written, and entries that could not be
/// encoded faithfully and were skipped. A non-zero `skipped` means the on-disk cache is lossy
/// relative to the in-memory one — the count rides the `ok saved` wire response and the stats
/// snapshot so operators can see it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SaveOutcome {
    /// Entries written to the file.
    pub written: usize,
    /// Entries skipped because they do not survive the text encoding (see the module docs).
    pub skipped: usize,
}

/// Renders one entry as its six-line body (`entry`/`layout`/`pred`/`truthy`/`falsy`/`end`) —
/// the unit shared by the snapshot file and the journal's per-record framing. Returns `None`
/// when the entry does not survive the encoding faithfully: a layout whose field names embed
/// `:` or whitespace, or a predicate whose `Display` form does not re-parse to the identical
/// term (the cache key on load must intern to the same canonical term it had on save).
pub(crate) fn encode_entry<D: DomainCodec>(entry: &SharedCacheEntry<D>) -> Option<String> {
    let layout_line = encode_layout(&entry.layout)?;
    let pred_line = entry.pred.to_string();
    match parse_pred(&pred_line) {
        Ok(reparsed) if reparsed == entry.pred => {}
        _ => return None,
    }
    let (kind, truthy, falsy) = encode_indsets(&entry.indsets);
    let members = match entry.members {
        Some(m) => m.to_string(),
        None => "-".to_string(),
    };
    Some(format!(
        "entry kind={kind} members={members}\nlayout {layout_line}\npred {pred_line}\n\
         truthy {truthy}\nfalsy {falsy}\nend\n"
    ))
}

/// Parses one [`encode_entry`] body back into an entry. The inverse on everything
/// [`encode_entry`] emits; any deviation is an error string (the journal layer treats a
/// non-decoding record as corruption and truncates to the last good prefix).
pub(crate) fn parse_entry<D: DomainCodec>(body: &str) -> Result<SharedCacheEntry<D>, String> {
    let mut lines = body.lines();
    let head = lines.next().ok_or("empty entry body")?;
    let rest = head.strip_prefix("entry ").ok_or_else(|| format!("expected `entry`: {head}"))?;
    let mut kind = None;
    let mut members = None;
    for token in rest.split_whitespace() {
        if let Some(k) = token.strip_prefix("kind=") {
            kind = parse_approx_kind(k);
        } else if let Some(m) = token.strip_prefix("members=") {
            members = Some(if m == "-" {
                None
            } else {
                Some(m.parse().map_err(|_| "bad members count".to_string())?)
            });
        }
    }
    let kind = kind.ok_or("missing or bad kind")?;
    let members = members.ok_or("missing members")?;
    let mut field = |prefix: &str| -> Result<String, String> {
        let line = lines.next().ok_or_else(|| format!("truncated entry, wanted `{prefix}`"))?;
        line.strip_prefix(prefix)
            .map(str::to_string)
            .ok_or_else(|| format!("expected `{prefix}`, found `{line}`"))
    };
    let layout_text = field("layout ")?;
    let pred_text = field("pred ")?;
    let truthy_text = field("truthy ")?;
    let falsy_text = field("falsy ")?;
    let end_text = field("end")?;
    if !end_text.is_empty() || lines.next().is_some() {
        return Err("junk after `end`".to_string());
    }
    let layout = crate::wire::parse_layout(&layout_text)
        .ok_or(format!("malformed layout `{layout_text}`"))?;
    let pred = parse_pred(&pred_text).map_err(|e| format!("unparseable predicate: {e}"))?;
    let indsets = decode_indsets::<D>(kind, &truthy_text, &falsy_text, &layout)
        .ok_or("undecodable ind. sets")?;
    Ok(SharedCacheEntry { pred, layout, kind, members, indsets })
}

/// Writes the entries to `path`, atomically enough for a single writer (write to a temp file in
/// the same directory, then rename). Reports how many entries were written and how many could
/// not be encoded faithfully and were skipped (see the module docs above).
///
/// # Errors
///
/// Returns [`ServeError::Io`] on filesystem failures.
pub fn save_entries<D: DomainCodec>(
    path: &Path,
    entries: &[SharedCacheEntry<D>],
) -> Result<SaveOutcome, ServeError> {
    let mut body = format!("{HEADER_PREFIX}{}\n", D::TAG);
    let mut outcome = SaveOutcome::default();
    for entry in entries {
        match encode_entry(entry) {
            Some(encoded) => {
                body.push_str(&encoded);
                outcome.written += 1;
            }
            None => outcome.skipped += 1,
        }
    }
    let tmp = path.with_extension("tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(body.as_bytes())?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(outcome)
}

/// Reads a cache file back into entries.
///
/// # Errors
///
/// Returns [`ServeError::Io`] on filesystem failures and [`ServeError::Format`] when the file's
/// version, domain tag or any entry does not decode.
pub fn load_entries<D: DomainCodec>(path: &Path) -> Result<Vec<SharedCacheEntry<D>>, ServeError> {
    let file = std::fs::File::open(path)?;
    let mut lines = BufReader::new(file).lines().enumerate();

    let (_, header) = lines
        .next()
        .ok_or_else(|| format_err(0, "empty cache file"))
        .and_then(|(i, l)| l.map(|l| (i, l)).map_err(ServeError::Io))?;
    let domain = header
        .strip_prefix(HEADER_PREFIX)
        .ok_or_else(|| format_err(1, format!("bad header `{header}`")))?;
    if domain != D::TAG {
        return Err(format_err(
            1,
            format!("cache is for domain `{domain}`, deployment uses `{}`", D::TAG),
        ));
    }

    let mut entries = Vec::new();
    while let Some((index, line)) = lines.next() {
        let line = line.map_err(ServeError::Io)?;
        let lineno = index + 1;
        if line.trim().is_empty() {
            continue;
        }
        let rest = line
            .strip_prefix("entry ")
            .ok_or_else(|| format_err(lineno, format!("expected `entry`, found `{line}`")))?;
        let mut kind = None;
        let mut members = None;
        for token in rest.split_whitespace() {
            if let Some(k) = token.strip_prefix("kind=") {
                kind = parse_approx_kind(k);
            } else if let Some(m) = token.strip_prefix("members=") {
                members = Some(if m == "-" {
                    None
                } else {
                    Some(m.parse().map_err(|_| format_err(lineno, "bad members count"))?)
                });
            }
        }
        let kind = kind.ok_or_else(|| format_err(lineno, "missing or bad kind"))?;
        let members = members.ok_or_else(|| format_err(lineno, "missing members"))?;

        let mut field = |prefix: &str| -> Result<(usize, String), ServeError> {
            let (index, line) = lines
                .next()
                .ok_or_else(|| format_err(lineno, format!("truncated entry, wanted `{prefix}`")))?;
            let line = line.map_err(ServeError::Io)?;
            let lineno = index + 1;
            line.strip_prefix(prefix)
                .map(|rest| (lineno, rest.to_string()))
                .ok_or_else(|| format_err(lineno, format!("expected `{prefix}`, found `{line}`")))
        };
        let (layout_line, layout_text) = field("layout ")?;
        let (pred_line, pred_text) = field("pred ")?;
        let (truthy_line, truthy_text) = field("truthy ")?;
        let (falsy_line, falsy_text) = field("falsy ")?;
        let (end_line, end_text) = field("end")?;
        if !end_text.is_empty() {
            return Err(format_err(end_line, "junk after `end`"));
        }

        let layout = decode_layout(&layout_text, layout_line)?;
        let pred = parse_pred(&pred_text)
            .map_err(|e| format_err(pred_line, format!("unparseable predicate: {e}")))?;
        let indsets = decode_indsets::<D>(kind, &truthy_text, &falsy_text, &layout)
            .ok_or_else(|| format_err(truthy_line.max(falsy_line), "undecodable ind. sets"))?;
        entries.push(SharedCacheEntry { pred, layout, kind, members, indsets });
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anosy_domains::{AInt, IntervalDomain, PowersetDomain};
    use anosy_logic::IntExpr;
    use anosy_synth::{ApproxKind, IndSets};

    fn layout() -> SecretLayout {
        SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build()
    }

    fn entry(xo: i64) -> SharedCacheEntry<IntervalDomain> {
        let pred = ((IntExpr::var(0) - xo).abs() + (IntExpr::var(1) - 200).abs()).le(100);
        SharedCacheEntry {
            pred,
            layout: layout(),
            kind: ApproxKind::Under,
            members: None,
            indsets: IndSets::new(
                ApproxKind::Under,
                IntervalDomain::from_intervals(vec![AInt::new(121, 279), AInt::new(179, 221)]),
                IntervalDomain::from_intervals(vec![AInt::new(0, 400), AInt::new(0, 99)]),
            ),
        }
    }

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("anosy-serve-persist-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn save_load_round_trips() {
        let path = tmp_path("round_trip.cache");
        let entries = vec![entry(200), entry(300)];
        assert_eq!(save_entries(&path, &entries).unwrap(), SaveOutcome { written: 2, skipped: 0 });
        let loaded = load_entries::<IntervalDomain>(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        for (a, b) in entries.iter().zip(&loaded) {
            assert_eq!(a.pred, b.pred);
            assert_eq!(a.layout, b.layout);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.members, b.members);
            assert_eq!(a.indsets, b.indsets);
        }
    }

    #[test]
    fn powerset_entries_round_trip_too() {
        let path = tmp_path("powerset.cache");
        let member = IntervalDomain::from_intervals(vec![AInt::new(0, 10), AInt::new(0, 10)]);
        let entries = vec![SharedCacheEntry {
            pred: IntExpr::var(0).le(10),
            layout: layout(),
            kind: ApproxKind::Over,
            members: Some(3),
            indsets: IndSets::new(
                ApproxKind::Over,
                PowersetDomain::from_interval(member.clone()),
                PowersetDomain::new(2, vec![member.clone()], vec![member]),
            ),
        }];
        assert_eq!(save_entries(&path, &entries).unwrap().written, 1);
        let loaded = load_entries::<PowersetDomain>(&path).unwrap();
        assert_eq!(loaded[0].members, Some(3));
        assert_eq!(loaded[0].indsets, entries[0].indsets);
    }

    #[test]
    fn wrong_domain_and_malformed_files_fail_cleanly() {
        let path = tmp_path("wrong_domain.cache");
        save_entries::<IntervalDomain>(&path, &[entry(200)]).unwrap();
        let err = load_entries::<PowersetDomain>(&path).unwrap_err();
        assert!(matches!(err, ServeError::Format { line: 1, .. }), "{err}");

        let garbled = tmp_path("garbled.cache");
        std::fs::write(&garbled, "anosy-synth-cache v1 domain=interval\nentry kind=sideways\n")
            .unwrap();
        assert!(load_entries::<IntervalDomain>(&garbled).is_err());

        let truncated = tmp_path("truncated.cache");
        std::fs::write(
            &truncated,
            "anosy-synth-cache v1 domain=interval\nentry kind=under members=-\nlayout x:0:4\n",
        )
        .unwrap();
        assert!(load_entries::<IntervalDomain>(&truncated).is_err());

        assert!(load_entries::<IntervalDomain>(&tmp_path("missing.cache")).is_err());
    }

    #[test]
    fn unfaithful_entries_are_skipped_on_save() {
        let path = tmp_path("skipped.cache");
        let mut bad = entry(200);
        bad.layout = SecretLayout::builder().field("has space", 0, 4).field("y", 0, 4).build();
        assert_eq!(
            save_entries(&path, &[bad, entry(300)]).unwrap(),
            SaveOutcome { written: 1, skipped: 1 }
        );
        assert_eq!(load_entries::<IntervalDomain>(&path).unwrap().len(), 1);
    }
}
