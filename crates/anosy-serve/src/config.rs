//! Deployment configuration.

use anosy_solver::SolverConfig;
use anosy_synth::SynthConfig;

/// Configuration of a [`crate::Deployment`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of worker threads in the deployment's shard pool (clamped to at least one).
    pub workers: usize,
    /// Synthesis configuration used for cache misses (its solver config also drives
    /// verification and the parallel solver driver).
    pub synth: SynthConfig,
}

impl ServeConfig {
    /// Defaults: workers = available parallelism (or 4 when unknown), default synthesis limits.
    pub fn new() -> Self {
        let workers =
            std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(4);
        ServeConfig { workers, synth: SynthConfig::default() }
    }

    /// Overrides the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Overrides the synthesis configuration.
    pub fn with_synth(mut self, synth: SynthConfig) -> Self {
        self.synth = synth;
        self
    }

    /// The solver configuration shards and verifiers run with.
    pub fn solver(&self) -> &SolverConfig {
        &self.synth.solver
    }

    /// A tight configuration for tests: few workers, fast-failing solver budgets.
    pub fn for_tests() -> Self {
        ServeConfig { workers: 4, synth: SynthConfig::new().with_solver(SolverConfig::for_tests()) }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_defaults() {
        let c = ServeConfig::default();
        assert!(c.workers >= 1);
        let c = ServeConfig::new().with_workers(0);
        assert_eq!(c.workers, 1, "worker count clamps to one");
        let c = ServeConfig::for_tests().with_synth(SynthConfig::new());
        assert_eq!(c.solver().max_nodes, SolverConfig::new().max_nodes);
    }
}
