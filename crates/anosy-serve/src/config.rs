//! Deployment configuration.

use crate::journal::JournalConfig;
use anosy_solver::SolverConfig;
use anosy_synth::SynthConfig;

/// Configuration of a [`crate::Deployment`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of worker threads in the deployment's shard pool (clamped to at least one).
    pub workers: usize,
    /// Synthesis configuration used for cache misses (its solver config also drives
    /// verification and the parallel solver driver).
    pub synth: SynthConfig,
    /// Override of the shared term store's `(id, box)` memo depth threshold
    /// ([`anosy_logic::TermStore::with_min_memo_depth`]); `None` keeps the
    /// [`anosy_logic::BOX_MEMO_MIN_DEPTH`] default. Purely a performance knob — answers are
    /// identical at any setting. `report_fig5 --json` prints a depth-bucket-derived suggestion
    /// ([`anosy_logic::suggested_min_memo_depth`]) for retuning it.
    pub box_memo_min_depth: Option<u8>,
    /// Cap on retained connection-failure log entries across a whole deployment (clamped to at
    /// least one). A reactor pool divides this cap among its shards and
    /// [`crate::merge_io_logs`] re-applies it to the merged log, so the global bound holds at
    /// any reactor count.
    pub io_log_cap: usize,
    /// Append-only synthesis journal ([`crate::journal`]); `None` (the default) disables
    /// journaling. The journal itself is opened by [`crate::Deployment::open_journal`] — the
    /// config only carries the intent (path, flush policy, compaction cadence).
    pub journal: Option<JournalConfig>,
}

impl ServeConfig {
    /// Defaults: workers = available parallelism (or 4 when unknown), default synthesis limits,
    /// default memo threshold.
    pub fn new() -> Self {
        let workers =
            std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(4);
        ServeConfig {
            workers,
            synth: SynthConfig::default(),
            box_memo_min_depth: None,
            io_log_cap: crate::server::IO_LOG_CAP,
            journal: None,
        }
    }

    /// Overrides the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Overrides the synthesis configuration.
    pub fn with_synth(mut self, synth: SynthConfig) -> Self {
        self.synth = synth;
        self
    }

    /// Overrides the shared store's `(id, box)` memo depth threshold.
    pub fn with_box_memo_min_depth(mut self, depth: u8) -> Self {
        self.box_memo_min_depth = Some(depth);
        self
    }

    /// Overrides the deployment-wide connection-failure log cap (clamped to at least one).
    pub fn with_io_log_cap(mut self, cap: usize) -> Self {
        self.io_log_cap = cap.max(1);
        self
    }

    /// Enables the append-only synthesis journal ([`crate::journal`]).
    pub fn with_journal(mut self, journal: JournalConfig) -> Self {
        self.journal = Some(journal);
        self
    }

    /// The solver configuration shards and verifiers run with.
    pub fn solver(&self) -> &SolverConfig {
        &self.synth.solver
    }

    /// A tight configuration for tests: few workers, fast-failing solver budgets.
    pub fn for_tests() -> Self {
        ServeConfig {
            workers: 4,
            synth: SynthConfig::new().with_solver(SolverConfig::for_tests()),
            box_memo_min_depth: None,
            io_log_cap: crate::server::IO_LOG_CAP,
            journal: None,
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_defaults() {
        let c = ServeConfig::default();
        assert!(c.workers >= 1);
        let c = ServeConfig::new().with_workers(0);
        assert_eq!(c.workers, 1, "worker count clamps to one");
        let c = ServeConfig::for_tests().with_synth(SynthConfig::new());
        assert_eq!(c.solver().max_nodes, SolverConfig::new().max_nodes);
        assert_eq!(c.box_memo_min_depth, None);
        assert_eq!(ServeConfig::for_tests().with_box_memo_min_depth(3).box_memo_min_depth, Some(3));
        assert_eq!(c.io_log_cap, crate::server::IO_LOG_CAP);
        assert_eq!(ServeConfig::for_tests().with_io_log_cap(0).io_log_cap, 1, "cap clamps to one");
        assert!(c.journal.is_none(), "journaling is opt-in");
        let journal = JournalConfig::new("/tmp/t.journal")
            .with_flush(crate::journal::FlushPolicy::OnTick)
            .with_compact_every(0);
        let c = ServeConfig::for_tests().with_journal(journal);
        let journal = c.journal.unwrap();
        assert_eq!(journal.compact_every, Some(1), "compaction cadence clamps to one tick");
        assert_eq!(journal.snapshot_path(), std::path::PathBuf::from("/tmp/t.journal.snapshot"));
    }
}
