//! `SimNet`: a seeded, in-memory simulated network — the deterministic test transport for the
//! event-loop [`Server`](crate::Server).
//!
//! The transport is where nondeterminism enters a real deployment: bytes arrive in arbitrary
//! chunks, writes coalesce, peers vanish mid-line, connections interleave. `SimNet` reproduces
//! all of that inside `cargo test`, driven entirely by a seed:
//!
//! * **scripted or RNG-driven connects** — tests schedule clients at virtual times (or derive
//!   times/counts from [`SimNet::rng`], the same seeded stream);
//! * **byte-level chunking and coalescing** — a client "write" is split at random byte
//!   boundaries, and chunks landing at the same virtual instant are coalesced back into one
//!   read, so the server's line decoder sees every framing a kernel could produce;
//! * **delayed delivery and cross-connection reordering** — each chunk draws a random latency;
//!   order *within* one connection is preserved (TCP's guarantee) while deliveries *across*
//!   connections interleave freely;
//! * **disconnects** — clean half-closes ([`Event::HalfClosed`]), abortive resets and injected
//!   I/O errors (both [`Event::Failed`]).
//!
//! Everything is a pure function of the script and the seed: the event schedule is a
//! `BTreeMap` keyed by `(virtual time, sequence number)` and the RNG is the workspace's
//! deterministic `StdRng`, so a scenario **replays byte-identically from its seed** — the
//! property `tests/sim_chaos.rs` asserts before comparing the server against the sequential
//! oracle.

use crate::server::{Event, Token, Transport};
use anosy_telemetry::{ClockHandle, VirtualClock};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::{BTreeMap, HashMap};

/// Default upper bound on one delivered chunk, in bytes.
const DEFAULT_MAX_CHUNK: usize = 17;

/// Default upper bound on one chunk's extra latency, in virtual time units.
const DEFAULT_MAX_DELAY: u64 = 5;

/// What the simulated network delivers to the server at a scheduled instant.
#[derive(Debug, Clone)]
enum Scheduled {
    Open(Token),
    Chunk(Token, Vec<u8>),
    HalfClose(Token),
    Fail(Token, String),
    Tick,
}

/// Client-side bookkeeping for one simulated connection.
#[derive(Debug, Default)]
struct Client {
    /// Virtual time of the last scheduled delivery — per-connection FIFO floor.
    ready_at: u64,
    /// Bytes the server sent back (readable after the run via [`SimNet::received`]).
    received: Vec<u8>,
    /// The server closed this connection; later sends are dropped on the floor, like writes
    /// to a dead socket. Scripted resets do *not* set this — the cut-off point of an aborted
    /// client's stream is the server's own close after its teardown flush, which keeps the
    /// recorded stream deterministic under connection sharding.
    closed: bool,
}

/// The seeded in-memory transport (see the [module docs](self)).
#[derive(Debug)]
pub struct SimNet {
    seed: u64,
    rng: StdRng,
    max_chunk: usize,
    max_delay: u64,
    schedule: BTreeMap<(u64, u64), Scheduled>,
    next_seq: u64,
    next_token: u64,
    clients: HashMap<Token, Client>,
    /// The simulator's virtual time, exported to the server's telemetry via
    /// [`Transport::clock`]: [`SimNet::poll`] stamps it with each delivered batch's scheduled
    /// instant, so spans recorded under the simulator are a pure function of the seed.
    clock: VirtualClock,
}

impl SimNet {
    /// An empty simulated network deriving all randomness from `seed`.
    pub fn new(seed: u64) -> SimNet {
        SimNet {
            seed,
            rng: StdRng::seed_from_u64(seed),
            max_chunk: DEFAULT_MAX_CHUNK,
            max_delay: DEFAULT_MAX_DELAY,
            schedule: BTreeMap::new(),
            next_seq: 0,
            next_token: 0,
            clients: HashMap::new(),
            clock: VirtualClock::new(),
        }
    }

    /// Overrides the chunking bound (1 = strictly byte-at-a-time delivery).
    pub fn with_max_chunk(mut self, max_chunk: usize) -> SimNet {
        self.max_chunk = max_chunk.max(1);
        self
    }

    /// Overrides the per-chunk latency bound (0 = no delays, so writes deliver in script
    /// order and chunks of one write coalesce back into one read).
    pub fn with_max_delay(mut self, max_delay: u64) -> SimNet {
        self.max_delay = max_delay;
        self
    }

    /// The seed this network was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The seeded random stream, for RNG-driven scripts (client counts, times, payload picks)
    /// that must replay with the scenario.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    fn push(&mut self, at: u64, event: Scheduled) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.schedule.insert((at, seq), event);
    }

    /// Schedules a client connecting at virtual time `at`; returns the connection's [`Token`].
    pub fn connect(&mut self, at: u64) -> Token {
        let token = Token(self.next_token);
        self.next_token += 1;
        self.clients.insert(token, Client { ready_at: at, ..Client::default() });
        self.push(at, Scheduled::Open(token));
        token
    }

    /// Schedules a client write at virtual time `at` (no earlier than the client's previous
    /// delivery — per-connection FIFO). The payload is split into random chunks, each with a
    /// random extra latency, so it arrives at the server in every framing a real socket could
    /// produce while other connections' deliveries interleave in between.
    pub fn send(&mut self, client: Token, at: u64, payload: impl AsRef<[u8]>) {
        let payload = payload.as_ref();
        let mut t = self.floor(client, at);
        let mut offset = 0;
        while offset < payload.len() {
            let remaining = payload.len() - offset;
            let len = self.rng.gen_range(1..=self.max_chunk.min(remaining));
            t += self.rng.gen_range(0..=self.max_delay);
            self.push(t, Scheduled::Chunk(client, payload[offset..offset + len].to_vec()));
            offset += len;
        }
        self.bump(client, t);
    }

    /// Schedules a clean half-close (FIN after the last write): the server interprets any
    /// trailing partial line, answers, and tears the connection down.
    pub fn half_close(&mut self, client: Token, at: u64) {
        let t = self.floor(client, at);
        self.push(t, Scheduled::HalfClose(client));
        self.bump(client, t);
    }

    /// Schedules an abortive reset: buffered partial input must be discarded. The recorded
    /// stream cuts off when the *server* closes the connection in response (after its
    /// teardown flush), so what an aborted client observed is a deterministic function of the
    /// requests the server accepted — not of how unrelated connections' ticks interleaved.
    pub fn abort(&mut self, client: Token, at: u64) {
        self.io_error(client, at, "connection reset by peer (simulated)");
    }

    /// Schedules an injected per-connection I/O error with a custom reason (the
    /// one-bad-peer-must-not-kill-the-process regression hook).
    pub fn io_error(&mut self, client: Token, at: u64, reason: &str) {
        let t = self.floor(client, at);
        self.push(t, Scheduled::Fail(client, reason.to_string()));
        self.bump(client, t);
    }

    /// Schedules a quiescence timer tick (the `--ticked` timer) at virtual time `at`.
    pub fn tick(&mut self, at: u64) {
        self.push(at, Scheduled::Tick);
    }

    /// Bytes the server delivered to `client` (empty for unknown tokens).
    pub fn received(&self, client: Token) -> &[u8] {
        self.clients.get(&client).map(|c| c.received.as_slice()).unwrap_or(&[])
    }

    /// The delivered bytes as text (the wire protocol is line-oriented UTF-8).
    pub fn received_text(&self, client: Token) -> String {
        String::from_utf8_lossy(self.received(client)).into_owned()
    }

    /// The delivered bytes decoded as binary frames and re-joined into `\n`-terminated lines —
    /// the binary-protocol counterpart of [`SimNet::received_text`], so framed and line runs of
    /// the same script compare textually. Decode trouble is reported in-band as marker lines
    /// (`<corrupt frame>`, `<oversize frame>`, `<truncated frame>`) rather than panicking: a
    /// healthy server never produces any of them, and a diff against the line-protocol
    /// transcript surfaces them loudly.
    pub fn received_frame_text(&self, client: Token) -> String {
        let mut decoder = crate::wire::FrameDecoder::new();
        let mut out = String::new();
        let render = |frame: crate::wire::DecodedFrame, out: &mut String| match frame {
            crate::wire::DecodedFrame::Frame(payload) => {
                out.push_str(&String::from_utf8_lossy(&payload));
                out.push('\n');
            }
            crate::wire::DecodedFrame::Corrupt => out.push_str("<corrupt frame>\n"),
            crate::wire::DecodedFrame::Oversize => out.push_str("<oversize frame>\n"),
            crate::wire::DecodedFrame::Truncated => out.push_str("<truncated frame>\n"),
        };
        for frame in decoder.feed(self.received(client)) {
            render(frame, &mut out);
        }
        if let Some(frame) = decoder.finish() {
            render(frame, &mut out);
        }
        out
    }

    fn floor(&self, client: Token, at: u64) -> u64 {
        at.max(self.clients.get(&client).map(|c| c.ready_at).unwrap_or(0))
    }

    fn bump(&mut self, client: Token, t: u64) {
        if let Some(c) = self.clients.get_mut(&client) {
            c.ready_at = t;
        }
    }

    /// Splits a fully-scripted schedule into one `SimNet` per reactor shard, exactly as a
    /// [`crate::ReactorPool`] acceptor would have routed the same arrivals: every
    /// per-connection event lands on shard [`crate::reactor::shard_of`]`(token, shards)` and
    /// quiescence ticks are replicated to all shards (each reactor runs its own timer).
    /// `(time, seq)` keys are preserved, so each shard delivers its slice of the traffic in
    /// the same relative order the unsplit net would have — the transport-level half of the
    /// reactor-count-invariance argument (`tests/multi_reactor.rs`).
    ///
    /// Call this after scripting is complete: the shards get fresh RNGs, so chunking decisions
    /// already made are preserved but new scripting on a shard will not replay the original
    /// stream. Server output lands in the owning shard's client (query it with `received` on
    /// the shard the token hashes to).
    pub fn split(self, shards: u64) -> Vec<SimNet> {
        let shards = shards.max(1);
        let mut nets: Vec<SimNet> = (0..shards)
            .map(|_| SimNet {
                seed: self.seed,
                rng: StdRng::seed_from_u64(self.seed),
                max_chunk: self.max_chunk,
                max_delay: self.max_delay,
                schedule: BTreeMap::new(),
                next_seq: self.next_seq,
                next_token: self.next_token,
                clients: HashMap::new(),
                clock: VirtualClock::new(),
            })
            .collect();
        for ((time, seq), event) in self.schedule {
            let shard = match &event {
                Scheduled::Tick => None,
                Scheduled::Open(token)
                | Scheduled::Chunk(token, _)
                | Scheduled::HalfClose(token)
                | Scheduled::Fail(token, _) => {
                    Some(crate::reactor::shard_of(token.0, shards) as usize)
                }
            };
            match shard {
                Some(shard) => {
                    nets[shard].schedule.insert((time, seq), event);
                }
                None => {
                    for net in &mut nets {
                        net.schedule.insert((time, seq), Scheduled::Tick);
                    }
                }
            }
        }
        for (token, client) in self.clients {
            let shard = crate::reactor::shard_of(token.0, shards) as usize;
            nets[shard].clients.insert(token, client);
        }
        nets
    }
}

impl Transport for SimNet {
    /// Delivers everything scheduled for the next occupied virtual instant, coalescing
    /// same-connection chunks that land together into one read (write coalescing).
    fn poll(&mut self) -> Vec<Event> {
        let Some((&(time, _), _)) = self.schedule.iter().next() else { return Vec::new() };
        self.clock.set(time);
        let due: Vec<(u64, u64)> =
            self.schedule.range((time, 0)..=(time, u64::MAX)).map(|(&k, _)| k).collect();
        let mut events: Vec<Event> = Vec::new();
        for key in due {
            let Some(scheduled) = self.schedule.remove(&key) else { continue };
            match scheduled {
                Scheduled::Open(token) => events.push(Event::Opened(token)),
                Scheduled::Chunk(token, bytes) => match events.last_mut() {
                    Some(Event::Data(last, buffer)) if *last == token => {
                        buffer.extend_from_slice(&bytes);
                    }
                    _ => events.push(Event::Data(token, bytes)),
                },
                Scheduled::HalfClose(token) => events.push(Event::HalfClosed(token)),
                Scheduled::Fail(token, reason) => events.push(Event::Failed(token, reason)),
                Scheduled::Tick => events.push(Event::TimerTick),
            }
        }
        events
    }

    fn send(&mut self, token: Token, bytes: &[u8]) {
        if let Some(client) = self.clients.get_mut(&token) {
            if !client.closed {
                client.received.extend_from_slice(bytes);
            }
        }
    }

    fn close(&mut self, token: Token) {
        if let Some(client) = self.clients.get_mut(&token) {
            client.closed = true;
        }
    }

    fn clock(&self) -> ClockHandle {
        ClockHandle::Virtual(self.clock.clone())
    }
}
