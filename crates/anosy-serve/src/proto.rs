//! The typed serving protocol: one request/response pair for the whole deployment surface.
//!
//! Everything a deployment can do — open a session under a [`PolicySpec`], register a query,
//! downgrade one secret or a batch, count models, check validity, inspect knowledge and stats,
//! save or warm-start the synthesis cache, close a session — is a [`ServeRequest`], and every
//! answer is a [`ServeResponse`] tagged with the [`RequestId`] it answers. The
//! [`Frontend`](crate::Frontend) state machine consumes requests and emits tagged responses
//! without performing any I/O itself (sans-IO, in the sense the networking world uses the term):
//! transports — the [`wire`](crate::wire) line codec and the `anosy-served` stdin/stdout binary,
//! or any future socket loop — only move bytes and never interpret the protocol.
//!
//! Downgrade refusals are *data*, not protocol failures: a [`ServeRequest::Downgrade`] always
//! answers with [`ServeResponse::Answer`] — `Err(..)` for policy refusals, unknown queries,
//! out-of-layout secrets *and* unknown sessions alike, exactly as the sequential
//! [`anosy_core::AnosySession::downgrade`] replay would error — because the monitor's refusal
//! is part of its observable (and deliberately secret-independent) behavior.
//! [`ServeResponse::Rejected`] is how every *non-downgrade* request reports failure (unknown
//! session on a batch/knowledge/close, synthesis failure, cache I/O).
//!
//! **Trust boundary.** [`ServeRequest::SaveCache`] and [`ServeRequest::WarmStart`] carry
//! filesystem paths the deployment will write and read. Over stdin/stdout (`anosy-served`) the
//! requester *is* the operator, so this is fine; a transport that exposes the protocol to
//! untrusted connections (the future socket executor) must gate or drop these two requests —
//! the frontend executes them for whoever submits them.

use anosy_core::{AnosyError, PolicySpec};
use anosy_logic::Point;
use anosy_synth::{ApproxKind, QueryDef};
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

use crate::ServeStats;

/// Identifies one session owned by a [`Frontend`](crate::Frontend). Allocated by
/// [`ServeRequest::OpenSession`] in deterministic order: `1, 2, 3, …` in frontend submission
/// order by default, or — under a frontend in conn-scoped mode
/// ([`Frontend::with_conn_scoped_sessions`](crate::Frontend::with_conn_scoped_sessions), the
/// mode every [`crate::ReactorPool`] shard runs in) — derived from the opening connection as
/// `((conn + 1) << 32) | k` for that connection's `k`-th open, so the id a session gets is
/// invariant under resharding connections across reactors. The packing is **checked**: it only
/// covers `conn < 2³² − 1` and `k < 2³²`, and an open outside that range is refused with a
/// [`ServeResponse::Rejected`] at the boundary — silently wrapping would collide ids across
/// connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifies one logical connection multiplexed onto a frontend. Connections are a tagging
/// concept only — the frontend processes all requests in one global submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnId(pub u64);

impl fmt::Display for ConnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Tags a request and its response: the connection it arrived on plus the per-connection
/// sequence number, rendered `conn.seq` on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId {
    /// The logical connection the request arrived on.
    pub conn: ConnId,
    /// The 1-based sequence number of the request within its connection.
    pub seq: u64,
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.conn, self.seq)
    }
}

/// One request against a serving deployment.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeRequest {
    /// Opens a session enforcing the given policy; answered with
    /// [`ServeResponse::SessionOpened`]. The new session immediately knows every query
    /// registered so far.
    OpenSession {
        /// The quantitative policy the session enforces.
        policy: PolicySpec,
    },
    /// Synthesizes and verifies a query once per deployment (a warm cache makes this free) and
    /// registers it with every open and future session.
    RegisterQuery {
        /// The query definition (name, layout, predicate).
        query: QueryDef,
        /// Approximation direction.
        kind: ApproxKind,
        /// Powerset member budget (`None` for the interval domain).
        members: Option<usize>,
    },
    /// The bounded downgrade of Fig. 2 against one session's tracked knowledge.
    Downgrade {
        /// The session whose knowledge is consulted and refined.
        session: SessionId,
        /// The secret, as a point of the deployment layout.
        secret: Point,
        /// Name of a registered query. Interned: the wire decoder hands every request naming
        /// the same query a clone of one shared allocation
        /// ([`wire::NameInterner`](crate::wire::NameInterner)).
        query: Arc<str>,
    },
    /// A whole batch of downgrades against one query in one request (the explicit counterpart
    /// of the frontend's implicit per-tick batching).
    DowngradeBatch {
        /// The session whose knowledge is consulted and refined.
        session: SessionId,
        /// The secrets, in order; duplicates chain exactly as sequential calls would.
        secrets: Vec<Point>,
        /// Name of a registered query (interned, as in [`ServeRequest::Downgrade`]).
        query: Arc<str>,
    },
    /// Counts the models of a predicate over the deployment's secret space with the sharded
    /// parallel driver.
    CountModels {
        /// The predicate to count.
        pred: anosy_logic::Pred,
    },
    /// Checks validity of a predicate over the deployment's secret space.
    CheckValidity {
        /// The predicate to check.
        pred: anosy_logic::Pred,
    },
    /// Reads the knowledge currently tracked for a secret (size plus the encoded domain
    /// element, via [`anosy_synth::DomainCodec`]).
    Knowledge {
        /// The session to inspect.
        session: SessionId,
        /// The secret whose knowledge is requested.
        secret: Point,
    },
    /// Reads the frontend + deployment aggregate counters.
    Stats,
    /// Persists the synthesis cache for a later warm start.
    SaveCache {
        /// Where to write the cache file.
        path: PathBuf,
    },
    /// Loads a previously saved synthesis cache.
    WarmStart {
        /// The cache file to load (a missing file is a cold start).
        path: PathBuf,
        /// When `true`, re-verify every entry's refinement obligations with the solver before
        /// installing it ([`crate::Deployment::warm_start_verified`]).
        verify: bool,
    },
    /// Closes a session, dropping its tracked knowledge.
    CloseSession {
        /// The session to close.
        session: SessionId,
    },
    /// Reads the answering reactor's telemetry counters and latency histograms as one line of
    /// JSON ([`ServeResponse::Metrics`]). Answers `{}` when the serving process records no
    /// telemetry (feature compiled out, or no collector installed).
    Metrics,
    /// Reads the answering reactor's span ring as one line of chrome://tracing JSON
    /// ([`ServeResponse::Trace`]). Answers `[]` when nothing records.
    Trace,
}

/// Why a downgrade (or a whole request) was denied — the compact, wire-stable classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DenialCode {
    /// A quantitative policy refused the downgrade (before query execution, per §3).
    Policy,
    /// The named query was never registered.
    UnknownQuery,
    /// The secret lies outside the deployment layout.
    OutsideLayout,
    /// The request referenced a session id the frontend does not own.
    UnknownSession,
    /// A cache-only registration found no synthesized entry.
    NotSynthesized,
    /// Anything else (synthesis/verification/solver/cache failures); see the message.
    Internal,
}

impl DenialCode {
    /// The wire token of the code.
    pub fn as_str(&self) -> &'static str {
        match self {
            DenialCode::Policy => "policy",
            DenialCode::UnknownQuery => "unknown-query",
            DenialCode::OutsideLayout => "outside-layout",
            DenialCode::UnknownSession => "unknown-session",
            DenialCode::NotSynthesized => "not-synthesized",
            DenialCode::Internal => "internal",
        }
    }

    /// Parses a wire token back into a code.
    pub fn parse(token: &str) -> Option<DenialCode> {
        Some(match token {
            "policy" => DenialCode::Policy,
            "unknown-query" => DenialCode::UnknownQuery,
            "outside-layout" => DenialCode::OutsideLayout,
            "unknown-session" => DenialCode::UnknownSession,
            "not-synthesized" => DenialCode::NotSynthesized,
            "internal" => DenialCode::Internal,
            _ => return None,
        })
    }

    /// Classifies a session-layer error.
    pub fn of(error: &AnosyError) -> DenialCode {
        match error {
            AnosyError::PolicyViolation { .. } => DenialCode::Policy,
            AnosyError::UnknownQuery { .. } => DenialCode::UnknownQuery,
            AnosyError::SecretOutsideLayout => DenialCode::OutsideLayout,
            AnosyError::NotSynthesized { .. } => DenialCode::NotSynthesized,
            _ => DenialCode::Internal,
        }
    }
}

impl fmt::Display for DenialCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A denial with its human-readable reason (the [`DenialCode`] alone rides in batch answers,
/// where one line carries many results).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Denial {
    /// The compact classification.
    pub code: DenialCode,
    /// The full error message.
    pub message: String,
}

impl Denial {
    /// A denial with an ad-hoc message.
    pub fn new(code: DenialCode, message: impl Into<String>) -> Denial {
        Denial { code, message: message.into() }
    }

    /// The canonical denial for a request referencing an unowned session.
    pub fn unknown_session(session: SessionId) -> Denial {
        Denial::new(DenialCode::UnknownSession, format!("no open session {session}"))
    }
}

impl From<AnosyError> for Denial {
    fn from(e: AnosyError) -> Denial {
        Denial { code: DenialCode::of(&e), message: e.to_string() }
    }
}

impl fmt::Display for Denial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

/// Aggregate counters of a frontend and its deployment, as one protocol-level snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Sessions currently open in the frontend.
    pub open_sessions: usize,
    /// Completed [`Frontend::tick`](crate::Frontend::tick) calls.
    pub ticks: u64,
    /// Requests submitted since the frontend was created.
    pub requests: u64,
    /// Downgrades that rode a per-tick batch (including explicit [`ServeRequest::DowngradeBatch`]
    /// elements).
    pub batched_downgrades: u64,
    /// Largest single batch handed to the deployment's batched-downgrade driver.
    pub largest_batch: usize,
    /// Sessions torn down because the connection that opened them disconnected (see
    /// [`Frontend::disconnect`](crate::Frontend::disconnect)).
    pub sessions_torn_down: u64,
    /// Distinct logical connections that submitted at least one request (the tenant count of a
    /// multi-tenant run).
    pub tenants: u64,
    /// Responses that carried a denial (refused answers, denied batch elements, rejections),
    /// counted at the end of each tick — a snapshot taken mid-tick reports the ticks completed
    /// so far, like [`StatsSnapshot::ticks`] itself.
    pub denials: u64,
    /// Reactor shards the serving process runs (`1` for a standalone server; `N` under a
    /// [`crate::ReactorPool`] of `N` reactors).
    pub reactors: u64,
    /// Which reactor shard answered (`0`-based). A deployment-wide fold of per-shard snapshots
    /// ([`crate::reactor::fold_stats`]) marks itself with `shard == reactors`.
    pub shard: u64,
    /// The deployment aggregates (cache hits, downgrade outcomes, workers).
    pub serve: ServeStats,
    /// The shared store's `(id, box)` memo counters as `[hits, misses, bypassed]` per term-depth
    /// bucket ([`anosy_logic::BOX_MEMO_DEPTH_BUCKETS`] buckets, shallow to deep) — the evidence
    /// behind [`StatsSnapshot::memo_suggested_depth`]. The store is deployment-shared, so a
    /// fold of per-shard snapshots carries these through unsummed.
    pub memo_depth: [[u64; 3]; anosy_logic::BOX_MEMO_DEPTH_BUCKETS],
    /// The `(id, box)` memo depth threshold the deployment's store runs with.
    pub memo_min_depth: u8,
    /// [`anosy_logic::suggested_min_memo_depth`] computed from the buckets above: the threshold
    /// the observed hit rates say this workload should use.
    pub memo_suggested_depth: u8,
    /// The deployment journal's counters ([`crate::journal`]) as
    /// `[appended, compacted, replayed, torn]`; all zero when no journal is attached. The
    /// journal is deployment-shared, so a fold of per-shard snapshots carries these through
    /// unsummed, like [`StatsSnapshot::memo_depth`].
    pub journal: [u64; 4],
    /// Entries skipped as unencodable across every cache save of this deployment (the
    /// [`crate::SaveOutcome::skipped`] tally; deployment-shared like
    /// [`StatsSnapshot::journal`]).
    pub saves_skipped: u64,
}

/// One response, paired to its request by the frontend.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeResponse {
    /// A session was opened.
    SessionOpened {
        /// The freshly allocated session id.
        session: SessionId,
    },
    /// A query was synthesized (or served from cache) and registered everywhere.
    QueryRegistered {
        /// The query's name, as usable in downgrade requests.
        name: String,
    },
    /// The downgrade answer: the query's boolean on authorization, the denial otherwise.
    Answer(Result<bool, Denial>),
    /// Per-element answers of a batch, in input order.
    Answers(Vec<Result<bool, DenialCode>>),
    /// The model count.
    Count {
        /// Number of models of the predicate in the deployment space.
        models: u128,
    },
    /// The validity outcome: `None` means valid everywhere.
    Validity {
        /// A point falsifying the predicate, if any.
        counterexample: Option<Point>,
    },
    /// The tracked knowledge of a secret.
    Knowledge {
        /// Number of candidate secrets the knowledge still admits.
        size: u128,
        /// The domain element in its [`anosy_synth::DomainCodec`] line form.
        encoded: String,
    },
    /// The aggregate counters.
    Stats(Box<StatsSnapshot>),
    /// The synthesis cache was persisted.
    CacheSaved {
        /// Entries written.
        entries: usize,
        /// Entries skipped because the text encoding cannot represent them faithfully
        /// ([`crate::SaveOutcome::skipped`]) — nonzero means the save was lossy.
        skipped: usize,
    },
    /// A warm start completed.
    WarmStarted {
        /// Entries installed into the cache.
        loaded: usize,
        /// Entries refused by `--verify-on-load` re-verification.
        skipped: usize,
    },
    /// A session was closed.
    SessionClosed {
        /// The id that is now free (ids are never reused).
        session: SessionId,
    },
    /// The answering reactor's telemetry registry.
    Metrics {
        /// One line of JSON: `{"counters":{…},"histograms":{…}}` (or `{}` when nothing
        /// records). Opaque to the codec — it rides the line verbatim and must not contain a
        /// newline, which the telemetry renderers guarantee.
        json: String,
    },
    /// The answering reactor's span ring.
    Trace {
        /// One line of chrome://tracing JSON (`[]` when nothing records).
        json: String,
    },
    /// The request itself failed (unknown session, synthesis failure, cache I/O, …).
    Rejected(Denial),
}

/// A response paired with the id of the request it answers.
#[derive(Debug, Clone, PartialEq)]
pub struct TaggedResponse {
    /// The request this answers.
    pub request: RequestId,
    /// The answer.
    pub response: ServeResponse,
}
