//! The `SimNet` load generator: seeded multi-tenant traffic driven through a
//! [`ReactorPool`], with measured throughput.
//!
//! This is the macro-benchmark and stress harness for multi-reactor serving. A seeded
//! [`Population`] decides what every tenant does, the [`crate::popsim`] compiler schedules it
//! onto a [`crate::SimNet`] (connection-scoped session ids, so the schedule is valid at any
//! reactor count), [`crate::SimNet::split`] routes the traffic exactly as the pool's acceptor
//! would, and [`ReactorPool::run`] drives the shards on real threads. The run is deterministic
//! in `(population seed, net seed)` — wall-clock aside — so:
//!
//! * the CI `sim-stress` lane replays fixed seeds at 2 and 4 reactors and asserts invariants;
//! * `tests/multi_reactor.rs` asserts per-connection response streams are element-wise
//!   identical across reactor counts ([`PoolRun::received_text`] per token);
//! * `report_serve --json` times the same seeded run at `reactors = 1/2/4` (the
//!   `transport_rows` of `BENCH_pr7.json`), asserting equivalence before timing.

use crate::popsim::{self, CompileOptions};
use crate::proto::StatsSnapshot;
use crate::reactor::{fold_server_stats, fold_stats, shard_of, ReactorPool};
use crate::server::{Server, ServerConfig, ServerStats, Token};
use crate::{Deployment, ServeConfig, SessionId, SimNet};
use anosy_domains::IntervalDomain;
use anosy_suite::population::{Population, PopulationConfig};
use anosy_telemetry::{merge_metrics, Report};
use std::time::{Duration, Instant};

/// Knobs of one load-generator run.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Simulated-network seed (chunking, latency, interleaving); independent of the
    /// population's seed.
    pub net_seed: u64,
    /// Reactor shards to run the pool at.
    pub reactors: u64,
    /// `true`: tick on blank lines/timers (`--ticked` batching mode). `false`: per-request.
    pub ticked: bool,
    /// Record transcripts and responses for oracle comparison (costs clones; keep off when
    /// timing).
    pub recording: bool,
    /// Install a telemetry collector on every shard ([`ServerConfig::telemetry`]); `false` is
    /// the baseline side of the overhead benchmark.
    pub telemetry: bool,
    /// Compile the population onto the binary frame protocol (every connection negotiates with
    /// [`crate::wire::BINARY_PREAMBLE`] and frames each request); `false` is the line protocol.
    /// Responses come back framed too — read them with [`PoolRun::received_decoded`].
    pub binary: bool,
}

impl LoadOptions {
    /// A `reactors`-shard run under network seed `net_seed`: ticked, not recording — the
    /// throughput-measurement configuration.
    pub fn new(net_seed: u64, reactors: u64) -> LoadOptions {
        LoadOptions {
            net_seed,
            reactors: reactors.max(1),
            ticked: true,
            recording: false,
            telemetry: true,
            binary: false,
        }
    }

    /// Switches the compiled traffic to the binary frame protocol.
    pub fn binary(mut self) -> LoadOptions {
        self.binary = true;
        self
    }

    /// Enables transcript/response recording on every shard.
    pub fn recording(mut self) -> LoadOptions {
        self.recording = true;
        self
    }

    /// Sets the ticking mode.
    pub fn ticked(mut self, ticked: bool) -> LoadOptions {
        self.ticked = ticked;
        self
    }

    /// Sets whether shards install telemetry collectors.
    pub fn telemetry(mut self, telemetry: bool) -> LoadOptions {
        self.telemetry = telemetry;
        self
    }
}

/// Request-latency percentiles from the merged per-shard `request.latency` histograms, in the
/// transport clock's units — **virtual time** under [`SimNet`], so the numbers are seeds-stable
/// tail shapes, not wall-clock. All zero when telemetry was off (or compiled out).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Requests measured (submit to response-write, per shard).
    pub count: u64,
    /// Median latency.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile — the tail the multi-tenant batching story is about.
    pub p99: u64,
    /// The exact slowest request.
    pub max: u64,
}

/// What one load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Reactor shards the pool ran.
    pub reactors: u64,
    /// `true` when the run spoke the binary frame protocol ([`LoadOptions::binary`]).
    pub binary: bool,
    /// Simulated connections (tenants) driven.
    pub connections: usize,
    /// Protocol requests scheduled across all connections.
    pub requests: usize,
    /// Wall-clock of the pool run (thread spawn to last shard drained).
    pub elapsed: Duration,
    /// `requests / elapsed` — the headline throughput number.
    pub requests_per_sec: f64,
    /// Deployment-wide protocol counters ([`fold_stats`] over the shards; marked
    /// `shard == reactors`).
    pub stats: StatsSnapshot,
    /// Deployment-wide reactor counters ([`fold_server_stats`] over the shards).
    pub server: ServerStats,
    /// Request-latency tail, from telemetry (zeros when [`LoadOptions::telemetry`] was off).
    pub latency: LatencySummary,
}

/// One finished pool run: the drained shards (frontends, transports and any recordings
/// intact) plus the measurements.
#[derive(Debug)]
pub struct PoolRun {
    /// The shards, in shard order.
    pub servers: Vec<Server<IntervalDomain, SimNet>>,
    /// Tenant index → connection token (global arrival order, shared by every reactor count).
    pub tokens: Vec<Token>,
    /// Tenant index → the connection-scoped session id the tenant's `open` was assigned.
    pub sessions: Vec<SessionId>,
    /// Per-shard telemetry reports in shard order (empty when [`LoadOptions::telemetry`] was
    /// off or the feature is compiled out) — the input of [`crate::merge_metrics`] and
    /// [`crate::trace_json`].
    pub telemetry: Vec<Report>,
    /// The measurements.
    pub report: LoadReport,
}

impl PoolRun {
    /// Everything the server wrote back to `token`'s connection, read from the shard that
    /// owns it — the per-connection response stream the reactor-count-invariance property
    /// quantifies over.
    pub fn received_text(&self, token: Token) -> String {
        let shard = shard_of(token.0, self.report.reactors) as usize;
        self.servers[shard].transport().received_text(token)
    }

    /// [`PoolRun::received_text`] with the run's own protocol decoded away: binary runs'
    /// framed responses come back as the `\n`-terminated lines they carry
    /// ([`SimNet::received_frame_text`]), so a line run and a binary run of the same
    /// population compare element-wise.
    pub fn received_decoded(&self, token: Token) -> String {
        let shard = shard_of(token.0, self.report.reactors) as usize;
        if self.report.binary {
            self.servers[shard].transport().received_frame_text(token)
        } else {
            self.servers[shard].transport().received_text(token)
        }
    }
}

/// The standard load-generator population: [`PopulationConfig::small`] scaled to `tenants`
/// tenants — mixed policies, popularity-skewed queries, churn (clean exits, abandons,
/// lingerers), everything derived from `seed`.
pub fn population(seed: u64, tenants: usize) -> Population {
    Population::generate(&PopulationConfig::small(seed).with_tenants(tenants))
}

/// Compiles `population` (connection-scoped), splits it across `options.reactors` shards,
/// drives a [`ReactorPool`] over a palette-warmed deployment and measures throughput.
pub fn run(population: &Population, options: &LoadOptions) -> PoolRun {
    let deployment = popsim::warm_deployment(population, &ServeConfig::for_tests());
    run_on(population, options, &deployment)
}

/// [`run`] against a caller-supplied deployment (benchmarks reuse one across reactor counts
/// so synthesis cost and cache state are held fixed).
pub fn run_on(
    population: &Population,
    options: &LoadOptions,
    deployment: &Deployment<IntervalDomain>,
) -> PoolRun {
    let mut compile_options = CompileOptions::new(options.net_seed).conn_scoped();
    if options.binary {
        compile_options = compile_options.binary();
    }
    let compiled = popsim::compile(population, &compile_options);
    let nets = compiled.net.split(options.reactors);
    let mut config = ServerConfig::new().ticked(options.ticked).with_telemetry(options.telemetry);
    if options.recording {
        config = config.recording();
    }
    let pool = ReactorPool::new(options.reactors).with_config(config);

    let start = Instant::now();
    let servers = pool.run(deployment, nets);
    let elapsed = start.elapsed();

    let snapshots: Vec<StatsSnapshot> = servers.iter().map(|s| s.frontend().snapshot()).collect();
    let server_stats: Vec<ServerStats> = servers.iter().map(|s| s.stats()).collect();
    let telemetry: Vec<Report> =
        servers.iter().filter_map(|s| s.telemetry_report().cloned()).collect();
    let latency = merge_metrics(&telemetry)
        .histogram("request.latency")
        .map(|h| LatencySummary {
            count: h.count(),
            p50: h.quantile(0.50),
            p90: h.quantile(0.90),
            p99: h.quantile(0.99),
            max: h.max(),
        })
        .unwrap_or_default();
    let requests = compiled.requests;
    let report = LoadReport {
        reactors: options.reactors,
        binary: options.binary,
        connections: population.tenants.len(),
        requests,
        elapsed,
        requests_per_sec: requests as f64 / elapsed.as_secs_f64().max(1e-9),
        stats: fold_stats(&snapshots),
        server: fold_server_stats(&server_stats),
        latency,
    };
    PoolRun { servers, tokens: compiled.tokens, sessions: compiled.sessions, telemetry, report }
}

/// Asserts two runs of the **same population and net seed** at different reactor counts are
/// observably identical: element-wise equal per-connection response streams for every token,
/// and a balanced session ledger (`opened − closed − torn down == still open`) on both sides.
/// The transport-level determinism argument of the multi-reactor design — and the gate
/// `report_serve` runs before timing `transport_rows`.
///
/// # Panics
///
/// Panics (with the offending token) when any connection's stream differs, or when either
/// run's ledger does not balance.
pub fn assert_equivalent(base: &PoolRun, other: &PoolRun) {
    assert_eq!(base.tokens, other.tokens, "same population must mint the same tokens");
    for &token in &base.tokens {
        let expected = base.received_text(token);
        let actual = other.received_text(token);
        assert_eq!(
            expected, actual,
            "connection {token:?} diverged between reactors={} and reactors={}",
            base.report.reactors, other.report.reactors
        );
    }
    for run in [base, other] {
        let open: usize = run.servers.iter().map(|s| s.frontend().open_sessions()).sum();
        let stats = &run.report.stats;
        // Opens that produced a session: tenants whose `open` was answered. Every one is
        // either still open at drain, explicitly closed, or torn down with its connection.
        assert_eq!(
            stats.open_sessions, open,
            "folded open_sessions must match the shards at drain (reactors={})",
            run.report.reactors
        );
    }
}
