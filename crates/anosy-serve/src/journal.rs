//! The append-only synthesis journal (durability between snapshots).
//!
//! A warm-start snapshot (the `persist` module) only captures the cache at the moment somebody
//! called `SaveCache` — a crash between saves silently forgets every synthesis since, and with
//! it the knowledge bound the deployment owes its tenants. The journal closes that window:
//! every entry the single-flight synthesis path commits is **appended as it lands** (via the
//! shared cache's commit observer), so a warm restart is *snapshot load + journal replay* and
//! re-synthesizes nothing it already served.
//!
//! # Format
//!
//! `anosy-synth-journal v1` is the same line-oriented text family as the snapshot format, with
//! one extra layer: per-record length/checksum framing, because an append-only file can be cut
//! mid-write (a torn final record) where a temp-file-plus-rename snapshot cannot:
//!
//! ```text
//! anosy-synth-journal v1 domain=interval
//! record len=214 sum=91a0c2f7b3d45e68
//! entry kind=under members=-
//! layout x:0:400 y:0:400
//! pred ((abs((v0 - 200)) + abs((v1 - 200))) <= 100)
//! truthy 121..279,179..221
//! falsy 0..400,0..99
//! end
//! record len=...
//! ```
//!
//! Each `record` line announces the exact byte length of the six-line entry body that follows
//! (the body is byte-for-byte the snapshot format's entry unit) and its FNV-1a 64 checksum in
//! hex. Replay walks records front to back; the first record whose framing, checksum or body
//! fails to decode ends the replay — everything before it is the *good prefix*, everything
//! from it on is truncated away and counted as torn. Entries that cannot be encoded
//! faithfully are skipped on append with the same rule the snapshot save uses, so journal and
//! snapshot always agree on what is persistable.
//!
//! # Flush policies
//!
//! [`FlushPolicy`] trades write syscalls against the crash window: `every-entry` hands each
//! record to the OS as it is appended (a killed process loses nothing), `every-N` amortizes
//! appends N records at a time, and `on-tick` defers to the server's tick boundary (cheapest;
//! at most one tick of synthesis is at risk). Flushing pushes bytes to the OS — it survives a
//! killed *process*; only compaction's snapshot (`sync_all` + rename) is also hardened
//! against a host crash.
//!
//! # Compaction
//!
//! [`Journal::compact_with`] folds the journal back into a snapshot *while traffic continues*:
//! it locks the journal (appends briefly queue), snapshots the cache through the caller's
//! export closure, writes the snapshot with the usual temp-file-plus-rename, then atomically
//! replaces the journal with a fresh header-only file. The lock ordering is the correctness
//! argument: the cache publishes an entry *before* its observer appends, so any entry already
//! journaled when the lock is taken is also in the exported snapshot, and a commit racing the
//! compaction appends to the *truncated* journal (possibly duplicating the snapshot — replay
//! tolerates duplicates, the in-memory entry wins). No entry is ever lost and nothing stops
//! the world.

use crate::persist;
use crate::ServeError;
use anosy_core::SharedCacheEntry;
use anosy_domains::AbstractDomain;
use anosy_synth::DomainCodec;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Magic prefix of the journal file; the version is bumped on any incompatible format change.
const HEADER_PREFIX: &str = "anosy-synth-journal v1 domain=";

/// When appended records are pushed from the process to the OS (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushPolicy {
    /// Flush after every appended record (`every-entry`): a killed process loses nothing.
    EveryEntry,
    /// Flush **and `fsync`** after every appended record (`every-entry-fsync`): a killed
    /// process *or a crashed host* loses nothing. The other rungs only push records to the
    /// OS page cache, which a power cut still eats; this one pays a `sync_data` per append
    /// for host-crash durability.
    EveryEntryFsync,
    /// Flush once `N` records are pending (`every-N`, e.g. `every-8`): at most `N - 1`
    /// records are at risk.
    EveryN(u64),
    /// Flush at server tick boundaries (`on-tick`): at most one tick of synthesis is at risk.
    OnTick,
}

impl FlushPolicy {
    /// Parses the wire/CLI form: `every-entry`, `every-entry-fsync`, `every-<N>` (N ≥ 1) or
    /// `on-tick`.
    pub fn parse(text: &str) -> Option<FlushPolicy> {
        match text {
            "every-entry" => Some(FlushPolicy::EveryEntry),
            "every-entry-fsync" => Some(FlushPolicy::EveryEntryFsync),
            "on-tick" => Some(FlushPolicy::OnTick),
            other => {
                let n: u64 = other.strip_prefix("every-")?.parse().ok()?;
                if n == 0 {
                    None
                } else {
                    Some(FlushPolicy::EveryN(n))
                }
            }
        }
    }
}

impl fmt::Display for FlushPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlushPolicy::EveryEntry => write!(f, "every-entry"),
            FlushPolicy::EveryEntryFsync => write!(f, "every-entry-fsync"),
            FlushPolicy::EveryN(n) => write!(f, "every-{n}"),
            FlushPolicy::OnTick => write!(f, "on-tick"),
        }
    }
}

/// Configuration of a deployment's journal (the `--journal* --compact-every` surface of
/// `anosy-served`, carried on [`crate::ServeConfig::journal`]).
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// The journal file. The compaction snapshot lives next to it at
    /// [`JournalConfig::snapshot_path`].
    pub path: PathBuf,
    /// When appended records reach the OS.
    pub flush: FlushPolicy,
    /// Compact every `N` server ticks (`None`: only on explicit `SaveCache` requests to the
    /// snapshot path).
    pub compact_every: Option<u64>,
}

impl JournalConfig {
    /// A journal at `path` with the safest flush policy (`every-entry`) and no periodic
    /// compaction.
    pub fn new(path: impl Into<PathBuf>) -> JournalConfig {
        JournalConfig { path: path.into(), flush: FlushPolicy::EveryEntry, compact_every: None }
    }

    /// Overrides the flush policy.
    pub fn with_flush(mut self, flush: FlushPolicy) -> JournalConfig {
        self.flush = flush;
        self
    }

    /// Compact every `ticks` server ticks (clamped to at least one).
    pub fn with_compact_every(mut self, ticks: u64) -> JournalConfig {
        self.compact_every = Some(ticks.max(1));
        self
    }

    /// Where the compaction snapshot (and warm-restart load) lives: the journal path with a
    /// `.snapshot` suffix appended.
    pub fn snapshot_path(&self) -> PathBuf {
        let mut os = self.path.clone().into_os_string();
        os.push(".snapshot");
        PathBuf::from(os)
    }
}

/// Point-in-time journal counters (the `journal=appended:compacted:replayed:torn` token of the
/// wire stats line).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Records appended since this process opened the journal.
    pub appended: u64,
    /// Records folded into a snapshot and truncated away by compactions.
    pub compacted: u64,
    /// Records replayed from the journal at recovery.
    pub replayed: u64,
    /// Torn/corrupt tails truncated away (at recovery, and by fault-injection tests).
    pub torn: u64,
}

/// What [`Journal::compact_with`] accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactOutcome {
    /// The snapshot save (written + skipped entry counts).
    pub snapshot: persist::SaveOutcome,
    /// Journal records truncated away (now covered by the snapshot).
    pub truncated: u64,
}

/// FNV-1a 64 over the record body — cheap, dependency-free, and plenty to reject a torn or
/// bit-flipped record (this is corruption *detection* on a trusted file, not authentication).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The parsed-out good prefix of a journal file (see [`scan`]).
struct Scan<D: AbstractDomain> {
    /// Entries decoded from intact records, in append order.
    entries: Vec<SharedCacheEntry<D>>,
    /// Byte length of the good prefix (header + intact records); everything past it is torn.
    good_len: u64,
    /// `1` when a torn/corrupt tail was found past the good prefix, else `0`.
    torn: u64,
}

/// Walks the journal bytes front to back, decoding intact records and stopping at the first
/// torn or corrupt one (module docs). Never panics on any byte sequence; the only errors are
/// I/O and a *well-formed* header naming the wrong domain (silently ignoring another
/// deployment's journal would be an operator trap, not tolerance).
fn scan<D: DomainCodec>(bytes: &[u8]) -> Result<Scan<D>, ServeError> {
    let mut scan = Scan { entries: Vec::new(), good_len: 0, torn: 0 };
    if bytes.is_empty() {
        return Ok(scan); // a fresh (or never-written) journal
    }
    // The header must be an intact line; a torn header means no good prefix at all.
    let Some(header_end) = bytes.iter().position(|&b| b == b'\n') else {
        scan.torn = 1;
        return Ok(scan);
    };
    let Ok(header) = std::str::from_utf8(&bytes[..header_end]) else {
        scan.torn = 1;
        return Ok(scan);
    };
    let Some(domain) = header.strip_prefix(HEADER_PREFIX) else {
        scan.torn = 1;
        return Ok(scan);
    };
    if domain != D::TAG {
        return Err(ServeError::Format {
            line: 1,
            reason: format!("journal is for domain `{domain}`, deployment uses `{}`", D::TAG),
        });
    }
    scan.good_len = (header_end + 1) as u64;

    let mut at = header_end + 1;
    while at < bytes.len() {
        // Frame line: `record len=<bytes> sum=<hex64>`.
        let Some(line_end) = bytes[at..].iter().position(|&b| b == b'\n').map(|p| at + p) else {
            scan.torn = 1;
            break;
        };
        let frame = match std::str::from_utf8(&bytes[at..line_end]) {
            Ok(frame) => frame,
            Err(_) => {
                scan.torn = 1;
                break;
            }
        };
        let parsed = frame.strip_prefix("record len=").and_then(|rest| {
            let (len, sum) = rest.split_once(" sum=")?;
            Some((len.parse::<usize>().ok()?, u64::from_str_radix(sum, 16).ok()?))
        });
        let Some((len, sum)) = parsed else {
            scan.torn = 1;
            break;
        };
        let body_start = line_end + 1;
        let Some(body_end) = body_start.checked_add(len).filter(|&end| end <= bytes.len()) else {
            scan.torn = 1;
            break;
        };
        let body = &bytes[body_start..body_end];
        if fnv1a(body) != sum {
            scan.torn = 1;
            break;
        }
        let Ok(body) = std::str::from_utf8(body) else {
            scan.torn = 1;
            break;
        };
        let Ok(entry) = persist::parse_entry::<D>(body) else {
            scan.torn = 1;
            break;
        };
        scan.entries.push(entry);
        scan.good_len = body_end as u64;
        at = body_end;
    }
    Ok(scan)
}

/// Replays a journal file without opening it for append: the decoded good-prefix entries plus
/// the torn-tail count (`0` or `1`). A missing file replays empty. Fault-injection tests use
/// this directly; deployments recover through [`Journal::recover`], which also truncates the
/// torn tail and keeps the file open for appending.
///
/// # Errors
///
/// Returns [`ServeError::Io`] on filesystem failures and [`ServeError::Format`] when an intact
/// header names a different domain. Corruption is never an error — it bounds the good prefix.
pub fn replay<D: DomainCodec>(path: &Path) -> Result<(Vec<SharedCacheEntry<D>>, u64), ServeError> {
    if !path.exists() {
        return Ok((Vec::new(), 0));
    }
    let bytes = std::fs::read(path)?;
    let scan = scan::<D>(&bytes)?;
    Ok((scan.entries, scan.torn))
}

struct Writer {
    file: BufWriter<File>,
    /// Records appended since the last flush (drives [`FlushPolicy::EveryN`]).
    pending: u64,
    /// Records currently in the file (replayed good prefix + appends); what a compaction
    /// truncates away.
    records: u64,
}

/// What [`Journal::recover`] found on disk before opening the journal for appending.
pub struct Recovered<D: AbstractDomain> {
    /// The journal, open for appending after the good prefix.
    pub journal: Journal<D>,
    /// The good-prefix entries, in append order (install these into the cache).
    pub entries: Vec<SharedCacheEntry<D>>,
    /// `1` when a torn/corrupt tail was truncated away.
    pub torn: u64,
}

/// An open append-only journal (see the [module docs](self)). Shared behind an `Arc` by every
/// handle of a deployment; appends, flushes and compactions serialize on an internal lock.
pub struct Journal<D: AbstractDomain> {
    config: JournalConfig,
    writer: Mutex<Writer>,
    appended: AtomicU64,
    compacted: AtomicU64,
    replayed: AtomicU64,
    torn: AtomicU64,
    ticks: AtomicU64,
    fsyncs: AtomicU64,
    _domain: std::marker::PhantomData<fn() -> D>,
}

impl<D: AbstractDomain> fmt::Debug for Journal<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.config.path)
            .field("flush", &self.config.flush)
            .field("stats", &self.stats())
            .finish()
    }
}

impl<D: DomainCodec> Journal<D> {
    /// Opens (or creates) the journal at `config.path`: replays the good prefix, truncates any
    /// torn tail away, and leaves the file open for appending. The replayed entries are
    /// returned for the caller to install (the deployment composes them with the snapshot load
    /// and `--verify-on-load`); `stats().replayed`/`stats().torn` record what happened.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] on filesystem failures and [`ServeError::Format`] for a
    /// journal of the wrong domain.
    pub fn recover(config: JournalConfig) -> Result<Recovered<D>, ServeError> {
        let _span = anosy_telemetry::span("journal.replay");
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&config.path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let scan = scan::<D>(&bytes)?;
        if scan.torn > 0 || bytes.is_empty() {
            // Truncate the torn tail (or materialize the header of a fresh journal) so the
            // next append lands right after the good prefix.
            file.set_len(scan.good_len)?;
        }
        file.seek(SeekFrom::Start(scan.good_len))?;
        let mut writer = BufWriter::new(file);
        if scan.good_len == 0 {
            // A fresh journal — or one whose very header was torn away — needs its header
            // (re)written before the first record can land.
            writer.write_all(format!("{HEADER_PREFIX}{}\n", D::TAG).as_bytes())?;
            writer.flush()?;
        }
        anosy_telemetry::count("journal.replayed", scan.entries.len() as u64);
        anosy_telemetry::count("journal.torn", scan.torn);
        let journal = Journal {
            writer: Mutex::new(Writer {
                file: writer,
                pending: 0,
                records: scan.entries.len() as u64,
            }),
            appended: AtomicU64::new(0),
            compacted: AtomicU64::new(0),
            replayed: AtomicU64::new(scan.entries.len() as u64),
            torn: AtomicU64::new(scan.torn),
            ticks: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            config,
            _domain: std::marker::PhantomData,
        };
        Ok(Recovered { journal, entries: scan.entries, torn: scan.torn })
    }

    /// Appends one committed entry as a framed record, flushing per the configured policy.
    /// Entries the text encoding cannot represent faithfully are skipped — exactly the
    /// entries a snapshot save would skip, so journal and snapshot never disagree.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] on filesystem failures.
    pub fn append(&self, entry: &SharedCacheEntry<D>) -> Result<(), ServeError> {
        let Some(body) = persist::encode_entry(entry) else { return Ok(()) };
        let _span = anosy_telemetry::span("journal.append");
        let frame = format!("record len={} sum={:016x}\n", body.len(), fnv1a(body.as_bytes()));
        let mut writer = lock(&self.writer);
        writer.file.write_all(frame.as_bytes())?;
        writer.file.write_all(body.as_bytes())?;
        writer.pending += 1;
        writer.records += 1;
        let flush = match self.config.flush {
            FlushPolicy::EveryEntry | FlushPolicy::EveryEntryFsync => true,
            FlushPolicy::EveryN(n) => writer.pending >= n,
            FlushPolicy::OnTick => false,
        };
        if flush {
            writer.file.flush()?;
            writer.pending = 0;
            if self.config.flush == FlushPolicy::EveryEntryFsync {
                // `flush` only moved the record into the OS page cache; `sync_data` pins it
                // to stable storage before the append reports success.
                writer.file.get_ref().sync_data()?;
                self.fsyncs.fetch_add(1, Ordering::Relaxed);
            }
        }
        drop(writer);
        self.appended.fetch_add(1, Ordering::Relaxed);
        anosy_telemetry::count("journal.appended", 1);
        Ok(())
    }

    /// Pushes any buffered records to the OS regardless of policy (exit paths, tests).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] on filesystem failures.
    pub fn flush(&self) -> Result<(), ServeError> {
        let mut writer = lock(&self.writer);
        writer.file.flush()?;
        writer.pending = 0;
        Ok(())
    }

    /// A server tick happened: flush under the `on-tick` policy, and report whether a
    /// periodic compaction is now due (`compact_every` ticks have elapsed). The caller (the
    /// deployment) runs the compaction, because only it can export the cache.
    pub fn note_tick(&self) -> bool {
        if self.config.flush == FlushPolicy::OnTick {
            // A flush failure here must not take the reactor down mid-tick; the next append
            // or the exit-path flush will surface the error.
            let _ = self.flush();
        }
        match self.config.compact_every {
            Some(every) => (self.ticks.fetch_add(1, Ordering::Relaxed) + 1).is_multiple_of(every),
            None => {
                self.ticks.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Compacts the journal into a snapshot at [`JournalConfig::snapshot_path`] while traffic
    /// continues: locks the journal, snapshots the cache via `export` (see the module docs for
    /// why this ordering never loses an entry), writes the snapshot atomically, then truncates
    /// the journal back to its header.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] on filesystem failures. The journal is truncated only after
    /// the snapshot has been renamed into place, so a failed compaction leaves the journal
    /// intact.
    pub fn compact_with(
        &self,
        export: impl FnOnce() -> Vec<SharedCacheEntry<D>>,
    ) -> Result<CompactOutcome, ServeError> {
        let _span = anosy_telemetry::span("journal.compact");
        let mut writer = lock(&self.writer);
        let entries = export();
        let snapshot = persist::save_entries(&self.config.snapshot_path(), &entries)?;
        // Atomically replace the journal with a fresh header-only file, then re-point the
        // append handle at it.
        let tmp = self.config.path.with_extension("tmp");
        {
            let mut file = File::create(&tmp)?;
            file.write_all(format!("{HEADER_PREFIX}{}\n", D::TAG).as_bytes())?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, &self.config.path)?;
        let mut file = OpenOptions::new().write(true).open(&self.config.path)?;
        file.seek(SeekFrom::End(0))?;
        let truncated = writer.records;
        *writer = Writer { file: BufWriter::new(file), pending: 0, records: 0 };
        drop(writer);
        self.compacted.fetch_add(truncated, Ordering::Relaxed);
        anosy_telemetry::count("journal.compacted", truncated);
        Ok(CompactOutcome { snapshot, truncated })
    }
}

impl<D: AbstractDomain> Journal<D> {
    /// The configuration this journal runs with.
    pub fn config(&self) -> &JournalConfig {
        &self.config
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> JournalStats {
        JournalStats {
            appended: self.appended.load(Ordering::Relaxed),
            compacted: self.compacted.load(Ordering::Relaxed),
            replayed: self.replayed.load(Ordering::Relaxed),
            torn: self.torn.load(Ordering::Relaxed),
        }
    }

    /// `sync_data` calls issued so far — non-zero only under
    /// [`FlushPolicy::EveryEntryFsync`], where it equals the flushed append count (the
    /// durability test's witness that every append reached stable storage).
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.load(Ordering::Relaxed)
    }
}

impl<D: AbstractDomain> Drop for Journal<D> {
    fn drop(&mut self) {
        // Best-effort exit flush: buffered `every-N`/`on-tick` records should not be lost to a
        // *clean* shutdown (a killed process is what the flush policy already priced in).
        if let Ok(mut writer) = self.writer.lock() {
            let _ = writer.file.flush();
        }
    }
}

/// Journal state must survive a panicking appender (the poison flag carries no meaning here —
/// every critical section leaves the writer consistent).
fn lock(writer: &Mutex<Writer>) -> std::sync::MutexGuard<'_, Writer> {
    writer.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anosy_domains::{AInt, IntervalDomain};
    use anosy_logic::{IntExpr, SecretLayout};
    use anosy_synth::{ApproxKind, IndSets};

    fn layout() -> SecretLayout {
        SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build()
    }

    fn entry(xo: i64) -> SharedCacheEntry<IntervalDomain> {
        let pred = ((IntExpr::var(0) - xo).abs() + (IntExpr::var(1) - 200).abs()).le(100);
        SharedCacheEntry {
            pred,
            layout: layout(),
            kind: ApproxKind::Under,
            members: None,
            indsets: IndSets::new(
                ApproxKind::Under,
                IntervalDomain::from_intervals(vec![AInt::new(121, 279), AInt::new(179, 221)]),
                IntervalDomain::from_intervals(vec![AInt::new(0, 400), AInt::new(0, 99)]),
            ),
        }
    }

    fn tmp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("anosy-serve-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(JournalConfig::new(&path).snapshot_path());
        path
    }

    fn recover(path: &Path, flush: FlushPolicy) -> Recovered<IntervalDomain> {
        Journal::recover(JournalConfig::new(path).with_flush(flush)).unwrap()
    }

    #[test]
    fn append_then_recover_round_trips() {
        let path = tmp_path("round_trip.journal");
        let first = recover(&path, FlushPolicy::EveryEntry);
        assert!(first.entries.is_empty());
        first.journal.append(&entry(200)).unwrap();
        first.journal.append(&entry(300)).unwrap();
        assert_eq!(first.journal.stats().appended, 2);
        drop(first);

        let second = recover(&path, FlushPolicy::EveryEntry);
        assert_eq!(second.entries.len(), 2);
        assert_eq!(second.torn, 0);
        assert_eq!(second.journal.stats().replayed, 2);
        for (a, b) in [entry(200), entry(300)].iter().zip(&second.entries) {
            assert_eq!(a.pred, b.pred);
            assert_eq!(a.indsets, b.indsets);
        }
    }

    #[test]
    fn flush_policies_gate_when_bytes_reach_the_os() {
        let path = tmp_path("flush_policy.journal");
        let r = recover(&path, FlushPolicy::EveryN(2));
        let header_only = std::fs::metadata(&path).unwrap().len();
        r.journal.append(&entry(200)).unwrap();
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            header_only,
            "one pending record under every-2 stays buffered"
        );
        r.journal.append(&entry(300)).unwrap();
        assert!(std::fs::metadata(&path).unwrap().len() > header_only, "second append flushes");

        let path = tmp_path("flush_on_tick.journal");
        let r = recover(&path, FlushPolicy::OnTick);
        let header_only = std::fs::metadata(&path).unwrap().len();
        r.journal.append(&entry(200)).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), header_only);
        r.journal.note_tick();
        assert!(std::fs::metadata(&path).unwrap().len() > header_only, "tick flushes");
    }

    #[test]
    fn every_entry_fsync_reaches_sync_data_per_append() {
        let path = tmp_path("fsync_policy.journal");
        let r = recover(&path, FlushPolicy::EveryEntryFsync);
        assert_eq!(r.journal.fsyncs(), 0);
        r.journal.append(&entry(200)).unwrap();
        r.journal.append(&entry(300)).unwrap();
        assert_eq!(r.journal.stats().appended, 2);
        assert_eq!(r.journal.fsyncs(), 2, "every flushed append must reach sync_data");
        // Bytes are on disk (not just the page cache — but at minimum past the BufWriter).
        drop(r);
        let second = recover(&path, FlushPolicy::EveryEntryFsync);
        assert_eq!(second.entries.len(), 2);
        assert_eq!(second.torn, 0);

        // The other rungs never fsync.
        let path = tmp_path("no_fsync.journal");
        let r = recover(&path, FlushPolicy::EveryEntry);
        r.journal.append(&entry(200)).unwrap();
        assert_eq!(r.journal.fsyncs(), 0);
    }

    #[test]
    fn torn_tail_truncates_to_last_good_record() {
        let path = tmp_path("torn.journal");
        let r = recover(&path, FlushPolicy::EveryEntry);
        r.journal.append(&entry(200)).unwrap();
        r.journal.append(&entry(300)).unwrap();
        drop(r);
        // Simulate a crash mid-append: cut the file inside the final record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

        let r = recover(&path, FlushPolicy::EveryEntry);
        assert_eq!(r.entries.len(), 1, "the torn final record is dropped");
        assert_eq!(r.torn, 1);
        // The truncation repaired the file: appending works and a fresh recovery is clean.
        r.journal.append(&entry(300)).unwrap();
        drop(r);
        let r = recover(&path, FlushPolicy::EveryEntry);
        assert_eq!((r.entries.len(), r.torn), (2, 0));
    }

    #[test]
    fn wrong_domain_is_an_error_not_tolerance() {
        let path = tmp_path("wrong_domain.journal");
        let r = recover(&path, FlushPolicy::EveryEntry);
        r.journal.append(&entry(200)).unwrap();
        drop(r);
        let err = Journal::<anosy_domains::PowersetDomain>::recover(JournalConfig::new(&path));
        assert!(matches!(err, Err(ServeError::Format { line: 1, .. })));
    }

    #[test]
    fn compaction_moves_records_into_the_snapshot() {
        let path = tmp_path("compact.journal");
        let r = recover(&path, FlushPolicy::EveryEntry);
        r.journal.append(&entry(200)).unwrap();
        r.journal.append(&entry(300)).unwrap();
        let outcome = r.journal.compact_with(|| vec![entry(200), entry(300)]).unwrap();
        assert_eq!(outcome.truncated, 2);
        assert_eq!(outcome.snapshot.written, 2);
        // Journal is back to header-only; appends keep working after the handle swap.
        let (entries, torn) = replay::<IntervalDomain>(&path).unwrap();
        assert_eq!((entries.len(), torn), (0, 0));
        r.journal.append(&entry(250)).unwrap();
        assert_eq!(
            r.journal.stats(),
            JournalStats { appended: 3, compacted: 2, ..r.journal.stats() }
        );
        drop(r);
        // Snapshot + journal together hold all three entries.
        let config = JournalConfig::new(&path);
        let snapshot = persist::load_entries::<IntervalDomain>(&config.snapshot_path()).unwrap();
        let (journaled, _) = replay::<IntervalDomain>(&path).unwrap();
        assert_eq!(snapshot.len() + journaled.len(), 3);
    }

    #[test]
    fn flush_policy_parse_display_round_trips() {
        for text in ["every-entry", "every-entry-fsync", "every-8", "on-tick"] {
            assert_eq!(FlushPolicy::parse(text).unwrap().to_string(), text);
        }
        assert_eq!(FlushPolicy::parse("every-0"), None);
        assert_eq!(FlushPolicy::parse("sometimes"), None);
        assert_eq!(FlushPolicy::parse("every-"), None);
    }

    #[test]
    fn note_tick_schedules_periodic_compaction() {
        let path = tmp_path("tick_compaction.journal");
        let config =
            JournalConfig::new(&path).with_flush(FlushPolicy::OnTick).with_compact_every(3);
        let r = Journal::<IntervalDomain>::recover(config).unwrap();
        let due: Vec<bool> = (0..7).map(|_| r.journal.note_tick()).collect();
        assert_eq!(due, vec![false, false, true, false, false, true, false]);
    }
}
