//! The deployment: one shared store + synthesis cache, one worker pool, many sessions.

use crate::journal::{CompactOutcome, Journal, JournalStats};
use crate::persist::SaveOutcome;
use crate::{batch, parallel, persist, ServeConfig, ServeError, ShardPool, Sharded};
use anosy_core::{
    AnosyError, AnosySession, Policy, SharedCacheEntry, SharedCacheStats, SharedSynthCache,
    SynthesizeInto,
};
use anosy_domains::AbstractDomain;
use anosy_logic::{IntBox, Point, Pred, SecretLayout, StoreStats, TermStore};
use anosy_solver::{SolverConfig, SolverError, ValidityOutcome};
use anosy_synth::{ApproxKind, DomainCodec, QueryDef, Synthesizer};
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// What a [`Deployment::warm_start_verified`] load accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmStartOutcome {
    /// Entries that re-verified and were installed into the synthesis cache.
    pub installed: usize,
    /// Entries that failed re-verification (or were malformed) and were refused.
    pub skipped: usize,
}

/// What [`Deployment::open_journal`] recovered at warm restart (snapshot load + journal
/// replay; see [`crate::journal`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// The compaction snapshot load (installed + verify-skipped entry counts).
    pub snapshot: WarmStartOutcome,
    /// Intact records replayed from the journal's good prefix.
    pub replayed: usize,
    /// Replayed records refused by `--verify-on-load` re-verification.
    pub replay_skipped: usize,
    /// `1` when a torn/corrupt journal tail was truncated away, else `0`.
    pub torn: u64,
}

/// A point-in-time view of a deployment's aggregate serving counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// The shared-cache aggregates (synthesis hits/misses, downgrade outcomes, sessions).
    pub cache: SharedCacheStats,
    /// Distinct synthesized entries currently cached.
    pub entries: usize,
    /// Worker threads in the shard pool.
    pub workers: usize,
}

impl ServeStats {
    /// Renders the stats as a small JSON object (the report binaries' format; the workspace
    /// carries no serde).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"workers\": {}, \"entries\": {}, \"sessions\": {}, \"sessions_closed\": {}, ",
                "\"synth_hits\": {}, \"synth_misses\": {}, \"warm_loaded\": {}, ",
                "\"downgrades_authorized\": {}, \"downgrades_refused\": {}}}"
            ),
            self.workers,
            self.entries,
            self.cache.sessions_opened,
            self.cache.sessions_closed,
            self.cache.synth_hits,
            self.cache.synth_misses,
            self.cache.warm_loaded,
            self.cache.downgrades_authorized,
            self.cache.downgrades_refused,
        )
    }
}

impl fmt::Display for ServeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} workers, {} cached entries; {}", self.workers, self.entries, self.cache)
    }
}

/// A serving deployment (see the [crate docs](crate) for the model):
///
/// * owns the [`SharedSynthCache`] every session of the deployment registers through — N
///   sessions registering the same query set synthesize once per *deployment*;
/// * owns the fixed [`ShardPool`] the batched-downgrade and parallel-solver drivers shard
///   across;
/// * loads and saves the warm-start synthesis cache.
#[derive(Debug)]
pub struct Deployment<D: AbstractDomain> {
    layout: SecretLayout,
    config: ServeConfig,
    shared: SharedSynthCache<D>,
    pool: Arc<ShardPool>,
    /// The append-only synthesis journal, once [`Deployment::open_journal`] attached it.
    /// Shared (like the cache and pool) so every [`Deployment::share`] handle — one per
    /// reactor shard — appends to, flushes and compacts the same journal.
    journal: Arc<OnceLock<Journal<D>>>,
    /// Entries skipped as unencodable across every [`Deployment::save_cache`] of this
    /// deployment (the `saves_skipped` token of the wire stats line).
    saves_skipped: Arc<AtomicU64>,
}

impl<D: AbstractDomain> Deployment<D> {
    /// Creates a deployment serving secrets of `layout`.
    pub fn new(layout: SecretLayout, config: ServeConfig) -> Self {
        let pool = Arc::new(ShardPool::new(config.workers));
        let store = match config.box_memo_min_depth {
            Some(depth) => TermStore::with_min_memo_depth(depth),
            None => TermStore::new(),
        };
        Deployment {
            layout,
            config,
            shared: SharedSynthCache::with_store(store),
            pool,
            journal: Arc::new(OnceLock::new()),
            saves_skipped: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Another handle onto the *same* deployment: the shared store + synthesis cache, the
    /// worker pool and the aggregate counters are all one underlying object, only the handle is
    /// new. This is how a [`crate::ReactorPool`] gives each reactor shard its own
    /// [`crate::Frontend`] while every shard registers, synthesizes and accounts against one
    /// deployment — the single-flight cache makes cross-shard synthesis race-free.
    pub fn share(&self) -> Deployment<D> {
        Deployment {
            layout: self.layout.clone(),
            config: self.config.clone(),
            shared: self.shared.clone(),
            pool: Arc::clone(&self.pool),
            journal: Arc::clone(&self.journal),
            saves_skipped: Arc::clone(&self.saves_skipped),
        }
    }

    /// The secret layout this deployment serves.
    pub fn layout(&self) -> &SecretLayout {
        &self.layout
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The deployment's worker pool (for custom sharded drivers).
    pub fn pool(&self) -> &ShardPool {
        &self.pool
    }

    /// The shared store + synthesis cache handle (cheap to clone; hand it to sessions created
    /// outside [`Deployment::session`] if needed).
    pub fn shared(&self) -> &SharedSynthCache<D> {
        &self.shared
    }

    /// Aggregate serving counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            cache: self.shared.stats(),
            entries: self.shared.len(),
            workers: self.pool.workers(),
        }
    }

    /// Hit/miss counters of the shared term store.
    pub fn store_stats(&self) -> StoreStats {
        self.shared.store_stats()
    }

    /// The journal counters (`appended:compacted:replayed:torn` on the wire stats line);
    /// all-zero when no journal is attached.
    pub fn journal_stats(&self) -> JournalStats {
        self.journal.get().map(Journal::stats).unwrap_or_default()
    }

    /// Entries skipped as unencodable across every [`Deployment::save_cache`] so far.
    pub fn saves_skipped(&self) -> u64 {
        self.saves_skipped.load(Ordering::Relaxed)
    }

    /// Opens a session against this deployment: it shares the deployment's store and synthesis
    /// cache, and its downgrade outcomes fold into the deployment aggregates.
    pub fn session(&self, policy: impl Policy<D> + Send + Sync + 'static) -> AnosySession<D> {
        AnosySession::with_shared(self.layout.clone(), policy, self.shared.clone())
    }

    /// Downgrades a batch of secrets against one registered query of `session`, sharding the
    /// policy/posterior decisions across the deployment pool. Results (and the session's
    /// post-state) are identical to the sequential per-call loop.
    pub fn downgrade_batch(
        &self,
        session: &mut AnosySession<D>,
        secrets: &[Point],
        query_name: &str,
    ) -> Vec<Result<bool, AnosyError>>
    where
        D: Send + Sync + 'static,
    {
        batch::downgrade_batch(&self.pool, session, secrets, query_name)
    }

    /// Downgrades several sessions' batches in one pooled decision phase — the fused
    /// cross-session variant of [`Deployment::downgrade_batch`]; results and post-state per
    /// group are identical to one `downgrade_batch` call per group, in order (see
    /// [`batch::downgrade_batch_fused`]).
    pub fn downgrade_batch_fused(
        &self,
        groups: &mut [batch::FusedGroup<'_, D>],
    ) -> Vec<Vec<Result<bool, AnosyError>>>
    where
        D: Send + Sync + 'static,
    {
        batch::downgrade_batch_fused(&self.pool, groups)
    }

    /// Downgrades one secret against a query set, in order (see
    /// [`batch::downgrade_many`]).
    pub fn downgrade_many(
        &self,
        session: &mut AnosySession<D>,
        secret: &Point,
        query_names: &[&str],
    ) -> Vec<Result<bool, AnosyError>> {
        batch::downgrade_many(session, secret, query_names)
    }

    /// Counts the models of `pred` in `space` with the sharded parallel driver (identical to the
    /// sequential count; see [`parallel::par_count_models`]).
    ///
    /// # Errors
    ///
    /// Propagates the first shard's [`SolverError`].
    pub fn par_count_models(
        &self,
        pred: &Pred,
        space: &IntBox,
    ) -> Result<Sharded<u128>, SolverError> {
        parallel::par_count_models(&self.pool, self.config.solver(), pred, space)
    }

    /// Sharded validity check (identical outcome to the sequential procedure).
    ///
    /// # Errors
    ///
    /// Propagates the first shard's [`SolverError`].
    pub fn par_check_validity(
        &self,
        pred: &Pred,
        space: &IntBox,
    ) -> Result<Sharded<ValidityOutcome>, SolverError> {
        parallel::par_check_validity(&self.pool, self.config.solver(), pred, space)
    }
}

impl<D: AbstractDomain + SynthesizeInto> Deployment<D> {
    /// Pre-warms the shared cache with one query: synthesizes and verifies it now (once per
    /// deployment) so that every subsequent session registration is a pure cache hit. Safe to
    /// call concurrently and repeatedly. Runs the same
    /// [`synthesize_and_verify`](anosy_core::synthesize_and_verify) pipeline — including the
    /// verifier's default solver budget — that a session registration would, so a `(query,
    /// kind, members)` key verifies identically no matter which entry point races into the
    /// single-flight slot.
    ///
    /// # Errors
    ///
    /// Propagates synthesis, verification and solver failures (as [`ServeError::Anosy`]).
    pub fn register_query(
        &self,
        query: &QueryDef,
        kind: ApproxKind,
        members: Option<usize>,
    ) -> Result<(), ServeError> {
        self.shared.get_or_synthesize(query, kind, members, || {
            // Constructed only on an actual miss: warm hits stay allocation-free.
            let mut synth = Synthesizer::with_config(self.config.synth.clone());
            anosy_core::synthesize_and_verify(
                &mut synth,
                query,
                kind,
                members,
                SolverConfig::default(),
            )
        })?;
        Ok(())
    }
}

impl<D: DomainCodec + 'static> Deployment<D> {
    /// Loads a warm-start synthesis cache saved by [`Deployment::save_cache`]. A missing file is
    /// a cold start (returns `Ok(0)`); a malformed file is an error the caller may choose to
    /// treat as cold. Returns how many entries were actually installed (already-cached keys keep
    /// their in-memory value).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] / [`ServeError::Format`] for unreadable or malformed files.
    pub fn warm_start(&self, path: &Path) -> Result<usize, ServeError> {
        if !path.exists() {
            return Ok(0);
        }
        let entries = persist::load_entries::<D>(path)?;
        Ok(self.install_entries(entries, false)?.installed)
    }

    /// Installs decoded entries into the shared cache — the one funnel under both the snapshot
    /// loads and the journal replay, so `--verify-on-load` applies identically to either
    /// provenance. With `verify` set, every entry's refinement obligations are re-checked with
    /// the solver first (see [`Deployment::warm_start_verified`]); already-cached keys are
    /// never re-installed (and, verified, never re-checked — the in-memory value wins).
    fn install_entries(
        &self,
        entries: Vec<SharedCacheEntry<D>>,
        verify: bool,
    ) -> Result<WarmStartOutcome, ServeError> {
        let mut outcome = WarmStartOutcome::default();
        if !verify {
            for entry in entries {
                if self.shared.insert_ready(entry) {
                    outcome.installed += 1;
                }
            }
            return Ok(outcome);
        }
        let mut verifier = anosy_verify::Verifier::with_config(self.config.solver().clone());
        for entry in entries {
            // The entry's provenance is untrusted, but its shape must still be a well-formed
            // query; a predicate outside the layout is a skip, not a crash.
            let Ok(query) = QueryDef::new("warm", entry.layout.clone(), entry.pred.clone()) else {
                outcome.skipped += 1;
                continue;
            };
            // An already-cached key would lose to the in-memory value either way, so don't pay
            // the solver re-verification (the dominant cost of this path) for it.
            if self.shared.contains(&query, entry.kind, entry.members) {
                continue;
            }
            if !verifier.verify_indsets(&query, &entry.indsets)?.is_verified() {
                outcome.skipped += 1;
                continue;
            }
            if self.shared.insert_ready(entry) {
                outcome.installed += 1;
            }
        }
        Ok(outcome)
    }

    /// [`Deployment::warm_start`] for caches of dubious provenance: every loaded entry's
    /// refinement obligations are **re-checked with the solver** (the same Fig. 4 specification
    /// a fresh synthesis would have to pass, under the deployment's solver budget) before the
    /// entry is installed. Entries that fail verification — or whose obligations cannot be
    /// decided within budget — are skipped and counted, never installed; entries whose key is
    /// already cached in memory are not re-installed (the in-memory value wins, as in the
    /// unverified path) and count toward neither total. A missing file is a cold start.
    ///
    /// This is the `--verify-on-load` path of `anosy-served` and `report_serve`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] / [`ServeError::Format`] for unreadable or malformed files,
    /// and [`ServeError::Solver`] if the solver itself fails (not merely exhausts its budget)
    /// on an obligation.
    pub fn warm_start_verified(&self, path: &Path) -> Result<WarmStartOutcome, ServeError> {
        if !path.exists() {
            return Ok(WarmStartOutcome::default());
        }
        let entries = persist::load_entries::<D>(path)?;
        self.install_entries(entries, true)
    }

    /// Dispatches between the trusted and verified warm-start paths behind one outcome type —
    /// the call every `verify`-flagged surface (the frontend's `WarmStart` request,
    /// `anosy-served --verify-on-load`, `report_serve --cache`) goes through, so the two paths
    /// cannot drift per caller.
    ///
    /// # Errors
    ///
    /// See [`Deployment::warm_start`] and [`Deployment::warm_start_verified`].
    pub fn warm_start_with(
        &self,
        path: &Path,
        verify: bool,
    ) -> Result<WarmStartOutcome, ServeError> {
        let _span = anosy_telemetry::span("warm_start");
        if verify {
            self.warm_start_verified(path)
        } else {
            self.warm_start(path).map(|installed| WarmStartOutcome { installed, skipped: 0 })
        }
    }

    /// Persists the current synthesis cache for the next process's [`Deployment::warm_start`],
    /// reporting written and (unencodable-)skipped entry counts. When a journal is attached and
    /// `path` is its snapshot path, this is a full **compaction** — the snapshot save plus an
    /// atomic journal truncation under the journal lock (see
    /// [`Journal::compact_with`]); saving to any other path leaves the journal alone, since
    /// truncating it against a snapshot the next recovery won't read would lose entries.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] on filesystem failures.
    pub fn save_cache(&self, path: &Path) -> Result<SaveOutcome, ServeError> {
        let _span = anosy_telemetry::span("save_cache");
        let outcome = match self.journal.get() {
            Some(journal) if path == journal.config().snapshot_path() => {
                journal.compact_with(|| self.shared.export_entries())?.snapshot
            }
            _ => persist::save_entries(path, &self.shared.export_entries())?,
        };
        self.saves_skipped.fetch_add(outcome.skipped as u64, Ordering::Relaxed);
        Ok(outcome)
    }

    /// Opens the configured journal ([`ServeConfig::journal`]) and performs the warm restart:
    /// loads the compaction snapshot, replays the journal's good prefix (truncating a torn
    /// tail), installs both through the same `verify`-respecting funnel as
    /// [`Deployment::warm_start_with`], and attaches a commit observer so every subsequently
    /// committed synthesis entry is appended as it lands. Returns `Ok(None)` when the config
    /// carries no journal. Call once per deployment, before serving traffic.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] / [`ServeError::Format`] for unreadable journals or a journal
    /// of the wrong domain, [`ServeError::Solver`] from `verify`, and [`ServeError::Format`]
    /// when a journal is already attached.
    pub fn open_journal(&self, verify: bool) -> Result<Option<RecoveryOutcome>, ServeError> {
        let Some(config) = self.config.journal.clone() else {
            return Ok(None);
        };
        let snapshot = self.warm_start_with(&config.snapshot_path(), verify)?;
        let recovered = Journal::recover(config)?;
        let replayed = recovered.entries.len();
        let installed = self.install_entries(recovered.entries, verify)?;
        if self.journal.set(recovered.journal).is_err() {
            return Err(ServeError::Format {
                line: 0,
                reason: "journal already attached to this deployment".into(),
            });
        }
        let journal = Arc::clone(&self.journal);
        self.shared.set_commit_observer(move |entry| {
            if let Some(journal) = journal.get() {
                if let Err(err) = journal.append(entry) {
                    // Losing durability must not take serving down; the operator sees the
                    // failure, answers keep flowing.
                    eprintln!("anosy-serve: journal append failed: {err}");
                }
            }
        });
        Ok(Some(RecoveryOutcome {
            snapshot,
            replayed,
            replay_skipped: installed.skipped,
            torn: recovered.torn,
        }))
    }

    /// A server tick happened: flushes under the `on-tick` policy and runs a periodic
    /// compaction when `compact_every` ticks have elapsed. No-op without a journal; reactors
    /// call this unconditionally from their tick path.
    pub fn journal_tick(&self) {
        let Some(journal) = self.journal.get() else { return };
        if journal.note_tick() {
            if let Err(err) = self.compact() {
                eprintln!("anosy-serve: journal compaction failed: {err}");
            }
        }
    }

    /// Compacts the attached journal into its snapshot while traffic continues (`Ok(None)`
    /// without a journal). Equivalent to [`Deployment::save_cache`] at the snapshot path.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] on filesystem failures; a failed compaction leaves the
    /// journal intact.
    pub fn compact(&self) -> Result<Option<CompactOutcome>, ServeError> {
        let Some(journal) = self.journal.get() else {
            return Ok(None);
        };
        let outcome = journal.compact_with(|| self.shared.export_entries())?;
        self.saves_skipped.fetch_add(outcome.snapshot.skipped as u64, Ordering::Relaxed);
        Ok(Some(outcome))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anosy_core::MinSizePolicy;
    use anosy_domains::IntervalDomain;
    use anosy_logic::IntExpr;

    fn layout() -> SecretLayout {
        SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build()
    }

    fn nearby_query(xo: i64) -> QueryDef {
        let pred = ((IntExpr::var(0) - xo).abs() + (IntExpr::var(1) - 200).abs()).le(100);
        QueryDef::new(format!("nearby_{xo}_200"), layout(), pred).unwrap()
    }

    #[test]
    fn deployment_sessions_share_one_synthesis() {
        let deployment: Deployment<IntervalDomain> =
            Deployment::new(layout(), ServeConfig::for_tests());
        deployment.register_query(&nearby_query(200), ApproxKind::Under, None).unwrap();
        assert_eq!(deployment.stats().cache.synth_misses, 1);

        let mut synth = Synthesizer::with_config(deployment.config().synth.clone());
        for _ in 0..3 {
            let mut session = deployment.session(MinSizePolicy::new(100));
            session
                .register_synthesized(&mut synth, &nearby_query(200), ApproxKind::Under, None)
                .unwrap();
            assert_eq!(session.stats().synth_cache_hits, 1);
        }
        assert_eq!(synth.solver_stats().nodes_explored, 0, "sessions did zero solver work");
        let stats = deployment.stats();
        assert_eq!(stats.cache.synth_misses, 1);
        assert_eq!(stats.cache.synth_hits, 3);
        assert_eq!(stats.cache.sessions_opened, 3);
        assert_eq!(stats.entries, 1);
        assert!(stats.to_string().contains("workers"));
        let json = stats.to_json();
        assert!(json.contains("\"synth_misses\": 1"));
        assert!(json.contains("\"sessions\": 3"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn warm_start_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("anosy-serve-deployment-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("warm_start.cache");
        let _ = std::fs::remove_file(&path);

        let first: Deployment<IntervalDomain> = Deployment::new(layout(), ServeConfig::for_tests());
        assert_eq!(first.warm_start(&path).unwrap(), 0, "missing file is a cold start");
        first.register_query(&nearby_query(200), ApproxKind::Under, None).unwrap();
        first.register_query(&nearby_query(300), ApproxKind::Over, None).unwrap();
        assert_eq!(first.save_cache(&path).unwrap(), crate::SaveOutcome { written: 2, skipped: 0 });

        // A restarted deployment loads the cache and performs no synthesis at all.
        let second: Deployment<IntervalDomain> =
            Deployment::new(layout(), ServeConfig::for_tests());
        assert_eq!(second.warm_start(&path).unwrap(), 2);
        second.register_query(&nearby_query(200), ApproxKind::Under, None).unwrap();
        second.register_query(&nearby_query(300), ApproxKind::Over, None).unwrap();
        let stats = second.stats();
        assert_eq!(stats.cache.warm_loaded, 2);
        assert_eq!(stats.cache.synth_misses, 0, "warm start must skip synthesis entirely");
        assert_eq!(stats.cache.synth_hits, 2);

        // The warm entries serve sessions with answers identical to fresh synthesis.
        let mut synth = Synthesizer::with_config(second.config().synth.clone());
        let mut warm_session = second.session(MinSizePolicy::new(100));
        warm_session
            .register_synthesized(&mut synth, &nearby_query(200), ApproxKind::Under, None)
            .unwrap();
        let mut cold_session = first.session(MinSizePolicy::new(100));
        cold_session
            .register_synthesized(&mut synth, &nearby_query(200), ApproxKind::Under, None)
            .unwrap();
        let secret = Point::new(vec![250, 200]);
        let warm = batch::downgrade_many(&mut warm_session, &secret, &["nearby_200_200"]);
        let cold = batch::downgrade_many(&mut cold_session, &secret, &["nearby_200_200"]);
        assert_eq!(warm, cold);
        assert_eq!(
            warm_session.knowledge_of(&secret).size(),
            cold_session.knowledge_of(&secret).size()
        );
    }

    #[test]
    fn verified_warm_start_installs_sound_entries_and_refuses_tampered_ones() {
        use anosy_core::SharedCacheEntry;
        use anosy_domains::AInt;
        use anosy_synth::IndSets;

        let dir = std::env::temp_dir().join("anosy-serve-deployment-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("warm_start_verified.cache");
        let _ = std::fs::remove_file(&path);

        let cold: Deployment<IntervalDomain> = Deployment::new(layout(), ServeConfig::for_tests());
        assert_eq!(
            cold.warm_start_verified(&path).unwrap(),
            crate::WarmStartOutcome::default(),
            "missing file is a cold start"
        );

        // One honest entry (synthesized and saved by a real deployment) and one tampered one:
        // a claimed under-approximation whose truthy set is the whole space.
        let honest: Deployment<IntervalDomain> =
            Deployment::new(layout(), ServeConfig::for_tests());
        honest.register_query(&nearby_query(200), ApproxKind::Under, None).unwrap();
        let mut entries = honest.shared().export_entries();
        let tampered_pred = ((anosy_logic::IntExpr::var(0) - 300).abs()
            + (anosy_logic::IntExpr::var(1) - 200).abs())
        .le(100);
        entries.push(SharedCacheEntry {
            pred: tampered_pred,
            layout: layout(),
            kind: ApproxKind::Under,
            members: None,
            indsets: IndSets::new(
                ApproxKind::Under,
                IntervalDomain::from_intervals(vec![AInt::new(0, 400), AInt::new(0, 400)]),
                IntervalDomain::from_intervals(vec![AInt::new(0, 400), AInt::new(0, 400)]),
            ),
        });
        crate::save_entries(&path, &entries).unwrap();

        let second: Deployment<IntervalDomain> =
            Deployment::new(layout(), ServeConfig::for_tests());
        let outcome = second.warm_start_verified(&path).unwrap();
        assert_eq!(outcome, crate::WarmStartOutcome { installed: 1, skipped: 1 });
        // Re-loading the same file: the installed key is already cached, so it is neither
        // re-verified nor re-installed; only the tampered entry is re-checked (and skipped).
        let again = second.warm_start_with(&path, true).unwrap();
        assert_eq!(again, crate::WarmStartOutcome { installed: 0, skipped: 1 });
        // The dispatch helper's trusted path reports installs with zero skips.
        let trusted: Deployment<IntervalDomain> =
            Deployment::new(layout(), ServeConfig::for_tests());
        let outcome = trusted.warm_start_with(&path, false).unwrap();
        assert_eq!(outcome.skipped, 0);
        assert_eq!(outcome.installed, 2, "the trusted path installs even the tampered entry");
        // The installed entry serves registrations with zero synthesis, like a plain warm start.
        second.register_query(&nearby_query(200), ApproxKind::Under, None).unwrap();
        assert_eq!(second.stats().cache.synth_misses, 0);
        // The tampered query is *not* warm: registering it re-synthesizes honestly.
        let stats_before = second.stats();
        let tampered_query = nearby_query(300);
        second.register_query(&tampered_query, ApproxKind::Under, None).unwrap();
        assert_eq!(second.stats().cache.synth_misses, stats_before.cache.synth_misses + 1);
    }

    #[test]
    fn journal_makes_restarts_lossless_between_saves() {
        use crate::journal::JournalConfig;

        let dir = std::env::temp_dir().join("anosy-serve-deployment-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("restart.journal");
        let journal = JournalConfig::new(&path);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(journal.snapshot_path());
        let config = ServeConfig::for_tests().with_journal(journal.clone());

        // First life: journal on, synthesize two queries, then "crash" (drop without saving).
        let first: Deployment<IntervalDomain> = Deployment::new(layout(), config.clone());
        let recovery = first.open_journal(false).unwrap().unwrap();
        assert_eq!(recovery, RecoveryOutcome::default(), "first boot is cold");
        first.register_query(&nearby_query(200), ApproxKind::Under, None).unwrap();
        first.register_query(&nearby_query(300), ApproxKind::Over, None).unwrap();
        assert_eq!(first.journal_stats().appended, 2, "commits are journaled as they land");
        drop(first);

        // Second life: journal replay alone restores the cache — zero re-synthesis.
        let second: Deployment<IntervalDomain> = Deployment::new(layout(), config.clone());
        let recovery = second.open_journal(false).unwrap().unwrap();
        assert_eq!((recovery.replayed, recovery.torn), (2, 0));
        second.register_query(&nearby_query(200), ApproxKind::Under, None).unwrap();
        second.register_query(&nearby_query(300), ApproxKind::Over, None).unwrap();
        assert_eq!(second.stats().cache.synth_misses, 0, "replayed entries skip synthesis");

        // Saving to the snapshot path is a compaction: entries move journal → snapshot.
        let saved = second.save_cache(&journal.snapshot_path()).unwrap();
        assert_eq!(saved, SaveOutcome { written: 2, skipped: 0 });
        assert_eq!(second.journal_stats().compacted, 2);
        drop(second);

        // Third life: everything now comes from the snapshot, nothing from the journal.
        let third: Deployment<IntervalDomain> = Deployment::new(layout(), config);
        let recovery = third.open_journal(false).unwrap().unwrap();
        assert_eq!(recovery.snapshot.installed, 2);
        assert_eq!(recovery.replayed, 0);
        assert!(
            third.open_journal(false).is_err(),
            "a second open_journal on one deployment is refused"
        );
    }

    #[test]
    fn parallel_driver_is_reachable_through_the_deployment() {
        let deployment: Deployment<IntervalDomain> =
            Deployment::new(layout(), ServeConfig::for_tests());
        let pred = ((IntExpr::var(0) - 200).abs() + (IntExpr::var(1) - 200).abs()).le(100);
        let sharded = deployment.par_count_models(&pred, &layout().space()).unwrap();
        assert_eq!(sharded.value, 20_201); // the radius-100 diamond
        let outcome = deployment.par_check_validity(&pred, &layout().space()).unwrap();
        assert!(matches!(outcome.value, ValidityOutcome::CounterExample(_)));
    }
}
