//! The deployment: one shared store + synthesis cache, one worker pool, many sessions.

use crate::{batch, parallel, persist, ServeConfig, ServeError, ShardPool, Sharded};
use anosy_core::{
    AnosyError, AnosySession, Policy, SharedCacheStats, SharedSynthCache, SynthesizeInto,
};
use anosy_domains::AbstractDomain;
use anosy_logic::{IntBox, Point, Pred, SecretLayout, StoreStats};
use anosy_solver::{SolverConfig, SolverError, ValidityOutcome};
use anosy_synth::{ApproxKind, DomainCodec, QueryDef, Synthesizer};
use std::fmt;
use std::path::Path;

/// A point-in-time view of a deployment's aggregate serving counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// The shared-cache aggregates (synthesis hits/misses, downgrade outcomes, sessions).
    pub cache: SharedCacheStats,
    /// Distinct synthesized entries currently cached.
    pub entries: usize,
    /// Worker threads in the shard pool.
    pub workers: usize,
}

impl ServeStats {
    /// Renders the stats as a small JSON object (the report binaries' format; the workspace
    /// carries no serde).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"workers\": {}, \"entries\": {}, \"sessions\": {}, ",
                "\"synth_hits\": {}, \"synth_misses\": {}, \"warm_loaded\": {}, ",
                "\"downgrades_authorized\": {}, \"downgrades_refused\": {}}}"
            ),
            self.workers,
            self.entries,
            self.cache.sessions_opened,
            self.cache.synth_hits,
            self.cache.synth_misses,
            self.cache.warm_loaded,
            self.cache.downgrades_authorized,
            self.cache.downgrades_refused,
        )
    }
}

impl fmt::Display for ServeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} workers, {} cached entries; {}", self.workers, self.entries, self.cache)
    }
}

/// A serving deployment (see the [crate docs](crate) for the model):
///
/// * owns the [`SharedSynthCache`] every session of the deployment registers through — N
///   sessions registering the same query set synthesize once per *deployment*;
/// * owns the fixed [`ShardPool`] the batched-downgrade and parallel-solver drivers shard
///   across;
/// * loads and saves the warm-start synthesis cache.
#[derive(Debug)]
pub struct Deployment<D: AbstractDomain> {
    layout: SecretLayout,
    config: ServeConfig,
    shared: SharedSynthCache<D>,
    pool: ShardPool,
}

impl<D: AbstractDomain> Deployment<D> {
    /// Creates a deployment serving secrets of `layout`.
    pub fn new(layout: SecretLayout, config: ServeConfig) -> Self {
        let pool = ShardPool::new(config.workers);
        Deployment { layout, config, shared: SharedSynthCache::new(), pool }
    }

    /// The secret layout this deployment serves.
    pub fn layout(&self) -> &SecretLayout {
        &self.layout
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The deployment's worker pool (for custom sharded drivers).
    pub fn pool(&self) -> &ShardPool {
        &self.pool
    }

    /// The shared store + synthesis cache handle (cheap to clone; hand it to sessions created
    /// outside [`Deployment::session`] if needed).
    pub fn shared(&self) -> &SharedSynthCache<D> {
        &self.shared
    }

    /// Aggregate serving counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            cache: self.shared.stats(),
            entries: self.shared.len(),
            workers: self.pool.workers(),
        }
    }

    /// Hit/miss counters of the shared term store.
    pub fn store_stats(&self) -> StoreStats {
        self.shared.store_stats()
    }

    /// Opens a session against this deployment: it shares the deployment's store and synthesis
    /// cache, and its downgrade outcomes fold into the deployment aggregates.
    pub fn session(&self, policy: impl Policy<D> + Send + Sync + 'static) -> AnosySession<D> {
        AnosySession::with_shared(self.layout.clone(), policy, self.shared.clone())
    }

    /// Downgrades a batch of secrets against one registered query of `session`, sharding the
    /// policy/posterior decisions across the deployment pool. Results (and the session's
    /// post-state) are identical to the sequential per-call loop.
    pub fn downgrade_batch(
        &self,
        session: &mut AnosySession<D>,
        secrets: &[Point],
        query_name: &str,
    ) -> Vec<Result<bool, AnosyError>>
    where
        D: Send + Sync + 'static,
    {
        batch::downgrade_batch(&self.pool, session, secrets, query_name)
    }

    /// Downgrades one secret against a query set, in order (see
    /// [`batch::downgrade_many`]).
    pub fn downgrade_many(
        &self,
        session: &mut AnosySession<D>,
        secret: &Point,
        query_names: &[&str],
    ) -> Vec<Result<bool, AnosyError>> {
        batch::downgrade_many(session, secret, query_names)
    }

    /// Counts the models of `pred` in `space` with the sharded parallel driver (identical to the
    /// sequential count; see [`parallel::par_count_models`]).
    ///
    /// # Errors
    ///
    /// Propagates the first shard's [`SolverError`].
    pub fn par_count_models(
        &self,
        pred: &Pred,
        space: &IntBox,
    ) -> Result<Sharded<u128>, SolverError> {
        parallel::par_count_models(&self.pool, self.config.solver(), pred, space)
    }

    /// Sharded validity check (identical outcome to the sequential procedure).
    ///
    /// # Errors
    ///
    /// Propagates the first shard's [`SolverError`].
    pub fn par_check_validity(
        &self,
        pred: &Pred,
        space: &IntBox,
    ) -> Result<Sharded<ValidityOutcome>, SolverError> {
        parallel::par_check_validity(&self.pool, self.config.solver(), pred, space)
    }
}

impl<D: AbstractDomain + SynthesizeInto> Deployment<D> {
    /// Pre-warms the shared cache with one query: synthesizes and verifies it now (once per
    /// deployment) so that every subsequent session registration is a pure cache hit. Safe to
    /// call concurrently and repeatedly. Runs the same
    /// [`synthesize_and_verify`](anosy_core::synthesize_and_verify) pipeline — including the
    /// verifier's default solver budget — that a session registration would, so a `(query,
    /// kind, members)` key verifies identically no matter which entry point races into the
    /// single-flight slot.
    ///
    /// # Errors
    ///
    /// Propagates synthesis, verification and solver failures (as [`ServeError::Anosy`]).
    pub fn register_query(
        &self,
        query: &QueryDef,
        kind: ApproxKind,
        members: Option<usize>,
    ) -> Result<(), ServeError> {
        self.shared.get_or_synthesize(query, kind, members, || {
            // Constructed only on an actual miss: warm hits stay allocation-free.
            let mut synth = Synthesizer::with_config(self.config.synth.clone());
            anosy_core::synthesize_and_verify(
                &mut synth,
                query,
                kind,
                members,
                SolverConfig::default(),
            )
        })?;
        Ok(())
    }
}

impl<D: DomainCodec> Deployment<D> {
    /// Loads a warm-start synthesis cache saved by [`Deployment::save_cache`]. A missing file is
    /// a cold start (returns `Ok(0)`); a malformed file is an error the caller may choose to
    /// treat as cold. Returns how many entries were actually installed (already-cached keys keep
    /// their in-memory value).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] / [`ServeError::Format`] for unreadable or malformed files.
    pub fn warm_start(&self, path: &Path) -> Result<usize, ServeError> {
        if !path.exists() {
            return Ok(0);
        }
        let mut installed = 0;
        for entry in persist::load_entries::<D>(path)? {
            if self.shared.insert_ready(entry) {
                installed += 1;
            }
        }
        Ok(installed)
    }

    /// Persists the current synthesis cache for the next process's [`Deployment::warm_start`].
    /// Returns how many entries were written.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] on filesystem failures.
    pub fn save_cache(&self, path: &Path) -> Result<usize, ServeError> {
        persist::save_entries(path, &self.shared.export_entries())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anosy_core::MinSizePolicy;
    use anosy_domains::IntervalDomain;
    use anosy_logic::IntExpr;

    fn layout() -> SecretLayout {
        SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build()
    }

    fn nearby_query(xo: i64) -> QueryDef {
        let pred = ((IntExpr::var(0) - xo).abs() + (IntExpr::var(1) - 200).abs()).le(100);
        QueryDef::new(format!("nearby_{xo}_200"), layout(), pred).unwrap()
    }

    #[test]
    fn deployment_sessions_share_one_synthesis() {
        let deployment: Deployment<IntervalDomain> =
            Deployment::new(layout(), ServeConfig::for_tests());
        deployment.register_query(&nearby_query(200), ApproxKind::Under, None).unwrap();
        assert_eq!(deployment.stats().cache.synth_misses, 1);

        let mut synth = Synthesizer::with_config(deployment.config().synth.clone());
        for _ in 0..3 {
            let mut session = deployment.session(MinSizePolicy::new(100));
            session
                .register_synthesized(&mut synth, &nearby_query(200), ApproxKind::Under, None)
                .unwrap();
            assert_eq!(session.stats().synth_cache_hits, 1);
        }
        assert_eq!(synth.solver_stats().nodes_explored, 0, "sessions did zero solver work");
        let stats = deployment.stats();
        assert_eq!(stats.cache.synth_misses, 1);
        assert_eq!(stats.cache.synth_hits, 3);
        assert_eq!(stats.cache.sessions_opened, 3);
        assert_eq!(stats.entries, 1);
        assert!(stats.to_string().contains("workers"));
        let json = stats.to_json();
        assert!(json.contains("\"synth_misses\": 1"));
        assert!(json.contains("\"sessions\": 3"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn warm_start_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("anosy-serve-deployment-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("warm_start.cache");
        let _ = std::fs::remove_file(&path);

        let first: Deployment<IntervalDomain> = Deployment::new(layout(), ServeConfig::for_tests());
        assert_eq!(first.warm_start(&path).unwrap(), 0, "missing file is a cold start");
        first.register_query(&nearby_query(200), ApproxKind::Under, None).unwrap();
        first.register_query(&nearby_query(300), ApproxKind::Over, None).unwrap();
        assert_eq!(first.save_cache(&path).unwrap(), 2);

        // A restarted deployment loads the cache and performs no synthesis at all.
        let second: Deployment<IntervalDomain> =
            Deployment::new(layout(), ServeConfig::for_tests());
        assert_eq!(second.warm_start(&path).unwrap(), 2);
        second.register_query(&nearby_query(200), ApproxKind::Under, None).unwrap();
        second.register_query(&nearby_query(300), ApproxKind::Over, None).unwrap();
        let stats = second.stats();
        assert_eq!(stats.cache.warm_loaded, 2);
        assert_eq!(stats.cache.synth_misses, 0, "warm start must skip synthesis entirely");
        assert_eq!(stats.cache.synth_hits, 2);

        // The warm entries serve sessions with answers identical to fresh synthesis.
        let mut synth = Synthesizer::with_config(second.config().synth.clone());
        let mut warm_session = second.session(MinSizePolicy::new(100));
        warm_session
            .register_synthesized(&mut synth, &nearby_query(200), ApproxKind::Under, None)
            .unwrap();
        let mut cold_session = first.session(MinSizePolicy::new(100));
        cold_session
            .register_synthesized(&mut synth, &nearby_query(200), ApproxKind::Under, None)
            .unwrap();
        let secret = Point::new(vec![250, 200]);
        let warm = batch::downgrade_many(&mut warm_session, &secret, &["nearby_200_200"]);
        let cold = batch::downgrade_many(&mut cold_session, &secret, &["nearby_200_200"]);
        assert_eq!(warm, cold);
        assert_eq!(
            warm_session.knowledge_of(&secret).size(),
            cold_session.knowledge_of(&secret).size()
        );
    }

    #[test]
    fn parallel_driver_is_reachable_through_the_deployment() {
        let deployment: Deployment<IntervalDomain> =
            Deployment::new(layout(), ServeConfig::for_tests());
        let pred = ((IntExpr::var(0) - 200).abs() + (IntExpr::var(1) - 200).abs()).le(100);
        let sharded = deployment.par_count_models(&pred, &layout().space()).unwrap();
        assert_eq!(sharded.value, 20_201); // the radius-100 diamond
        let outcome = deployment.par_check_validity(&pred, &layout().space()).unwrap();
        assert!(matches!(outcome.value, ValidityOutcome::CounterExample(_)));
    }
}
