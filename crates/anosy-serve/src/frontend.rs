//! The sans-IO serving frontend: sessions behind a uniform request/response protocol, with
//! per-tick downgrade batching.
//!
//! A [`Frontend`] owns a [`Deployment`] plus every open [`AnosySession`], keyed by
//! [`SessionId`]. Any number of logical connections submit [`ServeRequest`]s between ticks
//! ([`Frontend::submit`] — pure queueing, no work); [`Frontend::tick`] then processes the whole
//! queue and returns one [`TaggedResponse`] per request, in submission order. The frontend never
//! performs I/O: transports (the `anosy-served` stdio binary, tests, a future socket executor)
//! feed it requests and write out its responses.
//!
//! # Tick batching
//!
//! Within a tick, maximal runs of consecutive [`ServeRequest::Downgrade`] requests are not
//! executed one by one: the run is regrouped per session (and, within a session, split at query
//! boundaries), and each group rides the deployment's sharded
//! [`downgrade_batch`](Deployment::downgrade_batch) driver. This is the
//! accumulate-per-tick shape of the ROADMAP's serving front: the more downgrade traffic lands in
//! a tick, the bigger the batches handed to the [`ShardPool`](crate::ShardPool).
//!
//! # Determinism guarantee
//!
//! Batching never changes answers — only wall-clock. Responses are **element-wise identical to
//! processing the same requests sequentially, one at a time, against plain [`AnosySession`]s**
//! (`downgrade` per downgrade request), no matter how requests interleave across connections or
//! how they split into ticks. The regrouping is sound because distinct sessions share no mutable
//! state (the shared synthesis cache is append-only and downgrades never write it), distinct
//! secrets within one session are independent, and same-secret chains stay in arrival order on
//! one worker — the `downgrade_batch` guarantee, property-tested end-to-end for the frontend in
//! `tests/proptest_frontend.rs`.

use crate::batch::FusedGroup;
use crate::proto::{
    ConnId, Denial, DenialCode, RequestId, ServeRequest, ServeResponse, SessionId, StatsSnapshot,
    TaggedResponse,
};
use crate::Deployment;
use anosy_core::{AnosySession, SynthesizeInto};
use anosy_domains::AbstractDomain;
use anosy_logic::{Point, PredId};
use anosy_solver::ValidityOutcome;
use anosy_synth::{ApproxKind, DomainCodec, QueryDef};
use anosy_telemetry as telemetry;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;

/// Counters of the frontend itself (the deployment's counters ride along in
/// [`StatsSnapshot::serve`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontendStats {
    /// Completed [`Frontend::tick`] calls.
    pub ticks: u64,
    /// Requests submitted since construction.
    pub requests: u64,
    /// Downgrades that rode a batched driver call.
    pub batched_downgrades: u64,
    /// Largest single batch handed to the deployment driver.
    pub largest_batch: usize,
    /// Sessions torn down because the connection that opened them disconnected
    /// ([`Frontend::disconnect`]) — explicit [`ServeRequest::CloseSession`]s are not counted.
    pub sessions_torn_down: u64,
    /// Distinct logical connections that submitted at least one request — the tenant count of a
    /// multi-tenant run (connections that only ever disconnected are not tenants).
    pub tenants: u64,
    /// Responses that carried a denial: refused downgrade answers, denied batch elements and
    /// rejected requests alike. The denial *rate* of a run is this over
    /// [`FrontendStats::requests`].
    pub denials: u64,
}

/// How many denials one response carries (batch answers can carry several).
fn denials_in(response: &ServeResponse) -> u64 {
    match response {
        ServeResponse::Answer(Err(_)) | ServeResponse::Rejected(_) => 1,
        ServeResponse::Answers(results) => results.iter().filter(|r| r.is_err()).count() as u64,
        _ => 0,
    }
}

/// Packs the conn-scoped session id `((conn + 1) << 32) | k` with **checked** arithmetic:
/// `None` when either half would leave its 32-bit lane (`conn ≥ 2³² − 1` or `k ≥ 2³²`).
/// The unchecked form silently wrapped — `(conn + 1) << 32` loses the high bits for large
/// conn ids, and a connection's 2³²-th open bleeds into the conn lane — colliding ids
/// across connections; see [`SessionId`]'s packing docs.
fn conn_scoped_session_id(conn: ConnId, k: u64) -> Option<SessionId> {
    let high = conn.0.checked_add(1).filter(|&high| high <= u64::from(u32::MAX))?;
    if k > u64::from(u32::MAX) {
        return None;
    }
    Some(SessionId((high << 32) | k))
}

/// One queued downgrade of the current run: its position in the tick, plus the request fields.
/// The query name is the interned handle the wire parser produced — comparing two of them for
/// segment-boundary detection is a pointer check first, never an allocation.
struct QueuedDowngrade {
    index: usize,
    session: SessionId,
    secret: Point,
    query: Arc<str>,
}

/// One query-boundary segment of a session's downgrade run: consecutive requests from one
/// session targeting one query, in arrival order.
struct Segment {
    query: Arc<str>,
    indices: Vec<usize>,
    secrets: Vec<Point>,
}

/// A session owned by the frontend, remembering which logical connection opened it so a
/// transport-level disconnect can tear it down ([`Frontend::disconnect`]).
struct OpenSession<D: AbstractDomain> {
    owner: ConnId,
    session: AnosySession<D>,
}

/// One queued unit of work: a tagged request, or a connection teardown riding the same queue so
/// it takes effect at its submission position within the tick.
enum Pending {
    Request(RequestId, ServeRequest),
    Disconnect(ConnId),
}

/// The sans-IO protocol state machine (see the [module docs](self)).
pub struct Frontend<D: AbstractDomain> {
    deployment: Deployment<D>,
    sessions: BTreeMap<SessionId, OpenSession<D>>,
    /// Queries registered so far: replayed into every newly opened session (registration is a
    /// pure cache hit by then). Keyed by name; re-registration replaces, as in a session.
    registry: BTreeMap<String, (QueryDef, ApproxKind, Option<usize>)>,
    pending: Vec<Pending>,
    next_session: u64,
    next_conn: u64,
    conn_seqs: HashMap<ConnId, u64>,
    /// Per-connection open counts, used by the conn-scoped session-id mode.
    conn_opens: HashMap<ConnId, u64>,
    conn_scoped: bool,
    reactors: u64,
    shard: u64,
    stats: FrontendStats,
}

impl<D: AbstractDomain> Frontend<D> {
    /// Wraps a deployment into a frontend with no open sessions.
    pub fn new(deployment: Deployment<D>) -> Self {
        Frontend {
            deployment,
            sessions: BTreeMap::new(),
            registry: BTreeMap::new(),
            pending: Vec::new(),
            next_session: 0,
            next_conn: 0,
            conn_seqs: HashMap::new(),
            conn_opens: HashMap::new(),
            conn_scoped: false,
            reactors: 1,
            shard: 0,
            stats: FrontendStats::default(),
        }
    }

    /// Switches session-id allocation from the global sequence (`1, 2, 3, …` in submission
    /// order) to **conn-scoped** ids: connection `c`'s `k`-th open (1-based) is answered with
    /// `((c + 1) << 32) | k`. The id a session gets then depends only on the connection that
    /// opened it — never on how opens interleave across connections — so it is invariant under
    /// sharding the connections across any number of reactors. Every [`crate::ReactorPool`]
    /// shard runs in this mode (at any reactor count, including one, so counts are comparable).
    pub fn with_conn_scoped_sessions(mut self) -> Self {
        self.conn_scoped = true;
        self
    }

    /// Identifies this frontend as reactor shard `shard` of `reactors` — reported in
    /// [`StatsSnapshot`] (and on the wire stats line as `reactors=`/`shard=`). Standalone
    /// frontends keep the default `(0, 1)`.
    pub fn with_shard(mut self, shard: u64, reactors: u64) -> Self {
        self.shard = shard;
        self.reactors = reactors.max(1);
        self
    }

    /// The deployment behind this frontend (for direct drivers and stats).
    pub fn deployment(&self) -> &Deployment<D> {
        &self.deployment
    }

    /// Allocates the next logical connection id. Transports that already have a connection
    /// notion (one per socket, say) may mint their own [`ConnId`]s instead — the frontend
    /// tracks per-connection sequence numbers for whatever ids it sees.
    pub fn connect(&mut self) -> ConnId {
        self.next_conn += 1;
        ConnId(self.next_conn)
    }

    /// Queues a request; no work happens until [`Frontend::tick`]. Returns the id the matching
    /// response will carry (per-connection sequence numbers, starting at 1).
    pub fn submit(&mut self, conn: ConnId, request: ServeRequest) -> RequestId {
        let stats = &mut self.stats;
        let seq = self.conn_seqs.entry(conn).or_insert_with(|| {
            stats.tenants += 1;
            0
        });
        *seq += 1;
        let id = RequestId { conn, seq: *seq };
        self.pending.push(Pending::Request(id, request));
        self.stats.requests += 1;
        id
    }

    /// Reports a logical connection as gone: every session it opened is torn down **at this
    /// queue position** during the next [`Frontend::tick`] — requests submitted before the
    /// disconnect still answer normally, requests referencing the torn-down sessions afterwards
    /// deny with `unknown-session`, exactly as a sequential replay interleaving an explicit
    /// close would. The teardown itself produces no response (there is nobody left to read it);
    /// torn-down sessions are counted in [`FrontendStats::sessions_torn_down`].
    ///
    /// Sessions the connection *used* but did not open are untouched — ownership is the open.
    pub fn disconnect(&mut self, conn: ConnId) {
        self.pending.push(Pending::Disconnect(conn));
    }

    /// Queued work items (requests and disconnects) for the next tick.
    pub fn pending_requests(&self) -> usize {
        self.pending.len()
    }

    /// Sessions currently open.
    pub fn open_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// The frontend's own counters.
    pub fn stats(&self) -> FrontendStats {
        self.stats
    }

    /// The protocol-level snapshot a [`ServeRequest::Stats`] would answer with right now —
    /// also the per-shard input of [`crate::reactor::fold_stats`].
    pub fn snapshot(&self) -> StatsSnapshot {
        let store = self.deployment.store_stats();
        let mut memo_depth = [[0u64; 3]; anosy_logic::BOX_MEMO_DEPTH_BUCKETS];
        for (bucket, row) in memo_depth.iter_mut().enumerate() {
            *row = [
                store.box_memo_depth_hits[bucket],
                store.box_memo_depth_misses[bucket],
                store.box_memo_depth_bypassed[bucket],
            ];
        }
        StatsSnapshot {
            open_sessions: self.sessions.len(),
            ticks: self.stats.ticks,
            requests: self.stats.requests,
            batched_downgrades: self.stats.batched_downgrades,
            largest_batch: self.stats.largest_batch,
            sessions_torn_down: self.stats.sessions_torn_down,
            tenants: self.stats.tenants,
            denials: self.stats.denials,
            reactors: self.reactors,
            shard: self.shard,
            memo_depth,
            memo_min_depth: store.box_memo_min_depth,
            memo_suggested_depth: anosy_logic::suggested_min_memo_depth(&store),
            journal: {
                let journal = self.deployment.journal_stats();
                [journal.appended, journal.compacted, journal.replayed, journal.torn]
            },
            saves_skipped: self.deployment.saves_skipped(),
            serve: self.deployment.stats(),
        }
    }
}

impl<D> Frontend<D>
where
    D: AbstractDomain + SynthesizeInto + DomainCodec + Send + Sync + 'static,
{
    /// Processes every queued request and returns one tagged response per request, in
    /// submission order (see the [module docs](self) for the batching and determinism story).
    pub fn tick(&mut self) -> Vec<TaggedResponse> {
        let _span = telemetry::span("frontend.tick");
        let pending = std::mem::take(&mut self.pending);
        let ids: Vec<Option<RequestId>> = pending
            .iter()
            .map(|item| match item {
                Pending::Request(id, _) => Some(*id),
                Pending::Disconnect(_) => None,
            })
            .collect();
        let mut responses: Vec<Option<ServeResponse>> = Vec::new();
        responses.resize_with(pending.len(), || None);

        let mut run: Vec<QueuedDowngrade> = Vec::new();
        for (index, item) in pending.into_iter().enumerate() {
            match item {
                Pending::Request(_, ServeRequest::Downgrade { session, secret, query }) => {
                    run.push(QueuedDowngrade { index, session, secret, query });
                }
                Pending::Request(id, other) => {
                    self.flush_run(&mut run, &mut responses);
                    responses[index] = Some(self.handle(id.conn, other));
                }
                Pending::Disconnect(conn) => {
                    self.flush_run(&mut run, &mut responses);
                    self.teardown(conn);
                }
            }
        }
        self.flush_run(&mut run, &mut responses);
        self.stats.ticks += 1;

        let tagged: Vec<TaggedResponse> = ids
            .into_iter()
            .zip(responses)
            .filter_map(|(id, response)| {
                id.map(|request| TaggedResponse {
                    request,
                    response: response.expect("every request produced a response"),
                })
            })
            .collect();
        self.stats.denials += tagged.iter().map(|t| denials_in(&t.response)).sum::<u64>();
        tagged
    }

    /// Removes (and drops) every session opened by `conn`; the sessions' own teardown notes
    /// their closure in the deployment aggregates.
    fn teardown(&mut self, conn: ConnId) {
        let doomed: Vec<SessionId> = self
            .sessions
            .iter()
            .filter(|(_, open)| open.owner == conn)
            .map(|(id, _)| *id)
            .collect();
        self.stats.sessions_torn_down += doomed.len() as u64;
        for id in doomed {
            self.sessions.remove(&id);
        }
    }

    /// Executes a buffered run of consecutive downgrade requests: regrouped per session, split
    /// at query boundaries, then fused **across sessions** — every round answers one segment
    /// per session with a single pooled decision phase ([`Deployment::downgrade_batch_fused`]).
    fn flush_run(
        &mut self,
        run: &mut Vec<QueuedDowngrade>,
        responses: &mut [Option<ServeResponse>],
    ) {
        if run.is_empty() {
            return;
        }
        // Per-session segment queues, split at query boundaries: within one session,
        // same-secret chains across different queries must keep their arrival order, so a
        // segment may only fuse with *other sessions'* segments, never reorder within its own.
        // The queued requests are consumed by value — this is the hot path, and the points
        // they own become the batches with no clones.
        let mut per_session: BTreeMap<SessionId, VecDeque<Segment>> = BTreeMap::new();
        for queued in run.drain(..) {
            let segments = per_session.entry(queued.session).or_default();
            match segments.back_mut() {
                Some(last) if last.query == queued.query => {
                    last.indices.push(queued.index);
                    last.secrets.push(queued.secret);
                }
                _ => segments.push_back(Segment {
                    query: queued.query,
                    indices: vec![queued.index],
                    secrets: vec![queued.secret],
                }),
            }
        }
        // Unknown sessions answer per element up front, exactly as the sequential replay
        // would at these queue positions (sessions cannot open or close mid-run: the run
        // holds only downgrades).
        per_session.retain(|session_id, segments| {
            if self.sessions.contains_key(session_id) {
                return true;
            }
            for segment in segments.iter() {
                for &index in &segment.indices {
                    responses[index] =
                        Some(ServeResponse::Answer(Err(Denial::unknown_session(*session_id))));
                }
            }
            false
        });
        // Rounds: round r fuses the r-th segment of every session into one pooled decision
        // phase. Cross-session fusion never changes answers — sessions share no mutable
        // state — and within-session order holds because round r+1 only starts after round
        // r committed. Most ticks have exactly one segment per session, so one round.
        while !per_session.is_empty() {
            let mut round: Vec<(SessionId, Segment)> = Vec::new();
            per_session.retain(|session_id, segments| {
                if let Some(segment) = segments.pop_front() {
                    round.push((*session_id, segment));
                }
                !segments.is_empty()
            });
            self.fuse_round(round, responses);
        }
    }

    /// Answers one fused round with a single [`Deployment::downgrade_batch_fused`] call.
    /// Segments are ordered by their query's interned [`PredId`] (the secret layout is
    /// deployment-wide, so the predicate identifies the shared decision work), putting
    /// sessions that downgrade against the same shared predicate adjacent in the scatter —
    /// the same cross-session sharing the single-flight synthesis cache exploits.
    fn fuse_round(
        &mut self,
        round: Vec<(SessionId, Segment)>,
        responses: &mut [Option<ServeResponse>],
    ) {
        let shared = self.deployment.shared();
        let mut ranks: HashMap<(PredId, ApproxKind), usize> = HashMap::new();
        let mut keyed: Vec<(usize, SessionId, Segment)> = round
            .into_iter()
            .map(|(session_id, segment)| {
                let open = self.sessions.get(&session_id).expect("unknown sessions answered");
                let rank = match open.session.query_info(&segment.query) {
                    Some(qinfo) => {
                        let key = (shared.intern_pred(qinfo.query().pred()), qinfo.kind());
                        let next = ranks.len();
                        *ranks.entry(key).or_insert(next)
                    }
                    // Unknown queries answer per element inside the fused driver; park them
                    // after every real group.
                    None => usize::MAX,
                };
                (rank, session_id, segment)
            })
            .collect();
        keyed.sort_by_key(|(rank, session_id, _)| (*rank, *session_id));

        // Pull the round's sessions out of the map so the fused driver can hold one `&mut`
        // per group (groups never alias: one segment per session per round).
        let mut removed: Vec<(SessionId, OpenSession<D>, Segment)> = keyed
            .into_iter()
            .map(|(_, session_id, segment)| {
                let open = self.sessions.remove(&session_id).expect("unknown sessions answered");
                (session_id, open, segment)
            })
            .collect();
        let total: usize = removed.iter().map(|(_, _, segment)| segment.secrets.len()).sum();
        self.stats.batched_downgrades += total as u64;
        self.stats.largest_batch = self.stats.largest_batch.max(total);
        telemetry::observe("batch.size", total as u64);
        let results = {
            let mut groups: Vec<FusedGroup<'_, D>> = removed
                .iter_mut()
                .map(|(_, open, segment)| FusedGroup {
                    session: &mut open.session,
                    secrets: &segment.secrets,
                    query: &segment.query,
                })
                .collect();
            let _span = telemetry::span("deployment.downgrade_batch");
            self.deployment.downgrade_batch_fused(&mut groups)
        };
        for ((_, _, segment), group_results) in removed.iter().zip(results) {
            for (&index, result) in segment.indices.iter().zip(group_results) {
                responses[index] = Some(ServeResponse::Answer(result.map_err(Denial::from)));
            }
        }
        for (session_id, open, _) in removed {
            self.sessions.insert(session_id, open);
        }
    }

    /// Handles every non-`Downgrade` request (downgrades ride [`Frontend::flush_run`]).
    /// `conn` is the logical connection the request arrived on — the owner of any session it
    /// opens.
    fn handle(&mut self, conn: ConnId, request: ServeRequest) -> ServeResponse {
        match request {
            ServeRequest::Downgrade { .. } => unreachable!("downgrades are batched in tick()"),
            ServeRequest::OpenSession { policy } => {
                let id = if self.conn_scoped {
                    let opens = self.conn_opens.entry(conn).or_insert(0);
                    // Checked packing: an id outside the two 32-bit lanes would collide with
                    // another connection's ids, so the open is refused at the boundary and
                    // the open counter does not move.
                    match conn_scoped_session_id(conn, *opens + 1) {
                        Some(id) => {
                            *opens += 1;
                            id
                        }
                        None => {
                            return ServeResponse::Rejected(Denial::new(
                                DenialCode::Internal,
                                format!(
                                    "conn-scoped session-id space exhausted \
                                     (conn {}, opens {})",
                                    conn.0, *opens
                                ),
                            ));
                        }
                    }
                } else {
                    self.next_session += 1;
                    SessionId(self.next_session)
                };
                let mut session = self.deployment.session(policy);
                for (query, kind, members) in self.registry.values() {
                    if let Err(e) = session.register_cached(query, *kind, *members) {
                        return ServeResponse::Rejected(Denial::from(e));
                    }
                }
                self.sessions.insert(id, OpenSession { owner: conn, session });
                ServeResponse::SessionOpened { session: id }
            }
            ServeRequest::RegisterQuery { query, kind, members } => {
                // Re-registering an identical query is the steady-state pattern when many
                // tenants each register the slice of a shared palette they use: every open
                // session already holds the exact cached approximation (sessions opened since
                // the first registration replayed it from the registry), so the per-session
                // broadcast would re-install bit-identical `QInfo`s at O(open sessions) cost.
                // One shared-cache lookup keeps the deployment's hit/miss aggregates honest.
                if self
                    .registry
                    .get(query.name())
                    .is_some_and(|(q, k, m)| *q == query && *k == kind && *m == members)
                {
                    if let Err(e) = self.deployment.register_query(&query, kind, members) {
                        return ServeResponse::Rejected(Denial::new(
                            DenialCode::Internal,
                            e.to_string(),
                        ));
                    }
                    return ServeResponse::QueryRegistered { name: query.name().to_string() };
                }
                if let Err(e) = self.deployment.register_query(&query, kind, members) {
                    return ServeResponse::Rejected(Denial::new(
                        DenialCode::Internal,
                        e.to_string(),
                    ));
                }
                for open in self.sessions.values_mut() {
                    if let Err(e) = open.session.register_cached(&query, kind, members) {
                        return ServeResponse::Rejected(Denial::from(e));
                    }
                }
                let name = query.name().to_string();
                self.registry.insert(name.clone(), (query, kind, members));
                ServeResponse::QueryRegistered { name }
            }
            ServeRequest::DowngradeBatch { session, secrets, query } => {
                let Some(open) = self.sessions.get_mut(&session).map(|open| &mut open.session)
                else {
                    return ServeResponse::Rejected(Denial::unknown_session(session));
                };
                self.stats.batched_downgrades += secrets.len() as u64;
                self.stats.largest_batch = self.stats.largest_batch.max(secrets.len());
                telemetry::observe("batch.size", secrets.len() as u64);
                let results = {
                    let _span = telemetry::span("deployment.downgrade_batch");
                    self.deployment.downgrade_batch(open, &secrets, &query)
                };
                ServeResponse::Answers(
                    results.into_iter().map(|r| r.map_err(|e| DenialCode::of(&e))).collect(),
                )
            }
            ServeRequest::CountModels { pred } => {
                match self.deployment.par_count_models(&pred, &self.deployment.layout().space()) {
                    Ok(sharded) => ServeResponse::Count { models: sharded.value },
                    Err(e) => {
                        ServeResponse::Rejected(Denial::new(DenialCode::Internal, e.to_string()))
                    }
                }
            }
            ServeRequest::CheckValidity { pred } => {
                match self.deployment.par_check_validity(&pred, &self.deployment.layout().space()) {
                    Ok(sharded) => ServeResponse::Validity {
                        counterexample: match sharded.value {
                            ValidityOutcome::Valid => None,
                            ValidityOutcome::CounterExample(p) => Some(p),
                        },
                    },
                    Err(e) => {
                        ServeResponse::Rejected(Denial::new(DenialCode::Internal, e.to_string()))
                    }
                }
            }
            ServeRequest::Knowledge { session, secret } => {
                let Some(open) = self.sessions.get(&session).map(|open| &open.session) else {
                    return ServeResponse::Rejected(Denial::unknown_session(session));
                };
                let knowledge = open.knowledge_of(&secret);
                ServeResponse::Knowledge {
                    size: knowledge.size(),
                    encoded: knowledge.domain().encode(),
                }
            }
            ServeRequest::Stats => ServeResponse::Stats(Box::new(self.snapshot())),
            // Both telemetry answers read the *reactor thread's* collector: the frontend runs
            // on it, so the snapshot is exactly this shard's recording (empty when telemetry is
            // off or compiled out).
            ServeRequest::Metrics => ServeResponse::Metrics {
                json: telemetry::snapshot()
                    .map(|r| r.metrics.to_json())
                    .unwrap_or_else(|| "{}".to_string()),
            },
            ServeRequest::Trace => ServeResponse::Trace {
                json: telemetry::snapshot()
                    .map(|r| telemetry::trace_json(std::slice::from_ref(&r)))
                    .unwrap_or_else(|| "[]".to_string()),
            },
            ServeRequest::SaveCache { path } => match self.deployment.save_cache(&path) {
                Ok(outcome) => {
                    ServeResponse::CacheSaved { entries: outcome.written, skipped: outcome.skipped }
                }
                Err(e) => ServeResponse::Rejected(Denial::new(DenialCode::Internal, e.to_string())),
            },
            ServeRequest::WarmStart { path, verify } => {
                match self.deployment.warm_start_with(&path, verify) {
                    Ok(outcome) => ServeResponse::WarmStarted {
                        loaded: outcome.installed,
                        skipped: outcome.skipped,
                    },
                    Err(e) => {
                        ServeResponse::Rejected(Denial::new(DenialCode::Internal, e.to_string()))
                    }
                }
            }
            ServeRequest::CloseSession { session } => match self.sessions.remove(&session) {
                Some(_) => ServeResponse::SessionClosed { session },
                None => ServeResponse::Rejected(Denial::unknown_session(session)),
            },
        }
    }
}

impl<D: AbstractDomain> fmt::Debug for Frontend<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Frontend")
            .field("sessions", &self.sessions.len())
            .field("registry", &self.registry.len())
            .field("pending", &self.pending.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServeConfig;
    use anosy_core::PolicySpec;
    use anosy_domains::IntervalDomain;
    use anosy_ifc::Protected;
    use anosy_logic::{IntExpr, SecretLayout};

    fn layout() -> SecretLayout {
        SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build()
    }

    fn nearby_query(xo: i64) -> QueryDef {
        let pred = ((IntExpr::var(0) - xo).abs() + (IntExpr::var(1) - 200).abs()).le(100);
        QueryDef::new(format!("nearby_{xo}_200"), layout(), pred).unwrap()
    }

    fn frontend() -> Frontend<IntervalDomain> {
        Frontend::new(Deployment::new(layout(), ServeConfig::for_tests()))
    }

    fn downgrade(session: SessionId, x: i64, y: i64, query: &str) -> ServeRequest {
        ServeRequest::Downgrade { session, secret: Point::new(vec![x, y]), query: query.into() }
    }

    #[test]
    fn the_full_surface_round_trips_through_one_tick_sequence() {
        let mut frontend = frontend();
        let conn = frontend.connect();

        // Tick 1: register a query and open two sessions under different policies.
        frontend.submit(
            conn,
            ServeRequest::RegisterQuery {
                query: nearby_query(200),
                kind: ApproxKind::Under,
                members: None,
            },
        );
        frontend.submit(conn, ServeRequest::OpenSession { policy: PolicySpec::MinSize(100) });
        frontend.submit(conn, ServeRequest::OpenSession { policy: PolicySpec::MinSize(30_000) });
        let responses = frontend.tick();
        assert_eq!(responses.len(), 3);
        assert_eq!(
            responses[0].response,
            ServeResponse::QueryRegistered { name: "nearby_200_200".into() }
        );
        let strict = SessionId(2);
        assert_eq!(responses[1].response, ServeResponse::SessionOpened { session: SessionId(1) });
        assert_eq!(responses[2].response, ServeResponse::SessionOpened { session: strict });
        assert_eq!(responses[0].request, RequestId { conn, seq: 1 });

        // Tick 2: downgrades across both sessions in one run — batched, answers exact.
        let lax = SessionId(1);
        frontend.submit(conn, downgrade(lax, 300, 200, "nearby_200_200"));
        frontend.submit(conn, downgrade(strict, 300, 200, "nearby_200_200"));
        frontend.submit(conn, downgrade(lax, 10, 10, "nearby_200_200"));
        frontend.submit(conn, downgrade(lax, 300, 200, "no_such_query"));
        let responses = frontend.tick();
        assert_eq!(responses[0].response, ServeResponse::Answer(Ok(true)));
        // The strict policy refuses: under min-size 30000 one posterior is too small.
        match &responses[1].response {
            ServeResponse::Answer(Err(denial)) => assert_eq!(denial.code, DenialCode::Policy),
            other => panic!("expected a policy denial, got {other:?}"),
        }
        assert_eq!(responses[2].response, ServeResponse::Answer(Ok(false)));
        match &responses[3].response {
            ServeResponse::Answer(Err(denial)) => {
                assert_eq!(denial.code, DenialCode::UnknownQuery)
            }
            other => panic!("expected unknown-query, got {other:?}"),
        }

        // The frontend's answers equal a plain session's sequential ones.
        let mut reference: AnosySession<IntervalDomain> =
            self::reference_session(PolicySpec::MinSize(100));
        let secret = Protected::new(Point::new(vec![300, 200]));
        assert!(reference.downgrade(&secret, "nearby_200_200").unwrap());

        // Tick 3: knowledge, stats, close; then the closed session denies.
        frontend.submit(
            conn,
            ServeRequest::Knowledge { session: lax, secret: Point::new(vec![300, 200]) },
        );
        frontend.submit(conn, ServeRequest::Stats);
        frontend.submit(conn, ServeRequest::CloseSession { session: strict });
        let responses = frontend.tick();
        match &responses[0].response {
            ServeResponse::Knowledge { size, encoded } => {
                assert_eq!(*size, reference.knowledge_of(&Point::new(vec![300, 200])).size());
                assert!(!encoded.is_empty());
            }
            other => panic!("expected knowledge, got {other:?}"),
        }
        match &responses[1].response {
            ServeResponse::Stats(snapshot) => {
                assert_eq!(snapshot.open_sessions, 2);
                assert_eq!(snapshot.requests, 10);
                assert_eq!(snapshot.batched_downgrades, 4);
                assert!(snapshot.largest_batch >= 2, "the lax run batched");
                assert_eq!(snapshot.serve.cache.synth_misses, 1);
            }
            other => panic!("expected stats, got {other:?}"),
        }
        assert_eq!(responses[2].response, ServeResponse::SessionClosed { session: strict });

        frontend.submit(conn, downgrade(strict, 300, 200, "nearby_200_200"));
        let responses = frontend.tick();
        match &responses[0].response {
            ServeResponse::Answer(Err(denial)) => {
                assert_eq!(denial.code, DenialCode::UnknownSession)
            }
            other => panic!("expected unknown-session, got {other:?}"),
        }
        assert!(format!("{frontend:?}").contains("sessions: 1"));
    }

    /// A plain owned session with the test query registered — the sequential reference.
    fn reference_session(policy: PolicySpec) -> AnosySession<IntervalDomain> {
        let mut session = AnosySession::new(layout(), policy);
        let mut synth = anosy_synth::Synthesizer::with_config(ServeConfig::for_tests().synth);
        session
            .register_synthesized(&mut synth, &nearby_query(200), ApproxKind::Under, None)
            .unwrap();
        session
    }

    #[test]
    fn sessions_opened_after_registration_know_the_query_set() {
        let mut frontend = frontend();
        let conn = frontend.connect();
        frontend.submit(
            conn,
            ServeRequest::RegisterQuery {
                query: nearby_query(200),
                kind: ApproxKind::Under,
                members: None,
            },
        );
        frontend.tick();
        // A session opened *later* still knows the query, via the registry replay.
        frontend.submit(conn, ServeRequest::OpenSession { policy: PolicySpec::MinSize(100) });
        frontend.submit(conn, downgrade(SessionId(1), 300, 200, "nearby_200_200"));
        let responses = frontend.tick();
        assert_eq!(responses[1].response, ServeResponse::Answer(Ok(true)));
        // And the replay was a pure cache hit: one synthesis total.
        assert_eq!(frontend.deployment().stats().cache.synth_misses, 1);
    }

    #[test]
    fn duplicate_secrets_within_one_tick_chain_in_order() {
        let mut frontend = frontend();
        let conn = frontend.connect();
        frontend.submit(
            conn,
            ServeRequest::RegisterQuery {
                query: nearby_query(200),
                kind: ApproxKind::Under,
                members: None,
            },
        );
        frontend.submit(conn, ServeRequest::OpenSession { policy: PolicySpec::MinSize(100) });
        frontend.tick();
        let session = SessionId(1);
        for _ in 0..4 {
            frontend.submit(conn, downgrade(session, 300, 200, "nearby_200_200"));
        }
        let batched: Vec<ServeResponse> = frontend.tick().into_iter().map(|t| t.response).collect();

        let mut reference = reference_session(PolicySpec::MinSize(100));
        let secret = Protected::new(Point::new(vec![300, 200]));
        let sequential: Vec<ServeResponse> = (0..4)
            .map(|_| {
                ServeResponse::Answer(
                    reference.downgrade(&secret, "nearby_200_200").map_err(Denial::from),
                )
            })
            .collect();
        assert_eq!(batched, sequential);
    }

    #[test]
    fn disconnects_tear_down_owned_sessions_at_their_queue_position() {
        let mut frontend = frontend();
        let a = frontend.connect();
        let b = frontend.connect();
        frontend.submit(
            a,
            ServeRequest::RegisterQuery {
                query: nearby_query(200),
                kind: ApproxKind::Under,
                members: None,
            },
        );
        frontend.submit(a, ServeRequest::OpenSession { policy: PolicySpec::MinSize(100) });
        frontend.submit(b, ServeRequest::OpenSession { policy: PolicySpec::MinSize(100) });
        frontend.tick();
        assert_eq!(frontend.open_sessions(), 2);

        // A downgrade submitted before the disconnect still answers; the same request after it
        // finds the session gone — teardown takes effect at its queue position.
        frontend.submit(b, downgrade(SessionId(1), 300, 200, "nearby_200_200"));
        frontend.disconnect(a);
        frontend.submit(b, downgrade(SessionId(1), 300, 200, "nearby_200_200"));
        let responses = frontend.tick();
        assert_eq!(responses.len(), 2, "the teardown itself produces no response");
        assert_eq!(responses[0].response, ServeResponse::Answer(Ok(true)));
        match &responses[1].response {
            ServeResponse::Answer(Err(denial)) => {
                assert_eq!(denial.code, DenialCode::UnknownSession)
            }
            other => panic!("expected unknown-session after teardown, got {other:?}"),
        }
        assert_eq!(frontend.open_sessions(), 1, "b's session survives a's disconnect");
        assert_eq!(frontend.stats().sessions_torn_down, 1);

        // The dropped session reported its closure to the deployment aggregates (the
        // anosy-core teardown hook) — no leak in either ledger.
        let cache = frontend.deployment().stats().cache;
        assert_eq!(cache.sessions_opened, 2);
        assert_eq!(cache.sessions_closed, 1);

        // Disconnecting a connection that owns nothing is a no-op.
        frontend.disconnect(a);
        frontend.tick();
        assert_eq!(frontend.stats().sessions_torn_down, 1);
    }

    #[test]
    fn count_and_validity_ride_the_sharded_driver() {
        let mut frontend = frontend();
        let conn = frontend.connect();
        let pred = ((IntExpr::var(0) - 200).abs() + (IntExpr::var(1) - 200).abs()).le(100);
        frontend.submit(conn, ServeRequest::CountModels { pred: pred.clone() });
        frontend.submit(conn, ServeRequest::CheckValidity { pred });
        let responses = frontend.tick();
        assert_eq!(responses[0].response, ServeResponse::Count { models: 20_201 });
        match &responses[1].response {
            ServeResponse::Validity { counterexample: Some(_) } => {}
            other => panic!("the diamond is not valid everywhere: {other:?}"),
        }
    }

    #[test]
    fn explicit_batches_answer_per_element() {
        let mut frontend = frontend();
        let conn = frontend.connect();
        frontend.submit(
            conn,
            ServeRequest::RegisterQuery {
                query: nearby_query(200),
                kind: ApproxKind::Under,
                members: None,
            },
        );
        frontend.submit(conn, ServeRequest::OpenSession { policy: PolicySpec::MinSize(100) });
        frontend.tick();
        frontend.submit(
            conn,
            ServeRequest::DowngradeBatch {
                session: SessionId(1),
                secrets: vec![
                    Point::new(vec![300, 200]),
                    Point::new(vec![10, 10]),
                    Point::new(vec![9_000, 0]),
                ],
                query: "nearby_200_200".into(),
            },
        );
        let responses = frontend.tick();
        assert_eq!(
            responses[0].response,
            ServeResponse::Answers(vec![Ok(true), Ok(false), Err(DenialCode::OutsideLayout),])
        );
        // An unknown session rejects the whole batch request.
        frontend.submit(
            conn,
            ServeRequest::DowngradeBatch {
                session: SessionId(77),
                secrets: vec![Point::new(vec![0, 0])],
                query: "nearby_200_200".into(),
            },
        );
        match &frontend.tick()[0].response {
            ServeResponse::Rejected(denial) => {
                assert_eq!(denial.code, DenialCode::UnknownSession)
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn conn_scoped_id_packing_is_checked_at_both_lanes() {
        let max = u64::from(u32::MAX);
        // In-range edges pack exactly as documented.
        assert_eq!(conn_scoped_session_id(ConnId(0), 1), Some(SessionId((1 << 32) | 1)));
        assert_eq!(conn_scoped_session_id(ConnId(0), max), Some(SessionId((1 << 32) | max)));
        assert_eq!(conn_scoped_session_id(ConnId(max - 1), 1), Some(SessionId((max << 32) | 1)));
        // One past either lane refuses. The unchecked form returned `SessionId(2 << 32)` for
        // the first (colliding with conn 1's first open) and `SessionId(1)`-style wrapped ids
        // for the large-conn cases.
        assert_eq!(conn_scoped_session_id(ConnId(0), max + 1), None);
        assert_eq!(conn_scoped_session_id(ConnId(max), 1), None);
        assert_eq!(conn_scoped_session_id(ConnId(u64::MAX), 1), None, "conn + 1 must not wrap");
    }

    #[test]
    fn exhausted_conn_scoped_opens_reject_without_moving_the_counter() {
        let mut frontend = frontend().with_conn_scoped_sessions();
        let conn = frontend.connect();
        // Seed the connection as if it had already opened 2³² − 1 sessions: the next open
        // would need k = 2³², which bleeds into the conn lane.
        frontend.conn_opens.insert(conn, u64::from(u32::MAX));
        frontend.submit(conn, ServeRequest::OpenSession { policy: PolicySpec::MinSize(100) });
        frontend.submit(conn, ServeRequest::OpenSession { policy: PolicySpec::MinSize(100) });
        let responses = frontend.tick();
        for tagged in &responses {
            match &tagged.response {
                ServeResponse::Rejected(denial) => assert_eq!(denial.code, DenialCode::Internal),
                other => panic!("expected a session-id-space rejection, got {other:?}"),
            }
        }
        assert_eq!(frontend.open_sessions(), 0);
        assert_eq!(
            frontend.conn_opens[&conn],
            u64::from(u32::MAX),
            "a refused open must not burn id space"
        );

        // A wire-reachable conn id past the lane (`@4294967295`-style) is refused too,
        // instead of wrapping into another connection's id range.
        let big = ConnId(u64::from(u32::MAX));
        frontend.submit(big, ServeRequest::OpenSession { policy: PolicySpec::MinSize(100) });
        match &frontend.tick()[0].response {
            ServeResponse::Rejected(denial) => assert_eq!(denial.code, DenialCode::Internal),
            other => panic!("expected a conn-lane rejection, got {other:?}"),
        }
    }

    #[test]
    fn cross_session_runs_fuse_and_match_sequential_replay() {
        let mut fused = frontend();
        let conn = fused.connect();
        fused.submit(
            conn,
            ServeRequest::RegisterQuery {
                query: nearby_query(200),
                kind: ApproxKind::Under,
                members: None,
            },
        );
        for _ in 0..3 {
            fused.submit(conn, ServeRequest::OpenSession { policy: PolicySpec::MinSize(100) });
        }
        fused.tick();
        // Interleave three sessions' downgrades in one run: the tick answers them in one
        // fused round (largest_batch sees the *fused* size, not the per-session slices).
        let secrets = [(300, 200), (10, 10), (250, 150), (300, 200)];
        for &(x, y) in &secrets {
            for s in 1..=3 {
                fused.submit(conn, downgrade(SessionId(s), x, y, "nearby_200_200"));
            }
        }
        let answers: Vec<ServeResponse> = fused.tick().into_iter().map(|t| t.response).collect();
        assert_eq!(fused.stats().largest_batch, 12, "the round fused all three sessions");

        // Element-wise identical to a sequential per-session replay.
        let mut reference = reference_session(PolicySpec::MinSize(100));
        let sequential: Vec<ServeResponse> = secrets
            .iter()
            .map(|&(x, y)| {
                ServeResponse::Answer(
                    reference
                        .downgrade(&Protected::new(Point::new(vec![x, y])), "nearby_200_200")
                        .map_err(Denial::from),
                )
            })
            .collect();
        for (i, expected) in sequential.iter().enumerate() {
            for s in 0..3 {
                assert_eq!(&answers[i * 3 + s], expected, "secret {i}, session {}", s + 1);
            }
        }
    }
}
