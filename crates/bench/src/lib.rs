//! Shared harness code for regenerating the paper's tables and figures.
//!
//! The report binaries (`report_table1`, `report_fig5`, `report_fig6`, `report_baseline`) print
//! the same rows/series the paper reports; the Criterion benches under `benches/` measure the
//! synthesis and verification costs behind them. Both are thin wrappers around the functions in
//! this library so the numbers in EXPERIMENTS.md and the benchmark timings come from the same
//! code path.

use anosy::domains::{AbstractDomain, IntervalDomain, PowersetDomain};
use anosy::prelude::*;
use anosy::suite::benchmarks::{all_benchmarks, Benchmark};
use std::time::{Duration, Instant};

/// One row of Table 1: benchmark metadata plus this repository's exact ind. set sizes.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Benchmark short id (`B1` ... `B5`) and name.
    pub id: String,
    /// Number of secret fields.
    pub fields: usize,
    /// Exact True / False ind. set sizes measured by model counting.
    pub measured: (u128, u128),
    /// The sizes published in the paper.
    pub paper: (u128, u128),
    /// Whether our bounds reproduce the paper exactly.
    pub exact_bounds: bool,
}

/// Computes Table 1 (ground-truth ind. set sizes) for every benchmark.
pub fn table1(solver: &mut Solver) -> Vec<Table1Row> {
    all_benchmarks()
        .into_iter()
        .map(|b| {
            let measured = b.ground_truth(solver).expect("ground-truth counting fits the budget");
            Table1Row {
                id: format!("{} {:?}", b.id.short(), b.id),
                fields: b.field_count(),
                measured,
                paper: (b.paper_true_size, b.paper_false_size),
                exact_bounds: b.exact_bounds,
            }
        })
        .collect()
}

/// Which abstract domain a Figure 5 run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig5Domain {
    /// Figure 5a: the interval domain.
    Intervals,
    /// Figure 5b: powersets of the given size.
    Powersets(usize),
}

/// One row of Figure 5: sizes, % difference from ground truth and timings for one benchmark and
/// one approximation direction.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Benchmark short id.
    pub id: String,
    /// Approximation direction.
    pub kind: ApproxKind,
    /// Synthesized True / False ind. set sizes.
    pub sizes: (u128, u128),
    /// Percentage difference from the exact ind. set sizes (True, False); lower is better.
    pub diff_percent: (f64, f64),
    /// Verification time.
    pub verify_time: Duration,
    /// Synthesis time.
    pub synth_time: Duration,
    /// Whether verification succeeded (it always should).
    pub verified: bool,
    /// Solver search nodes explored during synthesis (search effort behind `synth_time`).
    pub synth_nodes: u64,
    /// Term-store memo-table hits during synthesis (interned-representation reuse).
    pub cache_hits: u64,
    /// Term-store memo-table misses during synthesis.
    pub cache_misses: u64,
    /// `(id, box)` memo profitability per depth bucket: `[hits, misses, bypassed]` for each of
    /// [`anosy::logic::BOX_MEMO_DEPTH_LABELS`]. The per-bucket hit rates are the evidence for
    /// (or against) the `BOX_MEMO_MIN_DEPTH` threshold.
    pub memo_depth: [[u64; 3]; anosy::logic::BOX_MEMO_DEPTH_BUCKETS],
    /// The `(id, box)` memo depth threshold the run was configured with.
    pub memo_depth_configured: u8,
    /// The threshold [`anosy::logic::suggested_min_memo_depth`] derives from this row's
    /// per-bucket hit rates — printed next to the configured one so the knob can be retuned
    /// from evidence.
    pub memo_depth_suggested: u8,
}

fn percent_diff(approx: u128, exact: u128) -> f64 {
    if exact == 0 {
        return if approx == 0 { 0.0 } else { 100.0 * approx as f64 };
    }
    100.0 * (approx as f64 - exact as f64).abs() / exact as f64
}

/// Synthesizes and verifies the ind. sets of one benchmark in one domain/direction, returning the
/// Figure 5 row.
pub fn fig5_row(
    benchmark: &Benchmark,
    domain: Fig5Domain,
    kind: ApproxKind,
    synth_config: &SynthConfig,
) -> Fig5Row {
    let mut solver = Solver::with_config(synth_config.solver.clone());
    let exact = benchmark.ground_truth(&mut solver).expect("ground-truth counting fits the budget");

    let mut synthesizer = Synthesizer::with_config(synth_config.clone());
    let mut verifier = Verifier::with_config(synth_config.solver.clone());

    // Synthesize (timed), then verify (timed), in whichever domain was requested. The two arms
    // produce different concrete domain types, so the shared tail works on the extracted sizes.
    let synth_started = Instant::now();
    let (sizes, synth_time, report) = match domain {
        Fig5Domain::Intervals => {
            let ind = synthesizer
                .synth_interval(&benchmark.query, kind)
                .expect("interval synthesis fits the budget");
            let synth_time = synth_started.elapsed();
            let report = verifier
                .verify_indsets(&benchmark.query, &ind)
                .expect("verification obligations are well-formed");
            ((ind.truthy().size(), ind.falsy().size()), synth_time, report)
        }
        Fig5Domain::Powersets(k) => {
            let ind = synthesizer
                .synth_powerset(&benchmark.query, kind, k)
                .expect("powerset synthesis fits the budget");
            let synth_time = synth_started.elapsed();
            let report = verifier
                .verify_indsets(&benchmark.query, &ind)
                .expect("verification obligations are well-formed");
            ((ind.truthy().size(), ind.falsy().size()), synth_time, report)
        }
    };
    let store = synthesizer.store_stats();
    let mut memo_depth = [[0u64; 3]; anosy::logic::BOX_MEMO_DEPTH_BUCKETS];
    for (bucket, row) in memo_depth.iter_mut().enumerate() {
        *row = [
            store.box_memo_depth_hits[bucket],
            store.box_memo_depth_misses[bucket],
            store.box_memo_depth_bypassed[bucket],
        ];
    }
    Fig5Row {
        id: benchmark.id.short().to_string(),
        kind,
        sizes,
        diff_percent: (percent_diff(sizes.0, exact.0), percent_diff(sizes.1, exact.1)),
        verify_time: report.elapsed,
        synth_time,
        verified: report.is_verified(),
        synth_nodes: synthesizer.solver_stats().nodes_explored,
        cache_hits: store.cache_hits(),
        cache_misses: store.cache_misses(),
        memo_depth,
        memo_depth_configured: store.box_memo_min_depth,
        memo_depth_suggested: anosy::logic::suggested_min_memo_depth(&store),
    }
}

/// Computes the whole Figure 5 table (every benchmark × under/over) for one domain.
pub fn fig5(domain: Fig5Domain, synth_config: &SynthConfig) -> Vec<Fig5Row> {
    let mut rows = Vec::new();
    for b in all_benchmarks() {
        for kind in ApproxKind::ALL {
            rows.push(fig5_row(&b, domain, kind, synth_config));
        }
    }
    rows
}

/// Formats a size the way the paper does: exact below 10⁵, scientific notation above.
pub fn fmt_size(n: u128) -> String {
    if n < 100_000 {
        n.to_string()
    } else {
        format!("{:.2e}", n as f64)
    }
}

/// Renders Table 1 as aligned text.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::from(
        "#   Name        Fields  Ind. sets (ours, T/F)        Ind. sets (paper, T/F)       Bounds\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<11} {:>6}  {:>13} / {:<13} {:>13} / {:<13} {}\n",
            r.id,
            r.fields,
            fmt_size(r.measured.0),
            fmt_size(r.measured.1),
            fmt_size(r.paper.0),
            fmt_size(r.paper.1),
            if r.exact_bounds { "exact" } else { "same order" },
        ));
    }
    out
}

/// Renders a Figure 5 table as aligned text (one block per approximation direction).
pub fn render_fig5(rows: &[Fig5Row]) -> String {
    let mut out = String::new();
    for kind in ApproxKind::ALL {
        out.push_str(&format!(
            "\n{kind}-approximation\n#     Size (T/F)                    %diff (T/F)        Verif.  Synth.   Verified\n"
        ));
        for r in rows.iter().filter(|r| r.kind == kind) {
            out.push_str(&format!(
                "{:<4} {:>13} / {:<13} {:>7.0} / {:<7.0} {:>6.2}s {:>7.2}s  {}\n",
                r.id,
                fmt_size(r.sizes.0),
                fmt_size(r.sizes.1),
                r.diff_percent.0,
                r.diff_percent.1,
                r.verify_time.as_secs_f64(),
                r.synth_time.as_secs_f64(),
                if r.verified { "yes" } else { "NO" },
            ));
        }
    }
    out
}

/// Renders Figure 5 rows as a small JSON document, used to check in benchmark baselines
/// (`BENCH_seed.json`). Hand-rolled: the workspace carries no serde dependency, and every field
/// is a number or a short identifier.
///
/// The document records the measuring host's parallelism next to a `capped_by_host` flag, the
/// same pair the serve reports carry per parallel row. Figure 5's synthesis and verification
/// run on one thread (`workers = 1`), so the flag is `false` on any host — it exists so
/// tooling can check every `BENCH_*.json` uniformly instead of special-casing this document.
pub fn fig5_rows_to_json(domain_label: &str, rows: &[Fig5Row]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"figure\": \"{domain_label}\",\n"));
    out.push_str(&format!("  \"host_parallelism\": {},\n", host_parallelism()));
    out.push_str(&format!("  \"capped_by_host\": {},\n", capped_by_host(1)));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let memo_depth = r
            .memo_depth
            .iter()
            .enumerate()
            .map(|(bucket, [hits, misses, bypassed])| {
                format!(
                    concat!(
                        "{{\"depth\": \"{}\", \"hits\": {}, \"misses\": {}, ",
                        "\"bypassed\": {}}}"
                    ),
                    anosy::logic::BOX_MEMO_DEPTH_LABELS[bucket],
                    hits,
                    misses,
                    bypassed
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            concat!(
                "    {{\"id\": \"{}\", \"kind\": \"{}\", ",
                "\"true_size\": {}, \"false_size\": {}, ",
                "\"diff_true_percent\": {:.4}, \"diff_false_percent\": {:.4}, ",
                "\"synth_seconds\": {:.6}, \"verify_seconds\": {:.6}, \"verified\": {}, ",
                "\"synth_nodes\": {}, \"cache_hits\": {}, \"cache_misses\": {}, ",
                "\"box_memo_depth\": [{}], ",
                "\"box_memo_min_depth\": {{\"configured\": {}, \"suggested\": {}}}}}{}\n"
            ),
            r.id,
            r.kind,
            r.sizes.0,
            r.sizes.1,
            r.diff_percent.0,
            r.diff_percent.1,
            r.synth_time.as_secs_f64(),
            r.verify_time.as_secs_f64(),
            r.verified,
            r.synth_nodes,
            r.cache_hits,
            r.cache_misses,
            memo_depth,
            r.memo_depth_configured,
            r.memo_depth_suggested,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// A quick synthesis configuration used by smoke tests and the CI-friendly benches.
pub fn quick_synth_config() -> SynthConfig {
    SynthConfig::new().with_solver(SolverConfig::for_tests()).with_seeds(1)
}

/// One row of the serving-throughput comparison (`report_serve`, `BENCH_pr3.json`): for one
/// fig5 benchmark, the sequential per-call downgrade loop vs the deployment's batched driver,
/// and the sequential model count vs the sharded parallel driver.
#[derive(Debug, Clone)]
pub struct ServeRow {
    /// Benchmark short id.
    pub id: String,
    /// The knowledge domain the downgrade workload ran in (`interval` or `powerset<k>`).
    pub domain: String,
    /// How many secrets the downgrade workload used.
    pub secrets: usize,
    /// Worker threads in the deployment pool.
    pub workers: usize,
    /// Wall-clock of the sequential `downgrade` loop (the PR 2 serving baseline).
    pub seq_downgrade_seconds: f64,
    /// Wall-clock of `downgrade_batch` over the same secrets on a fresh session.
    pub batch_downgrade_seconds: f64,
    /// `seq_downgrade_seconds / batch_downgrade_seconds`.
    pub downgrade_speedup: f64,
    /// Wall-clock of the sequential exact model count of the query's True set.
    pub seq_count_seconds: f64,
    /// Wall-clock of the sharded parallel count (same result, checked).
    pub par_count_seconds: f64,
    /// `seq_count_seconds / par_count_seconds`.
    pub count_speedup: f64,
    /// The (identical) model count both drivers returned.
    pub models: u128,
}

/// Escapes a string for embedding in the hand-rolled JSON documents (quotes, backslashes and
/// control characters; the workspace carries no serde).
pub fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Hardware threads of the measuring host (the ceiling on any wall-clock speedup thread
/// parallelism can deliver; recorded in the serve report so readers can interpret the ratios).
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// Whether a measurement that spread work over `workers` threads was capped by the host: with
/// fewer hardware threads than workers, wall-clock ratios measure batching/protocol overhead,
/// not scaling. Recorded per parallel row in the JSON reports so readers (and tooling) don't
/// have to infer it from the prose analysis.
pub fn capped_by_host(workers: usize) -> bool {
    host_parallelism() < workers
}

/// Deterministic pseudo-random secrets inside a layout (seeded per benchmark, reproducible
/// across runs and platforms — the rand shim is SplitMix64).
pub fn deterministic_secrets(layout: &SecretLayout, n: usize, seed: u64) -> Vec<Point> {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Point::new(layout.fields().iter().map(|f| rng.gen_range(f.lo()..=f.hi())).collect())
        })
        .collect()
}

/// Runs the serving workload for every fig5 benchmark: register the query once in a deployment
/// (shared synthesis), then downgrade `secrets_per_benchmark` deterministic secrets — once with
/// the sequential per-call loop, once with the batched driver — and exact-count the True ind.
/// set sequentially and with the sharded parallel driver. Batched results are asserted equal to
/// the loop's before any timing is reported.
///
/// `members` selects the knowledge domain: `None` is fig5a (intervals), `Some(k)` fig5b
/// (powersets of size `k`, whose meets carry more work per downgrade).
pub fn serve_rows<D>(
    workers: usize,
    secrets_per_benchmark: usize,
    synth_config: &SynthConfig,
    members: Option<usize>,
) -> Vec<ServeRow>
where
    D: AbstractDomain + anosy::core::SynthesizeInto + Send + Sync + 'static,
{
    use anosy::core::MinSizePolicy;
    use anosy::serve::{Deployment, ServeConfig};

    let domain_label = match members {
        None => "interval".to_string(),
        Some(k) => format!("powerset{k}"),
    };
    all_benchmarks()
        .into_iter()
        .enumerate()
        .map(|(index, b)| {
            let layout = b.query.layout().clone();
            let serve_config =
                ServeConfig::new().with_workers(workers).with_synth(synth_config.clone());
            let deployment: Deployment<D> = Deployment::new(layout.clone(), serve_config);
            deployment
                .register_query(&b.query, ApproxKind::Under, members)
                .expect("benchmark synthesis fits the budget");
            let register = |session: &mut AnosySession<D>| {
                let mut synth = Synthesizer::with_config(synth_config.clone());
                session
                    .register_synthesized(&mut synth, &b.query, ApproxKind::Under, members)
                    .expect("cache hit");
            };
            let secrets =
                deterministic_secrets(&layout, secrets_per_benchmark, 0xA05F + index as u64);
            let name = b.query.name();

            // Sequential baseline: the per-call loop of PR 2.
            let mut seq_session = deployment.session(MinSizePolicy::new(100));
            register(&mut seq_session);
            let started = Instant::now();
            let seq_results: Vec<Option<bool>> = secrets
                .iter()
                .map(|p| seq_session.downgrade(&Protected::new(p.clone()), name).ok())
                .collect();
            let seq_downgrade = started.elapsed();

            // Batched driver on a fresh session of the same deployment.
            let mut batch_session = deployment.session(MinSizePolicy::new(100));
            register(&mut batch_session);
            let started = Instant::now();
            let batch_results = deployment.downgrade_batch(&mut batch_session, &secrets, name);
            let batch_downgrade = started.elapsed();
            let batch_results: Vec<Option<bool>> =
                batch_results.into_iter().map(Result::ok).collect();
            assert_eq!(batch_results, seq_results, "{}: batch diverged from the loop", b.id);
            assert_eq!(batch_session.stats(), seq_session.stats());

            // Exact counting: sequential vs sharded.
            let space = layout.space();
            let mut solver = Solver::with_config(synth_config.solver.clone());
            let started = Instant::now();
            let seq_models =
                solver.count_models(b.query.pred(), &space).expect("counting fits the budget");
            let seq_count = started.elapsed();
            let started = Instant::now();
            let sharded = deployment
                .par_count_models(b.query.pred(), &space)
                .expect("sharded counting fits the budget");
            let par_count = started.elapsed();
            assert_eq!(sharded.value, seq_models, "{}: sharded count diverged", b.id);

            ServeRow {
                id: b.id.short().to_string(),
                domain: domain_label.clone(),
                secrets: secrets_per_benchmark,
                workers,
                seq_downgrade_seconds: seq_downgrade.as_secs_f64(),
                batch_downgrade_seconds: batch_downgrade.as_secs_f64(),
                downgrade_speedup: seq_downgrade.as_secs_f64()
                    / batch_downgrade.as_secs_f64().max(1e-12),
                seq_count_seconds: seq_count.as_secs_f64(),
                par_count_seconds: par_count.as_secs_f64(),
                count_speedup: seq_count.as_secs_f64() / par_count.as_secs_f64().max(1e-12),
                models: seq_models,
            }
        })
        .collect()
}

/// One row of the frontend tick-throughput comparison (`report_serve`, `BENCH_pr4.json` →
/// `BENCH_pr10.json`): the same downgrade workload pushed through
/// [`anosy::serve::Frontend`] ticks of `batch_size` requests vs handed to
/// [`anosy::serve::Deployment::downgrade_batch`] directly in chunks of the same size. The gap
/// between the two is the protocol tax (request queueing, per-tick regrouping, response
/// tagging); it shrinks as the batch grows and the batched driver dominates. The `wire_`
/// columns add the binary frame codec on top (one framed `Downgrade` per request), and the
/// `bulk_` columns are the bulk client shape: one framed `DowngradeBatch` carrying the whole
/// tick — the form a throughput-conscious binary client actually speaks.
#[derive(Debug, Clone)]
pub struct FrontendRow {
    /// Downgrade requests accumulated per tick (and per direct driver call).
    pub batch_size: usize,
    /// Total downgrade requests pushed through each path.
    pub requests: usize,
    /// Worker threads in the deployment pool.
    pub workers: usize,
    /// Wall-clock of the frontend path (submit + tick + response collection).
    pub frontend_seconds: f64,
    /// Requests per second through the frontend.
    pub frontend_rps: f64,
    /// Wall-clock of the direct `downgrade_batch` path over the same secrets.
    pub direct_seconds: f64,
    /// Requests per second through the direct driver.
    pub direct_rps: f64,
    /// Wall-clock of the binary wire path: pre-framed request bytes through
    /// [`anosy::serve::wire::FrameDecoder`] + zero-copy interned parsing + submit + tick,
    /// one framed `Downgrade` request per secret.
    pub wire_seconds: f64,
    /// Requests per second through the binary wire path.
    pub wire_rps: f64,
    /// Wall-clock of the bulk binary wire path: one framed `DowngradeBatch` per tick of
    /// `batch_size` secrets, through the same decode → parse → submit → tick ingress.
    pub bulk_seconds: f64,
    /// Requests per second through the bulk binary wire path.
    pub bulk_rps: f64,
}

/// Measures frontend tick throughput vs the direct batched driver on the first fig5 benchmark
/// (birthday), at each of the given batch sizes. Two more paths price the full binary protocol
/// stack: the same requests pre-encoded as checksummed wire frames (one `Downgrade` frame per
/// secret, and one bulk `DowngradeBatch` frame per tick), then frame decode → zero-copy
/// interned parse → submit → tick measured end to end. Every path runs best-of-5 on a fresh
/// session (downgrades refine tracked knowledge, so repeats must not chain), and all response
/// streams are asserted element-wise equal to the direct driver's on every repeat before the
/// timings are reported.
pub fn frontend_rows(
    workers: usize,
    total_requests: usize,
    synth_config: &SynthConfig,
    batch_sizes: &[usize],
) -> Vec<FrontendRow> {
    use anosy::core::PolicySpec;
    use anosy::serve::{wire, Deployment, Frontend, ServeRequest, ServeResponse, SessionId};

    const REPEATS: usize = 5;
    let b = all_benchmarks().into_iter().next().expect("fig5 has benchmarks");
    let layout = b.query.layout().clone();
    let name: std::sync::Arc<str> = b.query.name().into();
    batch_sizes
        .iter()
        .map(|&batch_size| {
            let serve_config =
                ServeConfig::new().with_workers(workers).with_synth(synth_config.clone());
            let deployment: Deployment<IntervalDomain> =
                Deployment::new(layout.clone(), serve_config);
            deployment
                .register_query(&b.query, ApproxKind::Under, None)
                .expect("benchmark synthesis fits the budget");
            let secrets = deterministic_secrets(&layout, total_requests, 0xF407);
            let session = SessionId(1);

            // A fresh frontend per repeat: each gets its own session 1 (registration is a
            // pure cache hit against the shared deployment), because downgrades refine the
            // session's tracked knowledge — repeats on one session would answer differently.
            let fresh_frontend = || {
                let mut frontend = Frontend::new(deployment.share());
                let conn = frontend.connect();
                frontend.submit(
                    conn,
                    ServeRequest::RegisterQuery {
                        query: b.query.clone(),
                        kind: ApproxKind::Under,
                        members: None,
                    },
                );
                frontend
                    .submit(conn, ServeRequest::OpenSession { policy: PolicySpec::MinSize(10) });
                frontend.tick();
                (frontend, conn)
            };

            // Direct path: a fresh session per repeat, the secrets through the batched
            // driver in chunks of `batch_size`.
            let mut direct_results: Vec<Option<bool>> = Vec::new();
            let mut direct_elapsed = f64::INFINITY;
            for _ in 0..REPEATS {
                let mut direct_session = deployment.session(PolicySpec::MinSize(10));
                direct_session
                    .register_cached(&b.query, ApproxKind::Under, None)
                    .expect("the deployment cache is warm");
                let started = Instant::now();
                let mut results: Vec<Option<bool>> = Vec::with_capacity(secrets.len());
                for chunk in secrets.chunks(batch_size) {
                    results.extend(
                        deployment
                            .downgrade_batch(&mut direct_session, chunk, &name)
                            .into_iter()
                            .map(Result::ok),
                    );
                }
                direct_elapsed = direct_elapsed.min(started.elapsed().as_secs_f64());
                if direct_results.is_empty() {
                    direct_results = results;
                } else {
                    assert_eq!(results, direct_results, "direct repeats diverged");
                }
            }

            // Frontend path: ticks of `batch_size` typed downgrade requests each.
            let mut frontend_elapsed = f64::INFINITY;
            for _ in 0..REPEATS {
                let (mut frontend, conn) = fresh_frontend();
                let started = Instant::now();
                let mut results: Vec<Option<bool>> = Vec::with_capacity(secrets.len());
                for chunk in secrets.chunks(batch_size) {
                    for secret in chunk {
                        frontend.submit(
                            conn,
                            ServeRequest::Downgrade {
                                session,
                                secret: secret.clone(),
                                query: name.clone(),
                            },
                        );
                    }
                    for tagged in frontend.tick() {
                        match tagged.response {
                            ServeResponse::Answer(result) => results.push(result.ok()),
                            other => panic!("unexpected response {other:?}"),
                        }
                    }
                }
                frontend_elapsed = frontend_elapsed.min(started.elapsed().as_secs_f64());
                assert_eq!(
                    results, direct_results,
                    "frontend diverged from the direct driver at batch size {batch_size}"
                );
            }

            // Binary wire path: the same workload as framed protocol bytes, one `Downgrade`
            // frame per secret. Encoding and framing happen ahead of time (that work belongs
            // to the client); the timed loop is the server-side ingress — incremental frame
            // decode, zero-copy interned parse, submit, tick.
            let framed_chunks: Vec<Vec<u8>> = secrets
                .chunks(batch_size)
                .map(|chunk| {
                    let mut bytes = Vec::new();
                    for secret in chunk {
                        let line = wire::encode_request(&ServeRequest::Downgrade {
                            session,
                            secret: secret.clone(),
                            query: name.clone(),
                        })
                        .expect("downgrade requests are wire-safe");
                        wire::frame_into(&mut bytes, line.as_bytes());
                    }
                    bytes
                })
                .collect();
            let mut wire_elapsed = f64::INFINITY;
            for _ in 0..REPEATS {
                let (mut frontend, conn) = fresh_frontend();
                let mut interner = wire::NameInterner::new();
                let mut decoder = wire::FrameDecoder::new();
                let started = Instant::now();
                let mut results: Vec<Option<bool>> = Vec::with_capacity(secrets.len());
                for bytes in &framed_chunks {
                    for frame in decoder.feed(bytes) {
                        let payload = match frame {
                            wire::DecodedFrame::Frame(payload) => payload,
                            other => panic!("unexpected frame unit {other:?}"),
                        };
                        let text =
                            std::str::from_utf8(&payload).expect("framed requests are UTF-8");
                        let request = wire::parse_request_interned(text, &layout, &mut interner)
                            .expect("framed requests parse");
                        frontend.submit(conn, request);
                    }
                    for tagged in frontend.tick() {
                        match tagged.response {
                            ServeResponse::Answer(result) => results.push(result.ok()),
                            other => panic!("unexpected response {other:?}"),
                        }
                    }
                }
                wire_elapsed = wire_elapsed.min(started.elapsed().as_secs_f64());
                assert_eq!(
                    results, direct_results,
                    "the binary wire path diverged from the direct driver at batch size \
                     {batch_size}"
                );
            }

            // Bulk binary wire path: one `DowngradeBatch` frame carries the whole tick —
            // the shape a throughput-conscious binary client speaks at this batch size.
            let bulk_frames: Vec<Vec<u8>> = secrets
                .chunks(batch_size)
                .map(|chunk| {
                    let line = wire::encode_request(&ServeRequest::DowngradeBatch {
                        session,
                        secrets: chunk.to_vec(),
                        query: name.clone(),
                    })
                    .expect("batch requests are wire-safe");
                    wire::encode_frame(line.as_bytes())
                })
                .collect();
            let mut bulk_elapsed = f64::INFINITY;
            for _ in 0..REPEATS {
                let (mut frontend, conn) = fresh_frontend();
                let mut interner = wire::NameInterner::new();
                let mut decoder = wire::FrameDecoder::new();
                let started = Instant::now();
                let mut results: Vec<Option<bool>> = Vec::with_capacity(secrets.len());
                for bytes in &bulk_frames {
                    for frame in decoder.feed(bytes) {
                        let payload = match frame {
                            wire::DecodedFrame::Frame(payload) => payload,
                            other => panic!("unexpected frame unit {other:?}"),
                        };
                        let text =
                            std::str::from_utf8(&payload).expect("framed requests are UTF-8");
                        let request = wire::parse_request_interned(text, &layout, &mut interner)
                            .expect("framed requests parse");
                        frontend.submit(conn, request);
                    }
                    for tagged in frontend.tick() {
                        match tagged.response {
                            ServeResponse::Answers(answers) => {
                                results.extend(answers.into_iter().map(Result::ok));
                            }
                            other => panic!("unexpected response {other:?}"),
                        }
                    }
                }
                bulk_elapsed = bulk_elapsed.min(started.elapsed().as_secs_f64());
                assert_eq!(
                    results, direct_results,
                    "the bulk wire path diverged from the direct driver at batch size \
                     {batch_size}"
                );
            }

            FrontendRow {
                batch_size,
                requests: total_requests,
                workers,
                frontend_seconds: frontend_elapsed,
                frontend_rps: total_requests as f64 / frontend_elapsed.max(1e-12),
                direct_seconds: direct_elapsed,
                direct_rps: total_requests as f64 / direct_elapsed.max(1e-12),
                wire_seconds: wire_elapsed,
                wire_rps: total_requests as f64 / wire_elapsed.max(1e-12),
                bulk_seconds: bulk_elapsed,
                bulk_rps: total_requests as f64 / bulk_elapsed.max(1e-12),
            }
        })
        .collect()
}

/// Renders frontend rows as aligned text.
pub fn render_frontend(rows: &[FrontendRow]) -> String {
    let mut out = String::from(
        "Batch  Requests  Workers  Frontend (s / req/s)        Wire (s / req/s)            Bulk wire (s / req/s)       Direct (s / req/s)\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<6} {:>8}  {:>7}  {:>8.4} / {:<12.0} {:>8.4} / {:<12.0} {:>8.4} / {:<12.0} {:>8.4} / {:<12.0}\n",
            r.batch_size,
            r.requests,
            r.workers,
            r.frontend_seconds,
            r.frontend_rps,
            r.wire_seconds,
            r.wire_rps,
            r.bulk_seconds,
            r.bulk_rps,
            r.direct_seconds,
            r.direct_rps,
        ));
    }
    out
}

/// Renders serve rows as aligned text.
pub fn render_serve(rows: &[ServeRow]) -> String {
    let mut out = String::from(
        "#    Domain     Secrets  Workers  Downgrades seq/batch (s)   Speedup  Count seq/par (s)    Speedup\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<4} {:<9} {:>7}  {:>7}  {:>10.4} / {:<10.4} {:>6.2}x  {:>8.4} / {:<8.4} {:>6.2}x\n",
            r.id,
            r.domain,
            r.secrets,
            r.workers,
            r.seq_downgrade_seconds,
            r.batch_downgrade_seconds,
            r.downgrade_speedup,
            r.seq_count_seconds,
            r.par_count_seconds,
            r.count_speedup,
        ));
    }
    out
}

/// One row of the multi-reactor transport comparison (`report_serve --json`'s
/// `transport_rows`, recorded as `BENCH_pr7.json`): the seeded `SimNet` load generator driven
/// through a [`anosy::serve::ReactorPool`] at one reactor count.
#[derive(Debug, Clone)]
pub struct TransportRow {
    /// Reactor shards the pool ran.
    pub reactors: u64,
    /// Simulated connections (tenants) driven.
    pub connections: usize,
    /// Protocol requests scheduled across all connections.
    pub requests: usize,
    /// Wall-clock of the pool run.
    pub seconds: f64,
    /// `requests / seconds`.
    pub requests_per_sec: f64,
    /// This row's throughput over the `reactors = 1` row's.
    pub speedup_vs_one: f64,
    /// `host_parallelism() < reactors` — the row cannot demonstrate reactor scaling on this
    /// host (see [`capped_by_host`]).
    pub capped_by_host: bool,
}

/// Runs the `SimNet` load generator ([`anosy::serve::loadgen`]) at every reactor count in
/// `counts` and measures end-to-end throughput. **Equivalence is asserted before anything is
/// timed**: every multi-reactor run must deliver per-connection response streams element-wise
/// identical to the single-reactor run's ([`anosy::serve::loadgen::assert_equivalent`]). The
/// timed runs then share one warmed deployment so synthesis cost and cache state are held
/// fixed across counts.
pub fn transport_rows(
    tenants: usize,
    population_seed: u64,
    net_seed: u64,
    counts: &[u64],
) -> Vec<TransportRow> {
    use anosy::serve::loadgen::{self, LoadOptions};

    let population = loadgen::population(population_seed, tenants);
    let base = loadgen::run(&population, &LoadOptions::new(net_seed, 1).recording());
    for &reactors in counts {
        if reactors != 1 {
            let other =
                loadgen::run(&population, &LoadOptions::new(net_seed, reactors).recording());
            loadgen::assert_equivalent(&base, &other);
        }
    }

    let deployment =
        anosy::serve::popsim::warm_deployment(&population, &anosy::serve::ServeConfig::for_tests());
    let mut rows: Vec<TransportRow> = Vec::new();
    for &reactors in counts {
        let run = loadgen::run_on(&population, &LoadOptions::new(net_seed, reactors), &deployment);
        let report = &run.report;
        let speedup_vs_one = match rows.first() {
            Some(first) if first.reactors == 1 && first.requests_per_sec > 0.0 => {
                report.requests_per_sec / first.requests_per_sec
            }
            _ => 1.0,
        };
        rows.push(TransportRow {
            reactors,
            connections: report.connections,
            requests: report.requests,
            seconds: report.elapsed.as_secs_f64(),
            requests_per_sec: report.requests_per_sec,
            speedup_vs_one,
            capped_by_host: capped_by_host(reactors as usize),
        });
    }
    rows
}

/// Renders transport rows as an aligned text table (the `--json`-less `report_serve` output).
pub fn render_transport(rows: &[TransportRow]) -> String {
    let mut out = String::from(
        "Reactors  Conns  Requests  Seconds      req/s  vs 1 reactor  Capped by host\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>8}  {:>5}  {:>8}  {:>7.4}  {:>9.1}  {:>11.2}x  {}\n",
            r.reactors,
            r.connections,
            r.requests,
            r.seconds,
            r.requests_per_sec,
            r.speedup_vs_one,
            r.capped_by_host,
        ));
    }
    out
}

/// One row of the telemetry overhead comparison (`report_serve --json`'s `telemetry_rows`,
/// recorded as `BENCH_pr8.json`): the same seeded load run with per-reactor telemetry
/// collectors installed vs skipped ([`anosy::serve::loadgen::LoadOptions::telemetry`]). The
/// PR 8 overhead budget is `overhead_pct <= 5`.
#[derive(Debug, Clone)]
pub struct TelemetryRow {
    /// Reactor shards the pool ran.
    pub reactors: u64,
    /// Protocol requests scheduled across all connections.
    pub requests: usize,
    /// Best-of-N wall-clock with collectors off / on.
    pub off_seconds: f64,
    /// Best-of-N wall-clock with collectors on.
    pub on_seconds: f64,
    /// Throughput with collectors off.
    pub off_rps: f64,
    /// Throughput with collectors on.
    pub on_rps: f64,
    /// `(off_rps - on_rps) / off_rps * 100` — positive means recording cost throughput.
    pub overhead_pct: f64,
    /// Request-latency tail of the telemetry-on run, in **virtual time** (seed-stable).
    pub latency_p50: u64,
    /// 99th-percentile virtual request latency.
    pub latency_p99: u64,
    /// Worst virtual request latency.
    pub latency_max: u64,
}

/// One per-shard row of the reactor-skew breakdown (`report_serve --json`'s `shard_skew`):
/// how unevenly the hashed connections loaded the shards, read from each reactor's telemetry
/// report. Queue depths and latencies are in the simulator's virtual time, so the skew shape
/// is a pure function of the seeds.
#[derive(Debug, Clone)]
pub struct ShardSkewRow {
    /// Reactor count of the run this shard belonged to.
    pub reactors: u64,
    /// The shard (reactor index).
    pub shard: u64,
    /// Wire requests this shard parsed (`wire.requests`).
    pub requests: u64,
    /// Median queued work observed at tick time (`tick.queue_depth`).
    pub queue_p50: u64,
    /// 99th-percentile queue depth — the burst exposure of this shard.
    pub queue_p99: u64,
    /// Median virtual request latency on this shard (`request.latency`).
    pub latency_p50: u64,
    /// 99th-percentile virtual request latency on this shard.
    pub latency_p99: u64,
}

/// Measures telemetry overhead and per-shard skew with the `SimNet` load generator: at every
/// reactor count in `counts`, the same seeded population runs with collectors off and on
/// (best wall-clock of `iterations` runs each, one shared warmed deployment throughout), and
/// the telemetry-on run's per-shard reports become the [`ShardSkewRow`]s.
pub fn telemetry_rows(
    tenants: usize,
    population_seed: u64,
    net_seed: u64,
    counts: &[u64],
    iterations: usize,
) -> (Vec<TelemetryRow>, Vec<ShardSkewRow>) {
    use anosy::serve::loadgen::{self, LoadOptions};

    let population = loadgen::population(population_seed, tenants);
    let deployment =
        anosy::serve::popsim::warm_deployment(&population, &anosy::serve::ServeConfig::for_tests());
    let mut rows = Vec::new();
    let mut skew = Vec::new();
    for &reactors in counts {
        // The off and on runs interleave within each iteration — host clock-frequency drift
        // then biases both sides of the best-of equally instead of whichever batch ran in the
        // faster window.
        let mut best_off: Option<loadgen::PoolRun> = None;
        let mut best_on: Option<loadgen::PoolRun> = None;
        for _ in 0..iterations.max(1) {
            for (telemetry, slot) in [(false, &mut best_off), (true, &mut best_on)] {
                let options = LoadOptions::new(net_seed, reactors).telemetry(telemetry);
                let run = loadgen::run_on(&population, &options, &deployment);
                if slot.as_ref().is_none_or(|b| run.report.elapsed < b.report.elapsed) {
                    *slot = Some(run);
                }
            }
        }
        let off = best_off.expect("at least one iteration ran");
        let on = best_on.expect("at least one iteration ran");
        let off_rps = off.report.requests_per_sec;
        let on_rps = on.report.requests_per_sec;
        rows.push(TelemetryRow {
            reactors,
            requests: on.report.requests,
            off_seconds: off.report.elapsed.as_secs_f64(),
            on_seconds: on.report.elapsed.as_secs_f64(),
            off_rps,
            on_rps,
            overhead_pct: (off_rps - on_rps) / off_rps.max(1e-9) * 100.0,
            latency_p50: on.report.latency.p50,
            latency_p99: on.report.latency.p99,
            latency_max: on.report.latency.max,
        });
        for report in &on.telemetry {
            let quantiles = |name: &str| {
                report
                    .metrics
                    .histogram(name)
                    .map(|h| (h.quantile(0.50), h.quantile(0.99)))
                    .unwrap_or((0, 0))
            };
            let (queue_p50, queue_p99) = quantiles("tick.queue_depth");
            let (latency_p50, latency_p99) = quantiles("request.latency");
            skew.push(ShardSkewRow {
                reactors,
                shard: report.shard,
                requests: report.metrics.counter("wire.requests"),
                queue_p50,
                queue_p99,
                latency_p50,
                latency_p99,
            });
        }
    }
    (rows, skew)
}

/// Renders telemetry overhead rows as an aligned text table.
pub fn render_telemetry(rows: &[TelemetryRow]) -> String {
    let mut out = String::from(
        "Reactors  Requests   off req/s    on req/s  Overhead  Lat p50/p99/max (virtual)\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>8}  {:>8}  {:>10.1}  {:>10.1}  {:>7.2}%  {}/{}/{}\n",
            r.reactors,
            r.requests,
            r.off_rps,
            r.on_rps,
            r.overhead_pct,
            r.latency_p50,
            r.latency_p99,
            r.latency_max,
        ));
    }
    out
}

/// Renders the per-shard skew rows as an aligned text table.
pub fn render_shard_skew(rows: &[ShardSkewRow]) -> String {
    let mut out =
        String::from("Reactors  Shard  Requests  Queue p50/p99  Latency p50/p99 (virtual)\n");
    for r in rows {
        out.push_str(&format!(
            "{:>8}  {:>5}  {:>8}  {:>6}/{:<6}  {:>7}/{:<7}\n",
            r.reactors, r.shard, r.requests, r.queue_p50, r.queue_p99, r.latency_p50, r.latency_p99,
        ));
    }
    out
}

/// One row of the journaling-overhead comparison (`report_serve --json`'s `journal_rows`,
/// recorded as `BENCH_pr9.json`): the same seeded population served by a cold deployment with
/// the durability journal off vs attached under each flush policy. Synthesis commits are what
/// get journaled, so every run starts cold (fresh deployment, fresh journal file). The PR 9
/// overhead budget is `overhead_pct <= 5` for the `on-tick` policy.
#[derive(Debug, Clone)]
pub struct JournalRow {
    /// `"off"`, or the flush policy (`"every-entry"`, `"every-8"`, `"on-tick"`).
    pub policy: String,
    /// Protocol requests scheduled across all connections.
    pub requests: usize,
    /// Best-of-N wall-clock of the pool run.
    pub seconds: f64,
    /// Throughput of the best run.
    pub rps: f64,
    /// `(off_rps - rps) / off_rps * 100` — positive means journaling cost throughput.
    pub overhead_pct: f64,
    /// Journal records appended during the best run (0 for the `off` row).
    pub appended: u64,
}

/// Measures journaling overhead with the `SimNet` load generator: the same seeded population
/// runs against a cold deployment with no journal, then with a journal under each flush
/// policy (best wall-clock of `iterations` runs each, interleaved so clock drift biases every
/// policy equally). Every run synthesizes the palette from scratch — commits are the traffic
/// that reaches the journal.
pub fn journal_rows(
    tenants: usize,
    population_seed: u64,
    net_seed: u64,
    iterations: usize,
) -> Vec<JournalRow> {
    use anosy::serve::loadgen::{self, LoadOptions};
    use anosy::serve::{popsim, FlushPolicy, JournalConfig, ServeConfig};

    let population = loadgen::population(population_seed, tenants);
    let policies: [(&str, Option<FlushPolicy>); 4] = [
        ("off", None),
        ("every-entry", Some(FlushPolicy::EveryEntry)),
        ("every-8", Some(FlushPolicy::EveryN(8))),
        ("on-tick", Some(FlushPolicy::OnTick)),
    ];
    let dir = std::env::temp_dir();
    let mut best: Vec<Option<(Duration, usize, f64, u64)>> = vec![None; policies.len()];
    for _ in 0..iterations.max(1) {
        for (slot, (label, policy)) in best.iter_mut().zip(&policies) {
            let mut config = ServeConfig::for_tests();
            if let Some(flush) = policy {
                let path = dir.join(format!("anosy-bench-journal-{label}.journal"));
                let journal = JournalConfig::new(&path).with_flush(*flush);
                // A fresh journal every run: leftover records would replay into a warm
                // cache and starve the run of synthesis commits to journal.
                let _ = std::fs::remove_file(&path);
                let _ = std::fs::remove_file(journal.snapshot_path());
                config = config.with_journal(journal);
            }
            let deployment = popsim::cold_deployment(&population, &config);
            deployment.open_journal(false).expect("journal opens on a fresh file");
            let options = LoadOptions::new(net_seed, 2).telemetry(false);
            let run = loadgen::run_on(&population, &options, &deployment);
            let appended = deployment.journal_stats().appended;
            if slot.as_ref().is_none_or(|b| run.report.elapsed < b.0) {
                *slot = Some((
                    run.report.elapsed,
                    run.report.requests,
                    run.report.requests_per_sec,
                    appended,
                ));
            }
        }
    }
    let off_rps = best[0].as_ref().expect("at least one iteration ran").2;
    policies
        .iter()
        .zip(&best)
        .map(|((label, _), slot)| {
            let (elapsed, requests, rps, appended) = slot.expect("at least one iteration ran");
            JournalRow {
                policy: label.to_string(),
                requests,
                seconds: elapsed.as_secs_f64(),
                rps,
                overhead_pct: (off_rps - rps) / off_rps.max(1e-9) * 100.0,
                appended,
            }
        })
        .collect()
}

/// Renders journal overhead rows as an aligned text table.
pub fn render_journal(rows: &[JournalRow]) -> String {
    let mut out = String::from("Policy       Requests  Seconds      req/s  Overhead  Appended\n");
    for r in rows {
        out.push_str(&format!(
            "{:<11}  {:>8}  {:>7.4}  {:>9.1}  {:>7.2}%  {:>8}\n",
            r.policy, r.requests, r.seconds, r.rps, r.overhead_pct, r.appended,
        ));
    }
    out
}

/// One row of the restart-latency comparison (`report_serve --json`'s `restart_rows`,
/// recorded as `BENCH_pr9.json`): how long a warm start (snapshot load + journal replay of
/// `entries` cached entries, split roughly half/half) takes vs constructing the same
/// deployment cold with nothing to recover.
#[derive(Debug, Clone)]
pub struct RestartRow {
    /// Cached entries recovered by the warm start (snapshot + journal together).
    pub entries: usize,
    /// Entries that came from the compacted snapshot.
    pub snapshot_entries: usize,
    /// Entries replayed from the journal tail.
    pub journaled_entries: usize,
    /// Best-of-N construction time of a bare deployment (no journal, nothing to load).
    pub cold_seconds: f64,
    /// Best-of-N time of `Deployment::new` + `open_journal` over the populated files.
    pub warm_seconds: f64,
}

/// Measures restart-to-warm latency at each cache size in `sizes`: a snapshot file holding
/// half the entries and a journal holding the rest are staged once per size, then the
/// recovery path (`Deployment::new` + [`anosy::serve::Deployment::open_journal`]) is timed
/// against a bare cold construction (best of `iterations` each). Entries are synthetic
/// single-box caches — the cost scales with entry count and codec work, not solver work.
pub fn restart_rows(sizes: &[usize], iterations: usize) -> Vec<RestartRow> {
    use anosy::core::SharedCacheEntry;
    use anosy::serve::{save_entries, Journal, JournalConfig, ServeConfig};

    let layout = SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build();
    let entry = |k: i64| SharedCacheEntry::<IntervalDomain> {
        pred: ((IntExpr::var(0) - k).abs() + IntExpr::var(1)).le(100),
        layout: layout.clone(),
        kind: ApproxKind::Under,
        members: None,
        indsets: IndSets::new(
            ApproxKind::Under,
            IntervalDomain::from_intervals(vec![AInt::new(0, 100), AInt::new(0, 100)]),
            IntervalDomain::from_intervals(vec![AInt::new(0, 400), AInt::new(101, 400)]),
        ),
    };
    let mut rows = Vec::new();
    for &size in sizes {
        let path = std::env::temp_dir().join(format!("anosy-bench-restart-{size}.journal"));
        let journal_config = JournalConfig::new(&path);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(journal_config.snapshot_path());
        // Stage the recovery inputs once: the first half as a compacted snapshot, the rest
        // as journal-tail records (distinct predicates, so nothing dedups away).
        let snapshot_entries = size / 2;
        let staged: Vec<_> = (0..size).map(|k| entry(k as i64)).collect();
        save_entries(&journal_config.snapshot_path(), &staged[..snapshot_entries])
            .expect("snapshot stages");
        let recovered = Journal::<IntervalDomain>::recover(journal_config.clone())
            .expect("journal opens on a fresh file");
        for e in &staged[snapshot_entries..] {
            recovered.journal.append(e).expect("journal append stages");
        }
        drop(recovered);

        let config = ServeConfig::for_tests();
        let journaled = config.clone().with_journal(journal_config);
        let mut cold_seconds = f64::INFINITY;
        let mut warm_seconds = f64::INFINITY;
        let mut journaled_entries = 0;
        for _ in 0..iterations.max(1) {
            let start = Instant::now();
            let cold: Deployment<IntervalDomain> = Deployment::new(layout.clone(), config.clone());
            cold_seconds = cold_seconds.min(start.elapsed().as_secs_f64());
            assert_eq!(cold.stats().entries, 0);

            let start = Instant::now();
            let warm: Deployment<IntervalDomain> =
                Deployment::new(layout.clone(), journaled.clone());
            let recovery =
                warm.open_journal(false).expect("recovery succeeds").expect("journal configured");
            warm_seconds = warm_seconds.min(start.elapsed().as_secs_f64());
            assert_eq!(recovery.snapshot.installed + recovery.replayed, size);
            journaled_entries = recovery.replayed;
        }
        rows.push(RestartRow {
            entries: size,
            snapshot_entries,
            journaled_entries,
            cold_seconds,
            warm_seconds,
        });
    }
    rows
}

/// Renders restart-latency rows as an aligned text table.
pub fn render_restart(rows: &[RestartRow]) -> String {
    let mut out =
        String::from(" Entries  Snapshot  Journaled  Cold start  Warm start (snapshot+replay)\n");
    for r in rows {
        out.push_str(&format!(
            "{:>8}  {:>8}  {:>9}  {:>9.6}s  {:>9.6}s\n",
            r.entries, r.snapshot_entries, r.journaled_entries, r.cold_seconds, r.warm_seconds,
        ));
    }
    out
}

/// Renders serve rows (plus the frontend tick-throughput rows, the multi-reactor transport
/// rows, the telemetry overhead and per-shard skew rows, the journaling-overhead and
/// restart-latency rows, the deployment-level aggregate block and a free-text analysis of the
/// measurement conditions) as the `BENCH_pr3.json` / `BENCH_pr4.json` / `BENCH_pr7.json` /
/// `BENCH_pr8.json` / `BENCH_pr9.json` document. Every parallel row carries `capped_by_host`
/// (see [`capped_by_host`]).
#[allow(clippy::too_many_arguments)] // one parameter per report section, called from one place
pub fn serve_rows_to_json(
    rows: &[ServeRow],
    frontend: &[FrontendRow],
    transport: &[TransportRow],
    telemetry: &[TelemetryRow],
    shard_skew: &[ShardSkewRow],
    journal: &[JournalRow],
    restart: &[RestartRow],
    deployment_stats_json: &str,
    analysis: &str,
) -> String {
    let mut out = String::from("{\n  \"figure\": \"serve_throughput\",\n");
    out.push_str(&format!("  \"host_parallelism\": {},\n", host_parallelism()));
    out.push_str(&format!("  \"analysis\": \"{}\",\n", json_escape(analysis)));
    out.push_str(&format!("  \"deployment\": {deployment_stats_json},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"id\": \"{}\", \"domain\": \"{}\", \"secrets\": {}, \"workers\": {}, ",
                "\"capped_by_host\": {}, ",
                "\"seq_downgrade_seconds\": {:.6}, \"batch_downgrade_seconds\": {:.6}, ",
                "\"downgrade_speedup\": {:.3}, ",
                "\"seq_count_seconds\": {:.6}, \"par_count_seconds\": {:.6}, ",
                "\"count_speedup\": {:.3}, \"models\": {}}}{}\n"
            ),
            r.id,
            r.domain,
            r.secrets,
            r.workers,
            capped_by_host(r.workers),
            r.seq_downgrade_seconds,
            r.batch_downgrade_seconds,
            r.downgrade_speedup,
            r.seq_count_seconds,
            r.par_count_seconds,
            r.count_speedup,
            r.models,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n  \"frontend_rows\": [\n");
    for (i, r) in frontend.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"batch_size\": {}, \"requests\": {}, \"workers\": {}, ",
                "\"capped_by_host\": {}, ",
                "\"frontend_seconds\": {:.6}, \"frontend_rps\": {:.1}, ",
                "\"wire_seconds\": {:.6}, \"wire_rps\": {:.1}, ",
                "\"bulk_seconds\": {:.6}, \"bulk_rps\": {:.1}, ",
                "\"direct_seconds\": {:.6}, \"direct_rps\": {:.1}}}{}\n"
            ),
            r.batch_size,
            r.requests,
            r.workers,
            capped_by_host(r.workers),
            r.frontend_seconds,
            r.frontend_rps,
            r.wire_seconds,
            r.wire_rps,
            r.bulk_seconds,
            r.bulk_rps,
            r.direct_seconds,
            r.direct_rps,
            if i + 1 == frontend.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n  \"transport_rows\": [\n");
    for (i, r) in transport.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"reactors\": {}, \"connections\": {}, \"requests\": {}, ",
                "\"seconds\": {:.6}, \"requests_per_sec\": {:.1}, ",
                "\"speedup_vs_one\": {:.3}, \"capped_by_host\": {}}}{}\n"
            ),
            r.reactors,
            r.connections,
            r.requests,
            r.seconds,
            r.requests_per_sec,
            r.speedup_vs_one,
            r.capped_by_host,
            if i + 1 == transport.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n  \"telemetry_rows\": [\n");
    for (i, r) in telemetry.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"reactors\": {}, \"requests\": {}, ",
                "\"off_seconds\": {:.6}, \"on_seconds\": {:.6}, ",
                "\"off_rps\": {:.1}, \"on_rps\": {:.1}, \"overhead_pct\": {:.2}, ",
                "\"latency_p50\": {}, \"latency_p99\": {}, \"latency_max\": {}}}{}\n"
            ),
            r.reactors,
            r.requests,
            r.off_seconds,
            r.on_seconds,
            r.off_rps,
            r.on_rps,
            r.overhead_pct,
            r.latency_p50,
            r.latency_p99,
            r.latency_max,
            if i + 1 == telemetry.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n  \"shard_skew\": [\n");
    for (i, r) in shard_skew.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"reactors\": {}, \"shard\": {}, \"requests\": {}, ",
                "\"queue_p50\": {}, \"queue_p99\": {}, ",
                "\"latency_p50\": {}, \"latency_p99\": {}}}{}\n"
            ),
            r.reactors,
            r.shard,
            r.requests,
            r.queue_p50,
            r.queue_p99,
            r.latency_p50,
            r.latency_p99,
            if i + 1 == shard_skew.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n  \"journal_rows\": [\n");
    for (i, r) in journal.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"policy\": \"{}\", \"requests\": {}, \"seconds\": {:.6}, ",
                "\"rps\": {:.1}, \"overhead_pct\": {:.2}, \"appended\": {}}}{}\n"
            ),
            json_escape(&r.policy),
            r.requests,
            r.seconds,
            r.rps,
            r.overhead_pct,
            r.appended,
            if i + 1 == journal.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n  \"restart_rows\": [\n");
    for (i, r) in restart.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"entries\": {}, \"snapshot_entries\": {}, \"journaled_entries\": {}, ",
                "\"cold_seconds\": {:.6}, \"warm_seconds\": {:.6}}}{}\n"
            ),
            r.entries,
            r.snapshot_entries,
            r.journaled_entries,
            r.cold_seconds,
            r.warm_seconds,
            if i + 1 == restart.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Precision comparison against the abstract-interpretation baseline for every benchmark.
pub fn baseline_comparison(synth_config: &SynthConfig) -> Vec<anosy::suite::BaselineComparison> {
    let mut solver = Solver::with_config(synth_config.solver.clone());
    let mut synthesizer = Synthesizer::with_config(synth_config.clone());
    all_benchmarks()
        .into_iter()
        .map(|b| {
            let prior = IntervalDomain::top(b.query.layout());
            let (baseline_true, _) = anosy::suite::ai_posterior(&b.query, &prior);
            let exact = b.ground_truth(&mut solver).expect("counting fits the budget");
            let over = synthesizer
                .synth_interval(&b.query, ApproxKind::Over)
                .expect("synthesis fits the budget");
            let under = synthesizer
                .synth_interval(&b.query, ApproxKind::Under)
                .expect("synthesis fits the budget");
            anosy::suite::BaselineComparison {
                query: b.query.name().to_string(),
                exact_true: exact.0,
                baseline_true: baseline_true.size(),
                anosy_over_true: over.truthy().size(),
                anosy_under_true: under.truthy().size(),
            }
        })
        .collect()
}

/// Renders the Figure 6 survivor curves as a text series (one line per powerset size).
pub fn render_fig6(outcomes: &[anosy::suite::AdvertisingOutcome], num_queries: usize) -> String {
    let mut out = String::from("k   survivors after the i-th authorized declassification query\n");
    for o in outcomes {
        let curve = o.survivor_curve(num_queries);
        let rendered: Vec<String> = curve.iter().map(|n| n.to_string()).collect();
        out.push_str(&format!(
            "{:<3} [{}]  (max {} queries, mean {:.1})\n",
            o.k,
            rendered.join(", "),
            o.max_authorized(),
            o.mean_authorized()
        ));
    }
    out
}

/// Ensures the powerset domain really is a domain the harness can use generically (guards against
/// regressions in the facade's re-exports).
pub fn sanity_check_domains(layout: &SecretLayout) -> (u128, u128) {
    (IntervalDomain::top(layout).size(), PowersetDomain::top(layout).size())
}

/// One macro-benchmark row: a full simulated tenant population (`anosy_suite::population`)
/// compiled onto a `SimNet` schedule and driven end-to-end through the wire protocol against a
/// **cold** deployment — synthesis misses are part of the measured workload, so the cache hit
/// rate reflects the popularity skew instead of a pre-warmed palette.
#[derive(Debug, Clone)]
pub struct PopulationRow {
    /// Popularity skew of the run (`uniform` / `zipf` / `sharp`).
    pub label: String,
    /// Simulated tenants (one connection + one session each).
    pub tenants: usize,
    /// Ranked palette queries the population draws from (plus the adversarial probe ladder).
    pub palette: usize,
    /// Distinct queries any tenant actually used — under skew, far fewer than the palette.
    pub distinct_queries: usize,
    /// Protocol requests scheduled (opens, registers, downgrades, knowledge probes, closes).
    pub requests: usize,
    /// Worker threads in the deployment pool.
    pub workers: usize,
    /// Wall-clock of the whole replay, including cold synthesis.
    pub seconds: f64,
    /// End-to-end requests per second through the event loop.
    pub requests_per_second: f64,
    /// Frontend ticks the reactor ran.
    pub ticks: u64,
    /// Registrations answered from the shared synthesis cache.
    pub synth_hits: u64,
    /// Registrations that ran the full synthesize-and-verify pipeline.
    pub synth_misses: u64,
    /// `synth_hits / (synth_hits + synth_misses)` over every cache lookup, including the
    /// registry replay each session open performs (dominant at high tenant counts).
    pub synth_hit_rate: f64,
    /// `RegisterQuery` requests the population scheduled.
    pub register_requests: usize,
    /// `1 - synth_misses / register_requests` — the skew signal proper: each register request
    /// triggers exactly one cache lookup and each miss synthesizes one distinct query, so a
    /// Zipf head (fewer distinct queries across the same register stream) converges the cold
    /// cache after fewer misses.
    pub register_hit_rate: f64,
    /// Denials across all responses (refused downgrades + rejected requests).
    pub denials: u64,
    /// `denials / requests`.
    pub denial_rate: f64,
    /// Sessions still open at drain — the population's lingering tenants, exactly.
    pub open_at_drain: usize,
}

/// Drives one population per skew through the full serving stack and measures it.
///
/// Generation determinism is asserted before anything is timed (the same config must
/// fingerprint-identically twice — a row from an unreproducible workload is worthless); the
/// element-wise oracle equivalence of the very same compile-and-replay path is covered by
/// `anosy-serve`'s `population_sim.rs` / `population_scale.rs` tiers.
pub fn population_rows(
    seed: u64,
    tenants: usize,
    palette: usize,
    workers: usize,
    synth_config: &SynthConfig,
) -> Vec<PopulationRow> {
    use anosy::serve::popsim::{self, CompileOptions};
    use anosy::serve::{Frontend, ServeConfig, Server, ServerConfig};
    use anosy::suite::population::{Population, PopulationConfig, Skew, TenantAction};

    [(Skew::Uniform, "uniform"), (Skew::Zipf, "zipf"), (Skew::Sharp, "sharp")]
        .into_iter()
        .map(|(skew, label)| {
            let config = PopulationConfig::paper(seed)
                .with_tenants(tenants)
                .with_palette(palette)
                .with_skew(skew)
                .with_waves(tenants.div_ceil(50).max(1));
            let population = Population::generate(&config);
            assert_eq!(
                population.fingerprint(),
                Population::generate(&config).fingerprint(),
                "population generation must be deterministic before it is worth timing"
            );

            let options = CompileOptions::new(seed ^ 0xbe7c)
                .with_max_chunk(64)
                .with_max_delay(2)
                .with_ticks_per_window(4);
            let compiled = popsim::compile(&population, &options);
            let serve_config =
                ServeConfig::new().with_workers(workers).with_synth(synth_config.clone());
            let deployment = popsim::cold_deployment(&population, &serve_config);
            let mut server = Server::new(
                Frontend::new(deployment),
                compiled.net,
                ServerConfig::new().ticked(true),
            );
            let started = Instant::now();
            server.run();
            let elapsed = started.elapsed();

            let frontend = server.frontend().stats();
            assert_eq!(frontend.tenants, population.tenants.len() as u64);
            let cache = server.frontend().deployment().stats().cache;
            let (_, _, lingering) = population.exit_profile();
            assert_eq!(server.frontend().open_sessions(), lingering, "session leak at drain");
            let register_requests = population
                .tenants
                .iter()
                .flat_map(|t| t.bursts.iter().flatten())
                .filter(|a| matches!(a, TenantAction::Register { .. }))
                .count();

            PopulationRow {
                label: label.to_string(),
                tenants: population.tenants.len(),
                palette,
                distinct_queries: population.distinct_queries_used(),
                requests: compiled.requests,
                workers,
                seconds: elapsed.as_secs_f64(),
                requests_per_second: compiled.requests as f64 / elapsed.as_secs_f64().max(1e-12),
                ticks: frontend.ticks,
                synth_hits: cache.synth_hits,
                synth_misses: cache.synth_misses,
                synth_hit_rate: cache.hit_ratio(),
                register_requests,
                register_hit_rate: 1.0
                    - cache.synth_misses as f64 / register_requests.max(1) as f64,
                denials: frontend.denials,
                denial_rate: frontend.denials as f64 / compiled.requests.max(1) as f64,
                open_at_drain: lingering,
            }
        })
        .collect()
}

/// Renders population rows as aligned text.
pub fn render_population(rows: &[PopulationRow]) -> String {
    let mut out = String::from(
        "Skew     Tenants  Palette  Used  Requests  Seconds    req/s     Reg hit   Denials  Open\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:>7}  {:>7}  {:>4}  {:>8}  {:>8.3}  {:>9.0}  {:>7.1}%  {:>7}  {:>4}\n",
            r.label,
            r.tenants,
            r.palette,
            r.distinct_queries,
            r.requests,
            r.seconds,
            r.requests_per_second,
            r.register_hit_rate * 100.0,
            r.denials,
            r.open_at_drain,
        ));
    }
    out
}

/// Renders population rows as the `BENCH_pr6.json` document.
pub fn population_rows_to_json(rows: &[PopulationRow], analysis: &str) -> String {
    let mut out = String::from("{\n  \"figure\": \"population_macro\",\n");
    out.push_str(&format!("  \"host_parallelism\": {},\n", host_parallelism()));
    out.push_str(&format!("  \"analysis\": \"{}\",\n", json_escape(analysis)));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"skew\": \"{}\", \"tenants\": {}, \"palette\": {}, ",
                "\"distinct_queries\": {}, \"requests\": {}, \"workers\": {}, ",
                "\"seconds\": {:.6}, \"requests_per_second\": {:.1}, \"ticks\": {}, ",
                "\"synth_hits\": {}, \"synth_misses\": {}, \"synth_hit_rate\": {:.4}, ",
                "\"register_requests\": {}, \"register_hit_rate\": {:.4}, ",
                "\"denials\": {}, \"denial_rate\": {:.4}, \"open_at_drain\": {}}}{}\n"
            ),
            json_escape(&r.label),
            r.tenants,
            r.palette,
            r.distinct_queries,
            r.requests,
            r.workers,
            r.seconds,
            r.requests_per_second,
            r.ticks,
            r.synth_hits,
            r.synth_misses,
            r.synth_hit_rate,
            r.register_requests,
            r.register_hit_rate,
            r.denials,
            r.denial_rate,
            r.open_at_drain,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_for_exact_benchmarks() {
        let mut solver = Solver::new();
        let rows = table1(&mut solver);
        assert_eq!(rows.len(), 5);
        for r in rows.iter().filter(|r| r.exact_bounds) {
            assert_eq!(r.measured, r.paper, "{}", r.id);
        }
        let text = render_table1(&rows);
        assert!(text.contains("B1"));
        assert!(text.contains("exact"));
    }

    #[test]
    fn fig5_row_for_birthday_is_verified_and_reasonably_precise() {
        let b = anosy::suite::benchmarks::birthday();
        let row = fig5_row(&b, Fig5Domain::Intervals, ApproxKind::Under, &quick_synth_config());
        assert!(row.verified);
        assert_eq!(row.sizes.0, 259); // the True set is exactly representable by one box
        assert!(row.diff_percent.0 < 1e-9);
        let row_p =
            fig5_row(&b, Fig5Domain::Powersets(3), ApproxKind::Under, &quick_synth_config());
        assert!(row_p.verified);
        assert!(row_p.sizes.1 >= row.sizes.1);
        let text = render_fig5(&[row, row_p]);
        assert!(text.contains("under-approximation"));
    }

    #[test]
    fn fig5_json_has_one_object_per_row_and_parseable_shape() {
        let rows = vec![Fig5Row {
            id: "B1".to_string(),
            kind: ApproxKind::Under,
            sizes: (259, 9620),
            diff_percent: (0.0, 27.37),
            verify_time: Duration::from_micros(7),
            synth_time: Duration::from_micros(65),
            verified: true,
            synth_nodes: 420,
            cache_hits: 1700,
            cache_misses: 300,
            memo_depth: [[0, 0, 9], [0, 0, 4], [7, 3, 0], [0, 0, 0]],
            memo_depth_configured: 8,
            memo_depth_suggested: 8,
        }];
        let json = fig5_rows_to_json("fig5a_intervals", &rows);
        assert_eq!(json.matches("{\"id\"").count(), rows.len());
        assert!(json.contains("\"figure\": \"fig5a_intervals\""));
        assert!(json.contains("\"host_parallelism\": "));
        assert!(
            json.contains("\"capped_by_host\": false"),
            "fig5 measurements are single-threaded, never capped"
        );
        assert!(json.contains("\"true_size\": 259"));
        assert!(json.contains("\"verified\": true"));
        assert!(json.contains("\"synth_nodes\": 420"));
        assert!(json.contains("\"cache_hits\": 1700"));
        assert!(json.contains("\"cache_misses\": 300"));
        assert!(json.contains("\"box_memo_depth\": ["));
        assert!(json.contains("{\"depth\": \"1-3\", \"hits\": 0, \"misses\": 0, \"bypassed\": 9}"));
        assert!(json.contains("{\"depth\": \"8-15\", \"hits\": 7, \"misses\": 3, \"bypassed\": 0}"));
        assert!(json.contains("\"box_memo_min_depth\": {\"configured\": 8, \"suggested\": 8}"));
        // Crude but dependency-free well-formedness checks.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",\n  ]"), "no trailing comma before the array close");
    }

    #[test]
    fn size_formatting_matches_the_papers_style() {
        assert_eq!(fmt_size(259), "259");
        assert_eq!(fmt_size(13_246), "13246");
        assert!(fmt_size(24_300_000).contains('e'));
    }

    #[test]
    fn baseline_comparison_shows_anosy_at_least_as_precise() {
        for c in baseline_comparison(&quick_synth_config()) {
            assert!(c.anosy_over_true <= c.baseline_true, "{}", c.query);
            assert!(c.anosy_under_true <= c.exact_true, "{}", c.query);
        }
    }

    #[test]
    fn fig6_rendering_contains_one_line_per_k() {
        let outcomes = vec![
            anosy::suite::AdvertisingOutcome { k: 1, authorized_per_run: vec![1, 2] },
            anosy::suite::AdvertisingOutcome { k: 3, authorized_per_run: vec![2, 3] },
        ];
        let text = render_fig6(&outcomes, 3);
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("max 3"));
    }

    #[test]
    fn domain_sanity_check() {
        let layout = SecretLayout::builder().field("x", 0, 9).build();
        assert_eq!(sanity_check_domains(&layout), (10, 10));
    }

    #[test]
    fn deterministic_secrets_are_reproducible_and_in_layout() {
        let layout = SecretLayout::builder().field("x", 0, 400).field("y", -3, 7).build();
        let a = deterministic_secrets(&layout, 100, 7);
        let b = deterministic_secrets(&layout, 100, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|p| layout.admits(p)));
        assert_ne!(a, deterministic_secrets(&layout, 100, 8));
    }

    #[test]
    fn serve_rows_internal_equivalence_checks_pass_on_a_small_run() {
        // serve_rows asserts batch == loop and sharded count == sequential count internally;
        // running it at a reduced size is the smoke test (the full size is report_serve's job).
        let rows = serve_rows::<IntervalDomain>(2, 400, &quick_synth_config(), None);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(r.models > 0, "{}", r.id);
            assert_eq!(r.secrets, 400);
            assert_eq!(r.workers, 2);
        }
        let text = render_serve(&rows);
        assert!(text.contains("B1") && text.contains("Speedup"));
        let frontend = frontend_rows(2, 200, &quick_synth_config(), &[1, 50]);
        assert_eq!(frontend.len(), 2);
        for f in &frontend {
            assert_eq!(f.requests, 200);
            assert!(f.frontend_rps > 0.0 && f.wire_rps > 0.0 && f.bulk_rps > 0.0);
            assert!(f.direct_rps > 0.0);
        }
        assert!(render_frontend(&frontend).contains("req/s"));
        let transport = vec![
            TransportRow {
                reactors: 1,
                connections: 16,
                requests: 200,
                seconds: 0.05,
                requests_per_sec: 4000.0,
                speedup_vs_one: 1.0,
                capped_by_host: capped_by_host(1),
            },
            TransportRow {
                reactors: 4,
                connections: 16,
                requests: 200,
                seconds: 0.04,
                requests_per_sec: 5000.0,
                speedup_vs_one: 1.25,
                capped_by_host: capped_by_host(4),
            },
        ];
        assert!(render_transport(&transport).contains("vs 1 reactor"));
        let telemetry = vec![TelemetryRow {
            reactors: 2,
            requests: 200,
            off_seconds: 0.05,
            on_seconds: 0.051,
            off_rps: 4000.0,
            on_rps: 3920.0,
            overhead_pct: 2.0,
            latency_p50: 7,
            latency_p99: 63,
            latency_max: 90,
        }];
        assert!(render_telemetry(&telemetry).contains("Overhead"));
        let shard_skew = vec![
            ShardSkewRow {
                reactors: 2,
                shard: 0,
                requests: 120,
                queue_p50: 1,
                queue_p99: 7,
                latency_p50: 7,
                latency_p99: 63,
            },
            ShardSkewRow {
                reactors: 2,
                shard: 1,
                requests: 80,
                queue_p50: 1,
                queue_p99: 3,
                latency_p50: 7,
                latency_p99: 31,
            },
        ];
        assert!(render_shard_skew(&shard_skew).contains("Shard"));
        let journal = vec![
            JournalRow {
                policy: "off".into(),
                requests: 200,
                seconds: 0.05,
                rps: 4000.0,
                overhead_pct: 0.0,
                appended: 0,
            },
            JournalRow {
                policy: "on-tick".into(),
                requests: 200,
                seconds: 0.051,
                rps: 3920.0,
                overhead_pct: 2.0,
                appended: 17,
            },
        ];
        assert!(render_journal(&journal).contains("Overhead"));
        let restart = vec![RestartRow {
            entries: 1000,
            snapshot_entries: 500,
            journaled_entries: 500,
            cold_seconds: 0.0001,
            warm_seconds: 0.02,
        }];
        assert!(render_restart(&restart).contains("Warm start"));
        let json = serve_rows_to_json(
            &rows,
            &frontend,
            &transport,
            &telemetry,
            &shard_skew,
            &journal,
            &restart,
            "{\"workers\": 2}",
            "single-core \"host\"\nwith C:\\cores",
        );
        assert_eq!(json.matches("{\"id\"").count(), 5);
        assert_eq!(json.matches("{\"batch_size\"").count(), 2);
        assert_eq!(json.matches("{\"reactors\"").count(), 2 + telemetry.len() + shard_skew.len());
        assert_eq!(json.matches("{\"policy\"").count(), journal.len());
        assert_eq!(json.matches("{\"entries\"").count(), restart.len());
        assert_eq!(json.matches("\"overhead_pct\"").count(), 1 + journal.len());
        assert_eq!(json.matches("\"queue_p99\"").count(), 2);
        assert!(json.contains("\"figure\": \"serve_throughput\""));
        assert!(json.contains("\"domain\": \"interval\""));
        assert!(
            json.contains("single-core \\\"host\\\"\\nwith C:\\\\cores"),
            "quotes, newlines and backslashes are escaped"
        );
        assert!(json.contains("\"host_parallelism\": "));
        // Every parallel row carries the machine-readable host-cap flag.
        assert_eq!(
            json.matches("\"capped_by_host\": ").count(),
            rows.len() + frontend.len() + transport.len()
        );
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(!json.contains(",\n  ]"), "no trailing comma before an array close");
    }

    #[test]
    fn telemetry_rows_measure_overhead_and_per_shard_skew() {
        let (rows, skew) = telemetry_rows(12, 41, 43, &[1, 2], 1);
        assert_eq!(rows.len(), 2);
        assert_eq!(skew.len(), 3, "one skew row per shard: 1 + 2");
        for r in &rows {
            assert!(r.off_rps > 0.0 && r.on_rps > 0.0);
            assert!(r.latency_p50 <= r.latency_p99 && r.latency_p99 <= r.latency_max);
            assert!(r.latency_max > 0, "virtual request latencies were measured");
        }
        // The hashed shards together parse exactly the single-reactor request count.
        let single = skew.iter().find(|s| s.reactors == 1).expect("the reactors=1 row").requests;
        let sharded: u64 = skew.iter().filter(|s| s.reactors == 2).map(|s| s.requests).sum();
        assert_eq!(sharded, single, "sharding redistributes requests, never loses them");
    }

    #[test]
    fn journal_rows_measure_every_policy_against_the_same_cold_load() {
        let rows = journal_rows(8, 41, 43, 1);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].policy, "off");
        assert_eq!(rows[0].appended, 0, "the off row runs without a journal");
        assert_eq!(rows[0].overhead_pct, 0.0, "overhead is measured against the off row");
        for r in &rows {
            assert!(r.rps > 0.0, "{}", r.policy);
            assert_eq!(r.requests, rows[0].requests, "same schedule under every policy");
        }
        for r in &rows[1..] {
            assert!(r.appended > 0, "{}: a cold run journals its synthesis commits", r.policy);
        }
    }

    #[test]
    fn restart_rows_recover_every_staged_entry() {
        let rows = restart_rows(&[50, 200], 2);
        assert_eq!(rows.len(), 2);
        for (r, size) in rows.iter().zip([50usize, 200]) {
            assert_eq!(r.entries, size);
            assert_eq!(r.snapshot_entries, size / 2);
            assert_eq!(r.journaled_entries, size - size / 2);
            assert!(r.cold_seconds >= 0.0 && r.warm_seconds > 0.0);
        }
        assert!(render_restart(&rows).contains("Snapshot"));
    }

    #[test]
    fn transport_rows_gate_on_equivalence_and_scale_with_the_request_count() {
        let rows = transport_rows(12, 41, 43, &[1, 2]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].reactors, 1);
        assert!(!rows[0].capped_by_host, "one reactor is never capped");
        assert_eq!(rows[1].reactors, 2);
        assert_eq!(rows[0].requests, rows[1].requests, "same schedule at every reactor count");
        assert_eq!(rows[0].connections, 12);
        for r in &rows {
            assert!(r.requests_per_sec > 0.0);
            assert!(r.speedup_vs_one > 0.0);
            assert_eq!(r.capped_by_host, host_parallelism() < r.reactors as usize);
        }
    }
}
