//! Regenerates Figure 5: synthesized ind. set sizes, % difference from ground truth, and
//! verification/synthesis times.
//!
//! Usage: `report_fig5 [intervals|powerset<k>] [--quick] [--json]`
//! Defaults to both `intervals` (Fig. 5a) and `powerset3` (Fig. 5b). With `--json` the rows are
//! printed as a JSON document instead of the aligned table (used to record `BENCH_seed.json`).

use anosy::prelude::*;
use bench::{fig5, fig5_rows_to_json, render_fig5, Fig5Domain};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let config = if quick { bench::quick_synth_config() } else { SynthConfig::default() };

    let mut domains = Vec::new();
    for a in args.iter().filter(|a| *a != "--quick" && *a != "--json") {
        if a == "intervals" {
            domains.push(Fig5Domain::Intervals);
        } else if let Some(k) = a.strip_prefix("powerset").and_then(|k| k.parse::<usize>().ok()) {
            domains.push(Fig5Domain::Powersets(k));
        } else {
            eprintln!("unknown argument `{a}` (expected `intervals`, `powerset<k>` or `--quick`)");
            std::process::exit(2);
        }
    }
    if domains.is_empty() {
        domains = vec![Fig5Domain::Intervals, Fig5Domain::Powersets(3)];
    }
    if json && domains.len() > 1 {
        // Concatenated top-level documents would not be valid JSON.
        eprintln!("--json requires exactly one domain (e.g. `intervals --json`)");
        std::process::exit(2);
    }

    for domain in domains {
        let (title, label) = match domain {
            Fig5Domain::Intervals => {
                ("Figure 5a — interval abstract domain".to_string(), "fig5a_intervals".to_string())
            }
            Fig5Domain::Powersets(k) => (
                format!("Figure 5b — powerset of intervals with size {k}"),
                format!("fig5b_powerset{k}"),
            ),
        };
        let rows = fig5(domain, &config);
        if json {
            print!("{}", fig5_rows_to_json(&label, &rows));
        } else {
            println!("\n{title}");
            print!("{}", render_fig5(&rows));
        }
    }
}
