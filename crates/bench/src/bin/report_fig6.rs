//! Regenerates Figure 6: the secure-advertising survivor curves.
//!
//! Usage: `report_fig6 [--quick]`. The default runs the paper's configuration (50 queries,
//! 20 runs, k ∈ {1, 3, 5, 7, 10}); `--quick` runs a scaled-down configuration suitable for smoke
//! tests.

use anosy::suite::{run_advertising, AdvertisingConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        let mut c = AdvertisingConfig::quick();
        c.synth = bench::quick_synth_config();
        c
    } else {
        AdvertisingConfig::paper()
    };
    println!(
        "Figure 6 — secure advertising: {} queries, {} runs, policy size > {}, k = {:?}\n",
        config.num_queries, config.runs, config.policy_min_size, config.powerset_sizes
    );
    match run_advertising(&config) {
        Ok(outcomes) => print!("{}", bench::render_fig6(&outcomes, config.num_queries)),
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
}
