//! The population macro-benchmark: seeded multi-tenant workloads (uniform vs Zipf vs sharp
//! query popularity) compiled onto a `SimNet` schedule and driven end-to-end through the wire
//! protocol against a **cold** deployment. Used to record `BENCH_pr6.json`.
//!
//! Usage: `report_population [--seed N] [--tenants N] [--palette N] [--workers N] [--quick]
//! [--json]`
//!
//! Each row replays one whole population — connects, registers, downgrade bursts, adversarial
//! probe ladders, churn — and reports end-to-end request throughput, the synthesis-cache hit
//! rate (the skew signal: a Zipf head concentrates registrations on few distinct queries, so
//! the cold cache converges after far fewer misses than under uniform popularity), the denial
//! rate the adversarial cohort induces, and the sessions still open at drain (which must equal
//! the population's lingering tenants — asserted, not just reported). Generation determinism
//! is asserted before anything is timed; the element-wise oracle equivalence of the same
//! replay path is covered by the `population_sim` / `population_scale` test tiers.

use anosy::prelude::SynthConfig;
use bench::{population_rows, population_rows_to_json, render_population};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let quick = args.iter().any(|a| a == "--quick");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<usize>().ok())
    };
    let seed = flag("--seed").unwrap_or(0) as u64;
    let tenants = flag("--tenants").unwrap_or(if quick { 300 } else { 2_000 });
    let palette = flag("--palette").unwrap_or(if quick { 256 } else { 1_024 });
    let workers = flag("--workers").unwrap_or(4);
    let config = if quick { bench::quick_synth_config() } else { SynthConfig::default() };

    let rows = population_rows(seed, tenants, palette, workers, &config);

    if json {
        let analysis = format!(
            "Seeded population macro-benchmark (seed {seed}): {tenants} simulated tenants per \
             row over a {palette}-query palette, replayed through the event-loop server on a \
             cold deployment. Skewed popularity concentrates registrations on the palette head, \
             so the synthesis cache converges after fewer misses (higher hit rate) than under \
             uniform popularity; denials come from the adversarial probe-until-refused cohort \
             and min-size/min-entropy policy mixes. Open-at-drain equals the population's \
             lingering tenants (asserted). Times include cold synthesis."
        );
        println!("{}", population_rows_to_json(&rows, &analysis));
    } else {
        print!("{}", render_population(&rows));
    }
}
