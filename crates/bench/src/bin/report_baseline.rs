//! Regenerates the §6.1 precision comparison against the abstract-interpretation baseline
//! (the stand-in for Prob).

use anosy::prelude::*;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick { bench::quick_synth_config() } else { SynthConfig::default() };
    println!("§6.1 — precision of the True posterior from the full-space prior\n");
    println!(
        "{:<10} {:>15} {:>15} {:>15} {:>15}  {:>10} {:>10}",
        "query", "exact", "baseline", "anosy-over", "anosy-under", "base err", "anosy err"
    );
    for c in bench::baseline_comparison(&config) {
        println!(
            "{:<10} {:>15} {:>15} {:>15} {:>15}  {:>9.1}% {:>9.1}%",
            c.query,
            bench::fmt_size(c.exact_true),
            bench::fmt_size(c.baseline_true),
            bench::fmt_size(c.anosy_over_true),
            bench::fmt_size(c.anosy_under_true),
            100.0 * c.baseline_error(),
            100.0 * c.anosy_error(),
        );
    }
}
