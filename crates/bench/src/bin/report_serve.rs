//! Measures the `anosy-serve` deployment layer against the sequential PR 2 baseline on the
//! fig5 suite: batched downgrades vs the per-call loop (interval and powerset3 domains), and
//! sharded parallel model counting vs the sequential counter. Used to record `BENCH_pr3.json`.
//!
//! Usage: `report_serve [--workers N] [--secrets N] [--quick] [--json]`
//!
//! Equivalence is asserted before anything is timed into the report: the batched driver's
//! results must equal the loop's element-wise, and the sharded count must equal the sequential
//! count. The report records the host's available parallelism alongside the ratios — thread
//! parallelism cannot beat that ceiling, so on a single-hardware-thread host the ratios measure
//! pure batching overhead, not scaling.

use anosy::core::MinSizePolicy;
use anosy::domains::{IntervalDomain, PowersetDomain};
use anosy::prelude::*;
use anosy::serve::{Deployment, ServeConfig};
use bench::{host_parallelism, render_serve, serve_rows, serve_rows_to_json};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let quick = args.iter().any(|a| a == "--quick");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<usize>().ok())
    };
    let workers = flag("--workers").unwrap_or(4);
    let secrets = flag("--secrets").unwrap_or(if quick { 2_000 } else { 200_000 });
    let config = if quick { bench::quick_synth_config() } else { SynthConfig::default() };

    let mut rows = serve_rows::<IntervalDomain>(workers, secrets, &config, None);
    rows.extend(serve_rows::<PowersetDomain>(workers, secrets, &config, Some(3)));

    // A representative deployment aggregate block: N sessions of one deployment registering the
    // same query (one synthesis, everything else hits).
    let suite = anosy::suite::benchmarks::birthday();
    let deployment: Deployment<IntervalDomain> = Deployment::new(
        suite.query.layout().clone(),
        ServeConfig::new().with_workers(workers).with_synth(config.clone()),
    );
    for _ in 0..8 {
        let mut session = deployment.session(MinSizePolicy::new(10));
        let mut synth = Synthesizer::with_config(config.clone());
        session
            .register_synthesized(&mut synth, &suite.query, ApproxKind::Under, None)
            .expect("registration fits the budget");
    }
    let stats = deployment.stats();

    let cores = host_parallelism();
    let analysis = format!(
        "Measured with {workers} workers on a host with {cores} available hardware thread(s). \
         Wall-clock speedup from thread parallelism is bounded by the hardware-thread count; \
         on a single-core host these ratios measure batching overhead, not scaling. \
         Batched results are asserted element-wise equal to the sequential loop before timing."
    );

    if json {
        print!("{}", serve_rows_to_json(&rows, &stats.to_json(), &analysis));
    } else {
        println!("\nServing throughput — batched/parallel vs the sequential baseline");
        print!("{}", render_serve(&rows));
        println!("\n{analysis}");
        println!("\nDeployment aggregates (8 sessions, 1 query): {stats}");
    }
}
