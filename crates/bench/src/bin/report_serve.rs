//! Measures the `anosy-serve` deployment layer against the sequential PR 2 baseline on the
//! fig5 suite — batched downgrades vs the per-call loop (interval and powerset3 domains),
//! sharded parallel model counting vs the sequential counter — plus the serving frontend's tick
//! throughput vs the direct batched driver (including the binary wire path: frame decode +
//! zero-copy interned parse + fused ticks, recorded as `BENCH_pr10.json`'s `wire_` columns),
//! the multi-reactor `SimNet` load generator at
//! `reactors = 1/2/4`, the durability-journal overhead comparison (journal off vs each flush
//! policy on the same cold seeded load) and the restart-to-warm latency rows (snapshot load +
//! journal replay vs a bare cold construction). Used to record `BENCH_pr3.json` /
//! `BENCH_pr4.json` / `BENCH_pr7.json` / `BENCH_pr8.json` / `BENCH_pr9.json` /
//! `BENCH_pr10.json`.
//!
//! Usage: `report_serve [--workers N] [--secrets N] [--requests N] [--tenants N] [--quick]
//! [--json] [--cache PATH [--verify-on-load]]`
//!
//! Equivalence is asserted before anything is timed into the report: the batched driver's
//! results must equal the loop's element-wise, the sharded count must equal the sequential
//! count, the frontend's responses must equal the direct driver's, and every multi-reactor
//! load run's per-connection streams must equal the single-reactor run's element-wise. The
//! report records the host's available parallelism alongside the ratios, and every parallel
//! row carries a `capped_by_host` flag — thread parallelism cannot beat that ceiling, so on a
//! single-hardware-thread host the ratios measure pure batching/protocol overhead, not
//! scaling.
//!
//! With `--cache PATH` the aggregate deployment warm-starts from (and saves back to) the given
//! synthesis-cache file; `--verify-on-load` re-checks every loaded entry's refinement
//! obligations with the solver first, skipping and counting failures
//! (`Deployment::warm_start_verified`).

use anosy::core::MinSizePolicy;
use anosy::domains::{IntervalDomain, PowersetDomain};
use anosy::prelude::*;
use anosy::serve::{Deployment, ServeConfig};
use bench::{
    frontend_rows, host_parallelism, journal_rows, render_frontend, render_journal, render_restart,
    render_serve, render_shard_skew, render_telemetry, render_transport, restart_rows, serve_rows,
    serve_rows_to_json, telemetry_rows, transport_rows,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let quick = args.iter().any(|a| a == "--quick");
    let verify_on_load = args.iter().any(|a| a == "--verify-on-load");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<usize>().ok())
    };
    let cache = args
        .iter()
        .position(|a| a == "--cache")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    let workers = flag("--workers").unwrap_or(4);
    let secrets = flag("--secrets").unwrap_or(if quick { 2_000 } else { 200_000 });
    let requests = flag("--requests").unwrap_or(if quick { 2_000 } else { 50_000 });
    let tenants = flag("--tenants").unwrap_or(if quick { 32 } else { 128 });
    let config = if quick { bench::quick_synth_config() } else { SynthConfig::default() };

    let mut rows = serve_rows::<IntervalDomain>(workers, secrets, &config, None);
    rows.extend(serve_rows::<PowersetDomain>(workers, secrets, &config, Some(3)));

    // Frontend tick throughput vs the direct batched driver, at the protocol batch sizes.
    let frontend = frontend_rows(workers, requests, &config, &[1, 64, 1024]);

    // The multi-reactor SimNet load generator: equivalence vs the single-reactor stream is
    // asserted inside before any timing.
    let transport = transport_rows(tenants, 41, 43, &[1, 2, 4]);

    // Telemetry overhead (collectors on vs off, same seeds — the PR 8 <= 5% budget) and the
    // per-shard skew breakdown read from the telemetry-on run's reports. Quick runs are
    // milliseconds long, so best-of needs more samples there to outrun timer noise.
    let (telemetry, shard_skew) =
        telemetry_rows(tenants, 41, 43, &[1, 2, 4], if quick { 12 } else { 3 });

    // Durability: journaling overhead (journal off vs each flush policy on the same cold
    // seeded load — the PR 9 <= 5% budget for on-tick) and restart-to-warm latency vs a bare
    // cold construction at two cache sizes.
    // The journal rows always run the full-size population: quick runs are milliseconds long
    // and synthesis noise would swamp the per-append cost being measured.
    let journal = journal_rows(tenants.max(128), 41, 43, 16);
    let restart = restart_rows(&[1_000, 10_000], 3);

    // A representative deployment aggregate block: N sessions of one deployment registering the
    // same query (one synthesis — or zero after a warm start — everything else hits).
    let suite = anosy::suite::benchmarks::birthday();
    let deployment: Deployment<IntervalDomain> = Deployment::new(
        suite.query.layout().clone(),
        ServeConfig::new().with_workers(workers).with_synth(config.clone()),
    );
    let mut warm_note = String::new();
    if let Some(path) = &cache {
        warm_note = match deployment.warm_start_with(path, verify_on_load) {
            Ok(outcome) => format!(
                " Warm start from {} ({}): {} entries loaded, {} skipped.",
                path.display(),
                if verify_on_load { "verified" } else { "trusted" },
                outcome.installed,
                outcome.skipped,
            ),
            Err(e) => format!(" Warm start from {} failed: {e}.", path.display()),
        };
    }
    for _ in 0..8 {
        let mut session = deployment.session(MinSizePolicy::new(10));
        let mut synth = Synthesizer::with_config(config.clone());
        session
            .register_synthesized(&mut synth, &suite.query, ApproxKind::Under, None)
            .expect("registration fits the budget");
    }
    if let Some(path) = &cache {
        deployment.save_cache(path).expect("cache saves");
    }
    let stats = deployment.stats();

    let cores = host_parallelism();
    let analysis = format!(
        "Measured with {workers} workers on a host with {cores} available hardware thread(s). \
         Wall-clock speedup from thread parallelism is bounded by the hardware-thread count; \
         on a single-core host these ratios measure batching overhead, not scaling (rows where \
         that applies carry capped_by_host). Batched results are asserted element-wise equal \
         to the sequential loop, frontend responses to the direct driver's results, and every \
         multi-reactor load run's per-connection streams to the single-reactor run's, before \
         timing. Frontend rows also time the binary wire path end to end (frame decode, \
         zero-copy interned parse, submit, tick): wire_ columns carry one framed Downgrade \
         per secret, bulk_ columns one framed DowngradeBatch per tick of batch_size secrets \
         (the shape a throughput client speaks); both are asserted element-wise equal to the \
         direct driver before timing.{warm_note}"
    );

    if json {
        print!(
            "{}",
            serve_rows_to_json(
                &rows,
                &frontend,
                &transport,
                &telemetry,
                &shard_skew,
                &journal,
                &restart,
                &stats.to_json(),
                &analysis,
            )
        );
    } else {
        println!("\nServing throughput — batched/parallel vs the sequential baseline");
        print!("{}", render_serve(&rows));
        println!("\nFrontend tick throughput — protocol vs direct driver");
        print!("{}", render_frontend(&frontend));
        println!("\nMulti-reactor SimNet load generator — {tenants} tenants");
        print!("{}", render_transport(&transport));
        println!("\nTelemetry overhead — collectors on vs off, same seeds");
        print!("{}", render_telemetry(&telemetry));
        println!("\nPer-shard skew — from the telemetry-on runs' reports");
        print!("{}", render_shard_skew(&shard_skew));
        println!("\nJournaling overhead — journal off vs each flush policy, same cold load");
        print!("{}", render_journal(&journal));
        println!("\nRestart-to-warm latency — snapshot + journal replay vs cold construction");
        print!("{}", render_restart(&restart));
        println!("\n{analysis}");
        println!("\nDeployment aggregates (8 sessions, 1 query): {stats}");
    }
}
