//! Regenerates Table 1: the exact ind. set sizes of the five Mardziel et al. benchmarks.

use anosy::prelude::*;

fn main() {
    let mut solver = Solver::new();
    let rows = bench::table1(&mut solver);
    println!("Table 1 — ground-truth ind. set sizes (true / false)\n");
    print!("{}", bench::render_table1(&rows));
    println!("\nsolver effort: {}", solver.stats());
}
