//! Benchmarks the multi-reactor serving path: the seeded `SimNet` load generator driven
//! through a `ReactorPool` at 1, 2 and 4 reactor shards over one shared (pre-warmed)
//! deployment. `report_serve` measures the same comparison at full scale (and asserts
//! stream equivalence across reactor counts before timing); this bench tracks the per-run
//! cost of the pool itself at a CI-friendly size.

use anosy::serve::loadgen::{self, LoadOptions};
use anosy::serve::ServeConfig;
use criterion::{criterion_group, criterion_main, Criterion};

const TENANTS: usize = 16;
const POPULATION_SEED: u64 = 41;
const NET_SEED: u64 = 43;

fn bench_reactor_counts(c: &mut Criterion) {
    let population = loadgen::population(POPULATION_SEED, TENANTS);
    let deployment = anosy::serve::popsim::warm_deployment(&population, &ServeConfig::for_tests());
    let mut group = c.benchmark_group("transport_reactors");
    for reactors in [1u64, 2, 4] {
        group.bench_function(format!("reactors_{reactors}"), |bencher| {
            bencher.iter(|| {
                loadgen::run_on(&population, &LoadOptions::new(NET_SEED, reactors), &deployment)
                    .report
                    .requests
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reactor_counts);
criterion_main!(benches);
