//! Figure 5b — synthesis and verification cost per benchmark for powersets of intervals (k = 3),
//! plus a small sweep over k showing the precision/cost trade-off of `IterSynth`.

use anosy::prelude::*;
use anosy::suite::benchmarks::{all_benchmarks, birthday};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn config() -> SynthConfig {
    SynthConfig::default()
}

fn bench_fig5b(c: &mut Criterion) {
    let rows = bench::fig5(bench::Fig5Domain::Powersets(3), &config());
    eprintln!("\nFigure 5b — powerset of intervals with size 3{}", bench::render_fig5(&rows));

    let mut group = c.benchmark_group("fig5b_powerset3_synth");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for b in all_benchmarks() {
        for kind in ApproxKind::ALL {
            group.bench_function(format!("{}/{kind}", b.id.short()), |bencher| {
                bencher.iter(|| {
                    let mut synth = Synthesizer::with_config(config());
                    black_box(synth.synth_powerset(&b.query, kind, 3).expect("synthesis succeeds"))
                })
            });
        }
    }
    group.finish();

    // IterSynth scaling in k on the Birthday benchmark (the §5.4 cost/precision trade-off).
    let mut sweep = c.benchmark_group("fig5b_itersynth_k_sweep");
    sweep.sample_size(10);
    sweep.measurement_time(std::time::Duration::from_secs(1));
    sweep.warm_up_time(std::time::Duration::from_millis(300));
    let b = birthday();
    for k in [1usize, 2, 3, 5] {
        sweep.bench_function(format!("B1/under/k{k}"), |bencher| {
            bencher.iter(|| {
                let mut synth = Synthesizer::with_config(config());
                black_box(
                    synth
                        .synth_powerset(&b.query, ApproxKind::Under, k)
                        .expect("synthesis succeeds"),
                )
            })
        });
    }
    sweep.finish();
}

criterion_group!(benches, bench_fig5b);
criterion_main!(benches);
