//! Figure 6 — the secure-advertising case study.
//!
//! The bench regenerates the survivor curves once (printed to the log) on a reduced
//! configuration and then measures the two costs behind the figure: registering (synthesizing +
//! verifying) one `nearby` query per powerset size, and replaying a full query sequence through
//! the `AnosyT` session (which is where the "posteriors are free at runtime" claim shows up).
//!
//! The full paper-scale figure (50 queries × 20 runs × k ∈ {1,3,5,7,10}) is produced by
//! `cargo run --release -p bench --bin report_fig6`.

use anosy::prelude::*;
use anosy::suite::{run_advertising, AdvertisingConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn reduced_config() -> AdvertisingConfig {
    let mut c = AdvertisingConfig::paper();
    c.num_queries = 12;
    c.runs = 6;
    c.powerset_sizes = vec![1, 3, 5];
    c
}

fn bench_fig6(c: &mut Criterion) {
    let config = reduced_config();
    let outcomes = run_advertising(&config).expect("experiment runs");
    eprintln!(
        "\nFigure 6 (reduced: {} queries, {} runs)\n{}",
        config.num_queries,
        config.runs,
        bench::render_fig6(&outcomes, config.num_queries)
    );

    let layout = config.layout();
    let nearby = |x: i64, y: i64| {
        ((IntExpr::var(0) - x).abs() + (IntExpr::var(1) - y).abs()).le(config.radius)
    };

    let mut registration = c.benchmark_group("fig6_register_query");
    registration.sample_size(10);
    registration.measurement_time(std::time::Duration::from_secs(1));
    registration.warm_up_time(std::time::Duration::from_millis(300));
    for k in [1usize, 3, 10] {
        registration.bench_function(format!("k{k}"), |bencher| {
            bencher.iter(|| {
                let mut synth = Synthesizer::new();
                let mut session: AnosySession<PowersetDomain> =
                    AnosySession::new(layout.clone(), MinSizePolicy::new(100));
                let query =
                    QueryDef::new("nearby_bench", layout.clone(), nearby(137, 242)).unwrap();
                session
                    .register_synthesized(&mut synth, &query, ApproxKind::Under, Some(k))
                    .expect("registration succeeds");
                black_box(session)
            })
        });
    }
    registration.finish();

    // Runtime cost of a downgrade sequence once synthesis is done (posteriors are intersections).
    let mut runtime = c.benchmark_group("fig6_downgrade_sequence");
    runtime.sample_size(10);
    runtime.measurement_time(std::time::Duration::from_secs(1));
    runtime.warm_up_time(std::time::Duration::from_millis(300));
    for k in [1usize, 3, 10] {
        let mut synth = Synthesizer::new();
        let mut session: AnosySession<PowersetDomain> =
            AnosySession::new(layout.clone(), MinSizePolicy::new(100));
        let origins = [(120, 240), (250, 180), (300, 310), (90, 90), (210, 205)];
        for (i, (x, y)) in origins.iter().enumerate() {
            let query =
                QueryDef::new(format!("nearby_{i}"), layout.clone(), nearby(*x, *y)).unwrap();
            session
                .register_synthesized(&mut synth, &query, ApproxKind::Under, Some(k))
                .expect("registration succeeds");
        }
        runtime.bench_function(format!("k{k}/5_queries"), |bencher| {
            bencher.iter(|| {
                session.reset_knowledge();
                let secret = Protected::new(Point::new(vec![205, 215]));
                let mut answered = 0usize;
                for i in 0..origins.len() {
                    if session.downgrade(&secret, &format!("nearby_{i}")).is_ok() {
                        answered += 1;
                    }
                }
                black_box(answered)
            })
        });
    }
    runtime.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
