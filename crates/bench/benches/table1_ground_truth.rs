//! Table 1 — cost of computing the exact ind. set sizes (model counting) per benchmark.
//!
//! The paper does not time this step (it is its ground truth), but it bounds everything else:
//! posterior computation at runtime must be far cheaper than exact counting for ANOSY's "one-time
//! synthesis, free posteriors" claim to pay off.

use anosy::prelude::*;
use anosy::suite::benchmarks::all_benchmarks;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_ground_truth(c: &mut Criterion) {
    // Print the regenerated table once so the bench log doubles as the Table 1 report.
    let mut solver = Solver::new();
    let rows = bench::table1(&mut solver);
    eprintln!("\n{}", bench::render_table1(&rows));

    let mut group = c.benchmark_group("table1_ground_truth");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for b in all_benchmarks() {
        group.bench_function(b.id.short(), |bencher| {
            bencher.iter(|| {
                let mut solver = Solver::new();
                black_box(b.ground_truth(&mut solver).expect("counting fits the budget"))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ground_truth);
criterion_main!(benches);
