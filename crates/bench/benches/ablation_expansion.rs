//! Ablation: Pareto (uniform-inflation) expansion vs greedy per-face expansion for
//! under-approximation synthesis (DESIGN.md §5).
//!
//! The paper relies on Z3's Pareto combination of `maximize` objectives so that "no single
//! optimization objective dominates the solution"; this ablation quantifies what that buys by
//! comparing the precision (printed once) and the cost (measured) of the two strategies.

use anosy::prelude::*;
use anosy::suite::benchmarks::all_benchmarks;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn config_for(strategy: ExpansionStrategy) -> SynthConfig {
    SynthConfig::default().with_strategy(strategy)
}

fn bench_ablation(c: &mut Criterion) {
    // Precision comparison, printed once.
    eprintln!("\nAblation — under-approximate True ind. set size, Pareto vs greedy expansion");
    for b in all_benchmarks() {
        let mut pareto = Synthesizer::with_config(config_for(ExpansionStrategy::Pareto));
        let mut greedy = Synthesizer::with_config(config_for(ExpansionStrategy::Greedy));
        let p = pareto.synth_interval(&b.query, ApproxKind::Under).expect("synthesis succeeds");
        let g = greedy.synth_interval(&b.query, ApproxKind::Under).expect("synthesis succeeds");
        eprintln!(
            "  {:<3} pareto {:>14}  greedy {:>14}  (ratio {:.2}x)",
            b.id.short(),
            bench::fmt_size(p.truthy().size()),
            bench::fmt_size(g.truthy().size()),
            if g.truthy().size() > 0 {
                p.truthy().size() as f64 / g.truthy().size() as f64
            } else {
                f64::INFINITY
            }
        );
    }

    let mut group = c.benchmark_group("ablation_expansion_strategy");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for b in all_benchmarks() {
        for (name, strategy) in
            [("pareto", ExpansionStrategy::Pareto), ("greedy", ExpansionStrategy::Greedy)]
        {
            group.bench_function(format!("{}/{name}", b.id.short()), |bencher| {
                bencher.iter(|| {
                    let mut synth = Synthesizer::with_config(config_for(strategy));
                    black_box(
                        synth
                            .synth_interval(&b.query, ApproxKind::Under)
                            .expect("synthesis succeeds"),
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
