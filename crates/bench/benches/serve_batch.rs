//! Benchmarks the deployment layer's two sharded drivers against their sequential baselines on
//! B1 (Birthday): the batched downgrade vs the per-call loop, and the sharded model count vs the
//! sequential counter. `report_serve` measures the same comparison at full scale across the
//! whole suite.

use anosy::core::MinSizePolicy;
use anosy::domains::IntervalDomain;
use anosy::prelude::*;
use anosy::serve::{Deployment, ServeConfig};
use bench::{deterministic_secrets, quick_synth_config};
use criterion::{criterion_group, criterion_main, Criterion};

const WORKERS: usize = 4;
const SECRETS: usize = 4_000;

fn deployment_with_birthday() -> (Deployment<IntervalDomain>, QueryDef) {
    let b = anosy::suite::benchmarks::birthday();
    let deployment = Deployment::new(
        b.query.layout().clone(),
        ServeConfig::new().with_workers(WORKERS).with_synth(quick_synth_config()),
    );
    deployment.register_query(&b.query, ApproxKind::Under, None).expect("synthesis fits");
    (deployment, b.query)
}

fn session_for(
    deployment: &Deployment<IntervalDomain>,
    query: &QueryDef,
) -> AnosySession<IntervalDomain> {
    let mut session = deployment.session(MinSizePolicy::new(10));
    let mut synth = Synthesizer::with_config(quick_synth_config());
    session.register_synthesized(&mut synth, query, ApproxKind::Under, None).expect("cache hit");
    session
}

fn bench_downgrades(c: &mut Criterion) {
    let (deployment, query) = deployment_with_birthday();
    let secrets = deterministic_secrets(query.layout(), SECRETS, 41);
    let mut group = c.benchmark_group("serve_downgrades");

    group.bench_function("sequential_loop", |bencher| {
        bencher.iter(|| {
            let mut session = session_for(&deployment, &query);
            let mut authorized = 0u64;
            for p in &secrets {
                if session.downgrade(&Protected::new(p.clone()), query.name()).is_ok() {
                    authorized += 1;
                }
            }
            authorized
        });
    });

    group.bench_function("batched", |bencher| {
        bencher.iter(|| {
            let mut session = session_for(&deployment, &query);
            deployment
                .downgrade_batch(&mut session, &secrets, query.name())
                .iter()
                .filter(|r| r.is_ok())
                .count()
        });
    });
    group.finish();
}

fn bench_counting(c: &mut Criterion) {
    let (deployment, query) = deployment_with_birthday();
    let space = query.layout().space();
    let mut group = c.benchmark_group("serve_counting");

    group.bench_function("sequential_count", |bencher| {
        bencher.iter(|| {
            let mut solver = Solver::with_config(SolverConfig::for_tests());
            solver.count_models(query.pred(), &space).expect("fits the budget")
        });
    });

    group.bench_function("sharded_count", |bencher| {
        bencher.iter(|| {
            deployment.par_count_models(query.pred(), &space).expect("fits the budget").value
        });
    });
    group.finish();
}

criterion_group!(benches, bench_downgrades, bench_counting);
criterion_main!(benches);
