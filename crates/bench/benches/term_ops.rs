//! Term-representation micro-benchmarks: tree vs hash-consed store.
//!
//! Measures the three operations the tentpole refactor moved from deep-tree work to O(1) id
//! work, on deep (depth ≥ 12) predicates:
//!
//! * **equality** — `Pred == Pred` (recursive structural walk) vs `PredId == PredId` (`u32`);
//! * **hashing** — hashing the whole tree vs hashing the id;
//! * **repeated simplification** — `simplify_pred` rebuilding the NNF every call vs
//!   `TermStore::simplify` answering from the store-resident memo table.
//!
//! Besides the per-benchmark timings, an explicit `speedup` line is printed per pair so the
//! interned-vs-tree ratio (the acceptance criterion is ≥ 10× for equality/hash) can be read
//! straight from the bench log.

use anosy::logic::{simplify_pred, IntExpr, Pred, TermStore};
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::hint::black_box;
use std::time::Instant;

/// A predicate of nesting depth `depth` (well beyond the ≥ 12 the acceptance criterion asks
/// for): alternating conjunctions/disjunctions of diamond queries over shifted centres, so no
/// two spine levels are identical and structural comparison must walk everything.
fn deep_pred(depth: usize) -> Pred {
    let diamond = |k: i64| {
        ((IntExpr::var(0) - (200 + k)).abs() + (IntExpr::var(1) - (200 - k)).abs()).le(100 + k)
    };
    let mut pred = diamond(0);
    for level in 1..depth as i64 {
        let next = diamond(level);
        pred = if level % 2 == 0 {
            Pred::and(vec![pred, next])
        } else {
            Pred::or(vec![pred, next.negate()])
        };
    }
    pred
}

const DEPTH: usize = 14;

/// Times `f` over `iters` iterations and returns nanoseconds per iteration.
fn ns_per_iter<O>(iters: u32, mut f: impl FnMut() -> O) -> f64 {
    // One warm-up pass keeps first-touch effects out of the measurement.
    black_box(f());
    let started = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    started.elapsed().as_nanos() as f64 / iters as f64
}

fn report_speedup(label: &str, tree_ns: f64, interned_ns: f64) {
    eprintln!(
        "term_ops speedup/{label}: tree {tree_ns:.1} ns vs interned {interned_ns:.1} ns  →  {:.0}×",
        tree_ns / interned_ns.max(0.1)
    );
}

fn bench_term_ops(c: &mut Criterion) {
    // Two structurally equal but physically distinct trees: deep equality cannot shortcut
    // through shared `Arc`s.
    let tree_a = deep_pred(DEPTH);
    let tree_b = deep_pred(DEPTH);
    assert!(tree_a == tree_b && tree_a.node_count() > 100);

    let mut store = TermStore::new();
    let id_a = store.intern_pred(&tree_a);
    let id_b = store.intern_pred(&tree_b);
    assert_eq!(id_a, id_b, "hash-consing must collapse equal trees");

    let mut group = c.benchmark_group("term_ops");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(100));

    group.bench_function("equality/tree_deep", |b| {
        b.iter(|| black_box(&tree_a) == black_box(&tree_b))
    });
    group.bench_function("equality/interned_id", |b| b.iter(|| black_box(id_a) == black_box(id_b)));

    group.bench_function("hashing/tree_deep", |b| {
        b.iter(|| {
            let mut h = DefaultHasher::new();
            black_box(&tree_a).hash(&mut h);
            black_box(h.finish())
        })
    });
    group.bench_function("hashing/interned_id", |b| {
        b.iter(|| {
            let mut h = DefaultHasher::new();
            black_box(id_a).hash(&mut h);
            black_box(h.finish())
        })
    });

    group.bench_function("simplify/tree_repeated", |b| {
        b.iter(|| black_box(simplify_pred(black_box(&tree_a))))
    });
    group.bench_function("simplify/store_memoized", |b| {
        b.iter(|| black_box(store.simplify(black_box(id_a))))
    });
    group.finish();

    // Explicit ratios for the bench log (amortized over many iterations so the id operations,
    // which are sub-nanosecond, still register).
    let eq_tree = ns_per_iter(10_000, || black_box(&tree_a) == black_box(&tree_b));
    let eq_id = ns_per_iter(1_000_000, || black_box(id_a) == black_box(id_b));
    report_speedup("equality(depth=14)", eq_tree, eq_id);

    let hash_tree = ns_per_iter(10_000, || {
        let mut h = DefaultHasher::new();
        black_box(&tree_a).hash(&mut h);
        h.finish()
    });
    let hash_id = ns_per_iter(1_000_000, || {
        let mut h = DefaultHasher::new();
        black_box(id_a).hash(&mut h);
        h.finish()
    });
    report_speedup("hashing(depth=14)", hash_tree, hash_id);

    let simp_tree = ns_per_iter(2_000, || simplify_pred(black_box(&tree_a)));
    let simp_store = ns_per_iter(200_000, || store.simplify(black_box(id_a)));
    report_speedup("repeated-simplify(depth=14)", simp_tree, simp_store);
}

criterion_group!(term_ops, bench_term_ops);
criterion_main!(term_ops);
