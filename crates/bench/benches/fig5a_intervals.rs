//! Figure 5a — synthesis and verification cost per benchmark for the interval abstract domain.
//!
//! Reported as two Criterion groups (`fig5a_synth`, `fig5a_verify`), one benchmark id × direction
//! each, mirroring the *Synth. time* and *Verif. time* columns of the paper's Figure 5a.

use anosy::prelude::*;
use anosy::suite::benchmarks::all_benchmarks;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn config() -> SynthConfig {
    SynthConfig::default()
}

fn bench_fig5a(c: &mut Criterion) {
    // Regenerate the figure's rows once so the bench log contains the sizes and % differences.
    let rows = bench::fig5(bench::Fig5Domain::Intervals, &config());
    eprintln!("\nFigure 5a — interval abstract domain{}", bench::render_fig5(&rows));

    let mut synth_group = c.benchmark_group("fig5a_synth");
    synth_group.sample_size(10);
    synth_group.measurement_time(std::time::Duration::from_secs(1));
    synth_group.warm_up_time(std::time::Duration::from_millis(300));
    for b in all_benchmarks() {
        for kind in ApproxKind::ALL {
            synth_group.bench_function(format!("{}/{kind}", b.id.short()), |bencher| {
                bencher.iter(|| {
                    let mut synth = Synthesizer::with_config(config());
                    black_box(synth.synth_interval(&b.query, kind).expect("synthesis succeeds"))
                })
            });
        }
    }
    synth_group.finish();

    let mut verify_group = c.benchmark_group("fig5a_verify");
    verify_group.sample_size(10);
    verify_group.measurement_time(std::time::Duration::from_secs(1));
    verify_group.warm_up_time(std::time::Duration::from_millis(300));
    for b in all_benchmarks() {
        for kind in ApproxKind::ALL {
            let mut synth = Synthesizer::with_config(config());
            let ind = synth.synth_interval(&b.query, kind).expect("synthesis succeeds");
            verify_group.bench_function(format!("{}/{kind}", b.id.short()), |bencher| {
                bencher.iter(|| {
                    let mut verifier = Verifier::new();
                    black_box(verifier.verify_indsets(&b.query, &ind).expect("verification runs"))
                })
            });
        }
    }
    verify_group.finish();
}

criterion_group!(benches, bench_fig5a);
criterion_main!(benches);
