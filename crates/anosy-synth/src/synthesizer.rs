//! The synthesizer: `Synth` (single intervals) and `IterSynth` (powersets, Algorithm 1).

use crate::{ApproxKind, IndSets, QueryDef, Sketch, SynthConfig, SynthError};
use anosy_domains::{AbstractDomain, IntervalDomain, PowersetDomain};
use anosy_logic::{simplify_pred, IntBox, Point, Pred, SecretLayout};
use anosy_solver::{Solver, SolverStats};

/// Synthesizes correct-by-construction knowledge approximations for declassification queries.
///
/// The synthesizer owns a [`Solver`] (the Z3 stand-in) and a [`SynthConfig`]. Synthesis results
/// are *candidates*: they are correct by construction of the underlying procedures, and the
/// `anosy-verify` crate re-checks them against their refinement specifications exactly as Liquid
/// Haskell re-checks the paper's synthesized Haskell terms (§2.3, Step IV).
#[derive(Debug)]
pub struct Synthesizer {
    config: SynthConfig,
    solver: Solver,
}

impl Synthesizer {
    /// Creates a synthesizer with the default configuration.
    pub fn new() -> Self {
        Synthesizer::with_config(SynthConfig::default())
    }

    /// Creates a synthesizer with an explicit configuration.
    pub fn with_config(config: SynthConfig) -> Self {
        let solver = Solver::with_config(config.solver.clone());
        Synthesizer { config, solver }
    }

    /// The active configuration.
    pub fn config(&self) -> &SynthConfig {
        &self.config
    }

    /// Statistics of the underlying solver (search effort across all synthesis calls so far).
    pub fn solver_stats(&self) -> &SolverStats {
        self.solver.stats()
    }

    /// Generates the synthesis sketch for one abstract-domain hole of `query` (§5.2). The
    /// returned sketch has `2 * arity` unfilled integer holes.
    pub fn sketch(&self, query: &QueryDef) -> Sketch {
        Sketch::for_layout(query.layout())
    }

    /// Synthesizes the interval-domain ind. sets of `query` (§5.3).
    ///
    /// * [`ApproxKind::Over`]: each ind. set is the tightest bounding box of the corresponding
    ///   region, obtained by minimizing/maximizing every field (the paper's `minimize u_i - l_i`
    ///   directives).
    /// * [`ApproxKind::Under`]: each ind. set is an inclusion-maximal all-models box grown around
    ///   the best of several seeds (the paper's Pareto `maximize u_i - l_i` directives).
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::Solver`] if the underlying decision procedures exhaust their budget.
    pub fn synth_interval(
        &mut self,
        query: &QueryDef,
        kind: ApproxKind,
    ) -> Result<IndSets<IntervalDomain>, SynthError> {
        let space = query.layout().space();
        let positive = simplify_pred(query.pred());
        let negative = simplify_pred(&query.pred().clone().negate());
        let truthy = self.synth_region_interval(&positive, &space, query.layout(), kind)?;
        let falsy = self.synth_region_interval(&negative, &space, query.layout(), kind)?;
        Ok(IndSets::new(kind, truthy, falsy))
    }

    /// Synthesizes powerset-domain ind. sets with at most `k` synthesized members per region
    /// (`IterSynth`, Algorithm 1 of the paper).
    ///
    /// For under-approximations the powerset's inclusion list is grown one disjoint
    /// inclusion-maximal box at a time; for over-approximations the first member is the bounding
    /// box and subsequent iterations grow the exclusion list, carving away regions that provably
    /// contain no model. Fewer than `k` members are produced when the region is exhausted early —
    /// in that case the result is already exact.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::Solver`] if the underlying decision procedures exhaust their budget.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn synth_powerset(
        &mut self,
        query: &QueryDef,
        kind: ApproxKind,
        k: usize,
    ) -> Result<IndSets<PowersetDomain>, SynthError> {
        assert!(k > 0, "a powerset needs at least one member");
        let space = query.layout().space();
        let positive = simplify_pred(query.pred());
        let negative = simplify_pred(&query.pred().clone().negate());
        let truthy = self.synth_region_powerset(&positive, &space, query.layout(), kind, k)?;
        let falsy = self.synth_region_powerset(&negative, &space, query.layout(), kind, k)?;
        Ok(IndSets::new(kind, truthy, falsy))
    }

    /// Synthesizes a single interval-domain approximation of the region `pred` within `space`.
    fn synth_region_interval(
        &mut self,
        pred: &Pred,
        space: &IntBox,
        layout: &SecretLayout,
        kind: ApproxKind,
    ) -> Result<IntervalDomain, SynthError> {
        let result = match kind {
            ApproxKind::Over => self.solver.bounding_true_box(pred, space)?,
            ApproxKind::Under => self.best_true_box(pred, space)?,
        };
        Ok(match result {
            Some(boxed) => IntervalDomain::from_box(&boxed),
            None => IntervalDomain::bottom(layout),
        })
    }

    /// Synthesizes a powerset approximation of the region `pred` within `space`.
    fn synth_region_powerset(
        &mut self,
        pred: &Pred,
        space: &IntBox,
        layout: &SecretLayout,
        kind: ApproxKind,
        k: usize,
    ) -> Result<PowersetDomain, SynthError> {
        match kind {
            ApproxKind::Under => self.iter_synth_under(pred, space, layout, k),
            ApproxKind::Over => self.iter_synth_over(pred, space, layout, k),
        }
    }

    /// `IterSynth` for under-approximations: grow the inclusion list with disjoint
    /// inclusion-maximal boxes of the not-yet-covered region.
    fn iter_synth_under(
        &mut self,
        pred: &Pred,
        space: &IntBox,
        layout: &SecretLayout,
        k: usize,
    ) -> Result<PowersetDomain, SynthError> {
        let mut powerset = PowersetDomain::bottom(layout);
        let mut remaining = pred.clone();
        for _ in 0..k {
            let Some(boxed) = self.best_true_box(&simplify_pred(&remaining), space)? else {
                break; // region exhausted: the powerset is already exact
            };
            let member = IntervalDomain::from_box(&boxed);
            remaining = remaining.and_also(member.to_pred().negate());
            powerset.push_include(member);
        }
        Ok(powerset)
    }

    /// `IterSynth` for over-approximations: start from the bounding box and grow the exclusion
    /// list with disjoint boxes that provably contain no model.
    fn iter_synth_over(
        &mut self,
        pred: &Pred,
        space: &IntBox,
        layout: &SecretLayout,
        k: usize,
    ) -> Result<PowersetDomain, SynthError> {
        let Some(outer) = self.solver.bounding_true_box(pred, space)? else {
            return Ok(PowersetDomain::bottom(layout));
        };
        let outer_domain = IntervalDomain::from_box(&outer);
        let mut powerset = PowersetDomain::from_interval(outer_domain.clone());
        // The region that may still be carved away: inside the bounding box, outside the models,
        // not yet excluded.
        let mut carvable = outer_domain.to_pred().and_also(pred.clone().negate());
        for _ in 1..k {
            let Some(boxed) = self.best_true_box(&simplify_pred(&carvable), &outer)? else {
                break; // nothing left to carve: the over-approximation is as tight as this shape allows
            };
            let member = IntervalDomain::from_box(&boxed);
            carvable = carvable.and_also(member.to_pred().negate());
            powerset.push_exclude(member);
        }
        Ok(powerset)
    }

    /// The largest inclusion-maximal all-models box of `pred` found across up to
    /// `config.seeds` seeds, or `None` when `pred` has no model in `space`.
    ///
    /// Seeds are chosen to avoid the boundary of the region: the first candidate is the centre of
    /// the region's bounding box (when it is itself a model — for convex-ish regions like the
    /// benchmarks' this is the best starting point), falling back to an arbitrary model;
    /// subsequent seeds are models outside everything grown so far, which is what lets point-wise
    /// (disjoint-union) queries profit from several seeds.
    fn best_true_box(&mut self, pred: &Pred, space: &IntBox) -> Result<Option<IntBox>, SynthError> {
        let Some(fallback_seed) = self.solver.find_model(pred, space)? else {
            return Ok(None);
        };
        let first_seed = match self.solver.bounding_true_box(pred, space)? {
            Some(bb) => {
                let center: Point = bb
                    .dims()
                    .iter()
                    .map(|r| r.lo() + ((r.hi() as i128 - r.lo() as i128) / 2) as i64)
                    .collect();
                if pred.eval(&center).unwrap_or(false) {
                    center
                } else {
                    fallback_seed
                }
            }
            None => fallback_seed,
        };
        let mut best: Option<IntBox> = None;
        let mut covered: Option<Pred> = None;
        let mut seeds_used = 0;
        let mut next_seed = Some(first_seed);
        while seeds_used < self.config.seeds {
            let Some(seed) = next_seed.take() else { break };
            seeds_used += 1;
            let grown = self
                .solver
                .maximal_true_box(pred, space, &seed, self.config.strategy)?;
            if let Some(boxed) = grown {
                let boxed_pred = IntervalDomain::from_box(&boxed).to_pred();
                covered = Some(match covered {
                    None => boxed_pred,
                    Some(c) => c.or_else(boxed_pred),
                });
                let is_better = best.as_ref().is_none_or(|b| boxed.count() > b.count());
                if is_better {
                    best = Some(boxed);
                }
            }
            if seeds_used < self.config.seeds {
                // Diversify: the next seed must be a model not covered by any box grown so far.
                let uncovered = match &covered {
                    None => pred.clone(),
                    Some(c) => pred.clone().and_also(c.clone().negate()),
                };
                next_seed = self.solver.find_model(&simplify_pred(&uncovered), space)?;
            }
        }
        Ok(best)
    }

    /// Convenience: seed a concrete secret as a [`Point`] in the query's layout. Exposed mostly
    /// for tests and examples that want to drive [`anosy_solver::Solver::maximal_true_box`]
    /// manually.
    pub fn seed_from(&self, coords: &[i64]) -> Point {
        Point::new(coords.to_vec())
    }
}

impl Default for Synthesizer {
    fn default() -> Self {
        Synthesizer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anosy_logic::IntExpr;
    use anosy_solver::SolverConfig;

    fn test_config() -> SynthConfig {
        SynthConfig::new().with_solver(SolverConfig::for_tests())
    }

    fn loc_layout() -> SecretLayout {
        SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build()
    }

    fn nearby_query() -> QueryDef {
        let nearby = ((IntExpr::var(0) - 200).abs() + (IntExpr::var(1) - 200).abs()).le(100);
        QueryDef::new("nearby_200_200", loc_layout(), nearby).unwrap()
    }

    fn check_under_soundness<D: AbstractDomain>(query: &QueryDef, ind: &IndSets<D>) {
        let mut solver = Solver::with_config(SolverConfig::for_tests());
        let space = query.layout().space();
        // truthy ⇒ query, falsy ⇒ ¬query
        let t_ok = solver
            .is_valid(&ind.truthy().to_pred().implies(query.pred().clone()), &space)
            .unwrap();
        let f_ok = solver
            .is_valid(&ind.falsy().to_pred().implies(query.pred().clone().negate()), &space)
            .unwrap();
        assert!(t_ok, "under True set contains a non-model");
        assert!(f_ok, "under False set contains a model");
    }

    fn check_over_soundness<D: AbstractDomain>(query: &QueryDef, ind: &IndSets<D>) {
        let mut solver = Solver::with_config(SolverConfig::for_tests());
        let space = query.layout().space();
        // query ⇒ truthy, ¬query ⇒ falsy
        let t_ok = solver
            .is_valid(&query.pred().clone().implies(ind.truthy().to_pred()), &space)
            .unwrap();
        let f_ok = solver
            .is_valid(&query.pred().clone().negate().implies(ind.falsy().to_pred()), &space)
            .unwrap();
        assert!(t_ok, "over True set misses a model");
        assert!(f_ok, "over False set misses a non-model");
    }

    #[test]
    fn interval_under_synthesis_matches_the_paper_shape() {
        let query = nearby_query();
        let mut synth = Synthesizer::with_config(test_config());
        let ind = synth.synth_interval(&query, ApproxKind::Under).unwrap();
        check_under_soundness(&query, &ind);
        // The True region is the radius-100 diamond: the balanced maximal box is the 101×101
        // inscribed square (the paper's synthesized box has the same 159×43 order of size but a
        // different aspect ratio because Z3's Pareto optimum is not unique).
        assert_eq!(ind.truthy().size(), 101 * 101);
        // The False region's maximal box keeps one full side of the space.
        assert!(ind.falsy().size() >= 99 * 401);
    }

    #[test]
    fn interval_over_synthesis_is_the_tight_bounding_box() {
        let query = nearby_query();
        let mut synth = Synthesizer::with_config(test_config());
        let ind = synth.synth_interval(&query, ApproxKind::Over).unwrap();
        check_over_soundness(&query, &ind);
        assert_eq!(ind.truthy().size(), 201 * 201);
        // The False region touches every edge of the space, so its bounding box is ⊤.
        assert_eq!(ind.falsy().size(), 401 * 401);
    }

    #[test]
    fn powerset_under_is_at_least_as_precise_as_the_interval() {
        let query = nearby_query();
        let mut synth = Synthesizer::with_config(test_config());
        let interval = synth.synth_interval(&query, ApproxKind::Under).unwrap();
        let powerset = synth.synth_powerset(&query, ApproxKind::Under, 3).unwrap();
        check_under_soundness(&query, &powerset);
        assert!(powerset.truthy().size() >= interval.truthy().size());
        assert!(powerset.falsy().size() >= interval.falsy().size());
        assert!(powerset.truthy().includes().len() <= 3);
    }

    #[test]
    fn powerset_over_is_at_least_as_precise_as_the_interval() {
        let query = nearby_query();
        let mut synth = Synthesizer::with_config(test_config());
        let interval = synth.synth_interval(&query, ApproxKind::Over).unwrap();
        let powerset = synth.synth_powerset(&query, ApproxKind::Over, 3).unwrap();
        check_over_soundness(&query, &powerset);
        assert!(powerset.truthy().size() <= interval.truthy().size());
        assert!(powerset.falsy().size() <= interval.falsy().size());
    }

    #[test]
    fn box_shaped_queries_are_synthesized_exactly() {
        let layout = loc_layout();
        let pred = Pred::and(vec![
            IntExpr::var(0).between(100, 150),
            IntExpr::var(1).between(20, 380),
        ]);
        let query = QueryDef::new("box", layout, pred).unwrap();
        let mut synth = Synthesizer::with_config(test_config());
        for kind in ApproxKind::ALL {
            let ind = synth.synth_interval(&query, kind).unwrap();
            assert_eq!(ind.truthy().size(), 51 * 361, "kind {kind}");
        }
    }

    #[test]
    fn unsatisfiable_queries_produce_empty_true_sets() {
        let query = QueryDef::new("never", loc_layout(), Pred::False).unwrap();
        let mut synth = Synthesizer::with_config(test_config());
        let under = synth.synth_interval(&query, ApproxKind::Under).unwrap();
        assert!(under.truthy().is_empty());
        assert_eq!(under.falsy().size(), 401 * 401);
        let over = synth.synth_powerset(&query, ApproxKind::Over, 2).unwrap();
        assert!(over.truthy().is_empty());
        assert_eq!(over.falsy().size(), 401 * 401);
    }

    #[test]
    fn point_wise_queries_benefit_from_powersets() {
        // x ∈ {40, 140, 300}: three separate slabs. A single interval can only capture one; a
        // powerset of 3 captures all of them (the §6.1 observation about point-wise queries).
        let pred = IntExpr::var(0).one_of([40, 140, 300]);
        let query = QueryDef::new("pointwise", loc_layout(), pred).unwrap();
        let mut synth = Synthesizer::with_config(test_config());
        let interval = synth.synth_interval(&query, ApproxKind::Under).unwrap();
        assert_eq!(interval.truthy().size(), 401);
        let powerset = synth.synth_powerset(&query, ApproxKind::Under, 3).unwrap();
        assert_eq!(powerset.truthy().size(), 3 * 401);
        check_under_soundness(&query, &powerset);
    }

    #[test]
    fn greedy_strategy_is_never_more_precise_than_pareto_here() {
        let query = nearby_query();
        let mut pareto = Synthesizer::with_config(test_config());
        let mut greedy = Synthesizer::with_config(
            test_config().with_strategy(anosy_solver::ExpansionStrategy::Greedy),
        );
        let p = pareto.synth_interval(&query, ApproxKind::Under).unwrap();
        let g = greedy.synth_interval(&query, ApproxKind::Under).unwrap();
        assert!(p.truthy().size() >= g.truthy().size());
    }

    #[test]
    fn sketch_is_derived_from_the_layout() {
        let synth = Synthesizer::with_config(test_config());
        let sketch = synth.sketch(&nearby_query());
        assert_eq!(sketch.arity(), 2);
        assert_eq!(sketch.unfilled_holes().len(), 4);
    }

    #[test]
    fn stats_accumulate() {
        let mut synth = Synthesizer::with_config(test_config());
        let _ = synth.synth_interval(&nearby_query(), ApproxKind::Under).unwrap();
        assert!(synth.solver_stats().queries > 0);
        assert_eq!(synth.seed_from(&[1, 2]), Point::new(vec![1, 2]));
    }
}
