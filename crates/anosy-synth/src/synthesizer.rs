//! The synthesizer: `Synth` (single intervals) and `IterSynth` (powersets, Algorithm 1).

use crate::{ApproxKind, IndSets, QueryDef, Sketch, SynthConfig, SynthError};
use anosy_domains::{AbstractDomain, IntervalDomain, PowersetDomain};
use anosy_logic::{IntBox, Point, PredId, SecretLayout, StoreStats};
use anosy_solver::{Solver, SolverStats};
use std::collections::HashSet;

/// Counters for candidate handling during synthesis.
///
/// Candidate boxes grown from different seeds (and the members enumerated by `IterSynth`) are
/// interned into the solver's term store, so two candidates denoting the same region are
/// detected by a single id comparison instead of a deep tree comparison; detected duplicates
/// skip their redundant coverage bookkeeping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SynthStats {
    /// Candidate boxes grown (across all seeds, regions and `IterSynth` iterations).
    pub candidate_boxes: u64,
    /// Candidates whose interned id matched an earlier candidate of the same region.
    pub duplicate_candidates: u64,
}

/// Synthesizes correct-by-construction knowledge approximations for declassification queries.
///
/// The synthesizer owns a [`Solver`] (the Z3 stand-in) and a [`SynthConfig`]. Synthesis results
/// are *candidates*: they are correct by construction of the underlying procedures, and the
/// `anosy-verify` crate re-checks them against their refinement specifications exactly as Liquid
/// Haskell re-checks the paper's synthesized Haskell terms (§2.3, Step IV).
#[derive(Debug)]
pub struct Synthesizer {
    config: SynthConfig,
    solver: Solver,
    stats: SynthStats,
}

impl Synthesizer {
    /// Creates a synthesizer with the default configuration.
    pub fn new() -> Self {
        Synthesizer::with_config(SynthConfig::default())
    }

    /// Creates a synthesizer with an explicit configuration.
    pub fn with_config(config: SynthConfig) -> Self {
        let solver = Solver::with_config(config.solver.clone());
        Synthesizer { config, solver, stats: SynthStats::default() }
    }

    /// The active configuration.
    pub fn config(&self) -> &SynthConfig {
        &self.config
    }

    /// Statistics of the underlying solver (search effort across all synthesis calls so far).
    pub fn solver_stats(&self) -> &SolverStats {
        self.solver.stats()
    }

    /// Hit/miss counters of the solver's term-store memo tables (interning dedup, memoized
    /// simplification and range analyses) accumulated across synthesis calls.
    pub fn store_stats(&self) -> StoreStats {
        self.solver.store_stats()
    }

    /// Candidate interning counters (see [`SynthStats`]).
    pub fn synth_stats(&self) -> SynthStats {
        self.stats
    }

    /// Generates the synthesis sketch for one abstract-domain hole of `query` (§5.2). The
    /// returned sketch has `2 * arity` unfilled integer holes.
    pub fn sketch(&self, query: &QueryDef) -> Sketch {
        Sketch::for_layout(query.layout())
    }

    /// Synthesizes the interval-domain ind. sets of `query` (§5.3).
    ///
    /// * [`ApproxKind::Over`]: each ind. set is the tightest bounding box of the corresponding
    ///   region, obtained by minimizing/maximizing every field (the paper's `minimize u_i - l_i`
    ///   directives).
    /// * [`ApproxKind::Under`]: each ind. set is an inclusion-maximal all-models box grown around
    ///   the best of several seeds (the paper's Pareto `maximize u_i - l_i` directives).
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::Solver`] if the underlying decision procedures exhaust their budget.
    pub fn synth_interval(
        &mut self,
        query: &QueryDef,
        kind: ApproxKind,
    ) -> Result<IndSets<IntervalDomain>, SynthError> {
        let space = query.layout().space();
        let (positive, negative) = self.intern_regions(query);
        let truthy = self.synth_region_interval(positive, &space, query.layout(), kind)?;
        let falsy = self.synth_region_interval(negative, &space, query.layout(), kind)?;
        Ok(IndSets::new(kind, truthy, falsy))
    }

    /// Interns the query predicate once and returns the canonical ids of its True and False
    /// regions. All downstream synthesis works on these ids: candidate refinements are built
    /// directly in the store, and the solver is driven through its id-native API.
    fn intern_regions(&mut self, query: &QueryDef) -> (PredId, PredId) {
        let store = self.solver.store_mut();
        let raw = store.intern_pred(query.pred());
        let positive = store.simplify(raw);
        let negative = store.negate_simplified(raw);
        (positive, negative)
    }

    /// Synthesizes powerset-domain ind. sets with at most `k` synthesized members per region
    /// (`IterSynth`, Algorithm 1 of the paper).
    ///
    /// For under-approximations the powerset's inclusion list is grown one disjoint
    /// inclusion-maximal box at a time; for over-approximations the first member is the bounding
    /// box and subsequent iterations grow the exclusion list, carving away regions that provably
    /// contain no model. Fewer than `k` members are produced when the region is exhausted early —
    /// in that case the result is already exact.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::Solver`] if the underlying decision procedures exhaust their budget.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn synth_powerset(
        &mut self,
        query: &QueryDef,
        kind: ApproxKind,
        k: usize,
    ) -> Result<IndSets<PowersetDomain>, SynthError> {
        assert!(k > 0, "a powerset needs at least one member");
        let space = query.layout().space();
        let (positive, negative) = self.intern_regions(query);
        let truthy = self.synth_region_powerset(positive, &space, query.layout(), kind, k)?;
        let falsy = self.synth_region_powerset(negative, &space, query.layout(), kind, k)?;
        Ok(IndSets::new(kind, truthy, falsy))
    }

    /// Synthesizes a single interval-domain approximation of the region `pred` within `space`.
    fn synth_region_interval(
        &mut self,
        pred: PredId,
        space: &IntBox,
        layout: &SecretLayout,
        kind: ApproxKind,
    ) -> Result<IntervalDomain, SynthError> {
        let result = match kind {
            ApproxKind::Over => self.solver.bounding_true_box_id(pred, space)?,
            ApproxKind::Under => self.best_true_box(pred, space)?,
        };
        Ok(match result {
            Some(boxed) => IntervalDomain::from_box(&boxed),
            None => IntervalDomain::bottom(layout),
        })
    }

    /// Synthesizes a powerset approximation of the region `pred` within `space`.
    fn synth_region_powerset(
        &mut self,
        pred: PredId,
        space: &IntBox,
        layout: &SecretLayout,
        kind: ApproxKind,
        k: usize,
    ) -> Result<PowersetDomain, SynthError> {
        match kind {
            ApproxKind::Under => self.iter_synth_under(pred, space, layout, k),
            ApproxKind::Over => self.iter_synth_over(pred, space, layout, k),
        }
    }

    /// Interns a synthesized member box and conjoins its negation onto the running refinement
    /// predicate, entirely inside the store (no tree building).
    fn refine_with_member(&mut self, refined: PredId, member: &IntervalDomain) -> (PredId, PredId) {
        let store = self.solver.store_mut();
        let member_id = store.intern_pred(&member.to_pred());
        let not_member = store.mk_not(member_id);
        let next = store.mk_and(vec![refined, not_member]);
        (member_id, next)
    }

    /// `IterSynth` for under-approximations: grow the inclusion list with disjoint
    /// inclusion-maximal boxes of the not-yet-covered region.
    fn iter_synth_under(
        &mut self,
        pred: PredId,
        space: &IntBox,
        layout: &SecretLayout,
        k: usize,
    ) -> Result<PowersetDomain, SynthError> {
        let mut powerset = PowersetDomain::bottom(layout);
        let mut remaining = pred;
        let mut members = HashSet::new();
        for _ in 0..k {
            let target = self.solver.store_mut().simplify(remaining);
            let Some(boxed) = self.best_true_box(target, space)? else {
                break; // region exhausted: the powerset is already exact
            };
            let member = IntervalDomain::from_box(&boxed);
            let (member_id, refined) = self.refine_with_member(remaining, &member);
            if !members.insert(member_id) {
                // A member can only recur if the solver failed to respect the exclusion; an id
                // check catches it in O(1) and stops the enumeration from spinning.
                self.stats.duplicate_candidates += 1;
                break;
            }
            remaining = refined;
            powerset.push_include(member);
        }
        Ok(powerset)
    }

    /// `IterSynth` for over-approximations: start from the bounding box and grow the exclusion
    /// list with disjoint boxes that provably contain no model.
    fn iter_synth_over(
        &mut self,
        pred: PredId,
        space: &IntBox,
        layout: &SecretLayout,
        k: usize,
    ) -> Result<PowersetDomain, SynthError> {
        let Some(outer) = self.solver.bounding_true_box_id(pred, space)? else {
            return Ok(PowersetDomain::bottom(layout));
        };
        let outer_domain = IntervalDomain::from_box(&outer);
        let mut powerset = PowersetDomain::from_interval(outer_domain.clone());
        // The region that may still be carved away: inside the bounding box, outside the models,
        // not yet excluded.
        let mut carvable = {
            let store = self.solver.store_mut();
            let outer_id = store.intern_pred(&outer_domain.to_pred());
            let not_pred = store.mk_not(pred);
            store.mk_and(vec![outer_id, not_pred])
        };
        let mut members = HashSet::new();
        for _ in 1..k {
            let target = self.solver.store_mut().simplify(carvable);
            let Some(boxed) = self.best_true_box(target, &outer)? else {
                break; // nothing left to carve: the over-approximation is as tight as this shape allows
            };
            let member = IntervalDomain::from_box(&boxed);
            let (member_id, refined) = self.refine_with_member(carvable, &member);
            if !members.insert(member_id) {
                self.stats.duplicate_candidates += 1;
                break;
            }
            carvable = refined;
            powerset.push_exclude(member);
        }
        Ok(powerset)
    }

    /// The largest inclusion-maximal all-models box of `pred` found across up to
    /// `config.seeds` seeds, or `None` when `pred` has no model in `space`.
    ///
    /// Seeds are chosen to avoid the boundary of the region: the first candidate is the centre of
    /// the region's bounding box (when it is itself a model — for convex-ish regions like the
    /// benchmarks' this is the best starting point), falling back to an arbitrary model;
    /// subsequent seeds are models outside everything grown so far, which is what lets point-wise
    /// (disjoint-union) queries profit from several seeds.
    fn best_true_box(
        &mut self,
        pred: PredId,
        space: &IntBox,
    ) -> Result<Option<IntBox>, SynthError> {
        let Some(fallback_seed) = self.solver.find_model_id(pred, space)? else {
            return Ok(None);
        };
        let first_seed = match self.solver.bounding_true_box_id(pred, space)? {
            Some(bb) => {
                let center: Point = bb
                    .dims()
                    .iter()
                    .map(|r| r.lo() + ((r.hi() as i128 - r.lo() as i128) / 2) as i64)
                    .collect();
                if self.solver.store().eval_pred(pred, &center).unwrap_or(false) {
                    center
                } else {
                    fallback_seed
                }
            }
            None => fallback_seed,
        };
        let mut best: Option<IntBox> = None;
        // Ids of the candidate boxes grown so far; doubles as the coverage set for seed
        // diversification and as the duplicate check (a box regrown from a different seed is a
        // single `u32` comparison away from being recognized).
        let mut covered: Vec<PredId> = Vec::new();
        let mut seeds_used = 0;
        let mut next_seed = Some(first_seed);
        while seeds_used < self.config.seeds {
            let Some(seed) = next_seed.take() else { break };
            seeds_used += 1;
            let grown =
                self.solver.maximal_true_box_id(pred, space, &seed, self.config.strategy)?;
            if let Some(boxed) = grown {
                let boxed_pred = IntervalDomain::from_box(&boxed).to_pred();
                let candidate_id = self.solver.store_mut().intern_pred(&boxed_pred);
                self.stats.candidate_boxes += 1;
                if !covered.contains(&candidate_id) {
                    covered.push(candidate_id);
                    let is_better = best.as_ref().is_none_or(|b| boxed.count() > b.count());
                    if is_better {
                        best = Some(boxed);
                    }
                } else {
                    self.stats.duplicate_candidates += 1;
                }
            }
            if seeds_used < self.config.seeds {
                // Diversify: the next seed must be a model not covered by any box grown so far.
                let uncovered = {
                    let store = self.solver.store_mut();
                    if covered.is_empty() {
                        pred
                    } else {
                        let union = store.mk_or(covered.clone());
                        let outside = store.mk_not(union);
                        let conj = store.mk_and(vec![pred, outside]);
                        store.simplify(conj)
                    }
                };
                next_seed = self.solver.find_model_id(uncovered, space)?;
            }
        }
        Ok(best)
    }

    /// Convenience: seed a concrete secret as a [`Point`] in the query's layout. Exposed mostly
    /// for tests and examples that want to drive [`anosy_solver::Solver::maximal_true_box`]
    /// manually.
    pub fn seed_from(&self, coords: &[i64]) -> Point {
        Point::new(coords.to_vec())
    }
}

impl Default for Synthesizer {
    fn default() -> Self {
        Synthesizer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anosy_logic::{IntExpr, Pred};
    use anosy_solver::SolverConfig;

    fn test_config() -> SynthConfig {
        SynthConfig::new().with_solver(SolverConfig::for_tests())
    }

    fn loc_layout() -> SecretLayout {
        SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build()
    }

    fn nearby_query() -> QueryDef {
        let nearby = ((IntExpr::var(0) - 200).abs() + (IntExpr::var(1) - 200).abs()).le(100);
        QueryDef::new("nearby_200_200", loc_layout(), nearby).unwrap()
    }

    fn check_under_soundness<D: AbstractDomain>(query: &QueryDef, ind: &IndSets<D>) {
        let mut solver = Solver::with_config(SolverConfig::for_tests());
        let space = query.layout().space();
        // truthy ⇒ query, falsy ⇒ ¬query
        let t_ok =
            solver.is_valid(&ind.truthy().to_pred().implies(query.pred().clone()), &space).unwrap();
        let f_ok = solver
            .is_valid(&ind.falsy().to_pred().implies(query.pred().clone().negate()), &space)
            .unwrap();
        assert!(t_ok, "under True set contains a non-model");
        assert!(f_ok, "under False set contains a model");
    }

    fn check_over_soundness<D: AbstractDomain>(query: &QueryDef, ind: &IndSets<D>) {
        let mut solver = Solver::with_config(SolverConfig::for_tests());
        let space = query.layout().space();
        // query ⇒ truthy, ¬query ⇒ falsy
        let t_ok =
            solver.is_valid(&query.pred().clone().implies(ind.truthy().to_pred()), &space).unwrap();
        let f_ok = solver
            .is_valid(&query.pred().clone().negate().implies(ind.falsy().to_pred()), &space)
            .unwrap();
        assert!(t_ok, "over True set misses a model");
        assert!(f_ok, "over False set misses a non-model");
    }

    #[test]
    fn interval_under_synthesis_matches_the_paper_shape() {
        let query = nearby_query();
        let mut synth = Synthesizer::with_config(test_config());
        let ind = synth.synth_interval(&query, ApproxKind::Under).unwrap();
        check_under_soundness(&query, &ind);
        // The True region is the radius-100 diamond: the balanced maximal box is the 101×101
        // inscribed square (the paper's synthesized box has the same 159×43 order of size but a
        // different aspect ratio because Z3's Pareto optimum is not unique).
        assert_eq!(ind.truthy().size(), 101 * 101);
        // The False region's maximal box keeps one full side of the space.
        assert!(ind.falsy().size() >= 99 * 401);
    }

    #[test]
    fn interval_over_synthesis_is_the_tight_bounding_box() {
        let query = nearby_query();
        let mut synth = Synthesizer::with_config(test_config());
        let ind = synth.synth_interval(&query, ApproxKind::Over).unwrap();
        check_over_soundness(&query, &ind);
        assert_eq!(ind.truthy().size(), 201 * 201);
        // The False region touches every edge of the space, so its bounding box is ⊤.
        assert_eq!(ind.falsy().size(), 401 * 401);
    }

    #[test]
    fn powerset_under_is_at_least_as_precise_as_the_interval() {
        let query = nearby_query();
        let mut synth = Synthesizer::with_config(test_config());
        let interval = synth.synth_interval(&query, ApproxKind::Under).unwrap();
        let powerset = synth.synth_powerset(&query, ApproxKind::Under, 3).unwrap();
        check_under_soundness(&query, &powerset);
        assert!(powerset.truthy().size() >= interval.truthy().size());
        assert!(powerset.falsy().size() >= interval.falsy().size());
        assert!(powerset.truthy().includes().len() <= 3);
    }

    #[test]
    fn powerset_over_is_at_least_as_precise_as_the_interval() {
        let query = nearby_query();
        let mut synth = Synthesizer::with_config(test_config());
        let interval = synth.synth_interval(&query, ApproxKind::Over).unwrap();
        let powerset = synth.synth_powerset(&query, ApproxKind::Over, 3).unwrap();
        check_over_soundness(&query, &powerset);
        assert!(powerset.truthy().size() <= interval.truthy().size());
        assert!(powerset.falsy().size() <= interval.falsy().size());
    }

    #[test]
    fn box_shaped_queries_are_synthesized_exactly() {
        let layout = loc_layout();
        let pred =
            Pred::and(vec![IntExpr::var(0).between(100, 150), IntExpr::var(1).between(20, 380)]);
        let query = QueryDef::new("box", layout, pred).unwrap();
        let mut synth = Synthesizer::with_config(test_config());
        for kind in ApproxKind::ALL {
            let ind = synth.synth_interval(&query, kind).unwrap();
            assert_eq!(ind.truthy().size(), 51 * 361, "kind {kind}");
        }
    }

    #[test]
    fn unsatisfiable_queries_produce_empty_true_sets() {
        let query = QueryDef::new("never", loc_layout(), Pred::False).unwrap();
        let mut synth = Synthesizer::with_config(test_config());
        let under = synth.synth_interval(&query, ApproxKind::Under).unwrap();
        assert!(under.truthy().is_empty());
        assert_eq!(under.falsy().size(), 401 * 401);
        let over = synth.synth_powerset(&query, ApproxKind::Over, 2).unwrap();
        assert!(over.truthy().is_empty());
        assert_eq!(over.falsy().size(), 401 * 401);
    }

    #[test]
    fn point_wise_queries_benefit_from_powersets() {
        // x ∈ {40, 140, 300}: three separate slabs. A single interval can only capture one; a
        // powerset of 3 captures all of them (the §6.1 observation about point-wise queries).
        let pred = IntExpr::var(0).one_of([40, 140, 300]);
        let query = QueryDef::new("pointwise", loc_layout(), pred).unwrap();
        let mut synth = Synthesizer::with_config(test_config());
        let interval = synth.synth_interval(&query, ApproxKind::Under).unwrap();
        assert_eq!(interval.truthy().size(), 401);
        let powerset = synth.synth_powerset(&query, ApproxKind::Under, 3).unwrap();
        assert_eq!(powerset.truthy().size(), 3 * 401);
        check_under_soundness(&query, &powerset);
    }

    #[test]
    fn greedy_strategy_is_never_more_precise_than_pareto_here() {
        let query = nearby_query();
        let mut pareto = Synthesizer::with_config(test_config());
        let mut greedy = Synthesizer::with_config(
            test_config().with_strategy(anosy_solver::ExpansionStrategy::Greedy),
        );
        let p = pareto.synth_interval(&query, ApproxKind::Under).unwrap();
        let g = greedy.synth_interval(&query, ApproxKind::Under).unwrap();
        assert!(p.truthy().size() >= g.truthy().size());
    }

    #[test]
    fn sketch_is_derived_from_the_layout() {
        let synth = Synthesizer::with_config(test_config());
        let sketch = synth.sketch(&nearby_query());
        assert_eq!(sketch.arity(), 2);
        assert_eq!(sketch.unfilled_holes().len(), 4);
    }

    #[test]
    fn stats_accumulate() {
        let mut synth = Synthesizer::with_config(test_config());
        let _ = synth.synth_interval(&nearby_query(), ApproxKind::Under).unwrap();
        assert!(synth.solver_stats().queries > 0);
        assert_eq!(synth.seed_from(&[1, 2]), Point::new(vec![1, 2]));
    }

    #[test]
    fn candidates_are_interned_and_store_memoization_is_exercised() {
        let mut synth = Synthesizer::with_config(test_config().with_seeds(3));
        let _ = synth.synth_powerset(&nearby_query(), ApproxKind::Under, 3).unwrap();
        let stats = synth.synth_stats();
        assert!(stats.candidate_boxes > 0, "synthesis grew no candidate boxes");
        // The seed-diversification loop never regrows a covered box, so no duplicates here; the
        // counter existing and staying zero is the interesting property.
        assert_eq!(stats.duplicate_candidates, 0);
        let store = synth.store_stats();
        assert!(store.preds_interned > 0);
        assert!(
            store.cache_hits() > 0,
            "synthesis search should reuse memoized analyses ({} hits / {} misses)",
            store.cache_hits(),
            store.cache_misses()
        );
    }

    #[test]
    fn identical_queries_share_interned_candidates() {
        // Synthesizing the same query twice reuses every interned term: the second run creates
        // almost no new nodes in the store (a handful of fresh simplification intermediates are
        // allowed), which is the structural-sharing property the arena exists for.
        let mut synth = Synthesizer::with_config(test_config());
        let _ = synth.synth_interval(&nearby_query(), ApproxKind::Under).unwrap();
        let after_first = synth.store_stats().preds_interned;
        let _ = synth.synth_interval(&nearby_query(), ApproxKind::Under).unwrap();
        let after_second = synth.store_stats().preds_interned;
        assert_eq!(after_second, after_first, "re-synthesis interned new predicates");
    }
}
