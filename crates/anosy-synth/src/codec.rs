//! Serialization hooks for synthesized approximations (warm-start persistence).
//!
//! A restarted deployment should not pay the cold-start synthesis cost for a query set it has
//! already synthesized, so `anosy-serve` persists its synthesis cache to disk. The interned ids
//! the in-memory cache keys on are not portable across stores, but the *values* — abstract-domain
//! elements — have a tiny, canonical text form, defined here:
//!
//! * every domain element encodes to one line of whitespace-separated tokens
//!   ([`DomainCodec::encode`]);
//! * decoding needs the [`SecretLayout`] (so `⊤` can be rebuilt exactly) and is the inverse of
//!   encoding: `decode(encode(d)) == d` for every element a synthesizer can produce
//!   (round-trip-tested below and property-tested in `anosy-serve`);
//! * the format is deliberately dependency-free (no serde in the workspace) and versioned at the
//!   file level by `anosy-serve`.
//!
//! Intervals are rendered `lo..hi` per field, joined by commas: the under-approximation of the
//! paper's `nearby` query reads `box 121..279,179..221`.

use crate::{ApproxKind, IndSets};
use anosy_domains::{AInt, AbstractDomain, IntervalDomain, PowersetDomain};
use anosy_logic::SecretLayout;

/// An abstract domain whose elements round-trip through a one-line text form.
pub trait DomainCodec: AbstractDomain {
    /// Short tag naming the domain in persisted files (`interval`, `powerset`).
    const TAG: &'static str;

    /// Renders the element as one line of whitespace-separated tokens (no newlines).
    fn encode(&self) -> String;

    /// Parses an element back; `layout` supplies the bounds for `top`. Returns `None` on any
    /// malformed input (the caller treats the whole cache file as cold in that case).
    fn decode(text: &str, layout: &SecretLayout) -> Option<Self>;
}

fn encode_dims(dims: &[AInt]) -> String {
    dims.iter().map(|a| format!("{}..{}", a.lower(), a.upper())).collect::<Vec<_>>().join(",")
}

fn decode_dims(token: &str) -> Option<Vec<AInt>> {
    let mut dims = Vec::new();
    for field in token.split(',') {
        let (lo, hi) = field.split_once("..")?;
        let (lo, hi) = (lo.parse::<i64>().ok()?, hi.parse::<i64>().ok()?);
        if lo > hi {
            return None;
        }
        dims.push(AInt::new(lo, hi));
    }
    if dims.is_empty() {
        None
    } else {
        Some(dims)
    }
}

/// Encodes one interval element as a member token (without the domain tag): `top`, `bottom`, or
/// the comma-joined per-field ranges.
fn encode_interval_member(d: &IntervalDomain) -> String {
    if d.is_top_element() {
        "top".to_string()
    } else {
        match d.intervals() {
            None => "bottom".to_string(),
            Some(dims) => encode_dims(dims),
        }
    }
}

fn decode_interval_member(token: &str, layout: &SecretLayout) -> Option<IntervalDomain> {
    match token {
        "top" => Some(IntervalDomain::top(layout)),
        "bottom" => Some(IntervalDomain::bottom(layout)),
        dims => {
            let dims = decode_dims(dims)?;
            if dims.len() != layout.arity() {
                return None;
            }
            Some(IntervalDomain::from_intervals(dims))
        }
    }
}

impl DomainCodec for IntervalDomain {
    const TAG: &'static str = "interval";

    fn encode(&self) -> String {
        encode_interval_member(self)
    }

    fn decode(text: &str, layout: &SecretLayout) -> Option<Self> {
        decode_interval_member(text.trim(), layout)
    }
}

impl DomainCodec for PowersetDomain {
    const TAG: &'static str = "powerset";

    fn encode(&self) -> String {
        let mut tokens = vec!["include".to_string()];
        tokens.extend(self.includes().iter().map(encode_interval_member));
        tokens.push("exclude".to_string());
        tokens.extend(self.excludes().iter().map(encode_interval_member));
        tokens.join(" ")
    }

    fn decode(text: &str, layout: &SecretLayout) -> Option<Self> {
        let mut tokens = text.split_whitespace();
        if tokens.next()? != "include" {
            return None;
        }
        let mut include = Vec::new();
        let mut exclude = Vec::new();
        let mut in_exclude = false;
        for token in tokens {
            if token == "exclude" {
                if in_exclude {
                    return None;
                }
                in_exclude = true;
                continue;
            }
            let member = decode_interval_member(token, layout)?;
            if in_exclude {
                exclude.push(member);
            } else {
                include.push(member);
            }
        }
        if !in_exclude {
            return None; // the `exclude` marker is mandatory, even when the list is empty
        }
        Some(PowersetDomain::new(layout.arity(), include, exclude))
    }
}

/// Encodes the three components of an ind.-set pair as `(kind, truthy line, falsy line)`.
pub fn encode_indsets<D: DomainCodec>(ind: &IndSets<D>) -> (ApproxKind, String, String) {
    (ind.kind(), ind.truthy().encode(), ind.falsy().encode())
}

/// Rebuilds an ind.-set pair from its encoded components.
pub fn decode_indsets<D: DomainCodec>(
    kind: ApproxKind,
    truthy: &str,
    falsy: &str,
    layout: &SecretLayout,
) -> Option<IndSets<D>> {
    Some(IndSets::new(kind, D::decode(truthy, layout)?, D::decode(falsy, layout)?))
}

/// Parses an [`ApproxKind`] from its `Display` form (`under` / `over`).
pub fn parse_approx_kind(text: &str) -> Option<ApproxKind> {
    match text {
        "under" => Some(ApproxKind::Under),
        "over" => Some(ApproxKind::Over),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> SecretLayout {
        SecretLayout::builder().field("x", -5, 400).field("y", 0, 400).build()
    }

    #[test]
    fn interval_round_trips() {
        let cases = vec![
            IntervalDomain::top(&layout()),
            IntervalDomain::bottom(&layout()),
            IntervalDomain::from_intervals(vec![AInt::new(-5, -1), AInt::new(179, 221)]),
        ];
        for d in cases {
            let line = d.encode();
            assert!(!line.contains('\n'));
            assert_eq!(IntervalDomain::decode(&line, &layout()), Some(d));
        }
    }

    #[test]
    fn powerset_round_trips() {
        let member =
            |a: i64, b: i64| IntervalDomain::from_intervals(vec![AInt::new(a, b), AInt::new(a, b)]);
        let cases = vec![
            PowersetDomain::new(2, vec![], vec![]),
            PowersetDomain::from_interval(member(0, 10)),
            PowersetDomain::new(2, vec![member(0, 10), member(50, 60)], vec![member(2, 3)]),
        ];
        for d in cases {
            assert_eq!(PowersetDomain::decode(&d.encode(), &layout()), Some(d));
        }
    }

    #[test]
    fn malformed_inputs_are_rejected_not_panicked() {
        for bad in [
            "",
            "garbage",
            "5..1",           // inverted range
            "1..2",           // wrong arity (layout has 2 fields)
            "1..2,3..x",      // non-numeric
            "include top",    // powerset without the exclude marker
            "1..2,3..4,5..6", // too many fields
        ] {
            assert_eq!(IntervalDomain::decode(bad, &layout()), None, "interval {bad:?}");
        }
        assert_eq!(PowersetDomain::decode("include top", &layout()), None);
        assert_eq!(PowersetDomain::decode("exclude", &layout()), None);
        assert_eq!(PowersetDomain::decode("include exclude exclude", &layout()), None);
    }

    #[test]
    fn indsets_round_trip_and_kind_parses() {
        let ind = IndSets::new(
            ApproxKind::Under,
            IntervalDomain::from_intervals(vec![AInt::new(121, 279), AInt::new(179, 221)]),
            IntervalDomain::from_intervals(vec![AInt::new(-5, 400), AInt::new(0, 99)]),
        );
        let (kind, t, f) = encode_indsets(&ind);
        let back: IndSets<IntervalDomain> = decode_indsets(kind, &t, &f, &layout()).unwrap();
        assert_eq!(back, ind);
        assert_eq!(parse_approx_kind(&ApproxKind::Under.to_string()), Some(ApproxKind::Under));
        assert_eq!(parse_approx_kind(&ApproxKind::Over.to_string()), Some(ApproxKind::Over));
        assert_eq!(parse_approx_kind("sideways"), None);
    }
}
