//! Sketches: partial ind. set definitions with interval holes (§5.2 of the paper).
//!
//! A sketch is the synthesis template ANOSY derives from the secret layout: one pair of
//! lower/upper holes per secret field and per query answer. `Synth` fills the holes with optimal
//! bounds; the filled sketch *is* the synthesized ind. set. Keeping the sketch as an explicit
//! value (rather than jumping straight to the answer) mirrors the paper's pipeline and gives the
//! benchmark harness something to report about synthesis problem sizes.

use anosy_domains::{AInt, IntervalDomain};
use anosy_logic::SecretLayout;
use std::collections::BTreeMap;
use std::fmt;

/// A single integer hole of a sketch, identified by the field it bounds and which bound it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Hole {
    /// Index of the secret field this hole bounds.
    pub field: usize,
    /// `true` for the lower bound `l_i`, `false` for the upper bound `u_i`.
    pub is_lower: bool,
}

impl fmt::Display for Hole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", if self.is_lower { "l" } else { "u" }, self.field)
    }
}

/// A partial interval-domain definition: one lower and one upper hole per secret field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sketch {
    arity: usize,
    assignments: BTreeMap<Hole, i64>,
}

impl Sketch {
    /// Creates the sketch for one abstract-domain hole of a query over `layout`: `2 * arity`
    /// unfilled holes.
    pub fn for_layout(layout: &SecretLayout) -> Self {
        Sketch { arity: layout.arity(), assignments: BTreeMap::new() }
    }

    /// Number of secret fields.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// All holes of the sketch, filled or not, in field order (lower before upper).
    pub fn holes(&self) -> Vec<Hole> {
        (0..self.arity)
            .flat_map(|field| [Hole { field, is_lower: true }, Hole { field, is_lower: false }])
            .collect()
    }

    /// Holes that have not been assigned a value yet.
    pub fn unfilled_holes(&self) -> Vec<Hole> {
        self.holes().into_iter().filter(|h| !self.assignments.contains_key(h)).collect()
    }

    /// Assigns a value to a hole.
    ///
    /// # Panics
    ///
    /// Panics if the hole does not belong to this sketch.
    pub fn fill(&mut self, hole: Hole, value: i64) {
        assert!(hole.field < self.arity, "hole {hole} is outside the sketch");
        self.assignments.insert(hole, value);
    }

    /// Fills both holes of a field from an interval.
    pub fn fill_field(&mut self, field: usize, interval: AInt) {
        self.fill(Hole { field, is_lower: true }, interval.lower());
        self.fill(Hole { field, is_lower: false }, interval.upper());
    }

    /// Returns `true` when every hole has a value.
    pub fn is_complete(&self) -> bool {
        self.unfilled_holes().is_empty()
    }

    /// Converts a complete sketch into the interval domain it denotes.
    ///
    /// Returns `None` if the sketch is incomplete or a field's bounds are inverted (which the
    /// solver never produces, but a manually-filled sketch could).
    pub fn to_domain(&self) -> Option<IntervalDomain> {
        if !self.is_complete() {
            return None;
        }
        let mut intervals = Vec::with_capacity(self.arity);
        for field in 0..self.arity {
            let lo = *self.assignments.get(&Hole { field, is_lower: true })?;
            let hi = *self.assignments.get(&Hole { field, is_lower: false })?;
            if lo > hi {
                return None;
            }
            intervals.push(AInt::new(lo, hi));
        }
        Some(IntervalDomain::from_intervals(intervals))
    }
}

impl fmt::Display for Sketch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A_I [")?;
        for field in 0..self.arity {
            if field > 0 {
                write!(f, ", ")?;
            }
            let lo = self.assignments.get(&Hole { field, is_lower: true });
            let hi = self.assignments.get(&Hole { field, is_lower: false });
            match (lo, hi) {
                (Some(l), Some(u)) => write!(f, "AInt {l} {u}")?,
                (Some(l), None) => write!(f, "AInt {l} □")?,
                (None, Some(u)) => write!(f, "AInt □ {u}")?,
                (None, None) => write!(f, "AInt □ □")?,
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anosy_domains::AbstractDomain;

    fn layout() -> SecretLayout {
        SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build()
    }

    #[test]
    fn fresh_sketch_has_two_holes_per_field() {
        let s = Sketch::for_layout(&layout());
        assert_eq!(s.arity(), 2);
        assert_eq!(s.holes().len(), 4);
        assert_eq!(s.unfilled_holes().len(), 4);
        assert!(!s.is_complete());
        assert!(s.to_domain().is_none());
    }

    #[test]
    fn filling_all_holes_yields_the_domain_of_the_paper_example() {
        let mut s = Sketch::for_layout(&layout());
        s.fill_field(0, AInt::new(121, 279));
        s.fill(Hole { field: 1, is_lower: true }, 179);
        s.fill(Hole { field: 1, is_lower: false }, 221);
        assert!(s.is_complete());
        let d = s.to_domain().unwrap();
        assert_eq!(d.size(), 159 * 43);
    }

    #[test]
    fn inverted_bounds_do_not_produce_a_domain() {
        let mut s = Sketch::for_layout(&SecretLayout::builder().field("x", 0, 10).build());
        s.fill_field(0, AInt::new(3, 3));
        s.fill(Hole { field: 0, is_lower: true }, 7); // now lower > upper
        assert!(s.to_domain().is_none());
    }

    #[test]
    #[should_panic(expected = "outside the sketch")]
    fn filling_a_foreign_hole_panics() {
        let mut s = Sketch::for_layout(&layout());
        s.fill(Hole { field: 5, is_lower: true }, 0);
    }

    #[test]
    fn display_shows_holes_and_values() {
        let mut s = Sketch::for_layout(&layout());
        assert!(s.to_string().contains('□'));
        s.fill_field(0, AInt::new(1, 2));
        s.fill_field(1, AInt::new(3, 4));
        assert_eq!(s.to_string(), "A_I [AInt 1 2, AInt 3 4]");
        assert_eq!(Hole { field: 0, is_lower: true }.to_string(), "l0");
        assert_eq!(Hole { field: 2, is_lower: false }.to_string(), "u2");
    }
}
