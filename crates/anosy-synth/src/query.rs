//! Query definitions and the query registry.
//!
//! In the paper, queries are Haskell functions named by strings: the compile-time plugin
//! synthesizes their approximations and `downgrade` looks them up by name at runtime (Fig. 2).
//! Here a [`QueryDef`] bundles the name, the secret layout and the predicate, and a
//! [`QueryRegistry`] is the name-indexed map the rest of the system consults.

use crate::SynthError;
use anosy_logic::{parse_pred_with_layout, Point, Pred, SecretLayout};
use std::collections::BTreeMap;
use std::fmt;

/// A named declassification query over a declared secret layout.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryDef {
    name: String,
    layout: SecretLayout,
    pred: Pred,
}

impl QueryDef {
    /// Creates a query, validating that the predicate only mentions fields of the layout.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::InvalidQuery`] when the predicate mentions a field index outside the
    /// layout.
    pub fn new(
        name: impl Into<String>,
        layout: SecretLayout,
        pred: Pred,
    ) -> Result<Self, SynthError> {
        let name = name.into();
        if let Some(max) = pred.free_vars().into_iter().max() {
            if max >= layout.arity() {
                return Err(SynthError::InvalidQuery {
                    name,
                    reason: format!(
                        "predicate mentions field v{max} but the layout has arity {}",
                        layout.arity()
                    ),
                });
            }
        }
        Ok(QueryDef { name, layout, pred })
    }

    /// Parses a query from the surface syntax, resolving identifiers against the layout.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::InvalidQuery`] when the text does not parse.
    pub fn parse(
        name: impl Into<String>,
        layout: SecretLayout,
        text: &str,
    ) -> Result<Self, SynthError> {
        let name = name.into();
        match parse_pred_with_layout(text, &layout) {
            Ok(pred) => QueryDef::new(name, layout, pred),
            Err(e) => Err(SynthError::InvalidQuery { name, reason: e.to_string() }),
        }
    }

    /// The query's unique name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The secret layout the query ranges over.
    pub fn layout(&self) -> &SecretLayout {
        &self.layout
    }

    /// The query predicate.
    pub fn pred(&self) -> &Pred {
        &self.pred
    }

    /// Evaluates the query on a concrete secret (panics are avoided: out-of-layout points simply
    /// answer `false`).
    pub fn ask(&self, secret: &Point) -> bool {
        self.pred.eval(secret).unwrap_or(false)
    }
}

impl fmt::Display for QueryDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.pred)
    }
}

/// A name-indexed collection of queries (the paper's `queries` map, without the approximation
/// functions, which live in `anosy-core::QInfo`).
#[derive(Debug, Clone, Default)]
pub struct QueryRegistry {
    queries: BTreeMap<String, QueryDef>,
}

impl QueryRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        QueryRegistry::default()
    }

    /// Registers a query, replacing any previous query with the same name. Returns the previous
    /// definition if one existed.
    pub fn register(&mut self, query: QueryDef) -> Option<QueryDef> {
        self.queries.insert(query.name.clone(), query)
    }

    /// Looks a query up by name.
    pub fn get(&self, name: &str) -> Option<&QueryDef> {
        self.queries.get(name)
    }

    /// Returns `true` if a query with this name is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.queries.contains_key(name)
    }

    /// Number of registered queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Returns `true` when no query is registered.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Iterates over the registered queries in name order.
    pub fn iter(&self) -> impl Iterator<Item = &QueryDef> {
        self.queries.values()
    }

    /// The registered names, in order.
    pub fn names(&self) -> Vec<&str> {
        self.queries.keys().map(String::as_str).collect()
    }
}

impl FromIterator<QueryDef> for QueryRegistry {
    fn from_iter<T: IntoIterator<Item = QueryDef>>(iter: T) -> Self {
        let mut registry = QueryRegistry::new();
        for q in iter {
            registry.register(q);
        }
        registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anosy_logic::IntExpr;

    fn layout() -> SecretLayout {
        SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build()
    }

    #[test]
    fn construction_validates_fields() {
        let ok = QueryDef::new("q", layout(), IntExpr::var(1).le(3));
        assert!(ok.is_ok());
        let err = QueryDef::new("q", layout(), IntExpr::var(7).le(3)).unwrap_err();
        assert!(matches!(err, SynthError::InvalidQuery { .. }));
    }

    #[test]
    fn parse_uses_field_names() {
        let q = QueryDef::parse("near", layout(), "abs(x - 200) + abs(y - 200) <= 100").unwrap();
        assert!(q.ask(&Point::new(vec![250, 200])));
        assert!(!q.ask(&Point::new(vec![0, 0])));
        assert!(QueryDef::parse("bad", layout(), "z <= 3").is_err());
    }

    #[test]
    fn ask_is_total() {
        let q = QueryDef::new("q", layout(), IntExpr::var(1).le(3)).unwrap();
        // Wrong arity points simply answer false instead of panicking.
        assert!(!q.ask(&Point::new(vec![1])));
    }

    #[test]
    fn registry_round_trip() {
        let q1 = QueryDef::new("a", layout(), IntExpr::var(0).le(3)).unwrap();
        let q2 = QueryDef::new("b", layout(), IntExpr::var(0).ge(3)).unwrap();
        let mut reg = QueryRegistry::new();
        assert!(reg.is_empty());
        assert!(reg.register(q1.clone()).is_none());
        assert!(reg.register(q2).is_none());
        assert_eq!(reg.len(), 2);
        assert!(reg.contains("a"));
        assert!(!reg.contains("c"));
        assert_eq!(reg.get("a"), Some(&q1));
        assert_eq!(reg.names(), vec!["a", "b"]);
        // Re-registering replaces and returns the old definition.
        let q1_new = QueryDef::new("a", layout(), IntExpr::var(0).le(5)).unwrap();
        assert_eq!(reg.register(q1_new), Some(q1));
    }

    #[test]
    fn registry_from_iterator() {
        let reg: QueryRegistry = vec![
            QueryDef::new("a", layout(), Pred::True).unwrap(),
            QueryDef::new("b", layout(), Pred::False).unwrap(),
        ]
        .into_iter()
        .collect();
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn display_shows_name_and_predicate() {
        let q = QueryDef::new("near", layout(), IntExpr::var(0).le(3)).unwrap();
        assert!(q.to_string().starts_with("near:"));
    }
}
