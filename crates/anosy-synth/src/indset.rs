//! Indistinguishability sets and posterior computation (§2.2 and Fig. 4 of the paper).

use anosy_domains::AbstractDomain;
use std::fmt;

/// Which direction an approximation errs in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ApproxKind {
    /// Under-approximation: the domain may miss secrets but every secret it contains is correct.
    /// This is the direction used for enforcing lower-bound (`size > k`) policies soundly.
    Under,
    /// Over-approximation: the domain contains every correct secret but may include extras.
    Over,
}

impl ApproxKind {
    /// Both kinds, in the order the paper's tables report them.
    pub const ALL: [ApproxKind; 2] = [ApproxKind::Under, ApproxKind::Over];
}

impl fmt::Display for ApproxKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApproxKind::Under => write!(f, "under"),
            ApproxKind::Over => write!(f, "over"),
        }
    }
}

/// The pair of approximated indistinguishability sets of a query: one abstract-domain element for
/// the secrets that answer `true` and one for the secrets that answer `false`.
///
/// The posterior after observing a query result is the intersection of the prior with the
/// matching ind. set (Fig. 4): [`IndSets::posterior`] computes both branches at once, which is
/// exactly what the bounded downgrade needs (it must check the policy on *both* outcomes before
/// revealing either, §3).
#[derive(Debug, Clone, PartialEq)]
pub struct IndSets<D> {
    truthy: D,
    falsy: D,
    kind: ApproxKind,
}

impl<D: AbstractDomain> IndSets<D> {
    /// Packages the two ind. sets of a query.
    pub fn new(kind: ApproxKind, truthy: D, falsy: D) -> Self {
        IndSets { truthy, falsy, kind }
    }

    /// The approximation direction these sets were synthesized for.
    pub fn kind(&self) -> ApproxKind {
        self.kind
    }

    /// The ind. set of secrets answering `true`.
    pub fn truthy(&self) -> &D {
        &self.truthy
    }

    /// The ind. set of secrets answering `false`.
    pub fn falsy(&self) -> &D {
        &self.falsy
    }

    /// The ind. set matching a concrete query response.
    pub fn for_response(&self, response: bool) -> &D {
        if response {
            &self.truthy
        } else {
            &self.falsy
        }
    }

    /// The posterior knowledge for both possible responses given prior knowledge `prior`:
    /// `(prior ∩ truthy, prior ∩ falsy)`.
    pub fn posterior(&self, prior: &D) -> (D, D) {
        (prior.intersect(&self.truthy), prior.intersect(&self.falsy))
    }

    /// Maps both ind. sets through a conversion (e.g. lifting interval ind. sets into powersets).
    pub fn map<E: AbstractDomain>(&self, mut f: impl FnMut(&D) -> E) -> IndSets<E> {
        IndSets { truthy: f(&self.truthy), falsy: f(&self.falsy), kind: self.kind }
    }
}

impl<D: AbstractDomain> fmt::Display for IndSets<D>
where
    D: fmt::Display,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: (true ↦ {}, false ↦ {})", self.kind, self.truthy, self.falsy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anosy_domains::{AInt, IntervalDomain, PowersetDomain};
    use anosy_logic::{Point, SecretLayout};

    fn layout() -> SecretLayout {
        SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build()
    }

    /// The paper's running example: under-approximate ind. sets of nearby (200,200) (§2.2).
    fn paper_indsets() -> IndSets<IntervalDomain> {
        IndSets::new(
            ApproxKind::Under,
            IntervalDomain::from_intervals(vec![AInt::new(121, 279), AInt::new(179, 221)]),
            IntervalDomain::from_intervals(vec![AInt::new(0, 400), AInt::new(0, 99)]),
        )
    }

    #[test]
    fn accessors_and_response_selection() {
        let ind = paper_indsets();
        assert_eq!(ind.kind(), ApproxKind::Under);
        assert_eq!(ind.for_response(true), ind.truthy());
        assert_eq!(ind.for_response(false), ind.falsy());
        assert!(ind.truthy().contains(&Point::new(vec![200, 200])));
        assert!(ind.falsy().contains(&Point::new(vec![0, 0])));
    }

    #[test]
    fn posterior_is_the_pairwise_intersection_with_the_prior() {
        // §3's worked example: starting from ⊤, downgrading nearby (200,200) gives a posterior of
        // size 159 × 43 = 6837 for the True branch.
        let ind = paper_indsets();
        let prior = IntervalDomain::top(&layout());
        let (post_t, post_f) = ind.posterior(&prior);
        assert_eq!(post_t.size(), 6837);
        assert_eq!(post_f.size(), 401 * 100);
        // Intersecting with a more informative prior shrinks the posterior accordingly
        // (nearby (300,200) after nearby (200,200): size 2537 in the paper).
        let prior2 = IntervalDomain::from_intervals(vec![AInt::new(221, 379), AInt::new(179, 221)]);
        let (post_t2, _) = ind.posterior(&prior2);
        assert_eq!(post_t2.size(), 59 * 43);
    }

    #[test]
    fn map_lifts_interval_indsets_into_powersets() {
        let ind = paper_indsets();
        let lifted: IndSets<PowersetDomain> = ind.map(|d| PowersetDomain::from_interval(d.clone()));
        assert_eq!(lifted.kind(), ApproxKind::Under);
        assert_eq!(lifted.truthy().size(), ind.truthy().size());
        assert_eq!(lifted.falsy().size(), ind.falsy().size());
    }

    #[test]
    fn approx_kind_display_and_all() {
        assert_eq!(ApproxKind::Under.to_string(), "under");
        assert_eq!(ApproxKind::Over.to_string(), "over");
        assert_eq!(ApproxKind::ALL.len(), 2);
    }

    #[test]
    fn display_mentions_both_branches() {
        let s = paper_indsets().to_string();
        assert!(s.contains("true ↦"));
        assert!(s.contains("false ↦"));
    }
}
