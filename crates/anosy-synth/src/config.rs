//! Synthesis configuration.

use anosy_solver::{ExpansionStrategy, SolverConfig};

/// Tuning knobs for the [`crate::Synthesizer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthConfig {
    /// Configuration of the underlying decision procedures (node/time budgets). Plays the role
    /// of the 10-second Z3 timeout in the paper's experiments (§6.1).
    pub solver: SolverConfig,
    /// How under-approximation boxes are grown around their seed. [`ExpansionStrategy::Pareto`]
    /// reproduces the paper's Pareto optimization; [`ExpansionStrategy::Greedy`] is the ablation
    /// baseline.
    pub strategy: ExpansionStrategy,
    /// How many distinct seeds to try per under-approximation box; the largest resulting box is
    /// kept. More seeds cost more synthesis time but can only improve precision.
    pub seeds: usize,
}

impl SynthConfig {
    /// The default configuration (Pareto expansion, 3 seeds, default solver budgets).
    pub fn new() -> Self {
        SynthConfig {
            solver: SolverConfig::default(),
            strategy: ExpansionStrategy::Pareto,
            seeds: 3,
        }
    }

    /// Overrides the solver configuration.
    pub fn with_solver(mut self, solver: SolverConfig) -> Self {
        self.solver = solver;
        self
    }

    /// Overrides the expansion strategy.
    pub fn with_strategy(mut self, strategy: ExpansionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Overrides the number of seeds tried per box.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is zero.
    pub fn with_seeds(mut self, seeds: usize) -> Self {
        assert!(seeds > 0, "at least one seed is required");
        self.seeds = seeds;
        self
    }
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_pareto_with_multiple_seeds() {
        let c = SynthConfig::default();
        assert_eq!(c.strategy, ExpansionStrategy::Pareto);
        assert!(c.seeds >= 1);
    }

    #[test]
    fn builders_override() {
        let c = SynthConfig::new()
            .with_strategy(ExpansionStrategy::Greedy)
            .with_seeds(1)
            .with_solver(SolverConfig::for_tests());
        assert_eq!(c.strategy, ExpansionStrategy::Greedy);
        assert_eq!(c.seeds, 1);
        assert_eq!(c.solver, SolverConfig::for_tests());
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn zero_seeds_rejected() {
        let _ = SynthConfig::new().with_seeds(0);
    }
}
