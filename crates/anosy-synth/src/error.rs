//! Synthesis errors.

use anosy_solver::SolverError;
use std::fmt;

/// Errors surfaced by the synthesizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthError {
    /// The underlying decision procedure ran out of budget or was misused.
    Solver(SolverError),
    /// The query definition is not usable (e.g. mentions fields outside its layout).
    InvalidQuery {
        /// The query's name.
        name: String,
        /// What is wrong with it.
        reason: String,
    },
    /// A powerset of the requested number of members could not be synthesized because the
    /// remaining region contains no further models. This is not a correctness problem — the
    /// partial powerset is already exact — so callers typically treat it as success; it is
    /// reported so callers can tell the difference.
    RegionExhausted {
        /// Number of members synthesized before exhaustion.
        synthesized: usize,
        /// Number of members requested.
        requested: usize,
    },
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::Solver(e) => write!(f, "solver failure during synthesis: {e}"),
            SynthError::InvalidQuery { name, reason } => {
                write!(f, "query `{name}` is invalid: {reason}")
            }
            SynthError::RegionExhausted { synthesized, requested } => {
                write!(f, "region exhausted after {synthesized} of {requested} powerset members")
            }
        }
    }
}

impl std::error::Error for SynthError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SynthError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SolverError> for SynthError {
    fn from(e: SolverError) -> Self {
        SynthError::Solver(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error as _;
        let e = SynthError::from(SolverError::BudgetExhausted { limit: "node", explored: 1 });
        assert!(e.to_string().contains("solver failure"));
        assert!(e.source().is_some());
        let i = SynthError::InvalidQuery { name: "q".into(), reason: "bad".into() };
        assert!(i.to_string().contains("`q`"));
        assert!(i.source().is_none());
        let r = SynthError::RegionExhausted { synthesized: 2, requested: 5 };
        assert!(r.to_string().contains("2 of 5"));
    }
}
