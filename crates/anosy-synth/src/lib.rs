//! Correct-by-construction synthesis of knowledge approximations (§5 of the paper).
//!
//! Given a declassification query — a boolean predicate over a bounded multi-integer secret —
//! ANOSY synthesizes its *indistinguishability sets*: an abstract-domain element for the secrets
//! that answer `true` and one for the secrets that answer `false`. Intersecting those with any
//! prior knowledge yields the posterior knowledge after the query is observed, which is what the
//! bounded-downgrade monitor in `anosy-core` consumes.
//!
//! The pipeline mirrors the paper's four steps (§2.3):
//!
//! 1. **Specification** — the refinement-type obligations are represented by [`ApproxKind`] and
//!    checked after the fact by the `anosy-verify` crate;
//! 2. **Sketching** — [`Sketch`] is the partial program with interval holes, generated from the
//!    query's [`anosy_logic::SecretLayout`];
//! 3. **SMT-based synthesis** — [`Synthesizer::synth_interval`] fills a sketch with optimal
//!    bounds using the `anosy-solver` optimization and maximal-box procedures (the stand-in for
//!    Z3's Pareto `maximize`/`minimize` directives);
//! 4. **Iterative powerset synthesis** — [`Synthesizer::synth_powerset`] implements Algorithm 1
//!    (`IterSynth`), growing an inclusion list (under-approximations) or an exclusion list
//!    (over-approximations) one interval at a time.
//!
//! # Example
//!
//! ```
//! use anosy_logic::{IntExpr, SecretLayout};
//! use anosy_synth::{ApproxKind, QueryDef, Synthesizer};
//! use anosy_domains::AbstractDomain;
//!
//! let layout = SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build();
//! let nearby = ((IntExpr::var(0) - 200).abs() + (IntExpr::var(1) - 200).abs()).le(100);
//! let query = QueryDef::new("nearby_200_200", layout, nearby).unwrap();
//!
//! let mut synth = Synthesizer::new();
//! let ind = synth.synth_interval(&query, ApproxKind::Under).unwrap();
//! // Every point of the synthesized True set answers the query with `true`.
//! assert!(ind.truthy().size() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod config;
mod error;
mod indset;
mod query;
mod sketch;
mod synthesizer;

pub use codec::{decode_indsets, encode_indsets, parse_approx_kind, DomainCodec};
pub use config::SynthConfig;
pub use error::SynthError;
pub use indset::{ApproxKind, IndSets};
pub use query::{QueryDef, QueryRegistry};
pub use sketch::{Hole, Sketch};
pub use synthesizer::{SynthStats, Synthesizer};
