//! `AInt`: a single abstract integer, i.e. an inclusive interval of `i64` values.

use anosy_logic::Range;
use std::fmt;

/// An abstract integer: every concrete value between `lower` and `upper`, inclusive.
///
/// This mirrors the paper's `data AInt = AInt { lower :: Int, upper :: Int }` (§2.2). `AInt` is
/// always non-empty; emptiness is a property of whole domains ([`crate::IntervalDomain`] has an
/// explicit bottom element), never of an individual abstract integer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AInt {
    lower: i64,
    upper: i64,
}

impl AInt {
    /// Creates the abstract integer `[lower, upper]`.
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper`.
    pub fn new(lower: i64, upper: i64) -> Self {
        assert!(lower <= upper, "AInt requires lower <= upper (got {lower} > {upper})");
        AInt { lower, upper }
    }

    /// The abstract integer containing exactly `value`.
    pub fn singleton(value: i64) -> Self {
        AInt::new(value, value)
    }

    /// Inclusive lower bound.
    pub fn lower(&self) -> i64 {
        self.lower
    }

    /// Inclusive upper bound.
    pub fn upper(&self) -> i64 {
        self.upper
    }

    /// Number of concrete integers represented.
    pub fn size(&self) -> u128 {
        (self.upper as i128 - self.lower as i128 + 1) as u128
    }

    /// Returns `true` if `value` is represented.
    pub fn contains(&self, value: i64) -> bool {
        self.lower <= value && value <= self.upper
    }

    /// Returns `true` if every value of `other` is also in `self`.
    pub fn contains_all(&self, other: &AInt) -> bool {
        self.lower <= other.lower && other.upper <= self.upper
    }

    /// Intersection, or `None` when the two abstract integers share no value.
    pub fn intersect(&self, other: &AInt) -> Option<AInt> {
        let lower = self.lower.max(other.lower);
        let upper = self.upper.min(other.upper);
        if lower <= upper {
            Some(AInt::new(lower, upper))
        } else {
            None
        }
    }

    /// Smallest abstract integer containing both inputs.
    pub fn hull(&self, other: &AInt) -> AInt {
        AInt::new(self.lower.min(other.lower), self.upper.max(other.upper))
    }

    /// The corresponding analysis [`Range`].
    pub fn to_range(&self) -> Range {
        Range::new(self.lower, self.upper)
    }

    /// Builds an `AInt` from a non-empty [`Range`]; returns `None` for the empty range.
    pub fn from_range(range: Range) -> Option<AInt> {
        if range.is_empty() {
            None
        } else {
            Some(AInt::new(range.lo(), range.hi()))
        }
    }
}

impl From<AInt> for Range {
    fn from(a: AInt) -> Range {
        a.to_range()
    }
}

impl fmt::Display for AInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lower, self.upper)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let a = AInt::new(121, 279);
        assert_eq!(a.lower(), 121);
        assert_eq!(a.upper(), 279);
        assert_eq!(a.size(), 159);
        assert_eq!(AInt::singleton(5).size(), 1);
    }

    #[test]
    #[should_panic(expected = "lower <= upper")]
    fn inverted_bounds_panic() {
        let _ = AInt::new(3, 2);
    }

    #[test]
    fn membership_and_subset() {
        let a = AInt::new(0, 10);
        assert!(a.contains(0) && a.contains(10) && !a.contains(11));
        assert!(a.contains_all(&AInt::new(2, 8)));
        assert!(!a.contains_all(&AInt::new(2, 11)));
    }

    #[test]
    fn intersection_and_hull() {
        let a = AInt::new(0, 10);
        let b = AInt::new(5, 20);
        assert_eq!(a.intersect(&b), Some(AInt::new(5, 10)));
        assert_eq!(a.intersect(&AInt::new(11, 12)), None);
        assert_eq!(a.hull(&b), AInt::new(0, 20));
    }

    #[test]
    fn range_round_trip() {
        let a = AInt::new(-3, 7);
        let r: Range = a.into();
        assert_eq!(AInt::from_range(r), Some(a));
        assert_eq!(AInt::from_range(Range::empty()), None);
    }

    #[test]
    fn size_does_not_overflow_for_extreme_bounds() {
        let a = AInt::new(i64::MIN, i64::MAX);
        assert_eq!(a.size(), (u64::MAX as u128) + 1);
    }

    #[test]
    fn display_matches_math_notation() {
        assert_eq!(AInt::new(1, 2).to_string(), "[1, 2]");
    }
}
