//! Executable versions of the `AbstractDomain` class laws (Fig. 3 of the paper).
//!
//! The paper states two laws as refinement types with proof-term members (`sizeLaw`,
//! `subsetLaw`) plus the refined type of intersection. Here the laws are ordinary functions that
//! check a given collection of domain elements and sample points; the domain crates' test suites
//! and the `anosy-verify` crate call them, and property-based tests drive them with random
//! elements.

use crate::AbstractDomain;
use anosy_logic::Point;

/// A violation of one of the abstract-domain laws, for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LawViolation {
    /// Which law was violated.
    pub law: &'static str,
    /// Human-readable description of the violating instance.
    pub detail: String,
}

impl std::fmt::Display for LawViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} violated: {}", self.law, self.detail)
    }
}

/// **sizeLaw**: if `d1 ⊆ d2` then `size d1 <= size d2`.
pub fn check_size_law<D: AbstractDomain>(d1: &D, d2: &D) -> Result<(), LawViolation> {
    if d1.is_subset_of(d2) && d1.size() > d2.size() {
        return Err(LawViolation {
            law: "sizeLaw",
            detail: format!("{d1:?} ⊆ {d2:?} but size {} > {}", d1.size(), d2.size()),
        });
    }
    Ok(())
}

/// **subsetLaw**: if `d1 ⊆ d2` then every sampled point of `d1` is also in `d2`.
pub fn check_subset_law<D: AbstractDomain>(
    d1: &D,
    d2: &D,
    samples: &[Point],
) -> Result<(), LawViolation> {
    if !d1.is_subset_of(d2) {
        return Ok(());
    }
    for c in samples {
        if d1.contains(c) && !d2.contains(c) {
            return Err(LawViolation {
                law: "subsetLaw",
                detail: format!("{c} ∈ {d1:?} ⊆ {d2:?} but ∉ the superset"),
            });
        }
    }
    Ok(())
}

/// The refined type of `∩` (Fig. 3): the meet is a subset of both arguments, contains every
/// sampled point that is in both, and contains no sampled point that is missing from either.
pub fn check_intersection_spec<D: AbstractDomain>(
    d1: &D,
    d2: &D,
    samples: &[Point],
) -> Result<(), LawViolation> {
    let meet = d1.intersect(d2);
    if !meet.is_subset_of(d1) || !meet.is_subset_of(d2) {
        return Err(LawViolation {
            law: "intersectSpec",
            detail: format!("{meet:?} is not a subset of both {d1:?} and {d2:?}"),
        });
    }
    for c in samples {
        let in_both = d1.contains(c) && d2.contains(c);
        if in_both && !meet.contains(c) {
            return Err(LawViolation {
                law: "intersectSpec",
                detail: format!("{c} is in both arguments but not in the meet"),
            });
        }
        if meet.contains(c) && !in_both {
            return Err(LawViolation {
                law: "intersectSpec",
                detail: format!("{c} is in the meet but not in both arguments"),
            });
        }
    }
    Ok(())
}

/// Checks every law for every ordered pair of the given elements against the given sample
/// points, collecting all violations.
pub fn check_all_laws<D: AbstractDomain>(elements: &[D], samples: &[Point]) -> Vec<LawViolation> {
    let mut violations = Vec::new();
    for d1 in elements {
        for d2 in elements {
            if let Err(v) = check_size_law(d1, d2) {
                violations.push(v);
            }
            if let Err(v) = check_subset_law(d1, d2, samples) {
                violations.push(v);
            }
            if let Err(v) = check_intersection_spec(d1, d2, samples) {
                violations.push(v);
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AInt, IntervalDomain, PowersetDomain};
    use anosy_logic::SecretLayout;

    fn layout() -> SecretLayout {
        SecretLayout::builder().field("x", 0, 15).field("y", 0, 15).build()
    }

    fn samples() -> Vec<Point> {
        layout().space().points().collect()
    }

    fn interval(x: (i64, i64), y: (i64, i64)) -> IntervalDomain {
        IntervalDomain::from_intervals(vec![AInt::new(x.0, x.1), AInt::new(y.0, y.1)])
    }

    #[test]
    fn interval_domain_satisfies_all_laws() {
        let l = layout();
        let elements = vec![
            IntervalDomain::top(&l),
            IntervalDomain::bottom(&l),
            interval((0, 5), (0, 5)),
            interval((3, 12), (2, 9)),
            interval((5, 5), (9, 9)),
        ];
        assert_eq!(check_all_laws(&elements, &samples()), Vec::new());
    }

    #[test]
    fn powerset_domain_satisfies_all_laws() {
        let l = layout();
        let elements = vec![
            PowersetDomain::top(&l),
            PowersetDomain::bottom(&l),
            PowersetDomain::new(
                2,
                vec![interval((0, 5), (0, 5)), interval((8, 12), (8, 12))],
                vec![],
            ),
            PowersetDomain::new(
                2,
                vec![interval((0, 10), (0, 10))],
                vec![interval((4, 6), (4, 6))],
            ),
            PowersetDomain::new(
                2,
                vec![interval((2, 14), (2, 14)), interval((0, 3), (0, 3))],
                vec![interval((5, 9), (0, 15))],
            ),
        ];
        assert_eq!(check_all_laws(&elements, &samples()), Vec::new());
    }

    #[test]
    fn violations_are_reported_with_context() {
        // A deliberately broken "domain" cannot be constructed through the public API, so we
        // check the reporting path by misusing the law-checkers directly: a pair for which the
        // subset relation does not hold must never be reported.
        let d1 = interval((0, 5), (0, 5));
        let d2 = interval((10, 12), (10, 12));
        assert!(check_size_law(&d1, &d2).is_ok());
        assert!(check_subset_law(&d1, &d2, &samples()).is_ok());
        let v = LawViolation { law: "sizeLaw", detail: "example".into() };
        assert!(v.to_string().contains("sizeLaw"));
    }
}
