//! The powerset-of-intervals abstract domain `A_P` (§4.4 of the paper).

use crate::{region_size, subtract_boxes, AbstractDomain, IntervalDomain};
use anosy_logic::{IntBox, Point, Pred, SecretLayout};
use std::fmt;

/// The powerset abstract domain: knowledge represented as `(∪ inclusion boxes) \ (∪ exclusion
/// boxes)`.
///
/// This mirrors the paper's `A_P` datatype, whose `dom_i`/`dom_o` fields hold the interval
/// domains that are included in and excluded from the powerset. The two-list representation is
/// what makes the iterative synthesis algorithm (Algorithm 1) simple: under-approximations grow
/// the inclusion list, over-approximations grow the exclusion list.
///
/// Unlike the paper's implementation, whose `⊆` check and `size` are conservative when members
/// overlap, this implementation is **exact**: overlaps are resolved with explicit box algebra
/// ([`crate::region_size`]), so `size` never double-counts and `is_subset_of` decides the true
/// set inclusion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PowersetDomain {
    arity: usize,
    include: Vec<IntervalDomain>,
    exclude: Vec<IntervalDomain>,
}

impl PowersetDomain {
    /// Creates a powerset from inclusion and exclusion members.
    ///
    /// Empty members are dropped; the arity must be consistent across all members.
    ///
    /// # Panics
    ///
    /// Panics if a member has a different arity.
    pub fn new(arity: usize, include: Vec<IntervalDomain>, exclude: Vec<IntervalDomain>) -> Self {
        for d in include.iter().chain(exclude.iter()) {
            assert_eq!(d.arity(), arity, "powerset member arity mismatch");
        }
        let mut p = PowersetDomain {
            arity,
            include: include.into_iter().filter(|d| !d.is_empty()).collect(),
            exclude: exclude.into_iter().filter(|d| !d.is_empty()).collect(),
        };
        p.normalize();
        p
    }

    /// A powerset with a single inclusion member and no exclusions.
    pub fn from_interval(member: IntervalDomain) -> Self {
        let arity = member.arity();
        PowersetDomain::new(arity, vec![member], vec![])
    }

    /// Number of secret fields.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The inclusion members (`dom_i`).
    pub fn includes(&self) -> &[IntervalDomain] {
        &self.include
    }

    /// The exclusion members (`dom_o`).
    pub fn excludes(&self) -> &[IntervalDomain] {
        &self.exclude
    }

    /// Adds an inclusion member (used by iterative under-approximation synthesis).
    pub fn push_include(&mut self, member: IntervalDomain) {
        assert_eq!(member.arity(), self.arity, "powerset member arity mismatch");
        if !member.is_empty() {
            self.include.push(member);
            self.normalize();
        }
    }

    /// Adds an exclusion member (used by iterative over-approximation synthesis).
    pub fn push_exclude(&mut self, member: IntervalDomain) {
        assert_eq!(member.arity(), self.arity, "powerset member arity mismatch");
        if !member.is_empty() {
            self.exclude.push(member);
            self.normalize();
        }
    }

    fn include_boxes(&self) -> Vec<IntBox> {
        self.include.iter().filter_map(IntervalDomain::to_box).collect()
    }

    fn exclude_boxes(&self) -> Vec<IntBox> {
        self.exclude.iter().filter_map(IntervalDomain::to_box).collect()
    }

    /// Drops members that contribute nothing: inclusion boxes whose residual size (after earlier
    /// members and the exclusions) is zero, and exclusion boxes that do not intersect any
    /// inclusion box. Keeps repeated intersections (e.g. across the 50 queries of the Fig. 6
    /// workload) from accumulating dead members.
    fn normalize(&mut self) {
        let excludes = self.exclude_boxes();
        let mut kept: Vec<IntervalDomain> = Vec::with_capacity(self.include.len());
        let mut kept_boxes: Vec<IntBox> = Vec::with_capacity(self.include.len());
        for member in &self.include {
            let Some(b) = member.to_box() else { continue };
            let mut minus = kept_boxes.clone();
            minus.extend(excludes.iter().cloned());
            if subtract_boxes(&b, &minus).is_empty() {
                continue;
            }
            kept.push(member.clone());
            kept_boxes.push(b);
        }
        self.include = kept;
        let include_boxes = kept_boxes;
        self.exclude.retain(|e| {
            e.to_box()
                .map(|eb| include_boxes.iter().any(|ib| !ib.intersect(&eb).is_empty()))
                .unwrap_or(false)
        });
    }
}

impl AbstractDomain for PowersetDomain {
    fn top(layout: &SecretLayout) -> Self {
        PowersetDomain::from_interval(IntervalDomain::top(layout))
    }

    fn bottom(layout: &SecretLayout) -> Self {
        PowersetDomain::new(layout.arity(), vec![], vec![])
    }

    fn contains(&self, point: &Point) -> bool {
        point.arity() == self.arity
            && self.include.iter().any(|d| d.contains(point))
            && !self.exclude.iter().any(|d| d.contains(point))
    }

    fn is_subset_of(&self, other: &Self) -> bool {
        // Exact inclusion: |self| == |self ∩ other| (both sizes are exact).
        let meet = self.intersect(other);
        self.size() == meet.size()
    }

    fn intersect(&self, other: &Self) -> Self {
        assert_eq!(self.arity, other.arity, "intersected powersets must have equal arity");
        let mut include = Vec::new();
        for a in &self.include {
            for b in &other.include {
                let m = a.intersect(b);
                if !m.is_empty() {
                    include.push(m);
                }
            }
        }
        let mut exclude = self.exclude.clone();
        exclude.extend(other.exclude.iter().cloned());
        PowersetDomain::new(self.arity, include, exclude)
    }

    fn size(&self) -> u128 {
        region_size(&self.include_boxes(), &self.exclude_boxes())
    }

    fn to_pred(&self) -> Pred {
        if self.include.is_empty() {
            return Pred::False;
        }
        let inside = Pred::or(self.include.iter().map(IntervalDomain::to_pred).collect());
        if self.exclude.is_empty() {
            inside
        } else {
            let outside = Pred::or(self.exclude.iter().map(IntervalDomain::to_pred).collect());
            inside.and_also(outside.negate())
        }
    }

    fn bounding_box(&self) -> Option<IntBox> {
        let boxes = self.include_boxes();
        let mut iter = boxes.into_iter();
        let first = iter.next()?;
        Some(iter.fold(first, |acc, b| {
            IntBox::new(acc.dims().iter().zip(b.dims().iter()).map(|(x, y)| x.hull(*y)).collect())
        }))
    }

    fn from_box(boxed: &IntBox) -> Self {
        let member = IntervalDomain::from_box(boxed);
        if member.is_empty() {
            PowersetDomain::new(boxed.arity(), vec![], vec![])
        } else {
            PowersetDomain::from_interval(member)
        }
    }
}

impl fmt::Display for PowersetDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.include.is_empty() {
            return write!(f, "⊥P");
        }
        write!(f, "⋃{{")?;
        for (i, d) in self.include.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "}}")?;
        if !self.exclude.is_empty() {
            write!(f, " \\ ⋃{{")?;
            for (i, d) in self.exclude.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{d}")?;
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AInt;

    fn layout() -> SecretLayout {
        SecretLayout::builder().field("x", 0, 20).field("y", 0, 20).build()
    }

    fn interval(x: (i64, i64), y: (i64, i64)) -> IntervalDomain {
        IntervalDomain::from_intervals(vec![AInt::new(x.0, x.1), AInt::new(y.0, y.1)])
    }

    fn brute_size(d: &PowersetDomain, layout: &SecretLayout) -> u128 {
        layout.space().points().filter(|p| d.contains(p)).count() as u128
    }

    #[test]
    fn top_and_bottom() {
        let l = layout();
        let top = PowersetDomain::top(&l);
        let bot = PowersetDomain::bottom(&l);
        assert_eq!(top.size(), 441);
        assert_eq!(bot.size(), 0);
        assert!(bot.is_subset_of(&top));
        assert!(bot.is_empty());
        assert!(top.contains(&Point::new(vec![0, 0])));
        assert!(!bot.contains(&Point::new(vec![0, 0])));
    }

    #[test]
    fn size_is_exact_despite_overlaps() {
        let l = layout();
        let d = PowersetDomain::new(
            2,
            vec![interval((0, 10), (0, 10)), interval((5, 15), (5, 15))],
            vec![interval((8, 12), (8, 12))],
        );
        assert_eq!(d.size(), brute_size(&d, &l));
    }

    #[test]
    fn membership_follows_include_minus_exclude() {
        let d = PowersetDomain::new(
            2,
            vec![interval((0, 10), (0, 10))],
            vec![interval((3, 5), (3, 5))],
        );
        assert!(d.contains(&Point::new(vec![0, 0])));
        assert!(!d.contains(&Point::new(vec![4, 4])));
        assert!(!d.contains(&Point::new(vec![11, 0])));
        assert!(!d.contains(&Point::new(vec![4]))); // wrong arity
    }

    #[test]
    fn intersection_is_the_exact_meet() {
        let l = layout();
        let a = PowersetDomain::new(
            2,
            vec![interval((0, 10), (0, 10)), interval((12, 20), (12, 20))],
            vec![interval((4, 6), (4, 6))],
        );
        let b = PowersetDomain::new(
            2,
            vec![interval((5, 14), (5, 14))],
            vec![interval((13, 20), (0, 20))],
        );
        let meet = a.intersect(&b);
        for p in l.space().points() {
            assert_eq!(meet.contains(&p), a.contains(&p) && b.contains(&p), "at {p}");
        }
        assert_eq!(meet.size(), brute_size(&meet, &l));
        assert!(meet.is_subset_of(&a));
        assert!(meet.is_subset_of(&b));
    }

    #[test]
    fn subset_is_exact() {
        let small = PowersetDomain::new(2, vec![interval((1, 3), (1, 3))], vec![]);
        let big = PowersetDomain::new(
            2,
            vec![interval((0, 10), (0, 10))],
            vec![interval((5, 6), (5, 6))],
        );
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        // A set that pokes into the exclusion of `big` is not a subset.
        let poking = PowersetDomain::new(2, vec![interval((5, 6), (5, 6))], vec![]);
        assert!(!poking.is_subset_of(&big));
        // Two different representations of the same set are mutual subsets.
        let split = PowersetDomain::new(
            2,
            vec![interval((1, 2), (1, 3)), interval((3, 3), (1, 3))],
            vec![],
        );
        assert!(split.is_subset_of(&small));
        assert!(small.is_subset_of(&split));
    }

    #[test]
    fn to_pred_characterizes_membership() {
        let l = layout();
        let d = PowersetDomain::new(
            2,
            vec![interval((0, 5), (0, 5)), interval((10, 15), (10, 15))],
            vec![interval((2, 3), (2, 3))],
        );
        let pred = d.to_pred();
        for p in l.space().points() {
            assert_eq!(pred.eval(&p).unwrap(), d.contains(&p), "at {p}");
        }
        assert_eq!(PowersetDomain::bottom(&l).to_pred(), Pred::False);
    }

    #[test]
    fn normalization_drops_dead_members() {
        // The second include is fully covered by the first; the exclude is disjoint from both.
        let d = PowersetDomain::new(
            2,
            vec![interval((0, 10), (0, 10)), interval((2, 4), (2, 4))],
            vec![interval((15, 16), (15, 16))],
        );
        assert_eq!(d.includes().len(), 1);
        assert!(d.excludes().is_empty());
        // An include that is entirely excluded disappears too.
        let gone =
            PowersetDomain::new(2, vec![interval((0, 2), (0, 2))], vec![interval((0, 2), (0, 2))]);
        assert!(gone.is_empty());
        assert!(gone.includes().is_empty());
    }

    #[test]
    fn push_members_keeps_sizes_exact() {
        let l = layout();
        let mut d = PowersetDomain::bottom(&l);
        d.push_include(interval((0, 4), (0, 4)));
        d.push_include(interval((3, 8), (0, 4)));
        assert_eq!(d.size(), brute_size(&d, &l));
        d.push_exclude(interval((0, 20), (2, 2)));
        assert_eq!(d.size(), brute_size(&d, &l));
    }

    #[test]
    fn bounding_box_is_the_hull_of_includes() {
        let d = PowersetDomain::new(
            2,
            vec![interval((0, 2), (0, 2)), interval((10, 12), (4, 6))],
            vec![],
        );
        let bb = d.bounding_box().unwrap();
        assert_eq!(bb.dim(0), anosy_logic::Range::new(0, 12));
        assert_eq!(bb.dim(1), anosy_logic::Range::new(0, 6));
        assert!(PowersetDomain::bottom(&layout()).bounding_box().is_none());
    }

    #[test]
    fn from_box_round_trip() {
        let b = IntBox::new(vec![anosy_logic::Range::new(1, 3), anosy_logic::Range::new(2, 4)]);
        let d = PowersetDomain::from_box(&b);
        assert_eq!(d.size(), 9);
        assert_eq!(d.bounding_box(), Some(b));
    }

    #[test]
    fn display_renders_both_lists() {
        let d =
            PowersetDomain::new(2, vec![interval((0, 5), (0, 5))], vec![interval((1, 2), (1, 2))]);
        let s = d.to_string();
        assert!(s.contains('⋃'));
        assert!(s.contains('\\'));
        assert_eq!(PowersetDomain::new(2, vec![], vec![]).to_string(), "⊥P");
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_is_rejected() {
        let _ = PowersetDomain::new(
            2,
            vec![IntervalDomain::from_intervals(vec![AInt::new(0, 1)])],
            vec![],
        );
    }
}
