//! The interval abstract domain `A_I` (§4.3 of the paper).

use crate::{AInt, AbstractDomain};
use anosy_logic::{IntBox, IntExpr, Point, Pred, SecretLayout};
use std::fmt;

/// The interval abstract domain: an axis-aligned box with one [`AInt`] per secret field, plus
/// explicit top and bottom elements.
///
/// This mirrors the paper's `A_I` datatype, whose three constructors are the boxed domain, `⊤_I`
/// and `⊥_I`. The Liquid Haskell proof terms (`pos`/`neg`) that give meaning to the refinement
/// indexes have no syntactic counterpart here; their obligations are discharged executably by
/// `anosy-verify`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IntervalDomain {
    repr: Repr,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Repr {
    /// The full secret space of the given layout bounds.
    Top { space: Vec<AInt> },
    /// The empty domain. The arity is kept so operations remain well-formed.
    Bottom { arity: usize },
    /// An axis-aligned product of abstract integers.
    Box { dims: Vec<AInt> },
}

impl IntervalDomain {
    /// Creates the domain representing exactly the product of `intervals`.
    ///
    /// # Panics
    ///
    /// Panics if `intervals` is empty (a secret always has at least one field).
    pub fn from_intervals(intervals: Vec<AInt>) -> Self {
        assert!(!intervals.is_empty(), "a secret has at least one field");
        IntervalDomain { repr: Repr::Box { dims: intervals } }
    }

    /// The explicit empty domain of the given arity.
    pub fn empty(arity: usize) -> Self {
        IntervalDomain { repr: Repr::Bottom { arity } }
    }

    /// Number of secret fields this domain abstracts.
    pub fn arity(&self) -> usize {
        match &self.repr {
            Repr::Top { space } => space.len(),
            Repr::Bottom { arity } => *arity,
            Repr::Box { dims } => dims.len(),
        }
    }

    /// The per-field intervals, or `None` for the empty domain.
    pub fn intervals(&self) -> Option<&[AInt]> {
        match &self.repr {
            Repr::Top { space } => Some(space),
            Repr::Bottom { .. } => None,
            Repr::Box { dims } => Some(dims),
        }
    }

    /// Returns `true` if this element is the explicit top of its layout (i.e. covers the whole
    /// declared space it was built from).
    pub fn is_top_element(&self) -> bool {
        matches!(self.repr, Repr::Top { .. })
    }

    /// The corresponding solver box, or `None` for the empty domain.
    pub fn to_box(&self) -> Option<IntBox> {
        self.intervals().map(|dims| IntBox::new(dims.iter().map(AInt::to_range).collect()))
    }
}

impl AbstractDomain for IntervalDomain {
    fn top(layout: &SecretLayout) -> Self {
        IntervalDomain {
            repr: Repr::Top {
                space: layout.fields().iter().map(|f| AInt::new(f.lo(), f.hi())).collect(),
            },
        }
    }

    fn bottom(layout: &SecretLayout) -> Self {
        IntervalDomain::empty(layout.arity())
    }

    fn contains(&self, point: &Point) -> bool {
        match self.intervals() {
            None => false,
            Some(dims) => {
                point.arity() == dims.len()
                    && dims.iter().zip(point.iter()).all(|(a, v)| a.contains(v))
            }
        }
    }

    fn is_subset_of(&self, other: &Self) -> bool {
        match (self.intervals(), other.intervals()) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(a), Some(b)) => {
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| y.contains_all(x))
            }
        }
    }

    fn intersect(&self, other: &Self) -> Self {
        let arity = self.arity();
        match (self.intervals(), other.intervals()) {
            (None, _) | (_, None) => IntervalDomain::empty(arity),
            (Some(a), Some(b)) => {
                assert_eq!(a.len(), b.len(), "intersected domains must have equal arity");
                let mut dims = Vec::with_capacity(a.len());
                for (x, y) in a.iter().zip(b.iter()) {
                    match x.intersect(y) {
                        Some(i) => dims.push(i),
                        None => return IntervalDomain::empty(arity),
                    }
                }
                IntervalDomain::from_intervals(dims)
            }
        }
    }

    fn size(&self) -> u128 {
        match self.intervals() {
            None => 0,
            Some(dims) => dims.iter().map(AInt::size).product(),
        }
    }

    fn to_pred(&self) -> Pred {
        match self.intervals() {
            None => Pred::False,
            Some(dims) => Pred::and(
                dims.iter()
                    .enumerate()
                    .map(|(i, a)| IntExpr::var(i).between(a.lower(), a.upper()))
                    .collect(),
            ),
        }
    }

    fn bounding_box(&self) -> Option<IntBox> {
        self.to_box()
    }

    fn from_box(boxed: &IntBox) -> Self {
        if boxed.is_empty() {
            return IntervalDomain::empty(boxed.arity());
        }
        IntervalDomain::from_intervals(
            boxed.dims().iter().map(|r| AInt::new(r.lo(), r.hi())).collect(),
        )
    }
}

impl fmt::Display for IntervalDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.repr {
            Repr::Top { space } => {
                write!(f, "⊤")?;
                write!(f, "{}", format_dims(space))
            }
            Repr::Bottom { .. } => write!(f, "⊥"),
            Repr::Box { dims } => write!(f, "{}", format_dims(dims)),
        }
    }
}

fn format_dims(dims: &[AInt]) -> String {
    let mut s = String::from("{");
    for (i, d) in dims.iter().enumerate() {
        if i > 0 {
            s.push_str(" × ");
        }
        s.push_str(&d.to_string());
    }
    s.push('}');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> SecretLayout {
        SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build()
    }

    fn under_true() -> IntervalDomain {
        // The paper's under-approximate True ind. set for nearby (200,200): x ∈ [121,279],
        // y ∈ [179,221] (§2.2).
        IntervalDomain::from_intervals(vec![AInt::new(121, 279), AInt::new(179, 221)])
    }

    #[test]
    fn top_and_bottom_shapes() {
        let l = layout();
        let top = IntervalDomain::top(&l);
        let bot = IntervalDomain::bottom(&l);
        assert!(top.is_top_element());
        assert_eq!(top.size(), 401 * 401);
        assert_eq!(bot.size(), 0);
        assert!(bot.is_empty());
        assert!(bot.is_subset_of(&top));
        assert!(!top.is_subset_of(&bot));
        assert_eq!(top.arity(), 2);
        assert_eq!(bot.arity(), 2);
    }

    #[test]
    fn membership_matches_the_paper_example() {
        let d = under_true();
        assert!(d.contains(&Point::new(vec![200, 200])));
        assert!(d.contains(&Point::new(vec![121, 179])));
        assert!(!d.contains(&Point::new(vec![120, 200])));
        assert!(!d.contains(&Point::new(vec![200, 222])));
        assert!(!d.contains(&Point::new(vec![200]))); // wrong arity
        assert_eq!(d.size(), 159 * 43);
    }

    #[test]
    fn subset_is_componentwise() {
        let small = IntervalDomain::from_intervals(vec![AInt::new(130, 140), AInt::new(180, 200)]);
        let d = under_true();
        assert!(small.is_subset_of(&d));
        assert!(!d.is_subset_of(&small));
        assert!(d.is_subset_of(&IntervalDomain::top(&layout())));
    }

    #[test]
    fn intersection_is_the_meet() {
        let a = IntervalDomain::from_intervals(vec![AInt::new(0, 200), AInt::new(0, 200)]);
        let b = IntervalDomain::from_intervals(vec![AInt::new(150, 400), AInt::new(100, 150)]);
        let m = a.intersect(&b);
        assert_eq!(
            m,
            IntervalDomain::from_intervals(vec![AInt::new(150, 200), AInt::new(100, 150)])
        );
        assert!(m.is_subset_of(&a) && m.is_subset_of(&b));
        // Disjoint intersection is bottom.
        let c = IntervalDomain::from_intervals(vec![AInt::new(300, 400), AInt::new(0, 50)]);
        assert!(a.intersect(&c).is_empty());
        // Intersection with bottom is bottom; with top is identity.
        let l = layout();
        assert!(a.intersect(&IntervalDomain::bottom(&l)).is_empty());
        assert_eq!(a.intersect(&IntervalDomain::top(&l)), a);
    }

    #[test]
    fn to_pred_characterizes_membership() {
        let d = under_true();
        let pred = d.to_pred();
        for p in [[121, 179], [279, 221], [200, 200], [120, 200], [280, 221], [0, 0]] {
            let point = Point::new(p.to_vec());
            assert_eq!(pred.eval(&point).unwrap(), d.contains(&point), "at {point}");
        }
        assert_eq!(IntervalDomain::bottom(&layout()).to_pred(), Pred::False);
    }

    #[test]
    fn box_round_trip() {
        let d = under_true();
        let b = d.to_box().unwrap();
        assert_eq!(IntervalDomain::from_box(&b), d);
        assert_eq!(d.bounding_box(), Some(b));
        assert_eq!(IntervalDomain::bottom(&layout()).to_box(), None);
        let empty_box = IntBox::new(vec![anosy_logic::Range::empty(), anosy_logic::Range::empty()]);
        assert!(IntervalDomain::from_box(&empty_box).is_empty());
    }

    #[test]
    fn display_shows_structure() {
        assert_eq!(IntervalDomain::empty(2).to_string(), "⊥");
        assert!(under_true().to_string().contains("[121, 279]"));
        assert!(IntervalDomain::top(&layout()).to_string().starts_with('⊤'));
    }

    #[test]
    #[should_panic(expected = "at least one field")]
    fn zero_arity_box_is_rejected() {
        let _ = IntervalDomain::from_intervals(vec![]);
    }
}
