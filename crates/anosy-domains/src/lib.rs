//! Abstract domains for attacker knowledge.
//!
//! ANOSY represents the attacker's knowledge — the set of secrets consistent with everything the
//! attacker has observed — as an element of an *abstract domain* (§4 of the paper). This crate
//! provides the two domains the paper implements and verifies with Liquid Haskell:
//!
//! * [`IntervalDomain`] (`A_I`, §4.3) — one interval per secret field, i.e. an axis-aligned box
//!   in the n-dimensional secret space, plus explicit top/bottom elements;
//! * [`PowersetDomain`] (`A_P`, §4.4) — a set of interval domains represented by an inclusion
//!   list and an exclusion list, which recovers much of the precision the single-box domain
//!   loses.
//!
//! Both implement the [`AbstractDomain`] interface (the paper's refined type class: `⊤`, `⊥`,
//! `∈`, `⊆`, `∩`, `size`) and are accompanied by executable versions of the paper's class laws
//! ([`laws`]). The refinement-type *specifications* that Liquid Haskell checks are mirrored by
//! the `anosy-verify` crate, which discharges them with the `anosy-solver` decision procedures.
//!
//! # Example
//!
//! ```
//! use anosy_domains::{AbstractDomain, IntervalDomain, AInt};
//! use anosy_logic::{Point, SecretLayout};
//!
//! let layout = SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build();
//!
//! // The under-approximate True ind. set from §2.2 of the paper.
//! let knowledge = IntervalDomain::from_intervals(vec![AInt::new(121, 279), AInt::new(179, 221)]);
//! assert!(knowledge.contains(&Point::new(vec![200, 200])));
//! assert_eq!(knowledge.size(), 159 * 43);
//! assert!(knowledge.is_subset_of(&IntervalDomain::top(&layout)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aint;
mod domain;
mod interval;
pub mod laws;
mod powerset;
mod region;
mod secret;

pub use aint::AInt;
pub use domain::AbstractDomain;
pub use interval::IntervalDomain;
pub use powerset::PowersetDomain;
pub use region::{region_size, subtract_box, subtract_boxes};
pub use secret::Secret;
