//! User-facing secret types.
//!
//! The paper's secrets are Haskell records of bounded integers (`UserLoc`, the benchmark record
//! types, ...). The [`Secret`] trait plays that role here: it ties a plain Rust struct to its
//! [`SecretLayout`] and to the [`Point`] representation the analysis machinery works on. The
//! [`secret_record!`] macro writes the boilerplate for the common case of a struct of `i64`
//! fields.

use anosy_logic::{Point, SecretLayout};

/// A Rust type that can be used as an ANOSY secret.
///
/// # Contract
///
/// `from_point(s.to_point()) == s` for every admissible secret `s`, and `to_point` must produce
/// points admitted by [`Secret::layout`] whenever the secret's fields are inside their declared
/// bounds.
pub trait Secret: Sized {
    /// The declared secret space (field names and bounds).
    fn layout() -> SecretLayout;

    /// Encodes the secret as a point of the layout.
    fn to_point(&self) -> Point;

    /// Decodes a point of the layout back into the secret type.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `point` has the wrong arity.
    fn from_point(point: &Point) -> Self;
}

/// Defines a secret record type: a struct of `i64` fields with declared bounds, plus its
/// [`Secret`] implementation.
///
/// # Example
///
/// ```
/// use anosy_domains::{secret_record, Secret};
///
/// secret_record! {
///     /// The user location secret from §2 of the paper.
///     pub struct UserLoc {
///         x: 0..=400,
///         y: 0..=400,
///     }
/// }
///
/// let loc = UserLoc { x: 300, y: 200 };
/// assert_eq!(UserLoc::layout().arity(), 2);
/// assert_eq!(loc.to_point().as_slice(), &[300, 200]);
/// assert_eq!(UserLoc::from_point(&loc.to_point()), loc);
/// ```
#[macro_export]
macro_rules! secret_record {
    (
        $(#[$meta:meta])*
        $vis:vis struct $name:ident {
            $($field:ident : $lo:literal ..= $hi:literal),+ $(,)?
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        $vis struct $name {
            $(
                /// Bounded integer field of the secret record.
                pub $field: i64,
            )+
        }

        impl $crate::Secret for $name {
            fn layout() -> ::anosy_logic::SecretLayout {
                ::anosy_logic::SecretLayout::builder()
                    $(.field(stringify!($field), $lo, $hi))+
                    .build()
            }

            fn to_point(&self) -> ::anosy_logic::Point {
                ::anosy_logic::Point::new(vec![$(self.$field),+])
            }

            fn from_point(point: &::anosy_logic::Point) -> Self {
                let mut iter = point.iter();
                $(
                    let $field = iter
                        .next()
                        .expect(concat!("missing coordinate for field ", stringify!($field)));
                )+
                assert!(iter.next().is_none(), "too many coordinates for secret record");
                $name { $($field),+ }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    secret_record! {
        /// Two-dimensional location used throughout the paper's overview.
        pub struct UserLoc {
            x: 0..=400,
            y: 0..=400,
        }
    }

    secret_record! {
        struct Profile {
            gender: 0..=1,
            status: 0..=3,
            byear: 1900..=2010,
        }
    }

    #[test]
    fn layout_matches_declaration() {
        let layout = UserLoc::layout();
        assert_eq!(layout.arity(), 2);
        assert_eq!(layout.index_of("x"), Some(0));
        assert_eq!(layout.field(1).unwrap().hi(), 400);
        assert_eq!(Profile::layout().space_size(), 2 * 4 * 111);
    }

    #[test]
    fn point_round_trip() {
        let secret = Profile { gender: 1, status: 2, byear: 1984 };
        let p = secret.to_point();
        assert_eq!(p.as_slice(), &[1, 2, 1984]);
        assert_eq!(Profile::from_point(&p), secret);
    }

    #[test]
    fn layout_admits_in_bounds_secrets() {
        let layout = UserLoc::layout();
        assert!(layout.admits(&UserLoc { x: 0, y: 400 }.to_point()));
        assert!(!layout.admits(&UserLoc { x: -1, y: 0 }.to_point()));
    }

    #[test]
    #[should_panic(expected = "too many coordinates")]
    fn arity_mismatch_is_detected() {
        let _ = UserLoc::from_point(&Point::new(vec![1, 2, 3]));
    }
}
