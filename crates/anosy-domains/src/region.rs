//! Exact box algebra: subtraction and sizes of unions/differences of axis-aligned boxes.
//!
//! The powerset domain (§4.4) represents knowledge as `(∪ inclusion boxes) \ (∪ exclusion
//! boxes)`. Its `size` method — the quantity policies constrain — therefore needs the exact
//! cardinality of such a region even when the boxes overlap. The helpers here compute it by
//! decomposing differences into disjoint boxes, which keeps everything exact in `u128`.

use anosy_logic::{IntBox, Range};

/// Subtracts box `b` from box `a`, returning disjoint boxes that exactly cover `a \ b`.
///
/// The result contains at most `2 * arity` boxes. Returns `[a]` unchanged when the boxes do not
/// overlap and an empty vector when `b` covers `a`.
pub fn subtract_box(a: &IntBox, b: &IntBox) -> Vec<IntBox> {
    if a.is_empty() {
        return Vec::new();
    }
    assert_eq!(a.arity(), b.arity(), "boxes must have equal arity");
    let overlap = a.intersect(b);
    if overlap.is_empty() {
        return vec![a.clone()];
    }
    if b.contains_box(a) {
        return Vec::new();
    }
    // Peel off slabs of `a` outside the overlap, one dimension at a time. The remaining core
    // shrinks to the overlap, which is discarded.
    let mut pieces = Vec::new();
    let mut core = a.clone();
    for d in 0..a.arity() {
        let core_r = core.dim(d);
        let olap_r = overlap.dim(d);
        if core_r.lo() < olap_r.lo() {
            pieces.push(core.with_dim(d, Range::new(core_r.lo(), olap_r.lo() - 1)));
        }
        if core_r.hi() > olap_r.hi() {
            pieces.push(core.with_dim(d, Range::new(olap_r.hi() + 1, core_r.hi())));
        }
        core = core.with_dim(d, olap_r);
    }
    pieces
}

/// Subtracts every box of `subtrahends` from `a`, returning disjoint boxes covering the
/// difference exactly.
pub fn subtract_boxes(a: &IntBox, subtrahends: &[IntBox]) -> Vec<IntBox> {
    let mut pieces = vec![a.clone()];
    for b in subtrahends {
        if b.is_empty() {
            continue;
        }
        let mut next = Vec::new();
        for piece in &pieces {
            next.extend(subtract_box(piece, b));
        }
        pieces = next;
        if pieces.is_empty() {
            break;
        }
    }
    pieces.retain(|p| !p.is_empty());
    pieces
}

/// Exact number of points in `(∪ includes) \ (∪ excludes)`.
///
/// Overlap between the inclusion boxes is handled by counting each inclusion box minus the
/// inclusion boxes that precede it, so no point is counted twice.
pub fn region_size(includes: &[IntBox], excludes: &[IntBox]) -> u128 {
    let mut total: u128 = 0;
    for (i, inc) in includes.iter().enumerate() {
        if inc.is_empty() {
            continue;
        }
        let mut minus: Vec<IntBox> = Vec::with_capacity(i + excludes.len());
        minus.extend_from_slice(&includes[..i]);
        minus.extend_from_slice(excludes);
        for piece in subtract_boxes(inc, &minus) {
            total += piece.count();
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use anosy_logic::Point;

    fn boxed(dims: &[(i64, i64)]) -> IntBox {
        IntBox::new(dims.iter().map(|&(lo, hi)| Range::new(lo, hi)).collect())
    }

    fn brute_force_region(includes: &[IntBox], excludes: &[IntBox], universe: &IntBox) -> u128 {
        universe
            .points()
            .filter(|p| {
                includes.iter().any(|b| b.contains_point(p))
                    && !excludes.iter().any(|b| b.contains_point(p))
            })
            .count() as u128
    }

    #[test]
    fn subtraction_of_disjoint_boxes_is_identity() {
        let a = boxed(&[(0, 4), (0, 4)]);
        let b = boxed(&[(10, 12), (10, 12)]);
        assert_eq!(subtract_box(&a, &b), vec![a.clone()]);
    }

    #[test]
    fn subtraction_by_a_cover_is_empty() {
        let a = boxed(&[(2, 3), (2, 3)]);
        let b = boxed(&[(0, 10), (0, 10)]);
        assert!(subtract_box(&a, &b).is_empty());
    }

    #[test]
    fn subtraction_pieces_are_disjoint_and_exact() {
        let a = boxed(&[(0, 9), (0, 9)]);
        let b = boxed(&[(3, 6), (4, 12)]);
        let pieces = subtract_box(&a, &b);
        // Exact cardinality.
        let expected = a.count() - a.intersect(&b).count();
        assert_eq!(pieces.iter().map(IntBox::count).sum::<u128>(), expected);
        // Pairwise disjoint and within `a`, outside `b`.
        for (i, p) in pieces.iter().enumerate() {
            assert!(a.contains_box(p));
            assert!(p.intersect(&b).is_empty());
            for q in &pieces[i + 1..] {
                assert!(p.intersect(q).is_empty(), "{p} overlaps {q}");
            }
        }
    }

    #[test]
    fn subtract_boxes_handles_multiple_overlapping_subtrahends() {
        let a = boxed(&[(0, 9), (0, 9)]);
        let subs =
            vec![boxed(&[(0, 4), (0, 9)]), boxed(&[(3, 9), (0, 3)]), boxed(&[(8, 9), (8, 9)])];
        let pieces = subtract_boxes(&a, &subs);
        let universe = a.clone();
        let expected =
            universe.points().filter(|p| !subs.iter().any(|b| b.contains_point(p))).count() as u128;
        assert_eq!(pieces.iter().map(IntBox::count).sum::<u128>(), expected);
        for p in &pieces {
            for s in &subs {
                assert!(p.intersect(s).is_empty());
            }
        }
    }

    #[test]
    fn region_size_handles_overlapping_includes_and_excludes() {
        let universe = boxed(&[(0, 14), (0, 14)]);
        let cases: Vec<(Vec<IntBox>, Vec<IntBox>)> = vec![
            (vec![boxed(&[(0, 4), (0, 4)]), boxed(&[(2, 8), (2, 8)])], vec![]),
            (
                vec![boxed(&[(0, 9), (0, 9)]), boxed(&[(5, 14), (5, 14)])],
                vec![boxed(&[(4, 6), (4, 6)])],
            ),
            (
                vec![boxed(&[(0, 14), (0, 14)])],
                vec![boxed(&[(0, 7), (0, 14)]), boxed(&[(7, 14), (0, 7)])],
            ),
            (vec![], vec![boxed(&[(0, 1), (0, 1)])]),
        ];
        for (includes, excludes) in cases {
            assert_eq!(
                region_size(&includes, &excludes),
                brute_force_region(&includes, &excludes, &universe),
                "includes={includes:?} excludes={excludes:?}"
            );
        }
    }

    #[test]
    fn region_size_of_identical_includes_counts_once() {
        let b = boxed(&[(0, 9)]);
        assert_eq!(region_size(&[b.clone(), b.clone(), b.clone()], &[]), 10);
        let p = Point::new(vec![0]);
        assert!(b.contains_point(&p));
    }

    #[test]
    fn region_size_in_three_dimensions() {
        let includes = vec![boxed(&[(0, 4), (0, 4), (0, 4)]), boxed(&[(3, 6), (3, 6), (3, 6)])];
        let excludes = vec![boxed(&[(2, 3), (2, 3), (2, 3)])];
        let universe = boxed(&[(0, 6), (0, 6), (0, 6)]);
        assert_eq!(
            region_size(&includes, &excludes),
            brute_force_region(&includes, &excludes, &universe)
        );
    }
}
