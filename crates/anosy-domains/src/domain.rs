//! The `AbstractDomain` interface (the paper's refined type class, Fig. 3).

use anosy_logic::{IntBox, Point, Pred, SecretLayout};

/// An abstract domain `a` that can represent sets of secrets `s` (points of a [`SecretLayout`]).
///
/// This is the Rust rendering of the paper's `class AbstractDomain a s` (Fig. 3). The refinement
/// indexes `<p, n>` of the Haskell encoding (the positive and negative predicates) have no direct
/// counterpart in Rust's type system; their obligations are instead checked executably by the
/// `anosy-verify` crate, which uses [`AbstractDomain::to_pred`] to hand a symbolic description of
/// a domain element to the solver.
///
/// # Laws
///
/// Implementations must satisfy the two class laws of the paper, checked by [`crate::laws`]:
///
/// * **sizeLaw** — if `d1.is_subset_of(&d2)` then `d1.size() <= d2.size()`;
/// * **subsetLaw** — if `d1.is_subset_of(&d2)` then every point contained in `d1` is contained
///   in `d2`.
///
/// In addition `intersect` must be a sound meet: the result contains every point contained in
/// both inputs, is a subset of both inputs, and contains no point outside either input.
pub trait AbstractDomain: Clone + std::fmt::Debug + PartialEq {
    /// The full domain `⊤`: every secret of the layout is considered possible.
    fn top(layout: &SecretLayout) -> Self;

    /// The empty domain `⊥`: no secret is considered possible.
    fn bottom(layout: &SecretLayout) -> Self;

    /// Membership test (`∈`): is the concrete secret represented by this domain element?
    fn contains(&self, point: &Point) -> bool;

    /// Subset test (`⊆`). Implementations may be conservative in one direction only for
    /// *incomparable* elements — they must return `true` whenever the subset relation holds
    /// exactly and may return `false` spuriously only if documented; both domains in this crate
    /// implement the exact relation.
    fn is_subset_of(&self, other: &Self) -> bool;

    /// Intersection (`∩`): the meet of two domain elements.
    fn intersect(&self, other: &Self) -> Self;

    /// Number of concrete secrets represented (`size`). This is the quantity declassification
    /// policies constrain (e.g. `size knowledge > 100`).
    fn size(&self) -> u128;

    /// Returns `true` when no secret is represented.
    fn is_empty(&self) -> bool {
        self.size() == 0
    }

    /// A predicate over the secret fields that holds exactly for the secrets represented by this
    /// element. Used by the verifier to discharge refinement specifications and by tests to
    /// cross-check `size` against the solver's model counter.
    fn to_pred(&self) -> Pred;

    /// The tightest single box containing every represented secret, or `None` for the empty
    /// domain. Used for display purposes and as a coarse summary.
    fn bounding_box(&self) -> Option<IntBox>;

    /// Constructs the most precise element of this domain that contains every point of `boxed`
    /// (for both domains in this crate, the box itself).
    fn from_box(boxed: &IntBox) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IntervalDomain, PowersetDomain};
    use anosy_logic::SecretLayout;

    fn layout() -> SecretLayout {
        SecretLayout::builder().field("x", 0, 9).field("y", 0, 9).build()
    }

    /// The trait is object safe so callers can mix domains behind a `dyn` reference if needed.
    #[test]
    fn trait_methods_are_usable_generically() {
        fn top_size<D: AbstractDomain>(layout: &SecretLayout) -> u128 {
            D::top(layout).size()
        }
        assert_eq!(top_size::<IntervalDomain>(&layout()), 100);
        assert_eq!(top_size::<PowersetDomain>(&layout()), 100);
    }

    #[test]
    fn default_is_empty_uses_size() {
        let l = layout();
        assert!(IntervalDomain::bottom(&l).is_empty());
        assert!(!IntervalDomain::top(&l).is_empty());
        assert!(PowersetDomain::bottom(&l).is_empty());
    }
}
