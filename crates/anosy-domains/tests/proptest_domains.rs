//! Property-based tests for the abstract domains: the class laws of Fig. 3 and exactness of
//! `size`/`contains`/`intersect` against brute-force enumeration on small secret spaces.

use anosy_domains::{laws, AInt, AbstractDomain, IntervalDomain, PowersetDomain};
use anosy_logic::{Point, SecretLayout};
use proptest::prelude::*;

const SIDE: i64 = 11; // small 2-D space so brute force stays fast

fn layout() -> SecretLayout {
    SecretLayout::builder().field("x", 0, SIDE).field("y", 0, SIDE).build()
}

fn arb_aint() -> impl Strategy<Value = AInt> {
    (0..=SIDE, 0..=SIDE).prop_map(|(a, b)| AInt::new(a.min(b), a.max(b)))
}

fn arb_interval_domain() -> impl Strategy<Value = IntervalDomain> {
    prop_oneof![
        8 => (arb_aint(), arb_aint()).prop_map(|(x, y)| IntervalDomain::from_intervals(vec![x, y])),
        1 => Just(IntervalDomain::top(&layout())),
        1 => Just(IntervalDomain::bottom(&layout())),
    ]
}

fn arb_powerset() -> impl Strategy<Value = PowersetDomain> {
    (
        proptest::collection::vec(arb_interval_domain(), 0..4),
        proptest::collection::vec(arb_interval_domain(), 0..3),
    )
        .prop_map(|(inc, exc)| {
            let inc = inc.into_iter().filter(|d| !d.is_empty()).collect();
            let exc = exc.into_iter().filter(|d| !d.is_empty()).collect();
            PowersetDomain::new(2, inc, exc)
        })
}

fn all_points() -> Vec<Point> {
    layout().space().points().collect()
}

fn brute_size<D: AbstractDomain>(d: &D) -> u128 {
    all_points().iter().filter(|p| d.contains(p)).count() as u128
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interval_size_matches_enumeration(d in arb_interval_domain()) {
        prop_assert_eq!(d.size(), brute_size(&d));
    }

    #[test]
    fn powerset_size_matches_enumeration(d in arb_powerset()) {
        prop_assert_eq!(d.size(), brute_size(&d));
    }

    #[test]
    fn interval_laws_hold(d1 in arb_interval_domain(), d2 in arb_interval_domain()) {
        let samples = all_points();
        prop_assert!(laws::check_size_law(&d1, &d2).is_ok());
        prop_assert!(laws::check_subset_law(&d1, &d2, &samples).is_ok());
        prop_assert!(laws::check_intersection_spec(&d1, &d2, &samples).is_ok());
    }

    #[test]
    fn powerset_laws_hold(d1 in arb_powerset(), d2 in arb_powerset()) {
        let samples = all_points();
        prop_assert!(laws::check_size_law(&d1, &d2).is_ok());
        prop_assert!(laws::check_subset_law(&d1, &d2, &samples).is_ok());
        prop_assert!(laws::check_intersection_spec(&d1, &d2, &samples).is_ok());
    }

    #[test]
    fn interval_subset_is_exact(d1 in arb_interval_domain(), d2 in arb_interval_domain()) {
        let semantically = all_points().iter().all(|p| !d1.contains(p) || d2.contains(p));
        prop_assert_eq!(d1.is_subset_of(&d2), semantically);
    }

    #[test]
    fn powerset_subset_is_exact(d1 in arb_powerset(), d2 in arb_powerset()) {
        let semantically = all_points().iter().all(|p| !d1.contains(p) || d2.contains(p));
        prop_assert_eq!(d1.is_subset_of(&d2), semantically);
    }

    #[test]
    fn intersection_membership_is_pointwise_and(d1 in arb_powerset(), d2 in arb_powerset()) {
        let meet = d1.intersect(&d2);
        for p in all_points() {
            prop_assert_eq!(meet.contains(&p), d1.contains(&p) && d2.contains(&p));
        }
    }

    #[test]
    fn to_pred_agrees_with_contains(d in arb_powerset()) {
        let pred = d.to_pred();
        for p in all_points() {
            prop_assert_eq!(pred.eval(&p).unwrap(), d.contains(&p));
        }
    }

    #[test]
    fn interval_to_pred_agrees_with_contains(d in arb_interval_domain()) {
        let pred = d.to_pred();
        for p in all_points() {
            prop_assert_eq!(pred.eval(&p).unwrap(), d.contains(&p));
        }
    }

    #[test]
    fn top_absorbs_intersection(d in arb_powerset()) {
        let top = PowersetDomain::top(&layout());
        let meet = d.intersect(&top);
        prop_assert_eq!(meet.size(), d.size());
        prop_assert!(meet.is_subset_of(&d) && d.is_subset_of(&meet));
    }

    #[test]
    fn bottom_annihilates_intersection(d in arb_powerset()) {
        let bottom = PowersetDomain::bottom(&layout());
        prop_assert!(d.intersect(&bottom).is_empty());
    }

    // The unconstrained pairs above exercise the laws mostly vacuously (random d1 ⊆ d2 is rare).
    // Meets give guaranteed-subset pairs, so sizeLaw and subsetLaw are checked non-vacuously.

    #[test]
    fn interval_laws_hold_on_guaranteed_subset_pairs(d1 in arb_interval_domain(), d2 in arb_interval_domain()) {
        let samples = all_points();
        let meet = d1.intersect(&d2);
        prop_assert!(meet.is_subset_of(&d1) && meet.is_subset_of(&d2));
        for bigger in [&d1, &d2] {
            prop_assert!(laws::check_size_law(&meet, bigger).is_ok());
            prop_assert!(meet.size() <= bigger.size());
            prop_assert!(laws::check_subset_law(&meet, bigger, &samples).is_ok());
        }
    }

    #[test]
    fn powerset_laws_hold_on_guaranteed_subset_pairs(d1 in arb_powerset(), d2 in arb_powerset()) {
        let samples = all_points();
        let meet = d1.intersect(&d2);
        prop_assert!(meet.is_subset_of(&d1) && meet.is_subset_of(&d2));
        for bigger in [&d1, &d2] {
            prop_assert!(laws::check_size_law(&meet, bigger).is_ok());
            prop_assert!(meet.size() <= bigger.size());
            prop_assert!(laws::check_subset_law(&meet, bigger, &samples).is_ok());
        }
    }

    /// Every law, on every ordered pair from a mixed collection that always includes ⊤, ⊥ and a
    /// meet (so subset relations genuinely occur).
    #[test]
    fn interval_collection_has_no_law_violations(d1 in arb_interval_domain(), d2 in arb_interval_domain()) {
        let elements = vec![
            d1.intersect(&d2),
            d1,
            d2,
            IntervalDomain::top(&layout()),
            IntervalDomain::bottom(&layout()),
        ];
        let violations = laws::check_all_laws(&elements, &all_points());
        prop_assert!(violations.is_empty(), "law violations: {violations:?}");
    }

    #[test]
    fn powerset_collection_has_no_law_violations(d1 in arb_powerset(), d2 in arb_powerset()) {
        let elements = vec![
            d1.intersect(&d2),
            d1,
            d2,
            PowersetDomain::top(&layout()),
            PowersetDomain::bottom(&layout()),
        ];
        let violations = laws::check_all_laws(&elements, &all_points());
        prop_assert!(violations.is_empty(), "law violations: {violations:?}");
    }

    /// A single interval and its powerset embedding agree on membership, size and subset checks.
    #[test]
    fn powerset_embedding_is_faithful(d in arb_interval_domain(), other in arb_interval_domain()) {
        let embedded = PowersetDomain::from_interval(d.clone());
        let other_embedded = PowersetDomain::from_interval(other.clone());
        prop_assert_eq!(embedded.size(), d.size());
        for p in all_points() {
            prop_assert_eq!(embedded.contains(&p), d.contains(&p));
        }
        prop_assert_eq!(embedded.is_subset_of(&other_embedded), d.is_subset_of(&other));
    }
}
