//! Interval constraint propagation (HC4-style narrowing).
//!
//! Narrowing takes a predicate and a box and removes slices of the box that provably contain no
//! model of the predicate. It is the pruning engine of every search in this crate. Soundness
//! contract: **narrowing never removes a model** — every point of the input box that satisfies
//! the predicate is still in the output box (this is what makes it usable for exact model
//! counting).

use anosy_logic::{CmpOp, IntBox, IntExpr, Pred, Range, TriBool};

/// Narrows `boxed` with respect to `pred`, iterating to a (bounded) fixed point.
///
/// Returns `None` when the box provably contains no model of `pred`. This is exposed publicly
/// (as [`crate::narrow_box`]) because forward conditioning with a single narrowing pass is
/// exactly what the abstract-interpretation baseline in `anosy-suite` needs.
pub fn propagate(pred: &Pred, boxed: &IntBox, rounds: usize) -> Option<IntBox> {
    let mut current = boxed.clone();
    if current.is_empty() {
        return None;
    }
    for _ in 0..rounds.max(1) {
        let next = narrow_pred(pred, &current)?;
        if next == current {
            return Some(next);
        }
        current = next;
        if current.is_empty() {
            return None;
        }
    }
    Some(current)
}

/// Componentwise hull of two boxes of equal arity.
fn box_hull(a: &IntBox, b: &IntBox) -> IntBox {
    IntBox::new(
        a.dims()
            .iter()
            .zip(b.dims().iter())
            .map(|(x, y)| x.hull(*y))
            .collect(),
    )
}

fn narrow_pred(pred: &Pred, boxed: &IntBox) -> Option<IntBox> {
    match pred {
        Pred::True => Some(boxed.clone()),
        Pred::False => None,
        Pred::Cmp(op, a, b) => narrow_cmp(*op, a, b, boxed),
        Pred::And(ps) => {
            let mut current = boxed.clone();
            for p in ps {
                current = narrow_pred(p, &current)?;
                if current.is_empty() {
                    return None;
                }
            }
            Some(current)
        }
        Pred::Or(ps) => {
            let mut acc: Option<IntBox> = None;
            for p in ps {
                if let Some(narrowed) = narrow_pred(p, boxed) {
                    acc = Some(match acc {
                        None => narrowed,
                        Some(prev) => box_hull(&prev, &narrowed),
                    });
                }
            }
            acc
        }
        // Non-NNF connectives: fall back to the abstract evaluator, which is still sound.
        Pred::Not(_) | Pred::Implies(..) | Pred::Iff(..) => match pred.eval_abstract(boxed) {
            TriBool::False => None,
            _ => Some(boxed.clone()),
        },
    }
}

fn narrow_cmp(op: CmpOp, lhs: &IntExpr, rhs: &IntExpr, boxed: &IntBox) -> Option<IntBox> {
    // Fast path via the abstract evaluator.
    let ra = lhs.eval_abstract(boxed);
    let rb = rhs.eval_abstract(boxed);
    match op {
        CmpOp::Le => {
            if ra.le(rb) == TriBool::False {
                return None;
            }
            let narrowed = narrow_expr(lhs, boxed, Range::new(i64::MIN, rb.hi()))?;
            let ra2 = lhs.eval_abstract(&narrowed);
            narrow_expr(rhs, &narrowed, Range::new(ra2.lo(), i64::MAX))
        }
        CmpOp::Lt => {
            if ra.lt(rb) == TriBool::False {
                return None;
            }
            let hi = rb.hi().saturating_sub(1);
            let narrowed = narrow_expr(lhs, boxed, Range::new(i64::MIN, hi))?;
            let ra2 = lhs.eval_abstract(&narrowed);
            narrow_expr(rhs, &narrowed, Range::new(ra2.lo().saturating_add(1), i64::MAX))
        }
        CmpOp::Ge => narrow_cmp(CmpOp::Le, rhs, lhs, boxed),
        CmpOp::Gt => narrow_cmp(CmpOp::Lt, rhs, lhs, boxed),
        CmpOp::Eq => {
            let common = ra.intersect(rb);
            if common.is_empty() {
                return None;
            }
            let narrowed = narrow_expr(lhs, boxed, common)?;
            let ra2 = lhs.eval_abstract(&narrowed);
            let rb2 = rhs.eval_abstract(&narrowed);
            let common2 = ra2.intersect(rb2);
            if common2.is_empty() {
                return None;
            }
            narrow_expr(rhs, &narrowed, common2)
        }
        CmpOp::Ne => {
            // Boxes cannot represent a "hole"; only prune the definitely-false case.
            if ra.is_singleton() && rb.is_singleton() && ra.lo() == rb.lo() {
                None
            } else {
                Some(boxed.clone())
            }
        }
    }
}

fn floor_div(a: i128, b: i128) -> i128 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

fn ceil_div(a: i128, b: i128) -> i128 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

fn clamp_i128(v: i128) -> i64 {
    if v > i64::MAX as i128 {
        i64::MAX
    } else if v < i64::MIN as i128 {
        i64::MIN
    } else {
        v as i64
    }
}

/// Narrows `boxed` to the points where `expr` *may* evaluate to a value inside `required`.
///
/// Returns `None` when no point of the box can produce a value in `required`.
fn narrow_expr(expr: &IntExpr, boxed: &IntBox, required: Range) -> Option<IntBox> {
    if required.is_empty() {
        return None;
    }
    match expr {
        IntExpr::Const(c) => {
            if required.contains(*c) {
                Some(boxed.clone())
            } else {
                None
            }
        }
        IntExpr::Var(i) => {
            if *i >= boxed.arity() {
                // Unknown variable: cannot narrow, stay sound.
                return Some(boxed.clone());
            }
            let new_range = boxed.dim(*i).intersect(required);
            if new_range.is_empty() {
                None
            } else {
                Some(boxed.with_dim(*i, new_range))
            }
        }
        IntExpr::Add(a, b) => {
            let ra = a.eval_abstract(boxed);
            let rb = b.eval_abstract(boxed);
            if ra.add(rb).intersect(required).is_empty() {
                return None;
            }
            let narrowed = narrow_expr(a, boxed, required.sub(rb))?;
            let ra2 = a.eval_abstract(&narrowed);
            narrow_expr(b, &narrowed, required.sub(ra2))
        }
        IntExpr::Sub(a, b) => {
            let ra = a.eval_abstract(boxed);
            let rb = b.eval_abstract(boxed);
            if ra.sub(rb).intersect(required).is_empty() {
                return None;
            }
            // a - b ∈ required  ⇒  a ∈ required + b  and  b ∈ a - required
            let narrowed = narrow_expr(a, boxed, required.add(rb))?;
            let ra2 = a.eval_abstract(&narrowed);
            narrow_expr(b, &narrowed, ra2.sub(required))
        }
        IntExpr::Neg(a) => narrow_expr(a, boxed, required.neg()),
        IntExpr::Scale(k, a) => {
            if *k == 0 {
                return if required.contains(0) { Some(boxed.clone()) } else { None };
            }
            let (lo, hi) = if *k > 0 {
                (
                    ceil_div(required.lo() as i128, *k as i128),
                    floor_div(required.hi() as i128, *k as i128),
                )
            } else {
                (
                    ceil_div(required.hi() as i128, *k as i128),
                    floor_div(required.lo() as i128, *k as i128),
                )
            };
            if lo > hi {
                return None;
            }
            narrow_expr(a, boxed, Range::new(clamp_i128(lo), clamp_i128(hi)))
        }
        IntExpr::Abs(a) => {
            let feasible = required.intersect(Range::new(0, i64::MAX));
            if feasible.is_empty() {
                return None;
            }
            let ra = a.eval_abstract(boxed);
            if ra.lo() >= 0 {
                narrow_expr(a, boxed, feasible)
            } else if ra.hi() <= 0 {
                narrow_expr(a, boxed, feasible.neg())
            } else {
                // |a| <= feasible.hi  ⇒  a ∈ [-hi, hi]; the "hole" below feasible.lo cannot be
                // represented by a single interval, so we keep only the outer bound.
                narrow_expr(a, boxed, Range::new(-feasible.hi(), feasible.hi()))
            }
        }
        IntExpr::Min(a, b) => {
            // min(a, b) >= required.lo ⇒ both operands >= required.lo.
            let lower = Range::new(required.lo(), i64::MAX);
            let ra = a.eval_abstract(boxed);
            let rb = b.eval_abstract(boxed);
            if ra.min(rb).intersect(required).is_empty() {
                return None;
            }
            let narrowed = narrow_expr(a, boxed, lower)?;
            narrow_expr(b, &narrowed, lower)
        }
        IntExpr::Max(a, b) => {
            // max(a, b) <= required.hi ⇒ both operands <= required.hi.
            let upper = Range::new(i64::MIN, required.hi());
            let ra = a.eval_abstract(boxed);
            let rb = b.eval_abstract(boxed);
            if ra.max(rb).intersect(required).is_empty() {
                return None;
            }
            let narrowed = narrow_expr(a, boxed, upper)?;
            narrow_expr(b, &narrowed, upper)
        }
        IntExpr::Ite(c, t, e) => match c.eval_abstract(boxed) {
            TriBool::True => narrow_expr(t, boxed, required),
            TriBool::False => narrow_expr(e, boxed, required),
            TriBool::Unknown => {
                // Either branch may apply; we can only prune if *neither* branch can reach the
                // required range.
                let rt = t.eval_abstract(boxed);
                let re = e.eval_abstract(boxed);
                if rt.intersect(required).is_empty() && re.intersect(required).is_empty() {
                    None
                } else {
                    Some(boxed.clone())
                }
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anosy_logic::{simplify_pred, Point, SecretLayout};

    fn space(side: i64) -> IntBox {
        IntBox::new(vec![Range::new(0, side), Range::new(0, side)])
    }

    fn nearby(xo: i64, yo: i64, d: i64) -> Pred {
        ((IntExpr::var(0) - xo).abs() + (IntExpr::var(1) - yo).abs()).le(d)
    }

    /// Narrowing must never remove a model.
    fn assert_preserves_models(pred: &Pred, boxed: &IntBox) {
        let narrowed = propagate(pred, boxed, 8);
        for p in boxed.points() {
            if pred.eval(&p).unwrap() {
                let n = narrowed
                    .as_ref()
                    .unwrap_or_else(|| panic!("box pruned although {p} is a model"));
                assert!(n.contains_point(&p), "model {p} was narrowed away");
            }
        }
    }

    #[test]
    fn narrowing_tightens_simple_bounds() {
        let pred = Pred::and(vec![IntExpr::var(0).ge(10), IntExpr::var(0).le(20)]);
        let narrowed = propagate(&pred, &space(400), 4).unwrap();
        assert_eq!(narrowed.dim(0), Range::new(10, 20));
        assert_eq!(narrowed.dim(1), Range::new(0, 400));
    }

    #[test]
    fn narrowing_handles_arithmetic_chains() {
        // x + y <= 10 over [0,400]^2 narrows both coordinates to [0, 10].
        let pred = (IntExpr::var(0) + IntExpr::var(1)).le(10);
        let narrowed = propagate(&pred, &space(400), 4).unwrap();
        assert_eq!(narrowed.dim(0), Range::new(0, 10));
        assert_eq!(narrowed.dim(1), Range::new(0, 10));
    }

    #[test]
    fn narrowing_the_nearby_query_bounds_the_diamond() {
        let narrowed = propagate(&nearby(200, 200, 100), &space(400), 8).unwrap();
        assert_eq!(narrowed.dim(0), Range::new(100, 300));
        assert_eq!(narrowed.dim(1), Range::new(100, 300));
    }

    #[test]
    fn contradictions_prune_the_whole_box() {
        let pred = Pred::and(vec![IntExpr::var(0).le(10), IntExpr::var(0).ge(20)]);
        assert!(propagate(&pred, &space(400), 4).is_none());
        let eq = IntExpr::var(0).eq(1000);
        assert!(propagate(&eq, &space(400), 4).is_none());
        assert!(propagate(&Pred::False, &space(5), 4).is_none());
    }

    #[test]
    fn disjunction_narrows_to_the_hull_of_branches() {
        let pred = Pred::or(vec![
            IntExpr::var(0).between(2, 4),
            IntExpr::var(0).between(10, 12),
        ]);
        let narrowed = propagate(&pred, &space(400), 4).unwrap();
        assert_eq!(narrowed.dim(0), Range::new(2, 12));
    }

    #[test]
    fn scale_narrowing_uses_integer_division() {
        // 3 * x >= 10  ⇒  x >= 4 over the integers.
        let pred = (IntExpr::var(0) * 3).ge(10);
        let narrowed = propagate(&pred, &space(400), 4).unwrap();
        assert_eq!(narrowed.dim(0).lo(), 4);
        // -2 * x >= 6  ⇒  x <= -3, impossible over [0, 400].
        let neg = (IntExpr::var(0) * -2).ge(6);
        assert!(propagate(&neg, &space(400), 4).is_none());
        // 0 * x == 1 is unsatisfiable (the zero coefficient is the point of the test).
        #[allow(clippy::erasing_op)]
        let zero = (IntExpr::var(0) * 0).eq(1);
        assert!(propagate(&zero, &space(400), 4).is_none());
    }

    #[test]
    fn equality_and_min_max_narrowing() {
        let pred = IntExpr::var(0).min_expr(IntExpr::var(1)).ge(5);
        let narrowed = propagate(&pred, &space(20), 4).unwrap();
        assert_eq!(narrowed.dim(0).lo(), 5);
        assert_eq!(narrowed.dim(1).lo(), 5);

        let pred = IntExpr::var(0).max_expr(IntExpr::var(1)).le(7);
        let narrowed = propagate(&pred, &space(20), 4).unwrap();
        assert_eq!(narrowed.dim(0).hi(), 7);
        assert_eq!(narrowed.dim(1).hi(), 7);

        let eq = IntExpr::var(0).eq(IntExpr::var(1) + 3);
        let boxed = IntBox::new(vec![Range::new(0, 4), Range::new(0, 100)]);
        let narrowed = propagate(&eq, &boxed, 8).unwrap();
        assert!(narrowed.dim(1).hi() <= 1);
    }

    #[test]
    fn propagation_preserves_models_on_small_spaces() {
        let layout = SecretLayout::builder().field("x", -6, 6).field("y", -6, 6).build();
        let preds = vec![
            nearby(0, 0, 4),
            simplify_pred(&nearby(0, 0, 4).negate()),
            (IntExpr::var(0) + IntExpr::var(1) * 2).le(3),
            IntExpr::var(0).eq(IntExpr::var(1)),
            IntExpr::var(0).ne(IntExpr::var(1)),
            Pred::or(vec![IntExpr::var(0).le(-3), IntExpr::var(0).ge(3)]),
            IntExpr::var(0).abs().max_expr(IntExpr::var(1).abs()).le(2),
            IntExpr::ite(IntExpr::var(0).ge(0), IntExpr::var(1), -IntExpr::var(1)).ge(1),
        ];
        for pred in preds {
            assert_preserves_models(&pred, &layout.space());
        }
    }

    #[test]
    fn ne_singleton_conflict_is_detected() {
        let pred = IntExpr::var(0).ne(IntExpr::var(0));
        let unit = IntBox::new(vec![Range::singleton(3)]);
        assert!(propagate(&pred, &unit, 2).is_none());
        let p = Point::new(vec![3]);
        assert!(!pred.eval(&p).unwrap());
    }

    #[test]
    fn division_helpers_round_correctly() {
        assert_eq!(floor_div(7, 2), 3);
        assert_eq!(floor_div(-7, 2), -4);
        assert_eq!(ceil_div(7, 2), 4);
        assert_eq!(ceil_div(-7, 2), -3);
        assert_eq!(floor_div(6, 3), 2);
        assert_eq!(ceil_div(6, 3), 2);
        assert_eq!(floor_div(7, -2), -4);
        assert_eq!(ceil_div(7, -2), -3);
    }
}
