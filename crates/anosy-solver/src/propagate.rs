//! Interval constraint propagation (HC4-style narrowing).
//!
//! Narrowing takes a predicate and a box and removes slices of the box that provably contain no
//! model of the predicate. It is the pruning engine of every search in this crate. Soundness
//! contract: **narrowing never removes a model** — every point of the input box that satisfies
//! the predicate is still in the output box (this is what makes it usable for exact model
//! counting).
//!
//! The narrowing procedures operate on interned [`PredId`]/[`ExprId`] terms so that the range
//! analyses they perform ([`TermStore::eval_abstract_expr`]) are memoized in the store and reused
//! across fixed-point rounds and across search nodes that revisit the same `(term, box)` pair.
//! The tree-level entry point [`propagate`] (exported as [`crate::narrow_box`]) interns into a
//! private store, which keeps the abstract-interpretation baseline in `anosy-suite` working
//! unchanged.

use anosy_logic::{
    CmpOp, ExprId, ExprNode, IntBox, Pred, PredId, PredShape, Range, TermStore, TriBool,
};

/// Narrows `boxed` with respect to `pred`, iterating to a (bounded) fixed point.
///
/// Returns `None` when the box provably contains no model of `pred`. This is exposed publicly
/// (as [`crate::narrow_box`]) because forward conditioning with a single narrowing pass is
/// exactly what the abstract-interpretation baseline in `anosy-suite` needs.
pub fn propagate(pred: &Pred, boxed: &IntBox, rounds: usize) -> Option<IntBox> {
    let mut store = TermStore::new();
    let id = store.intern_pred(pred);
    propagate_id(&mut store, id, boxed, rounds)
}

/// Id-based narrowing over a shared store: the form every solver search uses.
pub(crate) fn propagate_id(
    store: &mut TermStore,
    pred: PredId,
    boxed: &IntBox,
    rounds: usize,
) -> Option<IntBox> {
    anosy_telemetry::count("solver.propagate", 1);
    let mut current = boxed.clone();
    if current.is_empty() {
        return None;
    }
    for _ in 0..rounds.max(1) {
        let next = narrow_pred(store, pred, &current)?;
        if next == current {
            return Some(next);
        }
        current = next;
        if current.is_empty() {
            return None;
        }
    }
    Some(current)
}

/// Componentwise hull of two boxes of equal arity.
fn box_hull(a: &IntBox, b: &IntBox) -> IntBox {
    IntBox::new(a.dims().iter().zip(b.dims().iter()).map(|(x, y)| x.hull(*y)).collect())
}

fn narrow_pred(store: &mut TermStore, pred: PredId, boxed: &IntBox) -> Option<IntBox> {
    // `pred_shape` avoids cloning connective child vectors on this hot path; children are
    // fetched by index instead.
    match store.pred_shape(pred) {
        PredShape::True => Some(boxed.clone()),
        PredShape::False => None,
        PredShape::Cmp(op, a, b) => narrow_cmp(store, op, a, b, boxed),
        PredShape::And(len) => {
            let mut current = boxed.clone();
            for i in 0..len {
                let child = store.pred_child(pred, i);
                current = narrow_pred(store, child, &current)?;
                if current.is_empty() {
                    return None;
                }
            }
            Some(current)
        }
        PredShape::Or(len) => {
            let mut acc: Option<IntBox> = None;
            for i in 0..len {
                let child = store.pred_child(pred, i);
                if let Some(narrowed) = narrow_pred(store, child, boxed) {
                    acc = Some(match acc {
                        None => narrowed,
                        Some(prev) => box_hull(&prev, &narrowed),
                    });
                }
            }
            acc
        }
        // Non-NNF connectives: fall back to the abstract evaluator, which is still sound.
        PredShape::Not(_) | PredShape::Implies(..) | PredShape::Iff(..) => {
            match store.eval_abstract_pred(pred, boxed) {
                TriBool::False => None,
                _ => Some(boxed.clone()),
            }
        }
    }
}

fn narrow_cmp(
    store: &mut TermStore,
    op: CmpOp,
    lhs: ExprId,
    rhs: ExprId,
    boxed: &IntBox,
) -> Option<IntBox> {
    // Fast path via the (memoized) abstract evaluator.
    let ra = store.eval_abstract_expr(lhs, boxed);
    let rb = store.eval_abstract_expr(rhs, boxed);
    match op {
        CmpOp::Le => {
            if ra.le(rb) == TriBool::False {
                return None;
            }
            let narrowed = narrow_expr(store, lhs, boxed, Range::new(i64::MIN, rb.hi()))?;
            let ra2 = store.eval_abstract_expr(lhs, &narrowed);
            narrow_expr(store, rhs, &narrowed, Range::new(ra2.lo(), i64::MAX))
        }
        CmpOp::Lt => {
            if ra.lt(rb) == TriBool::False {
                return None;
            }
            let hi = rb.hi().saturating_sub(1);
            let narrowed = narrow_expr(store, lhs, boxed, Range::new(i64::MIN, hi))?;
            let ra2 = store.eval_abstract_expr(lhs, &narrowed);
            narrow_expr(store, rhs, &narrowed, Range::new(ra2.lo().saturating_add(1), i64::MAX))
        }
        CmpOp::Ge => narrow_cmp(store, CmpOp::Le, rhs, lhs, boxed),
        CmpOp::Gt => narrow_cmp(store, CmpOp::Lt, rhs, lhs, boxed),
        CmpOp::Eq => {
            let common = ra.intersect(rb);
            if common.is_empty() {
                return None;
            }
            let narrowed = narrow_expr(store, lhs, boxed, common)?;
            let ra2 = store.eval_abstract_expr(lhs, &narrowed);
            let rb2 = store.eval_abstract_expr(rhs, &narrowed);
            let common2 = ra2.intersect(rb2);
            if common2.is_empty() {
                return None;
            }
            narrow_expr(store, rhs, &narrowed, common2)
        }
        CmpOp::Ne => {
            // Boxes cannot represent a "hole"; only prune the definitely-false case.
            if ra.is_singleton() && rb.is_singleton() && ra.lo() == rb.lo() {
                None
            } else {
                Some(boxed.clone())
            }
        }
    }
}

fn floor_div(a: i128, b: i128) -> i128 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

fn ceil_div(a: i128, b: i128) -> i128 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

fn clamp_i128(v: i128) -> i64 {
    if v > i64::MAX as i128 {
        i64::MAX
    } else if v < i64::MIN as i128 {
        i64::MIN
    } else {
        v as i64
    }
}

/// Narrows `boxed` to the points where `expr` *may* evaluate to a value inside `required`.
///
/// Returns `None` when no point of the box can produce a value in `required`.
fn narrow_expr(
    store: &mut TermStore,
    expr: ExprId,
    boxed: &IntBox,
    required: Range,
) -> Option<IntBox> {
    if required.is_empty() {
        return None;
    }
    match store.expr_node(expr).clone() {
        ExprNode::Const(c) => {
            if required.contains(c) {
                Some(boxed.clone())
            } else {
                None
            }
        }
        ExprNode::Var(i) => {
            if i >= boxed.arity() {
                // Unknown variable: cannot narrow, stay sound.
                return Some(boxed.clone());
            }
            let new_range = boxed.dim(i).intersect(required);
            if new_range.is_empty() {
                None
            } else {
                Some(boxed.with_dim(i, new_range))
            }
        }
        ExprNode::Add(a, b) => {
            let ra = store.eval_abstract_expr(a, boxed);
            let rb = store.eval_abstract_expr(b, boxed);
            if ra.add(rb).intersect(required).is_empty() {
                return None;
            }
            let narrowed = narrow_expr(store, a, boxed, required.sub(rb))?;
            let ra2 = store.eval_abstract_expr(a, &narrowed);
            narrow_expr(store, b, &narrowed, required.sub(ra2))
        }
        ExprNode::Sub(a, b) => {
            let ra = store.eval_abstract_expr(a, boxed);
            let rb = store.eval_abstract_expr(b, boxed);
            if ra.sub(rb).intersect(required).is_empty() {
                return None;
            }
            // a - b ∈ required  ⇒  a ∈ required + b  and  b ∈ a - required
            let narrowed = narrow_expr(store, a, boxed, required.add(rb))?;
            let ra2 = store.eval_abstract_expr(a, &narrowed);
            narrow_expr(store, b, &narrowed, ra2.sub(required))
        }
        ExprNode::Neg(a) => narrow_expr(store, a, boxed, required.neg()),
        ExprNode::Scale(k, a) => {
            if k == 0 {
                return if required.contains(0) { Some(boxed.clone()) } else { None };
            }
            let (lo, hi) = if k > 0 {
                (
                    ceil_div(required.lo() as i128, k as i128),
                    floor_div(required.hi() as i128, k as i128),
                )
            } else {
                (
                    ceil_div(required.hi() as i128, k as i128),
                    floor_div(required.lo() as i128, k as i128),
                )
            };
            if lo > hi {
                return None;
            }
            narrow_expr(store, a, boxed, Range::new(clamp_i128(lo), clamp_i128(hi)))
        }
        ExprNode::Abs(a) => {
            let feasible = required.intersect(Range::new(0, i64::MAX));
            if feasible.is_empty() {
                return None;
            }
            let ra = store.eval_abstract_expr(a, boxed);
            if ra.lo() >= 0 {
                narrow_expr(store, a, boxed, feasible)
            } else if ra.hi() <= 0 {
                narrow_expr(store, a, boxed, feasible.neg())
            } else {
                // |a| <= feasible.hi  ⇒  a ∈ [-hi, hi]; the "hole" below feasible.lo cannot be
                // represented by a single interval, so we keep only the outer bound.
                narrow_expr(store, a, boxed, Range::new(-feasible.hi(), feasible.hi()))
            }
        }
        ExprNode::Min(a, b) => {
            // min(a, b) >= required.lo ⇒ both operands >= required.lo.
            let lower = Range::new(required.lo(), i64::MAX);
            let ra = store.eval_abstract_expr(a, boxed);
            let rb = store.eval_abstract_expr(b, boxed);
            if ra.min(rb).intersect(required).is_empty() {
                return None;
            }
            let narrowed = narrow_expr(store, a, boxed, lower)?;
            narrow_expr(store, b, &narrowed, lower)
        }
        ExprNode::Max(a, b) => {
            // max(a, b) <= required.hi ⇒ both operands <= required.hi.
            let upper = Range::new(i64::MIN, required.hi());
            let ra = store.eval_abstract_expr(a, boxed);
            let rb = store.eval_abstract_expr(b, boxed);
            if ra.max(rb).intersect(required).is_empty() {
                return None;
            }
            let narrowed = narrow_expr(store, a, boxed, upper)?;
            narrow_expr(store, b, &narrowed, upper)
        }
        ExprNode::Ite(c, t, e) => match store.eval_abstract_pred(c, boxed) {
            TriBool::True => narrow_expr(store, t, boxed, required),
            TriBool::False => narrow_expr(store, e, boxed, required),
            TriBool::Unknown => {
                // Either branch may apply; we can only prune if *neither* branch can reach the
                // required range.
                let rt = store.eval_abstract_expr(t, boxed);
                let re = store.eval_abstract_expr(e, boxed);
                if rt.intersect(required).is_empty() && re.intersect(required).is_empty() {
                    None
                } else {
                    Some(boxed.clone())
                }
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anosy_logic::{simplify_pred, IntExpr, Point, SecretLayout};

    fn space(side: i64) -> IntBox {
        IntBox::new(vec![Range::new(0, side), Range::new(0, side)])
    }

    fn nearby(xo: i64, yo: i64, d: i64) -> Pred {
        ((IntExpr::var(0) - xo).abs() + (IntExpr::var(1) - yo).abs()).le(d)
    }

    /// Narrowing must never remove a model.
    fn assert_preserves_models(pred: &Pred, boxed: &IntBox) {
        let narrowed = propagate(pred, boxed, 8);
        for p in boxed.points() {
            if pred.eval(&p).unwrap() {
                let n = narrowed
                    .as_ref()
                    .unwrap_or_else(|| panic!("box pruned although {p} is a model"));
                assert!(n.contains_point(&p), "model {p} was narrowed away");
            }
        }
    }

    #[test]
    fn narrowing_tightens_simple_bounds() {
        let pred = Pred::and(vec![IntExpr::var(0).ge(10), IntExpr::var(0).le(20)]);
        let narrowed = propagate(&pred, &space(400), 4).unwrap();
        assert_eq!(narrowed.dim(0), Range::new(10, 20));
        assert_eq!(narrowed.dim(1), Range::new(0, 400));
    }

    #[test]
    fn narrowing_handles_arithmetic_chains() {
        // x + y <= 10 over [0,400]^2 narrows both coordinates to [0, 10].
        let pred = (IntExpr::var(0) + IntExpr::var(1)).le(10);
        let narrowed = propagate(&pred, &space(400), 4).unwrap();
        assert_eq!(narrowed.dim(0), Range::new(0, 10));
        assert_eq!(narrowed.dim(1), Range::new(0, 10));
    }

    #[test]
    fn narrowing_the_nearby_query_bounds_the_diamond() {
        let narrowed = propagate(&nearby(200, 200, 100), &space(400), 8).unwrap();
        assert_eq!(narrowed.dim(0), Range::new(100, 300));
        assert_eq!(narrowed.dim(1), Range::new(100, 300));
    }

    #[test]
    fn id_based_narrowing_agrees_with_the_tree_wrapper_and_reuses_ranges() {
        let mut store = TermStore::new();
        // A deep arithmetic spine (well past the store's memo depth gate), so the range
        // analyses behind narrowing are memoized and reused across runs.
        let mut sum = (IntExpr::var(0) - 0).abs();
        for i in 1..8i64 {
            sum = sum + (IntExpr::var((i % 2) as usize) - 50 * i).abs();
        }
        let pred = sum.le(1500);
        let id = store.intern_pred(&pred);
        let first = propagate_id(&mut store, id, &space(400), 8);
        assert_eq!(first, propagate(&pred, &space(400), 8));
        // Running the same narrowing again over the shared store is answered mostly from the
        // (id, box) range memo.
        let misses = store.stats().range_misses;
        let second = propagate_id(&mut store, id, &space(400), 8);
        assert_eq!(first, second);
        assert_eq!(store.stats().range_misses, misses, "re-run should not re-analyze ranges");
        assert!(store.stats().range_hits > 0);
    }

    #[test]
    fn contradictions_prune_the_whole_box() {
        let pred = Pred::and(vec![IntExpr::var(0).le(10), IntExpr::var(0).ge(20)]);
        assert!(propagate(&pred, &space(400), 4).is_none());
        let eq = IntExpr::var(0).eq(1000);
        assert!(propagate(&eq, &space(400), 4).is_none());
        assert!(propagate(&Pred::False, &space(5), 4).is_none());
    }

    #[test]
    fn disjunction_narrows_to_the_hull_of_branches() {
        let pred = Pred::or(vec![IntExpr::var(0).between(2, 4), IntExpr::var(0).between(10, 12)]);
        let narrowed = propagate(&pred, &space(400), 4).unwrap();
        assert_eq!(narrowed.dim(0), Range::new(2, 12));
    }

    #[test]
    fn scale_narrowing_uses_integer_division() {
        // 3 * x >= 10  ⇒  x >= 4 over the integers.
        let pred = (IntExpr::var(0) * 3).ge(10);
        let narrowed = propagate(&pred, &space(400), 4).unwrap();
        assert_eq!(narrowed.dim(0).lo(), 4);
        // -2 * x >= 6  ⇒  x <= -3, impossible over [0, 400].
        let neg = (IntExpr::var(0) * -2).ge(6);
        assert!(propagate(&neg, &space(400), 4).is_none());
        // 0 * x == 1 is unsatisfiable (the zero coefficient is the point of the test).
        #[allow(clippy::erasing_op)]
        let zero = (IntExpr::var(0) * 0).eq(1);
        assert!(propagate(&zero, &space(400), 4).is_none());
    }

    #[test]
    fn equality_and_min_max_narrowing() {
        let pred = IntExpr::var(0).min_expr(IntExpr::var(1)).ge(5);
        let narrowed = propagate(&pred, &space(20), 4).unwrap();
        assert_eq!(narrowed.dim(0).lo(), 5);
        assert_eq!(narrowed.dim(1).lo(), 5);

        let pred = IntExpr::var(0).max_expr(IntExpr::var(1)).le(7);
        let narrowed = propagate(&pred, &space(20), 4).unwrap();
        assert_eq!(narrowed.dim(0).hi(), 7);
        assert_eq!(narrowed.dim(1).hi(), 7);

        let eq = IntExpr::var(0).eq(IntExpr::var(1) + 3);
        let boxed = IntBox::new(vec![Range::new(0, 4), Range::new(0, 100)]);
        let narrowed = propagate(&eq, &boxed, 8).unwrap();
        assert!(narrowed.dim(1).hi() <= 1);
    }

    #[test]
    fn propagation_preserves_models_on_small_spaces() {
        let layout = SecretLayout::builder().field("x", -6, 6).field("y", -6, 6).build();
        let preds = vec![
            nearby(0, 0, 4),
            simplify_pred(&nearby(0, 0, 4).negate()),
            (IntExpr::var(0) + IntExpr::var(1) * 2).le(3),
            IntExpr::var(0).eq(IntExpr::var(1)),
            IntExpr::var(0).ne(IntExpr::var(1)),
            Pred::or(vec![IntExpr::var(0).le(-3), IntExpr::var(0).ge(3)]),
            IntExpr::var(0).abs().max_expr(IntExpr::var(1).abs()).le(2),
            IntExpr::ite(IntExpr::var(0).ge(0), IntExpr::var(1), -IntExpr::var(1)).ge(1),
        ];
        for pred in preds {
            assert_preserves_models(&pred, &layout.space());
        }
    }

    #[test]
    fn ne_singleton_conflict_is_detected() {
        let pred = IntExpr::var(0).ne(IntExpr::var(0));
        let unit = IntBox::new(vec![Range::singleton(3)]);
        assert!(propagate(&pred, &unit, 2).is_none());
        let p = Point::new(vec![3]);
        assert!(!pred.eval(&p).unwrap());
    }

    #[test]
    fn division_helpers_round_correctly() {
        assert_eq!(floor_div(7, 2), 3);
        assert_eq!(floor_div(-7, 2), -4);
        assert_eq!(ceil_div(7, 2), 4);
        assert_eq!(ceil_div(-7, 2), -3);
        assert_eq!(floor_div(6, 3), 2);
        assert_eq!(ceil_div(6, 3), 2);
        assert_eq!(floor_div(7, -2), -4);
        assert_eq!(ceil_div(7, -2), -3);
    }
}
