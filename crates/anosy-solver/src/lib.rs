//! An SMT-lite engine for the ANOSY query fragment.
//!
//! The paper discharges two kinds of logical obligations to Z3 (§2.3, §5.3):
//!
//! 1. **Synthesis** — find values for the interval holes of a sketch such that
//!    `∀x. x ∈ dom ⇒ query x` (under-approximation) or the dual over-approximation constraint
//!    holds, while *maximizing*/*minimizing* the interval widths (Pareto combination of
//!    objectives);
//! 2. **Verification** — check that a candidate abstract domain satisfies its refinement-type
//!    specification.
//!
//! Both obligations range over a *bounded* secret space (the product of the declared field
//! bounds) and formulas in linear integer arithmetic with `abs`/`min`/`max`. Over that fragment a
//! branch-and-prune procedure — interval constraint propagation plus bisection — is a complete
//! decision procedure, which is what this crate provides:
//!
//! * [`Solver::find_model`] / [`Solver::is_satisfiable`] — find a secret satisfying a predicate;
//! * [`Solver::check_validity`] — prove `∀x ∈ box. pred x` or produce a counterexample;
//! * [`Solver::count_models`] — exact model counting (used for ind. set sizes, Table 1);
//! * [`Solver::maximize`] / [`Solver::minimize`] — optimize a variable subject to a predicate
//!   (used for over-approximation synthesis);
//! * [`Solver::maximal_true_box`] — grow an inclusion-maximal box of models around a seed with
//!   round-robin (Pareto-style) expansion (used for under-approximation synthesis).
//!
//! Internally every search operates on the solver's hash-consed
//! [`TermStore`](anosy_logic::TermStore): predicates are interned once per solver (O(1) equality
//! and hashing by [`PredId`](anosy_logic::PredId)), normalization/negation are memoized, and the
//! interval range analyses behind constraint propagation are cached by `(term, box)` and reused
//! across search nodes and across queries. [`Solver::store_stats`] surfaces the hit/miss
//! counters; [`Solver::intern_simplified`] exposes the canonical id of a predicate so callers
//! (synthesizer, verifier) can deduplicate candidate terms by id instead of deep comparison.
//!
//! # Example
//!
//! ```
//! use anosy_logic::{IntExpr, SecretLayout};
//! use anosy_solver::Solver;
//!
//! let layout = SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build();
//! let nearby = ((IntExpr::var(0) - 200).abs() + (IntExpr::var(1) - 200).abs()).le(100);
//!
//! let mut solver = Solver::new();
//! // Exactly the diamond of Manhattan radius 100 around (200, 200).
//! let count = solver.count_models(&nearby, &layout.space()).unwrap();
//! assert_eq!(count, 20201);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod count;
mod error;
mod maximal;
mod optimize;
mod propagate;
mod sat;
mod solver;
mod stats;
mod validity;

pub use config::SolverConfig;
pub use error::SolverError;
pub use maximal::ExpansionStrategy;
pub use propagate::propagate as narrow_box;
pub use solver::Solver;
pub use stats::SolverStats;
pub use validity::ValidityOutcome;
