//! Maximal-box search: grow an all-models box around a seed point.
//!
//! This is the workhorse of under-approximation synthesis (§5.3 of the paper). The paper asks Z3
//! to *maximize* every interval width simultaneously under a Pareto combination so that "no
//! single optimization objective dominates the solution" (preferring a 20×20 square over a 400×1
//! sliver). We reproduce that behaviour with the [`ExpansionStrategy::Pareto`] strategy: the box
//! is first inflated **uniformly** in every direction (binary search on the inflation radius), so
//! widths stay balanced, and then each face is pushed individually until the box is
//! inclusion-maximal — no face can be extended further without including a non-model.

use crate::sat;
use crate::solver::SearchCtx;
use crate::SolverError;
use anosy_logic::{IntBox, Point, PredId, Range};

/// How [`crate::Solver::maximal_true_box`] grows the box around the seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExpansionStrategy {
    /// Uniform inflation (largest feasible radius found by binary search) followed by a per-face
    /// fill sweep. Produces balanced boxes, mirroring the Pareto objectives the paper hands to
    /// Z3. This is the default.
    #[default]
    Pareto,
    /// Each face is grown to its maximum in a fixed order. Cheaper but tends to produce slivers;
    /// kept as an ablation baseline (see DESIGN.md §5).
    Greedy,
}

/// One face of the box: dimension index plus which bound we are pushing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Face {
    Upper(usize),
    Lower(usize),
}

/// Grows an inclusion-maximal all-models box around `seed`.
pub(crate) fn maximal_true_box(
    ctx: &mut SearchCtx<'_>,
    pred: PredId,
    space: &IntBox,
    seed: &Point,
    strategy: ExpansionStrategy,
) -> Result<Option<IntBox>, SolverError> {
    if !space.contains_point(seed) || !ctx.store.eval_pred(pred, seed).unwrap_or(false) {
        return Ok(None);
    }
    // Memoized in the store: growing many boxes for the same query negates the query once.
    let negated = ctx.store.negate_simplified(pred);
    let mut current = IntBox::new(seed.iter().map(Range::singleton).collect());

    if strategy == ExpansionStrategy::Pareto {
        current = inflate_uniformly(ctx, negated, space, &current)?;
    }
    // Per-face fill: repeat sweeps until no face can grow any further. A single sweep suffices
    // for Greedy semantics, but repeating is what certifies inclusion-maximality for both
    // strategies (a later face's growth can re-enable an earlier face only if it shrank, which
    // never happens, so this loop runs at most a handful of times).
    loop {
        let mut grew = false;
        for face in faces(space.arity()) {
            ctx.tick()?;
            let limit = face_limit(face, space);
            let max_step = available(face, &current, limit);
            if max_step == 0 {
                continue;
            }
            let step = largest_feasible_step(ctx, negated, &current, face, max_step)?;
            if step > 0 {
                current = extend(&current, face, step);
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    Ok(Some(current))
}

fn faces(arity: usize) -> Vec<Face> {
    (0..arity).flat_map(|d| [Face::Upper(d), Face::Lower(d)]).collect()
}

/// Binary-searches the largest uniform inflation radius `r` such that the box obtained by moving
/// every face outward by `min(r, distance to the space boundary)` contains only models.
fn inflate_uniformly(
    ctx: &mut SearchCtx<'_>,
    negated: PredId,
    space: &IntBox,
    current: &IntBox,
) -> Result<IntBox, SolverError> {
    let max_radius = faces(space.arity())
        .into_iter()
        .map(|f| available(f, current, face_limit(f, space)))
        .max()
        .unwrap_or(0);
    if max_radius == 0 {
        return Ok(current.clone());
    }
    let inflated = |r: u128| -> IntBox {
        let mut b = current.clone();
        for face in faces(space.arity()) {
            let step = r.min(available(face, &b, face_limit(face, space)));
            if step > 0 {
                b = extend(&b, face, step);
            }
        }
        b
    };
    let feasible = |ctx: &mut SearchCtx<'_>, r: u128| -> Result<bool, SolverError> {
        Ok(sat::find_model(ctx, negated, &inflated(r))?.is_none())
    };
    // Exponential probe for the first infeasible radius, then binary search.
    let mut lo: u128 = 0;
    let mut probe: u128 = 1;
    let hi = loop {
        let r = probe.min(max_radius);
        if feasible(ctx, r)? {
            lo = r;
            if r == max_radius {
                return Ok(inflated(lo));
            }
            probe = probe.saturating_mul(2);
        } else {
            break r;
        }
    };
    let mut hi = hi;
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if feasible(ctx, mid)? {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(inflated(lo))
}

/// The coordinate limit of a face inside the global space.
fn face_limit(face: Face, space: &IntBox) -> i64 {
    match face {
        Face::Upper(d) => space.dim(d).hi(),
        Face::Lower(d) => space.dim(d).lo(),
    }
}

/// How far a face can still travel before hitting the space boundary.
fn available(face: Face, current: &IntBox, limit: i64) -> u128 {
    match face {
        Face::Upper(d) => (limit as i128 - current.dim(d).hi() as i128).max(0) as u128,
        Face::Lower(d) => (current.dim(d).lo() as i128 - limit as i128).max(0) as u128,
    }
}

/// Extends a face outward by `step` units.
fn extend(current: &IntBox, face: Face, step: u128) -> IntBox {
    let step = step as i64;
    match face {
        Face::Upper(d) => {
            let r = current.dim(d);
            current.with_dim(d, Range::new(r.lo(), r.hi() + step))
        }
        Face::Lower(d) => {
            let r = current.dim(d);
            current.with_dim(d, Range::new(r.lo() - step, r.hi()))
        }
    }
}

/// The slab of new points gained by extending a face by `step`.
fn slab(current: &IntBox, face: Face, step: u128) -> IntBox {
    let step = step as i64;
    match face {
        Face::Upper(d) => {
            let r = current.dim(d);
            current.with_dim(d, Range::new(r.hi() + 1, r.hi() + step))
        }
        Face::Lower(d) => {
            let r = current.dim(d);
            current.with_dim(d, Range::new(r.lo() - step, r.lo() - 1))
        }
    }
}

/// Largest `s <= max_step` such that every point of the slab gained by moving `face` out by `s`
/// satisfies the query (i.e. the negated query has no model there). Uses exponential probing
/// followed by binary search, so it needs `O(log max_step)` validity checks.
fn largest_feasible_step(
    ctx: &mut SearchCtx<'_>,
    negated: PredId,
    current: &IntBox,
    face: Face,
    max_step: u128,
) -> Result<u128, SolverError> {
    if max_step == 0 {
        return Ok(0);
    }
    let feasible = |ctx: &mut SearchCtx<'_>, s: u128| -> Result<bool, SolverError> {
        let slab = slab(current, face, s);
        // The slab is model-free for the *negated* query iff every point satisfies the query.
        Ok(sat::find_model(ctx, negated, &slab)?.is_none())
    };
    let mut lo: u128 = 0; // largest known-feasible step
    let mut probe: u128 = 1;
    let hi = loop {
        let s = probe.min(max_step);
        if feasible(ctx, s)? {
            lo = s;
            if s == max_step {
                return Ok(lo);
            }
            probe = probe.saturating_mul(2);
        } else {
            break s;
        }
    };
    let mut hi = hi;
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if feasible(ctx, mid)? {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(lo)
}

/// Checks that no face of `candidate` can be extended inside `space` while keeping all points
/// models of `pred`.
pub(crate) fn is_inclusion_maximal(
    ctx: &mut SearchCtx<'_>,
    pred: PredId,
    space: &IntBox,
    candidate: &IntBox,
) -> Result<bool, SolverError> {
    let negated = ctx.store.negate_simplified(pred);
    for face in faces(space.arity()) {
        let limit = face_limit(face, space);
        if available(face, candidate, limit) == 0 {
            continue;
        }
        let slab = slab(candidate, face, 1);
        if sat::find_model(ctx, negated, &slab)?.is_none() {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Solver, SolverConfig};
    use anosy_logic::{IntExpr, Pred, SecretLayout};

    fn solver() -> Solver {
        Solver::with_config(SolverConfig::for_tests())
    }

    fn loc_space() -> IntBox {
        SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build().space()
    }

    fn nearby(xo: i64, yo: i64) -> Pred {
        ((IntExpr::var(0) - xo).abs() + (IntExpr::var(1) - yo).abs()).le(100)
    }

    fn assert_all_models(pred: &Pred, boxed: &IntBox) {
        let mut s = solver();
        assert!(s.is_valid(pred, boxed).unwrap(), "box {boxed} contains a non-model of {pred}");
    }

    #[test]
    fn seed_must_be_a_model_inside_the_space() {
        let mut s = solver();
        let q = nearby(200, 200);
        assert!(s
            .maximal_true_box(&q, &loc_space(), &Point::new(vec![0, 0]), ExpansionStrategy::Pareto)
            .unwrap()
            .is_none());
        assert!(s
            .maximal_true_box(
                &q,
                &loc_space(),
                &Point::new(vec![999, 999]),
                ExpansionStrategy::Pareto
            )
            .unwrap()
            .is_none());
    }

    #[test]
    fn pareto_recovers_the_inscribed_square_of_the_diamond() {
        let mut s = solver();
        let q = nearby(200, 200);
        let b = s
            .maximal_true_box(
                &q,
                &loc_space(),
                &Point::new(vec![200, 200]),
                ExpansionStrategy::Pareto,
            )
            .unwrap()
            .unwrap();
        assert_all_models(&q, &b);
        // The balanced inscribed box of a radius-100 L1 ball is the 101×101 square.
        assert_eq!(b.dim(0), Range::new(150, 250));
        assert_eq!(b.dim(1), Range::new(150, 250));
        assert_eq!(b.count(), 101 * 101);
    }

    #[test]
    fn result_is_inclusion_maximal_for_both_strategies() {
        let mut s = solver();
        let q = nearby(200, 200);
        for strategy in [ExpansionStrategy::Pareto, ExpansionStrategy::Greedy] {
            let b = s
                .maximal_true_box(&q, &loc_space(), &Point::new(vec![200, 200]), strategy)
                .unwrap()
                .unwrap();
            assert_all_models(&q, &b);
            assert!(
                s.is_inclusion_maximal(&q, &loc_space(), &b).unwrap(),
                "{strategy:?} result {b} is extendable"
            );
        }
    }

    #[test]
    fn off_center_seeds_still_produce_maximal_boxes() {
        let mut s = solver();
        let q = nearby(200, 200);
        for seed in [[150, 180], [299, 200], [200, 101]] {
            let seed = Point::new(seed.to_vec());
            let b = s
                .maximal_true_box(&q, &loc_space(), &seed, ExpansionStrategy::Pareto)
                .unwrap()
                .unwrap();
            assert!(b.contains_point(&seed));
            assert_all_models(&q, &b);
            assert!(s.is_inclusion_maximal(&q, &loc_space(), &b).unwrap());
        }
    }

    #[test]
    fn greedy_differs_from_pareto_on_the_diamond() {
        // The ablation the paper motivates: greedy expansion produces a sliver along the first
        // dimension, the Pareto-style strategy keeps the box square.
        let mut s = solver();
        let q = nearby(200, 200);
        let seed = Point::new(vec![200, 200]);
        let pareto = s
            .maximal_true_box(&q, &loc_space(), &seed, ExpansionStrategy::Pareto)
            .unwrap()
            .unwrap();
        let greedy = s
            .maximal_true_box(&q, &loc_space(), &seed, ExpansionStrategy::Greedy)
            .unwrap()
            .unwrap();
        assert_all_models(&q, &greedy);
        assert!(pareto.count() > greedy.count(), "pareto {pareto} should beat greedy {greedy}");
    }

    #[test]
    fn box_predicates_are_recovered_exactly() {
        // If the query itself is a box, the maximal box is that box.
        let mut s = solver();
        let q = Pred::and(vec![IntExpr::var(0).between(50, 80), IntExpr::var(1).between(10, 350)]);
        let b = s
            .maximal_true_box(
                &q,
                &loc_space(),
                &Point::new(vec![60, 100]),
                ExpansionStrategy::Pareto,
            )
            .unwrap()
            .unwrap();
        assert_eq!(b.dim(0), Range::new(50, 80));
        assert_eq!(b.dim(1), Range::new(10, 350));
    }

    #[test]
    fn whole_space_queries_grow_to_the_whole_space() {
        let mut s = solver();
        for strategy in [ExpansionStrategy::Pareto, ExpansionStrategy::Greedy] {
            let b = s
                .maximal_true_box(&Pred::True, &loc_space(), &Point::new(vec![13, 17]), strategy)
                .unwrap()
                .unwrap();
            assert_eq!(b, loc_space());
        }
    }

    #[test]
    fn singleton_regions_stay_singletons() {
        let mut s = solver();
        let q = IntExpr::var(0).eq(7).and_also(IntExpr::var(1).eq(9));
        let b = s
            .maximal_true_box(&q, &loc_space(), &Point::new(vec![7, 9]), ExpansionStrategy::Pareto)
            .unwrap()
            .unwrap();
        assert_eq!(b.count(), 1);
    }

    #[test]
    fn inclusion_maximality_checker_agrees() {
        let q = nearby(200, 200);
        let mut s = solver();
        let maximal = IntBox::new(vec![Range::new(150, 250), Range::new(150, 250)]);
        assert!(s.is_inclusion_maximal(&q, &loc_space(), &maximal).unwrap());
        let shrunk = IntBox::new(vec![Range::new(160, 240), Range::new(160, 240)]);
        assert!(!s.is_inclusion_maximal(&q, &loc_space(), &shrunk).unwrap());
        // A box containing non-models is not a valid under-approximation at all.
        let too_big = IntBox::new(vec![Range::new(0, 400), Range::new(0, 400)]);
        assert!(!s.is_inclusion_maximal(&q, &loc_space(), &too_big).unwrap());
    }

    #[test]
    fn default_strategy_is_pareto() {
        assert_eq!(ExpansionStrategy::default(), ExpansionStrategy::Pareto);
    }
}
