//! Single-objective optimization by best-first branch and bound.
//!
//! `maximize`/`minimize` answer questions of the form "what is the largest value field `i` takes
//! over the models of the query?". Over-approximation synthesis (§5.3) is exactly one such pair
//! of questions per secret field.

use crate::propagate::propagate_id;
use crate::solver::SearchCtx;
use crate::SolverError;
use anosy_logic::{IntBox, PredId, TriBool};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Heap entry ordered by the optimistic objective bound (ties broken by smaller boxes first and
/// then by insertion order, so ordering never inspects the box itself).
struct Entry {
    bound: i64,
    count: u128,
    id: usize,
    boxed: IntBox,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.bound
            .cmp(&other.bound)
            .then_with(|| other.count.cmp(&self.count))
            .then_with(|| other.id.cmp(&self.id))
    }
}

/// Optimizes variable `var` over the models of `pred` in `space`.
///
/// Returns the optimum, or `None` when the predicate has no model in the space.
pub(crate) fn optimize(
    ctx: &mut SearchCtx<'_>,
    pred: PredId,
    space: &IntBox,
    var: usize,
    maximize: bool,
) -> Result<Option<i64>, SolverError> {
    if space.is_empty() {
        return Ok(None);
    }
    // Best-first queue ordered by the optimistic bound of each box for the chosen objective.
    // For maximization the bound is the box's upper bound on `var`; for minimization we store
    // the negated lower bound so the same max-heap explores the most promising box first.
    let mut queue: BinaryHeap<Entry> = BinaryHeap::new();
    let mut arena_counter = 0usize; // tie-breaker so the heap never compares IntBox values
    let mut best: Option<i64> = None;

    let bound_of = |b: &IntBox| -> i64 {
        if maximize {
            b.dim(var).hi()
        } else {
            -b.dim(var).lo()
        }
    };
    let better = |candidate: i64, best: i64| -> bool {
        if maximize {
            candidate > best
        } else {
            candidate < best
        }
    };

    queue.push(Entry {
        bound: bound_of(space),
        count: space.count(),
        id: arena_counter,
        boxed: space.clone(),
    });
    while let Some(Entry { bound, boxed: current, .. }) = queue.pop() {
        ctx.tick()?;
        if let Some(b) = best {
            // The queue is ordered by optimistic bound: once the most promising box cannot beat
            // the incumbent, nothing can.
            let incumbent_bound = if maximize { b } else { -b };
            if bound <= incumbent_bound {
                break;
            }
        }
        let narrowed = match propagate_id(ctx.store, pred, &current, ctx.propagation_rounds()) {
            Some(b) => b,
            None => {
                ctx.pruned += 1;
                continue;
            }
        };
        match ctx.store.eval_abstract_pred(pred, &narrowed) {
            TriBool::True => {
                let candidate =
                    if maximize { narrowed.dim(var).hi() } else { narrowed.dim(var).lo() };
                if best.is_none_or(|b| better(candidate, b)) {
                    best = Some(candidate);
                }
                continue;
            }
            TriBool::False => {
                ctx.pruned += 1;
                continue;
            }
            TriBool::Unknown => {}
        }
        if narrowed.is_singleton() {
            let point = narrowed.min_corner().expect("singleton box has a corner");
            if ctx.store.eval_pred(pred, &point).unwrap_or(false) {
                let candidate = point[var];
                if best.is_none_or(|b| better(candidate, b)) {
                    best = Some(candidate);
                }
            }
            continue;
        }
        let dim = narrowed
            .widest_splittable_dim()
            .expect("non-singleton, non-empty box has a splittable dimension");
        let (left, right) = narrowed.bisect(dim).expect("splittable dimension bisects");
        for half in [left, right] {
            arena_counter += 1;
            queue.push(Entry {
                bound: bound_of(&half),
                count: half.count(),
                id: arena_counter,
                boxed: half,
            });
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Solver, SolverConfig};
    use anosy_logic::{IntExpr, Pred, SecretLayout};

    fn solver() -> Solver {
        Solver::with_config(SolverConfig::for_tests())
    }

    fn loc_space() -> IntBox {
        SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build().space()
    }

    #[test]
    fn extrema_of_the_nearby_diamond() {
        let mut s = solver();
        let nearby = ((IntExpr::var(0) - 200).abs() + (IntExpr::var(1) - 200).abs()).le(100);
        assert_eq!(s.maximize(&nearby, &loc_space(), 0).unwrap(), Some(300));
        assert_eq!(s.minimize(&nearby, &loc_space(), 0).unwrap(), Some(100));
        assert_eq!(s.maximize(&nearby, &loc_space(), 1).unwrap(), Some(300));
        assert_eq!(s.minimize(&nearby, &loc_space(), 1).unwrap(), Some(100));
    }

    #[test]
    fn extrema_clip_at_the_space_boundary() {
        let mut s = solver();
        // Diamond centered near the corner of the space.
        let nearby = ((IntExpr::var(0) - 20).abs() + (IntExpr::var(1) - 20).abs()).le(100);
        assert_eq!(s.minimize(&nearby, &loc_space(), 0).unwrap(), Some(0));
        assert_eq!(s.maximize(&nearby, &loc_space(), 0).unwrap(), Some(120));
    }

    #[test]
    fn unsat_objective_returns_none() {
        let mut s = solver();
        assert_eq!(s.maximize(&Pred::False, &loc_space(), 0).unwrap(), None);
        let impossible = IntExpr::var(0).gt(10_000);
        assert_eq!(s.minimize(&impossible, &loc_space(), 0).unwrap(), None);
    }

    #[test]
    fn relational_queries_are_optimized_correctly() {
        let mut s = solver();
        // x <= 2 y && x + y <= 90: max x is 60 (at y = 30).
        let pred = Pred::and(vec![
            IntExpr::var(0).le(IntExpr::var(1) * 2),
            (IntExpr::var(0) + IntExpr::var(1)).le(90),
        ]);
        assert_eq!(s.maximize(&pred, &loc_space(), 0).unwrap(), Some(60));
        assert_eq!(s.minimize(&pred, &loc_space(), 0).unwrap(), Some(0));
    }

    #[test]
    fn matches_brute_force_on_small_spaces() {
        let mut s = solver();
        let layout = SecretLayout::builder().field("x", -7, 7).field("y", -7, 7).build();
        let space = layout.space();
        let preds = vec![
            (IntExpr::var(0) + IntExpr::var(1)).le(-3),
            IntExpr::var(0).abs().max_expr(IntExpr::var(1).abs()).le(4),
            IntExpr::var(0).one_of([-6, -1, 5]),
        ];
        for pred in preds {
            for var in 0..2 {
                let models: Vec<i64> =
                    space.points().filter(|p| pred.eval(p).unwrap()).map(|p| p[var]).collect();
                let expected_max = models.iter().copied().max();
                let expected_min = models.iter().copied().min();
                assert_eq!(s.maximize(&pred, &space, var).unwrap(), expected_max, "max {pred}");
                assert_eq!(s.minimize(&pred, &space, var).unwrap(), expected_min, "min {pred}");
            }
        }
    }
}
