//! The public solver façade and the internal search context shared by all procedures.

use crate::{
    count, maximal, optimize, sat, validity, ExpansionStrategy, SolverConfig, SolverError,
    SolverStats, ValidityOutcome,
};
use anosy_logic::{IntBox, Point, Pred, PredId, Range, StoreStats, TermStore};
use std::time::{Duration, Instant};

/// Budget-tracking context threaded through every search.
///
/// Besides the node/time budgets it carries the solver's [`TermStore`], so every procedure
/// works on interned ids and the store's memoized range analyses are shared across search nodes
/// (and across queries: the store lives as long as the [`Solver`]).
pub(crate) struct SearchCtx<'a> {
    config: &'a SolverConfig,
    deadline: Instant,
    pub(crate) nodes: u64,
    pub(crate) pruned: u64,
    pub(crate) store: &'a mut TermStore,
}

impl<'a> SearchCtx<'a> {
    fn new(config: &'a SolverConfig, store: &'a mut TermStore) -> Self {
        SearchCtx {
            config,
            deadline: Instant::now() + config.time_budget,
            nodes: 0,
            pruned: 0,
            store,
        }
    }

    /// Accounts for one explored node and checks the budgets.
    pub(crate) fn tick(&mut self) -> Result<(), SolverError> {
        self.nodes += 1;
        if self.nodes > self.config.max_nodes {
            return Err(SolverError::BudgetExhausted { limit: "node", explored: self.nodes });
        }
        // Checking the clock on every node would dominate small searches.
        if self.nodes.is_multiple_of(1024) && Instant::now() > self.deadline {
            return Err(SolverError::BudgetExhausted { limit: "time", explored: self.nodes });
        }
        Ok(())
    }

    /// Number of propagation rounds to run per node.
    pub(crate) fn propagation_rounds(&self) -> usize {
        self.config.propagation_rounds
    }
}

/// A reusable decision-procedure instance.
///
/// A `Solver` owns a [`SolverConfig`] and accumulates [`SolverStats`] across queries. It is cheap
/// to construct; the heavy state is per-query and freed when each query returns.
///
/// # Example
///
/// ```
/// use anosy_logic::{IntExpr, SecretLayout};
/// use anosy_solver::Solver;
///
/// let layout = SecretLayout::builder().field("age", 0, 120).build();
/// let adult = IntExpr::var(0).ge(18);
/// let mut solver = Solver::new();
/// assert!(solver.is_satisfiable(&adult, &layout.space()).unwrap());
/// assert_eq!(solver.count_models(&adult, &layout.space()).unwrap(), 103);
/// assert!(!solver.is_valid(&adult, &layout.space()).unwrap());
/// ```
#[derive(Debug)]
pub struct Solver {
    config: SolverConfig,
    stats: SolverStats,
    store: TermStore,
}

impl Solver {
    /// Creates a solver with the default configuration.
    pub fn new() -> Self {
        Solver::with_config(SolverConfig::default())
    }

    /// Creates a solver with an explicit configuration.
    pub fn with_config(config: SolverConfig) -> Self {
        Solver { config, stats: SolverStats::new(), store: TermStore::new() }
    }

    /// Creates a solver whose term store is a pre-populated snapshot (see
    /// [`TermStore::snapshot`]).
    ///
    /// This is the shard constructor of the parallel solver driver: every worker of a sharded
    /// search is seeded with a snapshot of one shared store, so the interned ids (and the warmed
    /// simplify/NNF memo tables) of the predicate under search remain valid in all workers while
    /// each worker's `(id, box)` memos grow privately, without locks. Merge the shards'
    /// search effort back with [`Solver::absorb_stats`].
    pub fn with_store(config: SolverConfig, store: TermStore) -> Self {
        Solver { config, stats: SolverStats::new(), store }
    }

    /// A snapshot of the solver's term store, suitable for seeding shard workers via
    /// [`Solver::with_store`]. Ids interned in this solver before the call stay valid in the
    /// snapshot.
    pub fn snapshot_store(&self) -> TermStore {
        self.store.snapshot()
    }

    /// Merges the statistics of a shard worker (or any other solver) into this solver's
    /// counters, so a sharded search reports the same aggregate effort a sequential one would.
    pub fn absorb_stats(&mut self, other: &SolverStats) {
        self.stats.absorb(other);
    }

    /// The active configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Statistics accumulated since construction (or the last [`Solver::reset_stats`]).
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// Hit/miss counters of the solver's [`TermStore`] memo tables (interning dedup, memoized
    /// simplification, free variables and range analyses).
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// The solver's term store (read access: node counts, reconstruction).
    pub fn store(&self) -> &TermStore {
        &self.store
    }

    /// The solver's term store (intern further terms into the shared arena — e.g. candidate
    /// predicates the synthesizer wants deduplicated by id).
    pub fn store_mut(&mut self) -> &mut TermStore {
        &mut self.store
    }

    /// Interns `pred` into the solver's store and returns its simplified id — the canonical
    /// handle under which the solver searches it. Two predicates receive the same id exactly
    /// when their simplified forms are structurally equal.
    pub fn intern_simplified(&mut self, pred: &Pred) -> PredId {
        let id = self.store.intern_pred(pred);
        self.store.simplify(id)
    }

    /// Clears the accumulated statistics (search counters and store counters).
    pub fn reset_stats(&mut self) {
        self.stats = SolverStats::new();
        self.store.reset_stats();
    }

    fn run_id<T>(
        &mut self,
        pred: PredId,
        space: &IntBox,
        f: impl FnOnce(&mut SearchCtx<'_>, PredId, &IntBox) -> Result<T, SolverError>,
    ) -> Result<T, SolverError> {
        let started = Instant::now();
        if let Some(max_index) = self.store.max_free_var(pred) {
            if max_index >= space.arity() {
                return Err(SolverError::ArityMismatch { max_index, arity: space.arity() });
            }
        }
        let normalized = self.store.simplify(pred);
        let mut ctx = SearchCtx::new(&self.config, &mut self.store);
        let result = f(&mut ctx, normalized, space);
        self.stats.nodes_explored += ctx.nodes;
        self.stats.nodes_pruned += ctx.pruned;
        self.stats.queries += 1;
        self.stats.total_time += saturating_elapsed(started);
        result
    }

    fn run<T>(
        &mut self,
        pred: &Pred,
        space: &IntBox,
        f: impl FnOnce(&mut SearchCtx<'_>, PredId, &IntBox) -> Result<T, SolverError>,
    ) -> Result<T, SolverError> {
        let id = self.store.intern_pred(pred);
        self.run_id(id, space, f)
    }

    /// Finds a point of `space` satisfying `pred`, if one exists.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::ArityMismatch`] if the predicate mentions fields outside the space
    /// and [`SolverError::BudgetExhausted`] if the configured limits are hit.
    pub fn find_model(
        &mut self,
        pred: &Pred,
        space: &IntBox,
    ) -> Result<Option<Point>, SolverError> {
        let _span = anosy_telemetry::span("solver.find_model");
        self.run(pred, space, sat::find_model)
    }

    /// Id-native [`Solver::find_model`]: takes a predicate already interned in this solver's
    /// store, skipping the per-call interning walk. This is the entry point the synthesizer's
    /// refinement loops use — they build candidate predicates directly in the store.
    pub fn find_model_id(
        &mut self,
        pred: PredId,
        space: &IntBox,
    ) -> Result<Option<Point>, SolverError> {
        let _span = anosy_telemetry::span("solver.find_model");
        self.run_id(pred, space, sat::find_model)
    }

    /// Returns `true` if some point of `space` satisfies `pred`.
    ///
    /// # Errors
    ///
    /// See [`Solver::find_model`].
    pub fn is_satisfiable(&mut self, pred: &Pred, space: &IntBox) -> Result<bool, SolverError> {
        Ok(self.find_model(pred, space)?.is_some())
    }

    /// Checks whether `pred` holds for **every** point of `space`, returning a counterexample
    /// otherwise.
    ///
    /// # Errors
    ///
    /// See [`Solver::find_model`].
    pub fn check_validity(
        &mut self,
        pred: &Pred,
        space: &IntBox,
    ) -> Result<ValidityOutcome, SolverError> {
        let _span = anosy_telemetry::span("solver.check_validity");
        self.run(pred, space, validity::check_validity)
    }

    /// Returns `true` if `pred` holds for every point of `space`.
    ///
    /// # Errors
    ///
    /// See [`Solver::find_model`].
    pub fn is_valid(&mut self, pred: &Pred, space: &IntBox) -> Result<bool, SolverError> {
        Ok(matches!(self.check_validity(pred, space)?, ValidityOutcome::Valid))
    }

    /// Id-native [`Solver::check_validity`].
    ///
    /// # Errors
    ///
    /// See [`Solver::find_model`].
    pub fn check_validity_id(
        &mut self,
        pred: PredId,
        space: &IntBox,
    ) -> Result<ValidityOutcome, SolverError> {
        let _span = anosy_telemetry::span("solver.check_validity");
        self.run_id(pred, space, validity::check_validity)
    }

    /// Id-native [`Solver::is_valid`].
    ///
    /// # Errors
    ///
    /// See [`Solver::find_model`].
    pub fn is_valid_id(&mut self, pred: PredId, space: &IntBox) -> Result<bool, SolverError> {
        Ok(matches!(self.check_validity_id(pred, space)?, ValidityOutcome::Valid))
    }

    /// Counts the points of `space` that satisfy `pred`, exactly.
    ///
    /// # Errors
    ///
    /// See [`Solver::find_model`].
    pub fn count_models(&mut self, pred: &Pred, space: &IntBox) -> Result<u128, SolverError> {
        let _span = anosy_telemetry::span("solver.count_models");
        self.run(pred, space, count::count_models)
    }

    /// Id-native [`Solver::count_models`].
    ///
    /// # Errors
    ///
    /// See [`Solver::find_model`].
    pub fn count_models_id(&mut self, pred: PredId, space: &IntBox) -> Result<u128, SolverError> {
        let _span = anosy_telemetry::span("solver.count_models");
        self.run_id(pred, space, count::count_models)
    }

    /// Largest value of variable `var` over the models of `pred` in `space`, or `None` if the
    /// predicate is unsatisfiable there.
    ///
    /// # Errors
    ///
    /// See [`Solver::find_model`].
    pub fn maximize(
        &mut self,
        pred: &Pred,
        space: &IntBox,
        var: usize,
    ) -> Result<Option<i64>, SolverError> {
        self.run(pred, space, |ctx, p, s| optimize::optimize(ctx, p, s, var, true))
    }

    /// Smallest value of variable `var` over the models of `pred` in `space`, or `None` if the
    /// predicate is unsatisfiable there.
    ///
    /// # Errors
    ///
    /// See [`Solver::find_model`].
    pub fn minimize(
        &mut self,
        pred: &Pred,
        space: &IntBox,
        var: usize,
    ) -> Result<Option<i64>, SolverError> {
        self.run(pred, space, |ctx, p, s| optimize::optimize(ctx, p, s, var, false))
    }

    /// Id-native [`Solver::maximize`].
    ///
    /// # Errors
    ///
    /// See [`Solver::find_model`].
    pub fn maximize_id(
        &mut self,
        pred: PredId,
        space: &IntBox,
        var: usize,
    ) -> Result<Option<i64>, SolverError> {
        self.run_id(pred, space, |ctx, p, s| optimize::optimize(ctx, p, s, var, true))
    }

    /// Id-native [`Solver::minimize`].
    ///
    /// # Errors
    ///
    /// See [`Solver::find_model`].
    pub fn minimize_id(
        &mut self,
        pred: PredId,
        space: &IntBox,
        var: usize,
    ) -> Result<Option<i64>, SolverError> {
        self.run_id(pred, space, |ctx, p, s| optimize::optimize(ctx, p, s, var, false))
    }

    /// The tightest box containing **all** models of `pred` in `space` (the optimal single-interval
    /// over-approximation of the ind. set), or `None` if there are no models.
    ///
    /// # Errors
    ///
    /// See [`Solver::find_model`].
    pub fn bounding_true_box(
        &mut self,
        pred: &Pred,
        space: &IntBox,
    ) -> Result<Option<IntBox>, SolverError> {
        let id = self.store.intern_pred(pred);
        self.bounding_true_box_id(id, space)
    }

    /// Id-native [`Solver::bounding_true_box`]: the predicate is interned once, not once per
    /// optimization direction and variable.
    ///
    /// # Errors
    ///
    /// See [`Solver::find_model`].
    pub fn bounding_true_box_id(
        &mut self,
        pred: PredId,
        space: &IntBox,
    ) -> Result<Option<IntBox>, SolverError> {
        let mut dims = Vec::with_capacity(space.arity());
        for var in 0..space.arity() {
            let lo = self.minimize_id(pred, space, var)?;
            let hi = self.maximize_id(pred, space, var)?;
            match (lo, hi) {
                (Some(lo), Some(hi)) => dims.push(Range::new(lo, hi)),
                _ => return Ok(None),
            }
        }
        Ok(Some(IntBox::new(dims)))
    }

    /// Returns `true` if `candidate` is an all-models box of `pred` that cannot be extended by
    /// any face inside `space` without including a non-model (inclusion-maximality, the shape of
    /// optimality targeted by under-approximation synthesis).
    ///
    /// # Errors
    ///
    /// See [`Solver::find_model`].
    pub fn is_inclusion_maximal(
        &mut self,
        pred: &Pred,
        space: &IntBox,
        candidate: &IntBox,
    ) -> Result<bool, SolverError> {
        let id = self.store.intern_pred(pred);
        if !self.is_valid_id(id, candidate)? {
            return Ok(false);
        }
        let candidate = candidate.clone();
        self.run_id(id, space, move |ctx, p, s| {
            maximal::is_inclusion_maximal(ctx, p, s, &candidate)
        })
    }

    /// Grows an inclusion-maximal box of models of `pred` around `seed` (which must itself be a
    /// model inside `space`), using the given expansion strategy. Returns `None` when the seed is
    /// not a model or lies outside the space.
    ///
    /// # Errors
    ///
    /// See [`Solver::find_model`].
    pub fn maximal_true_box(
        &mut self,
        pred: &Pred,
        space: &IntBox,
        seed: &Point,
        strategy: ExpansionStrategy,
    ) -> Result<Option<IntBox>, SolverError> {
        let id = self.store.intern_pred(pred);
        self.maximal_true_box_id(id, space, seed, strategy)
    }

    /// Id-native [`Solver::maximal_true_box`].
    ///
    /// # Errors
    ///
    /// See [`Solver::find_model`].
    pub fn maximal_true_box_id(
        &mut self,
        pred: PredId,
        space: &IntBox,
        seed: &Point,
        strategy: ExpansionStrategy,
    ) -> Result<Option<IntBox>, SolverError> {
        let seed = seed.clone();
        self.run_id(pred, space, move |ctx, p, s| {
            maximal::maximal_true_box(ctx, p, s, &seed, strategy)
        })
    }
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

fn saturating_elapsed(start: Instant) -> Duration {
    Instant::now().checked_duration_since(start).unwrap_or(Duration::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anosy_logic::{IntExpr, SecretLayout};

    fn loc_layout() -> SecretLayout {
        SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build()
    }

    fn nearby(xo: i64, yo: i64) -> Pred {
        ((IntExpr::var(0) - xo).abs() + (IntExpr::var(1) - yo).abs()).le(100)
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let mut solver = Solver::new();
        let pred = IntExpr::var(5).le(3);
        let err = solver.find_model(&pred, &loc_layout().space()).unwrap_err();
        assert!(matches!(err, SolverError::ArityMismatch { max_index: 5, arity: 2 }));
    }

    #[test]
    fn node_budget_is_enforced() {
        let mut solver = Solver::with_config(SolverConfig::new().with_max_nodes(3));
        // A query whose model sits in a thin diagonal forces many splits.
        let pred = (IntExpr::var(0) - IntExpr::var(1)).eq(123);
        let err = solver.count_models(&pred, &loc_layout().space()).unwrap_err();
        assert!(matches!(err, SolverError::BudgetExhausted { limit: "node", .. }));
    }

    #[test]
    fn stats_accumulate_across_queries() {
        let mut solver = Solver::with_config(SolverConfig::for_tests());
        let space = loc_layout().space();
        solver.is_satisfiable(&nearby(200, 200), &space).unwrap();
        solver.is_valid(&nearby(200, 200), &space).unwrap();
        assert_eq!(solver.stats().queries, 2);
        assert!(solver.stats().nodes_explored > 0);
        solver.reset_stats();
        assert_eq!(solver.stats().queries, 0);
    }

    #[test]
    fn bounding_box_of_the_nearby_diamond() {
        let mut solver = Solver::with_config(SolverConfig::for_tests());
        let space = loc_layout().space();
        let bounding = solver.bounding_true_box(&nearby(200, 200), &space).unwrap().unwrap();
        assert_eq!(bounding.dim(0), Range::new(100, 300));
        assert_eq!(bounding.dim(1), Range::new(100, 300));
        // Unsatisfiable query has no bounding box.
        let none = solver.bounding_true_box(&Pred::False, &space).unwrap();
        assert!(none.is_none());
    }

    #[test]
    fn default_and_config_accessors() {
        let solver = Solver::default();
        assert_eq!(solver.config().max_nodes, SolverConfig::new().max_nodes);
    }

    #[test]
    fn sharded_counting_over_a_store_snapshot_matches_the_sequential_count() {
        // The parallel-driver contract, exercised sequentially: intern once, snapshot per shard,
        // count per chunk with `count_models_id`, sum; the result and the merged stats must
        // match a single whole-space search's answer.
        let mut main = Solver::with_config(SolverConfig::for_tests());
        let space = loc_layout().space();
        let pred = nearby(200, 200);
        let id = main.intern_simplified(&pred);
        let sequential = main.count_models_id(id, &space).unwrap();

        let mut sharded_total = 0u128;
        let mut merged = SolverStats::new();
        for chunk in space.split_chunks(4) {
            let mut worker = Solver::with_store(SolverConfig::for_tests(), main.snapshot_store());
            sharded_total += worker.count_models_id(id, &chunk).unwrap();
            merged.absorb(worker.stats());
        }
        assert_eq!(sharded_total, sequential);
        assert_eq!(merged.queries, 4);
        assert!(merged.nodes_explored > 0);
        let before = main.stats().nodes_explored;
        main.absorb_stats(&merged);
        assert_eq!(main.stats().nodes_explored, before + merged.nodes_explored);
    }

    #[test]
    fn solver_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Solver>();
    }
}
