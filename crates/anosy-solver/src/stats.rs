//! Search statistics, for reporting and ablation studies.

use std::fmt;
use std::time::Duration;

/// Counters accumulated by a [`crate::Solver`] across queries.
///
/// Statistics are purely informational: they never influence results. They are reported by the
/// benchmark harness so that synthesis-cost comparisons (Fig. 5) can be explained in terms of
/// search effort rather than raw seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of boxes popped from the search queue / visited by recursion.
    pub nodes_explored: u64,
    /// Number of boxes discarded by constraint propagation or abstract evaluation.
    pub nodes_pruned: u64,
    /// Number of top-level queries answered.
    pub queries: u64,
    /// Total time spent inside the solver.
    pub total_time: Duration,
}

impl SolverStats {
    /// A zeroed statistics block.
    pub fn new() -> Self {
        SolverStats::default()
    }

    /// Merges another statistics block into this one.
    pub fn absorb(&mut self, other: &SolverStats) {
        self.nodes_explored += other.nodes_explored;
        self.nodes_pruned += other.nodes_pruned;
        self.queries += other.queries;
        self.total_time += other.total_time;
    }

    /// Fraction of explored nodes that were pruned, in `[0, 1]`; `0` when nothing was explored.
    pub fn prune_ratio(&self) -> f64 {
        if self.nodes_explored == 0 {
            0.0
        } else {
            self.nodes_pruned as f64 / self.nodes_explored as f64
        }
    }
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} queries, {} nodes ({} pruned), {:.3}s",
            self.queries,
            self.nodes_explored,
            self.nodes_pruned,
            self.total_time.as_secs_f64()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut a = SolverStats {
            nodes_explored: 10,
            nodes_pruned: 4,
            queries: 1,
            total_time: Duration::from_millis(5),
        };
        let b = SolverStats {
            nodes_explored: 20,
            nodes_pruned: 6,
            queries: 2,
            total_time: Duration::from_millis(7),
        };
        a.absorb(&b);
        assert_eq!(a.nodes_explored, 30);
        assert_eq!(a.nodes_pruned, 10);
        assert_eq!(a.queries, 3);
        assert_eq!(a.total_time, Duration::from_millis(12));
    }

    #[test]
    fn prune_ratio_handles_empty() {
        assert_eq!(SolverStats::new().prune_ratio(), 0.0);
        let s = SolverStats { nodes_explored: 10, nodes_pruned: 5, ..SolverStats::new() };
        assert!((s.prune_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_queries() {
        let s = SolverStats { queries: 3, ..SolverStats::new() };
        assert!(s.to_string().contains("3 queries"));
    }
}
