//! Resource limits and tuning knobs for the solver.

use std::time::Duration;

/// Configuration for a [`crate::Solver`].
///
/// The defaults are sized for the paper's benchmark suite (secret spaces of up to ~10¹³ points
/// with linear queries); the limits exist so that a malformed query cannot hang a deployment —
/// hitting one surfaces as [`crate::SolverError::BudgetExhausted`], mirroring the 10-second Z3
/// timeout the paper uses per synthesis call (§6.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolverConfig {
    /// Maximum number of search nodes (boxes) explored by a single query.
    pub max_nodes: u64,
    /// Wall-clock budget for a single query.
    pub time_budget: Duration,
    /// Maximum number of fixed-point iterations of constraint propagation per node.
    pub propagation_rounds: usize,
}

impl SolverConfig {
    /// Default limits (5 million nodes, 10 seconds, 8 propagation rounds).
    pub fn new() -> Self {
        SolverConfig {
            max_nodes: 5_000_000,
            time_budget: Duration::from_secs(10),
            propagation_rounds: 8,
        }
    }

    /// A configuration with a different node budget.
    pub fn with_max_nodes(mut self, max_nodes: u64) -> Self {
        self.max_nodes = max_nodes;
        self
    }

    /// A configuration with a different time budget.
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = budget;
        self
    }

    /// A configuration with a different number of propagation rounds per node.
    pub fn with_propagation_rounds(mut self, rounds: usize) -> Self {
        self.propagation_rounds = rounds;
        self
    }

    /// A tight configuration for unit tests (fast failure on runaway searches).
    pub fn for_tests() -> Self {
        SolverConfig {
            max_nodes: 200_000,
            time_budget: Duration::from_secs(2),
            propagation_rounds: 8,
        }
    }
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_limits_are_nonzero() {
        let c = SolverConfig::default();
        assert!(c.max_nodes > 0);
        assert!(c.time_budget > Duration::ZERO);
        assert!(c.propagation_rounds > 0);
    }

    #[test]
    fn builders_override_fields() {
        let c = SolverConfig::new()
            .with_max_nodes(10)
            .with_time_budget(Duration::from_millis(5))
            .with_propagation_rounds(2);
        assert_eq!(c.max_nodes, 10);
        assert_eq!(c.time_budget, Duration::from_millis(5));
        assert_eq!(c.propagation_rounds, 2);
    }

    #[test]
    fn test_config_is_tighter_than_default() {
        assert!(SolverConfig::for_tests().max_nodes < SolverConfig::new().max_nodes);
    }
}
