//! Exact model counting.
//!
//! Counting is how ANOSY-RS computes the ground-truth ind. set sizes of Table 1 and the `size`
//! of exact posteriors; it is also used by tests to cross-check the sizes reported by the
//! abstract domains.

use crate::propagate::propagate_id;
use crate::solver::SearchCtx;
use crate::SolverError;
use anosy_logic::{IntBox, PredId, TriBool};

/// Counts the models of `pred` inside `space`, exactly.
pub(crate) fn count_models(
    ctx: &mut SearchCtx<'_>,
    pred: PredId,
    space: &IntBox,
) -> Result<u128, SolverError> {
    if space.is_empty() {
        return Ok(0);
    }
    let mut total: u128 = 0;
    let mut stack = vec![space.clone()];
    while let Some(current) = stack.pop() {
        ctx.tick()?;
        let narrowed = match propagate_id(ctx.store, pred, &current, ctx.propagation_rounds()) {
            Some(b) => b,
            None => {
                ctx.pruned += 1;
                continue;
            }
        };
        match ctx.store.eval_abstract_pred(pred, &narrowed) {
            TriBool::True => {
                total += narrowed.count();
                continue;
            }
            TriBool::False => {
                ctx.pruned += 1;
                continue;
            }
            TriBool::Unknown => {}
        }
        if narrowed.is_singleton() {
            let point = narrowed.min_corner().expect("singleton box has a corner");
            if ctx.store.eval_pred(pred, &point).unwrap_or(false) {
                total += 1;
            }
            continue;
        }
        let dim = narrowed
            .widest_splittable_dim()
            .expect("non-singleton, non-empty box has a splittable dimension");
        let (left, right) = narrowed.bisect(dim).expect("splittable dimension bisects");
        stack.push(left);
        stack.push(right);
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Solver, SolverConfig};
    use anosy_logic::{IntExpr, Point, Pred, Range, SecretLayout};

    fn solver() -> Solver {
        Solver::with_config(SolverConfig::for_tests())
    }

    fn brute_force(pred: &Pred, space: &IntBox) -> u128 {
        space.points().filter(|p| pred.eval(p).unwrap()).count() as u128
    }

    #[test]
    fn diamond_count_matches_closed_form() {
        // A Manhattan ball of radius r fully inside the space has 2r² + 2r + 1 points.
        let mut s = solver();
        let space = SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build().space();
        let nearby = ((IntExpr::var(0) - 200).abs() + (IntExpr::var(1) - 200).abs()).le(100);
        assert_eq!(s.count_models(&nearby, &space).unwrap(), 2 * 100 * 100 + 2 * 100 + 1);
    }

    #[test]
    fn counts_agree_with_brute_force_on_small_spaces() {
        let mut s = solver();
        let layout = SecretLayout::builder().field("x", -8, 8).field("y", -8, 8).build();
        let space = layout.space();
        let preds = vec![
            Pred::True,
            Pred::False,
            (IntExpr::var(0).abs() + IntExpr::var(1).abs()).le(5),
            (IntExpr::var(0) + IntExpr::var(1) * 2).le(3),
            IntExpr::var(0).eq(IntExpr::var(1)),
            IntExpr::var(0).ne(IntExpr::var(1)),
            Pred::or(vec![IntExpr::var(0).le(-3), IntExpr::var(1).ge(3)]),
            IntExpr::var(0).one_of([-8, 0, 3, 8]),
            IntExpr::var(0).ge(0).implies(IntExpr::var(1).ge(0)),
            IntExpr::var(0).ge(0).iff(IntExpr::var(1).lt(0)),
        ];
        for pred in preds {
            assert_eq!(
                s.count_models(&pred, &space).unwrap(),
                brute_force(&pred, &space),
                "count mismatch for {pred}"
            );
        }
    }

    #[test]
    fn counting_respects_complements() {
        let mut s = solver();
        let layout = SecretLayout::builder().field("x", 0, 50).field("y", 0, 30).build();
        let space = layout.space();
        let pred = (IntExpr::var(0) - IntExpr::var(1)).abs().le(4);
        let t = s.count_models(&pred, &space).unwrap();
        let f =
            s.count_models(&anosy_logic::simplify_pred(&pred.clone().negate()), &space).unwrap();
        assert_eq!(t + f, space.count());
    }

    #[test]
    fn huge_aligned_spaces_count_quickly() {
        // Axis-aligned constraints over a ~10^13-point space (the Pizza benchmark scale) must be
        // counted without enumerating points.
        let mut s = Solver::with_config(SolverConfig::for_tests());
        let layout = SecretLayout::builder()
            .field("byear", 1900, 2010)
            .field("school", 0, 5)
            .field("lat", 0, 205_000)
            .field("lon", 0, 205_000)
            .build();
        let pred = Pred::and(vec![
            IntExpr::var(0).between(1980, 1989),
            IntExpr::var(1).ge(4),
            IntExpr::var(2).between(50_000, 75_000),
            IntExpr::var(3).between(100_000, 125_000),
        ]);
        let count = s.count_models(&pred, &layout.space()).unwrap();
        assert_eq!(count, 10 * 2 * 25_001 * 25_001);
    }

    #[test]
    fn empty_space_counts_zero() {
        let mut s = solver();
        let empty = IntBox::new(vec![Range::empty()]);
        assert_eq!(s.count_models(&Pred::True, &empty).unwrap(), 0);
        let _ = Point::new(vec![]);
    }
}
